//! Kernel conformance: the blocked GEMM and both fused-transpose
//! variants must be **bit-identical** to a naive triple-loop oracle, at
//! every thread count, on every shape class the pipeline can produce.
//!
//! This is the enforcement arm of the bit-identity contract documented in
//! `linalg::gemm`: each output element is one accumulator advanced in
//! strictly increasing-k order with no `mul_add` contraction, so packing,
//! register tiling, runtime SIMD dispatch and row-tiled parallelism may
//! change *throughput* but never a single bit of the result. Shapes cover
//! empty and unit dims, primes that straddle the MR×NR tile in every
//! direction, tall/wide aspect ratios, and sizes past the parallel
//! threshold; every case runs with the `par` pool pinned to 1 and to 4
//! workers.
//!
//! The thread override is process-global, so tests serialize on one lock
//! (this binary is its own process; other test binaries are unaffected).

use linalg::{Matrix, Rng};
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that flip the global `par` thread override.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// The oracle: a naive triple loop, one accumulator per element, in
/// increasing-k order — deliberately the simplest possible statement of
/// the arithmetic every blocked kernel must reproduce exactly.
fn oracle(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(b.rows(), k);
    Matrix::from_fn(m, n, |i, j| {
        let mut acc = 0.0f32;
        for kk in 0..k {
            acc += a[(i, kk)] * b[(kk, j)];
        }
        acc
    })
}

/// Shape classes: empty, unit, tile-straddling primes, tall, wide, and
/// past the `PAR_MATMUL_FLOPS` threshold so the parallel path engages.
const SHAPES: &[(usize, usize, usize)] = &[
    (0, 5, 7),
    (5, 0, 7),
    (5, 7, 0),
    (1, 1, 1),
    (1, 17, 1),
    (4, 8, 8),       // exactly one full MR×NR tile per row block
    (5, 9, 11),      // ragged in every direction
    (13, 7, 31),     // prime dims straddling strip boundaries
    (3, 257, 2),     // tall-k
    (97, 2, 3),      // tall-m, tiny k
    (2, 3, 97),      // wide-n
    (129, 130, 131), // > 2^21 flops: parallel row tiling engages at 4 workers
    // tall-skinny bench shapes: n ≤ NR routes Aᵀ·B onto the direct
    // rank-1 path (and its 4-row unroll), which must stay bit-identical
    // to the packed path, the oracle, and itself under any row split
    (2048, 32, 8),  // the tree-booster feature block from kernel_bench
    (2048, 32, 16), // same but exactly one full NR strip
    (511, 33, 7),   // ragged tall-skinny, sub-NR/2 strip
    (300, 300, 8),  // tall-k direct path, block boundary at 256 rows
];

fn randn(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.normal())
}

/// Run `f` at 1 and at 4 workers and assert the results are identical
/// bytes; returns the 1-worker result for oracle comparison.
fn at_both_thread_counts(f: impl Fn() -> Matrix, what: &str) -> Matrix {
    par::set_threads(1);
    let seq = f();
    par::set_threads(4);
    let par4 = f();
    par::reset_threads();
    assert_eq!(
        seq.as_slice(),
        par4.as_slice(),
        "{what}: result depends on thread count"
    );
    seq
}

#[test]
fn blocked_gemm_bit_matches_oracle_at_all_thread_counts() {
    let _g = guard();
    for &(m, k, n) in SHAPES {
        let a = randn(m, k, (m * 1009 + k * 31 + n) as u64);
        let b = randn(k, n, (n * 2003 + k) as u64);
        let expect = oracle(&a, &b);
        let got = at_both_thread_counts(|| a.matmul(&b), &format!("matmul {m}x{k}x{n}"));
        assert_eq!(got.as_slice(), expect.as_slice(), "matmul {m}x{k}x{n}");
    }
}

#[test]
fn fused_transpose_b_bit_matches_oracle_at_all_thread_counts() {
    let _g = guard();
    for &(m, k, n) in SHAPES {
        let a = randn(m, k, (m * 733 + k) as u64);
        let bt = randn(n, k, (n * 523 + k * 7) as u64); // stored n × k
        let expect = oracle(&a, &bt.transpose());
        let got = at_both_thread_counts(
            || a.matmul_transpose_b(&bt),
            &format!("matmul_transpose_b {m}x{k}x{n}"),
        );
        assert_eq!(
            got.as_slice(),
            expect.as_slice(),
            "matmul_transpose_b {m}x{k}x{n}"
        );
    }
}

#[test]
fn fused_transpose_a_bit_matches_oracle_at_all_thread_counts() {
    let _g = guard();
    for &(m, k, n) in SHAPES {
        let at = randn(k, m, (m * 389 + k * 3) as u64); // stored k × m
        let b = randn(k, n, (n * 151 + k) as u64);
        let expect = oracle(&at.transpose(), &b);
        let got = at_both_thread_counts(
            || at.matmul_transpose_a(&b),
            &format!("matmul_transpose_a {m}x{k}x{n}"),
        );
        assert_eq!(
            got.as_slice(),
            expect.as_slice(),
            "matmul_transpose_a {m}x{k}x{n}"
        );
    }
}

#[test]
fn fused_variants_bit_match_their_materialized_forms() {
    let _g = guard();
    // the substitution the nn tape backward relies on: fused ops are
    // drop-in replacements for transpose-then-multiply, bit for bit
    for &(m, k, n) in SHAPES {
        let a = randn(m, k, (m + k * 41) as u64);
        let b = randn(k, n, (n + k * 43) as u64);
        let bt = b.transpose();
        let at = a.transpose();
        assert_eq!(
            a.matmul_transpose_b(&bt).as_slice(),
            a.matmul(&b).as_slice(),
            "A·(Bᵀ)ᵀ vs A·B at {m}x{k}x{n}"
        );
        assert_eq!(
            at.matmul_transpose_a(&b).as_slice(),
            a.matmul(&b).as_slice(),
            "(Aᵀ)ᵀ·B vs A·B at {m}x{k}x{n}"
        );
    }
}

/// The vector kernels' runtime SIMD dispatch must be bit-transparent:
/// whatever build the CPU selects, the result must equal the exported
/// `*_generic` baseline compilations bit for bit. Lengths straddle the
/// wide-lane block size (32), the embedding length the pipeline ships
/// (768), and ragged tails.
#[test]
fn vector_kernel_dispatch_is_bit_transparent() {
    let mut rng = Rng::new(0x51D);
    for len in [0usize, 1, 7, 31, 32, 33, 63, 64, 65, 257, 701, 768] {
        let a: Vec<f32> = (0..len).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..len).map(|_| rng.normal()).collect();
        let d = linalg::vector::dot(&a, &b);
        let dg = linalg::vector::dot_generic(&a, &b);
        assert_eq!(d.to_bits(), dg.to_bits(), "dot len {len}");
        let c = linalg::vector::cosine(&a, &b);
        let cg = linalg::vector::cosine_generic(&a, &b);
        assert_eq!(c.to_bits(), cg.to_bits(), "cosine len {len}");
    }
}

/// Same bit-transparency for the dispatched matvec kernels, on shapes
/// that straddle the wide-lane block in both dimensions.
#[test]
fn matvec_dispatch_is_bit_transparent() {
    for (rows, cols) in [(1usize, 1usize), (5, 33), (33, 5), (64, 768), (131, 257)] {
        let m = randn(rows, cols, (rows * 37 + cols) as u64);
        let v = randn(1, cols, (cols * 11 + 3) as u64);
        let vr = randn(1, rows, (rows * 13 + 5) as u64);
        assert_eq!(
            m.matvec(v.as_slice()),
            m.matvec_generic(v.as_slice()),
            "matvec {rows}x{cols}"
        );
        assert_eq!(
            m.matvec_t(vr.as_slice()),
            m.matvec_t_generic(vr.as_slice()),
            "matvec_t {rows}x{cols}"
        );
    }
}

/// `matvec` must agree bit-for-bit with a per-row `vector::dot` — the
/// substitution `em-serve` single-pair inference relies on.
#[test]
fn matvec_equals_per_row_dot() {
    let m = randn(67, 129, 0xAB);
    let v = randn(1, 129, 0xCD);
    let got = m.matvec(v.as_slice());
    for (i, y) in got.iter().enumerate() {
        let want = linalg::vector::dot(m.row(i), v.as_slice());
        assert_eq!(y.to_bits(), want.to_bits(), "row {i}");
    }
}

#[test]
fn non_finite_values_reach_every_kernel_output() {
    let _g = guard();
    // regression for the old zero-skip fast path: a 0 in A must not drop
    // an ∞/NaN contribution from B (0·∞ = NaN by IEEE 754)
    let mut a = Matrix::zeros(3, 4);
    a[(1, 2)] = 0.0;
    a[(0, 0)] = 1.0;
    let mut b = Matrix::zeros(4, 3);
    b[(2, 1)] = f32::INFINITY;
    b[(2, 2)] = f32::NAN;
    let prod = a.matmul(&b);
    assert!(prod[(1, 1)].is_nan(), "0·∞ must propagate as NaN");
    assert!(prod[(1, 2)].is_nan(), "0·NaN must propagate as NaN");
    let tb = a.matmul_transpose_b(&b.transpose());
    assert!(tb[(1, 1)].is_nan() && tb[(1, 2)].is_nan());
    let ta = a.transpose().matmul_transpose_a(&b);
    assert!(ta[(1, 1)].is_nan() && ta[(1, 2)].is_nan());
}
