//! Serving-layer contract tests: the wire protocol survives hostile
//! inputs, served probabilities are bit-identical to offline `predict`
//! at any thread count and any batching, and a graceful shutdown
//! answers every request it admitted.
//!
//! The HTTP tests speak raw bytes over `TcpStream` on purpose — the
//! point is to exercise torn requests, pipelining and oversized frames
//! exactly as a socket would deliver them, not as a well-behaved client
//! library would.

use em_core::model::{ModelHost, ModelSpec};
use em_data::{RecordPair, Schema, Split};
use em_serve::{serve, ServeConfig};
use obs::json::{self, Json};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Serializes tests that flip the global `par` thread override.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// One fixture model for the whole binary — training takes a second,
/// every test shares the host read-only.
fn fixture() -> &'static ModelHost {
    static HOST: OnceLock<ModelHost> = OnceLock::new();
    HOST.get_or_init(|| {
        ModelSpec {
            scale: 0.3,
            budget_hours: 0.1,
            ..ModelSpec::fixture()
        }
        .train()
        .expect("fixture training failed")
    })
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        linger_us: 500,
        ..ServeConfig::default()
    }
}

fn start_server() -> (em_serve::ServerHandle, SocketAddr) {
    let host = std::sync::Arc::new(
        ModelSpec {
            scale: 0.3,
            budget_hours: 0.1,
            ..ModelSpec::fixture()
        }
        .train()
        .expect("fixture training failed"),
    );
    let handle = serve(host, &test_config()).expect("bind failed");
    let addr = handle.addr();
    (handle, addr)
}

/// Send raw bytes, read until the peer closes or one full response
/// (head + content-length body) is buffered; return the raw response.
fn roundtrip(addr: SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw).expect("write");
    read_one_response(&mut stream)
}

fn read_one_response(stream: &mut TcpStream) -> String {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
            let need: usize = head
                .lines()
                .find_map(|l| {
                    let (k, v) = l.split_once(':')?;
                    k.eq_ignore_ascii_case("content-length")
                        .then(|| v.trim().parse().ok())?
                })
                .unwrap_or(0);
            if buf.len() >= head_end + 4 + need {
                return String::from_utf8_lossy(&buf[..head_end + 4 + need]).to_string();
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return String::from_utf8_lossy(&buf).to_string(),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read failed: {e}"),
        }
    }
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

fn pair_body(schema: &Schema, pair: &RecordPair) -> String {
    let entity = |e: &em_data::Entity| {
        let mut o = json::Obj::new();
        for (i, attr) in schema.attributes().iter().enumerate() {
            if let Some(v) = e.value(i) {
                o.str(&attr.name, v);
            }
        }
        o.finish()
    };
    let mut o = json::Obj::new();
    o.raw("left", &entity(&pair.left))
        .raw("right", &entity(&pair.right));
    o.finish()
}

fn post(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

// ---------------------------------------------------------------- protocol

#[test]
fn healthz_and_metrics_respond() {
    let _g = guard();
    let (handle, addr) = start_server();
    let rsp = roundtrip(addr, b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n");
    assert!(rsp.starts_with("HTTP/1.1 200"), "{rsp}");
    let v = json::parse(body_of(&rsp)).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
    assert!(v.get("threshold").and_then(Json::as_f64).is_some());
    let rsp = roundtrip(addr, b"GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n");
    assert!(rsp.starts_with("HTTP/1.1 200"), "{rsp}");
    assert!(json::parse(body_of(&rsp)).is_ok(), "metrics must be JSON");
    assert!(handle.shutdown());
}

#[test]
fn torn_request_completes_when_rest_arrives() {
    let _g = guard();
    let (handle, addr) = start_server();
    let host = fixture();
    let pair = &host.dataset().split(Split::Test)[0];
    let raw = post("/match", &pair_body(host.schema(), pair));
    // drip-feed the request in three fragments with pauses: the parser
    // must wait for the tail instead of erroring on the torn prefix
    let mut stream = TcpStream::connect(addr).unwrap();
    let cut_a = raw.len() / 3;
    let cut_b = 2 * raw.len() / 3;
    for part in [&raw[..cut_a], &raw[cut_a..cut_b], &raw[cut_b..]] {
        stream.write_all(part).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(20));
    }
    let rsp = read_one_response(&mut stream);
    assert!(rsp.starts_with("HTTP/1.1 200"), "{rsp}");
    assert!(handle.shutdown());
}

#[test]
fn protocol_violations_get_typed_errors() {
    let _g = guard();
    let (handle, addr) = start_server();
    // POST without Content-Length → 411
    let rsp = roundtrip(addr, b"POST /match HTTP/1.1\r\n\r\n");
    assert!(rsp.starts_with("HTTP/1.1 411"), "{rsp}");
    // chunked framing → 501
    let rsp = roundtrip(
        addr,
        b"POST /match HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
    );
    assert!(rsp.starts_with("HTTP/1.1 501"), "{rsp}");
    // oversized declared body → 413
    let rsp = roundtrip(
        addr,
        format!(
            "POST /match HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            200 << 20
        )
        .as_bytes(),
    );
    assert!(rsp.starts_with("HTTP/1.1 413"), "{rsp}");
    // header bomb → 431
    let mut bomb = b"GET / HTTP/1.1\r\nx-pad: ".to_vec();
    bomb.extend(std::iter::repeat_n(b'a', 9000));
    bomb.extend_from_slice(b"\r\n\r\n");
    let rsp = roundtrip(addr, &bomb);
    assert!(rsp.starts_with("HTTP/1.1 431"), "{rsp}");
    // garbage request line → 400
    let rsp = roundtrip(addr, b"GARBAGE\r\n\r\n");
    assert!(rsp.starts_with("HTTP/1.1 400"), "{rsp}");
    // unknown route → 404, wrong method → 405
    let rsp = roundtrip(addr, b"GET /nope HTTP/1.1\r\nconnection: close\r\n\r\n");
    assert!(rsp.starts_with("HTTP/1.1 404"), "{rsp}");
    let rsp = roundtrip(addr, b"GET /match HTTP/1.1\r\nconnection: close\r\n\r\n");
    assert!(rsp.starts_with("HTTP/1.1 405"), "{rsp}");
    // bad entity payloads → 400 with a JSON error body
    let rsp = roundtrip(addr, &post("/match", "{\"left\":{}}"));
    assert!(rsp.starts_with("HTTP/1.1 400"), "{rsp}");
    let v = json::parse(body_of(&rsp)).unwrap();
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad_request")
    );
    let rsp = roundtrip(
        addr,
        &post("/match", "{\"left\":{\"no_such_attr\":\"x\"},\"right\":{}}"),
    );
    assert!(rsp.starts_with("HTTP/1.1 400"), "{rsp}");
    assert!(handle.shutdown());
}

#[test]
fn pipelined_requests_answer_in_order() {
    let _g = guard();
    let (handle, addr) = start_server();
    let host = fixture();
    let pairs = host.dataset().split(Split::Test);
    let schema = host.schema();
    // two POSTs written back-to-back before reading anything
    let mut raw = post("/match", &pair_body(schema, &pairs[0]));
    raw.extend(post("/match", &pair_body(schema, &pairs[1])));
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&raw).unwrap();
    let expect = fixture().match_proba(&pairs[..2]);
    for expected in expect.iter().take(2) {
        let rsp = read_one_response(&mut stream);
        assert!(rsp.starts_with("HTTP/1.1 200"), "{rsp}");
        let p = json::parse(body_of(&rsp))
            .unwrap()
            .get("p_match")
            .and_then(Json::as_f64)
            .unwrap();
        assert_eq!((p as f32).to_bits(), expected.to_bits());
    }
    assert!(handle.shutdown());
}

// ------------------------------------------------------------ bit-identity

/// Served probabilities equal offline `match_proba` bit-for-bit, via
/// single requests and via one batch request, with the `par` pool pinned
/// to 1 and then 4 workers.
#[test]
fn served_probs_bit_identical_to_offline_at_1_and_4_threads() {
    let _g = guard();
    let host = fixture();
    let pairs =
        &host.dataset().split(Split::Test)[..8.min(host.dataset().split(Split::Test).len())];
    let schema = host.schema();
    let offline = host.match_proba(pairs);
    for threads in [1usize, 4] {
        par::set_threads(threads);
        let (handle, addr) = start_server();
        // one-by-one
        let mut stream = TcpStream::connect(addr).unwrap();
        for (i, pair) in pairs.iter().enumerate() {
            stream
                .write_all(&post("/match", &pair_body(schema, pair)))
                .unwrap();
            let rsp = read_one_response(&mut stream);
            assert!(rsp.starts_with("HTTP/1.1 200"), "{rsp}");
            let p = json::parse(body_of(&rsp))
                .unwrap()
                .get("p_match")
                .and_then(Json::as_f64)
                .unwrap();
            assert_eq!(
                (p as f32).to_bits(),
                offline[i].to_bits(),
                "pair {i} at {threads} threads"
            );
        }
        // all at once through /match/batch
        let body = {
            let mut o = json::Obj::new();
            o.raw(
                "pairs",
                &json::array(pairs.iter().map(|p| pair_body(schema, p))),
            );
            o.finish()
        };
        let rsp = roundtrip(addr, &post("/match/batch", &body));
        assert!(rsp.starts_with("HTTP/1.1 200"), "{rsp}");
        let v = json::parse(body_of(&rsp)).unwrap();
        assert_eq!(
            v.get("batch").and_then(Json::as_u64),
            Some(pairs.len() as u64)
        );
        let results = match v.get("results") {
            Some(Json::Arr(items)) => items.clone(),
            other => panic!("missing results array: {other:?}"),
        };
        for (i, item) in results.iter().enumerate() {
            let p = item.get("p_match").and_then(Json::as_f64).unwrap();
            assert_eq!(
                (p as f32).to_bits(),
                offline[i].to_bits(),
                "batch result {i} at {threads} threads"
            );
        }
        par::reset_threads();
        assert!(handle.shutdown());
    }
}

// ----------------------------------------------------------------- drain

/// Graceful shutdown: every request accepted before the drain gets a
/// real answer; none are dropped on the floor.
#[test]
fn drain_answers_every_accepted_request() {
    let _g = guard();
    let (handle, addr) = start_server();
    let host = fixture();
    let pairs = host.dataset().split(Split::Test);
    let schema = host.schema();
    let offline = host.match_proba(pairs);
    let n_clients = 6usize;
    let answered: Vec<(usize, u32)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..n_clients)
            .map(|c| {
                s.spawn(move || {
                    let idx = c % pairs.len();
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream
                        .write_all(&post("/match", &pair_body(schema, &pairs[idx])))
                        .expect("write");
                    let rsp = read_one_response(&mut stream);
                    assert!(rsp.starts_with("HTTP/1.1 200"), "client {c}: {rsp}");
                    let p = json::parse(body_of(&rsp))
                        .unwrap()
                        .get("p_match")
                        .and_then(Json::as_f64)
                        .unwrap();
                    (idx, (p as f32).to_bits())
                })
            })
            .collect();
        // let the clients get their requests in flight, then drain while
        // they are still waiting on answers
        std::thread::sleep(Duration::from_millis(30));
        assert!(handle.shutdown(), "drain timed out");
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    assert_eq!(answered.len(), n_clients);
    for (idx, bits) in answered {
        assert_eq!(bits, offline[idx].to_bits(), "pair {idx}");
    }
}

/// After the gate closes, *new* connections are refused with a typed
/// `503 draining` rather than a silent hang-up.
#[test]
fn new_connections_during_drain_get_503() {
    let _g = guard();
    let (handle, addr) = start_server();
    // hold one idle connection so the drain has something to wait for
    let _idle = TcpStream::connect(addr).unwrap();
    let shutdown = std::thread::spawn(move || handle.shutdown());
    std::thread::sleep(Duration::from_millis(30));
    // the accept thread is gone or the gate is closed: either the
    // connect is refused outright or the server answers 503 draining
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let mut buf = Vec::new();
        let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
        let _ = stream.read_to_end(&mut buf);
        let rsp = String::from_utf8_lossy(&buf);
        assert!(
            rsp.is_empty() || rsp.starts_with("HTTP/1.1 503"),
            "expected close or 503, got: {rsp}"
        );
    }
    assert!(shutdown.join().unwrap());
}
