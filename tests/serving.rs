//! Serving-layer contract tests: the wire protocol survives hostile
//! inputs, served probabilities are bit-identical to offline `predict`
//! at any thread count and any batching, and a graceful shutdown
//! answers every request it admitted.
//!
//! The HTTP tests speak raw bytes over `TcpStream` on purpose — the
//! point is to exercise torn requests, pipelining and oversized frames
//! exactly as a socket would deliver them, not as a well-behaved client
//! library would.

use em_core::model::{ModelHost, ModelSpec};
use em_data::{RecordPair, Schema, Split};
use em_serve::{serve, ServeConfig};
use obs::json::{self, Json};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Serializes tests that flip the global `par` thread override.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// One fixture model for the whole binary — training takes a second,
/// every test shares the host read-only.
fn fixture_arc() -> std::sync::Arc<ModelHost> {
    static HOST: OnceLock<std::sync::Arc<ModelHost>> = OnceLock::new();
    std::sync::Arc::clone(HOST.get_or_init(|| {
        std::sync::Arc::new(
            ModelSpec {
                scale: 0.3,
                budget_hours: 0.1,
                ..ModelSpec::fixture()
            }
            .train()
            .expect("fixture training failed"),
        )
    }))
}

fn fixture() -> &'static ModelHost {
    static HOST: OnceLock<std::sync::Arc<ModelHost>> = OnceLock::new();
    HOST.get_or_init(fixture_arc)
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        linger_us: 500,
        ..ServeConfig::default()
    }
}

fn start_server() -> (em_serve::ServerHandle, SocketAddr) {
    start_server_with(test_config())
}

fn start_server_with(config: ServeConfig) -> (em_serve::ServerHandle, SocketAddr) {
    let handle = serve(fixture_arc(), &config).expect("bind failed");
    let addr = handle.addr();
    (handle, addr)
}

/// Send raw bytes, read until the peer closes or one full response
/// (head + content-length body) is buffered; return the raw response.
fn roundtrip(addr: SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw).expect("write");
    read_one_response(&mut stream)
}

fn read_one_response(stream: &mut TcpStream) -> String {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
            let need: usize = head
                .lines()
                .find_map(|l| {
                    let (k, v) = l.split_once(':')?;
                    k.eq_ignore_ascii_case("content-length")
                        .then(|| v.trim().parse().ok())?
                })
                .unwrap_or(0);
            if buf.len() >= head_end + 4 + need {
                return String::from_utf8_lossy(&buf[..head_end + 4 + need]).to_string();
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return String::from_utf8_lossy(&buf).to_string(),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read failed: {e}"),
        }
    }
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

/// Extract a response header value (case-insensitive name).
fn header_of(response: &str, name: &str) -> Option<String> {
    let head = response.split("\r\n\r\n").next()?;
    head.lines().skip(1).find_map(|l| {
        let (k, v) = l.split_once(':')?;
        k.trim()
            .eq_ignore_ascii_case(name)
            .then(|| v.trim().to_string())
    })
}

fn error_code_of(response: &str) -> Option<String> {
    json::parse(body_of(response))
        .ok()?
        .get("error")?
        .get("code")
        .and_then(Json::as_str)
        .map(str::to_owned)
}

fn pair_body(schema: &Schema, pair: &RecordPair) -> String {
    let entity = |e: &em_data::Entity| {
        let mut o = json::Obj::new();
        for (i, attr) in schema.attributes().iter().enumerate() {
            if let Some(v) = e.value(i) {
                o.str(&attr.name, v);
            }
        }
        o.finish()
    };
    let mut o = json::Obj::new();
    o.raw("left", &entity(&pair.left))
        .raw("right", &entity(&pair.right));
    o.finish()
}

fn post(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

// ---------------------------------------------------------------- protocol

#[test]
fn healthz_and_metrics_respond() {
    let _g = guard();
    let (handle, addr) = start_server();
    let rsp = roundtrip(addr, b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n");
    assert!(rsp.starts_with("HTTP/1.1 200"), "{rsp}");
    let v = json::parse(body_of(&rsp)).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
    assert!(v.get("threshold").and_then(Json::as_f64).is_some());
    let rsp = roundtrip(addr, b"GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n");
    assert!(rsp.starts_with("HTTP/1.1 200"), "{rsp}");
    assert!(json::parse(body_of(&rsp)).is_ok(), "metrics must be JSON");
    assert!(handle.shutdown());
}

#[test]
fn torn_request_completes_when_rest_arrives() {
    let _g = guard();
    let (handle, addr) = start_server();
    let host = fixture();
    let pair = &host.dataset().split(Split::Test)[0];
    let raw = post("/match", &pair_body(host.schema(), pair));
    // drip-feed the request in three fragments with pauses: the parser
    // must wait for the tail instead of erroring on the torn prefix
    let mut stream = TcpStream::connect(addr).unwrap();
    let cut_a = raw.len() / 3;
    let cut_b = 2 * raw.len() / 3;
    for part in [&raw[..cut_a], &raw[cut_a..cut_b], &raw[cut_b..]] {
        stream.write_all(part).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(20));
    }
    let rsp = read_one_response(&mut stream);
    assert!(rsp.starts_with("HTTP/1.1 200"), "{rsp}");
    assert!(handle.shutdown());
}

#[test]
fn protocol_violations_get_typed_errors() {
    let _g = guard();
    let (handle, addr) = start_server();
    // POST without Content-Length → 411
    let rsp = roundtrip(addr, b"POST /match HTTP/1.1\r\n\r\n");
    assert!(rsp.starts_with("HTTP/1.1 411"), "{rsp}");
    // chunked framing → 501
    let rsp = roundtrip(
        addr,
        b"POST /match HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
    );
    assert!(rsp.starts_with("HTTP/1.1 501"), "{rsp}");
    // oversized declared body → 413
    let rsp = roundtrip(
        addr,
        format!(
            "POST /match HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            200 << 20
        )
        .as_bytes(),
    );
    assert!(rsp.starts_with("HTTP/1.1 413"), "{rsp}");
    // header bomb → 431
    let mut bomb = b"GET / HTTP/1.1\r\nx-pad: ".to_vec();
    bomb.extend(std::iter::repeat_n(b'a', 9000));
    bomb.extend_from_slice(b"\r\n\r\n");
    let rsp = roundtrip(addr, &bomb);
    assert!(rsp.starts_with("HTTP/1.1 431"), "{rsp}");
    // garbage request line → 400
    let rsp = roundtrip(addr, b"GARBAGE\r\n\r\n");
    assert!(rsp.starts_with("HTTP/1.1 400"), "{rsp}");
    // unknown route → 404, wrong method → 405
    let rsp = roundtrip(addr, b"GET /nope HTTP/1.1\r\nconnection: close\r\n\r\n");
    assert!(rsp.starts_with("HTTP/1.1 404"), "{rsp}");
    let rsp = roundtrip(addr, b"GET /match HTTP/1.1\r\nconnection: close\r\n\r\n");
    assert!(rsp.starts_with("HTTP/1.1 405"), "{rsp}");
    // bad entity payloads → 400 with a JSON error body
    let rsp = roundtrip(addr, &post("/match", "{\"left\":{}}"));
    assert!(rsp.starts_with("HTTP/1.1 400"), "{rsp}");
    let v = json::parse(body_of(&rsp)).unwrap();
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad_request")
    );
    let rsp = roundtrip(
        addr,
        &post("/match", "{\"left\":{\"no_such_attr\":\"x\"},\"right\":{}}"),
    );
    assert!(rsp.starts_with("HTTP/1.1 400"), "{rsp}");
    assert!(handle.shutdown());
}

#[test]
fn pipelined_requests_answer_in_order() {
    let _g = guard();
    let (handle, addr) = start_server();
    let host = fixture();
    let pairs = host.dataset().split(Split::Test);
    let schema = host.schema();
    // two POSTs written back-to-back before reading anything
    let mut raw = post("/match", &pair_body(schema, &pairs[0]));
    raw.extend(post("/match", &pair_body(schema, &pairs[1])));
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&raw).unwrap();
    let expect = fixture().match_proba(&pairs[..2]);
    for expected in expect.iter().take(2) {
        let rsp = read_one_response(&mut stream);
        assert!(rsp.starts_with("HTTP/1.1 200"), "{rsp}");
        let p = json::parse(body_of(&rsp))
            .unwrap()
            .get("p_match")
            .and_then(Json::as_f64)
            .unwrap();
        assert_eq!((p as f32).to_bits(), expected.to_bits());
    }
    assert!(handle.shutdown());
}

// ------------------------------------------------------------ bit-identity

/// Served probabilities equal offline `match_proba` bit-for-bit, via
/// single requests and via one batch request, with the `par` pool pinned
/// to 1 and then 4 workers.
#[test]
fn served_probs_bit_identical_to_offline_at_1_and_4_threads() {
    let _g = guard();
    let host = fixture();
    let pairs =
        &host.dataset().split(Split::Test)[..8.min(host.dataset().split(Split::Test).len())];
    let schema = host.schema();
    let offline = host.match_proba(pairs);
    for threads in [1usize, 4] {
        par::set_threads(threads);
        let (handle, addr) = start_server();
        // one-by-one
        let mut stream = TcpStream::connect(addr).unwrap();
        for (i, pair) in pairs.iter().enumerate() {
            stream
                .write_all(&post("/match", &pair_body(schema, pair)))
                .unwrap();
            let rsp = read_one_response(&mut stream);
            assert!(rsp.starts_with("HTTP/1.1 200"), "{rsp}");
            let p = json::parse(body_of(&rsp))
                .unwrap()
                .get("p_match")
                .and_then(Json::as_f64)
                .unwrap();
            assert_eq!(
                (p as f32).to_bits(),
                offline[i].to_bits(),
                "pair {i} at {threads} threads"
            );
        }
        // all at once through /match/batch
        let body = {
            let mut o = json::Obj::new();
            o.raw(
                "pairs",
                &json::array(pairs.iter().map(|p| pair_body(schema, p))),
            );
            o.finish()
        };
        let rsp = roundtrip(addr, &post("/match/batch", &body));
        assert!(rsp.starts_with("HTTP/1.1 200"), "{rsp}");
        let v = json::parse(body_of(&rsp)).unwrap();
        assert_eq!(
            v.get("batch").and_then(Json::as_u64),
            Some(pairs.len() as u64)
        );
        let results = match v.get("results") {
            Some(Json::Arr(items)) => items.clone(),
            other => panic!("missing results array: {other:?}"),
        };
        for (i, item) in results.iter().enumerate() {
            let p = item.get("p_match").and_then(Json::as_f64).unwrap();
            assert_eq!(
                (p as f32).to_bits(),
                offline[i].to_bits(),
                "batch result {i} at {threads} threads"
            );
        }
        par::reset_threads();
        assert!(handle.shutdown());
    }
}

// ----------------------------------------------------------------- drain

/// Graceful shutdown: every request accepted before the drain gets a
/// real answer; none are dropped on the floor.
#[test]
fn drain_answers_every_accepted_request() {
    let _g = guard();
    let (handle, addr) = start_server();
    let host = fixture();
    let pairs = host.dataset().split(Split::Test);
    let schema = host.schema();
    let offline = host.match_proba(pairs);
    let n_clients = 6usize;
    let answered: Vec<(usize, u32)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..n_clients)
            .map(|c| {
                s.spawn(move || {
                    let idx = c % pairs.len();
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream
                        .write_all(&post("/match", &pair_body(schema, &pairs[idx])))
                        .expect("write");
                    let rsp = read_one_response(&mut stream);
                    assert!(rsp.starts_with("HTTP/1.1 200"), "client {c}: {rsp}");
                    let p = json::parse(body_of(&rsp))
                        .unwrap()
                        .get("p_match")
                        .and_then(Json::as_f64)
                        .unwrap();
                    (idx, (p as f32).to_bits())
                })
            })
            .collect();
        // let the clients get their requests in flight, then drain while
        // they are still waiting on answers
        std::thread::sleep(Duration::from_millis(30));
        assert!(handle.shutdown(), "drain timed out");
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    assert_eq!(answered.len(), n_clients);
    for (idx, bits) in answered {
        assert_eq!(bits, offline[idx].to_bits(), "pair {idx}");
    }
}

// ----------------------------------------------------------------- chaos

/// A worker panic mid-batch turns into typed `500 worker_panic`
/// responses for that batch — never a hang — and the supervisor's
/// restart makes the very next request succeed with correct bits.
#[test]
fn worker_panic_gives_typed_500_and_next_request_succeeds() {
    let _g = guard();
    automl::fault::silence_injected_panic_output();
    let (handle, addr) = start_server_with(ServeConfig {
        faults: automl::fault::ServeFaultPlan::none().panic_batcher_at(0),
        ..test_config()
    });
    let host = fixture();
    let pairs = host.dataset().split(Split::Test);
    let offline = host.match_proba(&pairs[..2]);
    // request 1 rides microbatch 0, which is rigged to panic
    let rsp = roundtrip(addr, &post("/match", &pair_body(host.schema(), &pairs[0])));
    assert!(rsp.starts_with("HTTP/1.1 500"), "{rsp}");
    assert_eq!(error_code_of(&rsp).as_deref(), Some("worker_panic"));
    // request 2 lands after the supervised restart and must be correct
    let rsp = roundtrip(addr, &post("/match", &pair_body(host.schema(), &pairs[1])));
    assert!(rsp.starts_with("HTTP/1.1 200"), "{rsp}");
    let p = json::parse(body_of(&rsp))
        .unwrap()
        .get("p_match")
        .and_then(Json::as_f64)
        .unwrap();
    assert_eq!((p as f32).to_bits(), offline[1].to_bits());
    assert_eq!(header_of(&rsp, "x-model-version").as_deref(), Some("1"));
    assert!(handle.shutdown());
}

/// An injected predict error is typed (`500 predict_error`) and the
/// worker survives it without a restart.
#[test]
fn predict_error_is_typed_and_service_continues() {
    let _g = guard();
    let (handle, addr) = start_server_with(ServeConfig {
        faults: automl::fault::ServeFaultPlan::none().err_predict_at(0),
        ..test_config()
    });
    let host = fixture();
    let pairs = host.dataset().split(Split::Test);
    let rsp = roundtrip(addr, &post("/match", &pair_body(host.schema(), &pairs[0])));
    assert!(rsp.starts_with("HTTP/1.1 500"), "{rsp}");
    assert_eq!(error_code_of(&rsp).as_deref(), Some("predict_error"));
    let rsp = roundtrip(addr, &post("/match", &pair_body(host.schema(), &pairs[1])));
    assert!(rsp.starts_with("HTTP/1.1 200"), "{rsp}");
    assert!(handle.shutdown());
}

/// Repeated worker panics trip the circuit breaker: requests are shed
/// with `503 breaker_open` + `Retry-After`, and after the cooldown the
/// breaker half-opens and a successful batch closes it again.
#[test]
fn breaker_trips_open_and_half_opens_on_schedule() {
    let _g = guard();
    automl::fault::silence_injected_panic_output();
    let (handle, addr) = start_server_with(ServeConfig {
        faults: automl::fault::ServeFaultPlan::none()
            .panic_batcher_at(0)
            .panic_batcher_at(1),
        restart_max: 2,
        restart_window_ms: 60_000,
        breaker_cooldown_ms: 300,
        backoff_base_ms: 1,
        backoff_cap_ms: 5,
        ..test_config()
    });
    let host = fixture();
    let pairs = host.dataset().split(Split::Test);
    let schema = host.schema();
    // two panicking batches → two supervisor restarts → breaker trips
    for (i, pair) in pairs.iter().enumerate().take(2) {
        let rsp = roundtrip(addr, &post("/match", &pair_body(schema, pair)));
        assert!(rsp.starts_with("HTTP/1.1 500"), "request {i}: {rsp}");
    }
    // the supervisor records failures asynchronously: poll until shed
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let retry_after: u64 = loop {
        let rsp = roundtrip(addr, &post("/match", &pair_body(schema, &pairs[2])));
        if rsp.starts_with("HTTP/1.1 503") {
            assert_eq!(error_code_of(&rsp).as_deref(), Some("breaker_open"));
            let ra = header_of(&rsp, "retry-after")
                .expect("503 must carry retry-after")
                .parse()
                .expect("retry-after is integer seconds");
            break ra;
        }
        assert!(rsp.starts_with("HTTP/1.1 200"), "{rsp}");
        assert!(
            std::time::Instant::now() < deadline,
            "breaker never tripped"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(retry_after >= 1, "retry-after must round up to ≥ 1s");
    // wait out the cooldown: the half-open trial must be admitted, and
    // its success closes the breaker for good
    std::thread::sleep(Duration::from_millis(400));
    for i in [3usize, 4] {
        let rsp = roundtrip(addr, &post("/match", &pair_body(schema, &pairs[i])));
        assert!(rsp.starts_with("HTTP/1.1 200"), "post-cooldown {i}: {rsp}");
    }
    assert!(handle.shutdown());
}

/// Model hot-swap under live fire: clients hammer `/match` while
/// `/admin/reload` swaps in a different model. Every response must be
/// a 200 whose bits match the model version named in its
/// `x-model-version` header — zero drops, zero cross-version mixing —
/// at 1 and at 4 `par` threads.
#[test]
fn hot_swap_under_load_drops_and_mismatches_nothing() {
    let _g = guard();
    let host_a = fixture();
    let pairs = &host_a.dataset().split(Split::Test)[..4];
    let schema = host_a.schema();
    let offline_a: Vec<u32> = host_a
        .match_proba(pairs)
        .iter()
        .map(|p| p.to_bits())
        .collect();
    // model B: same recipe, different engine seed → same schema, an
    // honestly different search outcome to swap in
    let host_b = ModelSpec {
        scale: 0.3,
        budget_hours: 0.1,
        engine_seed: 2,
        ..ModelSpec::fixture()
    }
    .train()
    .expect("model B training failed");
    let offline_b: Vec<u32> = host_b
        .match_proba(pairs)
        .iter()
        .map(|p| p.to_bits())
        .collect();
    let dir = std::env::temp_dir().join("em_serve_swap_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let bundle = dir.join("model_b.json");
    host_b.export(&bundle).expect("export model B");
    for threads in [1usize, 4] {
        par::set_threads(threads);
        let (handle, addr) = start_server();
        let stop = std::sync::atomic::AtomicBool::new(false);
        let mismatches: usize = std::thread::scope(|s| {
            let clients: Vec<_> = (0..3)
                .map(|c: usize| {
                    let stop = &stop;
                    let offline_a = &offline_a;
                    let offline_b = &offline_b;
                    s.spawn(move || {
                        let mut bad = 0usize;
                        let mut stream = TcpStream::connect(addr).unwrap();
                        let mut i = c;
                        while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                            let idx = i % pairs.len();
                            i += 1;
                            stream
                                .write_all(&post("/match", &pair_body(schema, &pairs[idx])))
                                .unwrap();
                            let rsp = read_one_response(&mut stream);
                            if !rsp.starts_with("HTTP/1.1 200") {
                                bad += 1;
                                continue;
                            }
                            let version = header_of(&rsp, "x-model-version")
                                .and_then(|v| v.parse::<u64>().ok())
                                .unwrap_or(0);
                            let bits = json::parse(body_of(&rsp))
                                .unwrap()
                                .get("p_match")
                                .and_then(Json::as_f64)
                                .map(|p| (p as f32).to_bits());
                            let want = match version {
                                1 => Some(offline_a[idx]),
                                2 => Some(offline_b[idx]),
                                _ => None,
                            };
                            if bits != want {
                                bad += 1;
                            }
                        }
                        bad
                    })
                })
                .collect();
            // let the clients build up steam, then swap mid-flight
            std::thread::sleep(Duration::from_millis(50));
            let body = format!("{{\"path\":\"{}\"}}", bundle.display());
            let rsp = roundtrip(addr, &post("/admin/reload", &body));
            assert!(rsp.starts_with("HTTP/1.1 200"), "reload: {rsp}");
            let v = json::parse(body_of(&rsp)).unwrap();
            assert_eq!(v.get("version").and_then(Json::as_u64), Some(2));
            assert_eq!(v.get("previous_version").and_then(Json::as_u64), Some(1));
            std::thread::sleep(Duration::from_millis(50));
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            clients.into_iter().map(|c| c.join().unwrap()).sum()
        });
        assert_eq!(
            mismatches, 0,
            "dropped or cross-version responses at {threads} threads"
        );
        // post-swap, every answer comes from model B as version 2
        let rsp = roundtrip(addr, &post("/match", &pair_body(schema, &pairs[0])));
        assert!(rsp.starts_with("HTTP/1.1 200"), "{rsp}");
        assert_eq!(header_of(&rsp, "x-model-version").as_deref(), Some("2"));
        let p = json::parse(body_of(&rsp))
            .unwrap()
            .get("p_match")
            .and_then(Json::as_f64)
            .unwrap();
        assert_eq!((p as f32).to_bits(), offline_b[0]);
        assert_eq!(handle.model_version(), 2);
        par::reset_threads();
        assert!(handle.shutdown());
    }
}

/// Reload failure modes: malformed body → 400, missing bundle → 500
/// `reload_failed` with the old model untouched, wrong method → 405.
#[test]
fn reload_failures_are_typed_and_leave_old_model_serving() {
    let _g = guard();
    let (handle, addr) = start_server();
    let host = fixture();
    let pairs = host.dataset().split(Split::Test);
    let rsp = roundtrip(addr, &post("/admin/reload", "{\"nope\":1}"));
    assert!(rsp.starts_with("HTTP/1.1 400"), "{rsp}");
    let rsp = roundtrip(
        addr,
        &post("/admin/reload", "{\"path\":\"/no/such/bundle.json\"}"),
    );
    assert!(rsp.starts_with("HTTP/1.1 500"), "{rsp}");
    assert_eq!(error_code_of(&rsp).as_deref(), Some("reload_failed"));
    let rsp = roundtrip(
        addr,
        b"GET /admin/reload HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert!(rsp.starts_with("HTTP/1.1 405"), "{rsp}");
    // old model still serving as version 1
    let rsp = roundtrip(addr, &post("/match", &pair_body(host.schema(), &pairs[0])));
    assert!(rsp.starts_with("HTTP/1.1 200"), "{rsp}");
    assert_eq!(header_of(&rsp, "x-model-version").as_deref(), Some("1"));
    assert_eq!(handle.model_version(), 1);
    assert!(handle.shutdown());
}

/// After the gate closes, *new* connections are refused with a typed
/// `503 draining` rather than a silent hang-up.
#[test]
fn new_connections_during_drain_get_503() {
    let _g = guard();
    let (handle, addr) = start_server();
    // hold one idle connection so the drain has something to wait for
    let _idle = TcpStream::connect(addr).unwrap();
    let shutdown = std::thread::spawn(move || handle.shutdown());
    std::thread::sleep(Duration::from_millis(30));
    // the accept thread is gone or the gate is closed: either the
    // connect is refused outright or the server answers 503 draining
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let mut buf = Vec::new();
        let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
        let _ = stream.read_to_end(&mut buf);
        let rsp = String::from_utf8_lossy(&buf);
        assert!(
            rsp.is_empty() || rsp.starts_with("HTTP/1.1 503"),
            "expected close or 503, got: {rsp}"
        );
    }
    assert!(shutdown.join().unwrap());
}
