//! Property-style tests over cross-crate invariants: CSV round-trips with
//! arbitrary content, tokenizer/adapter totality on arbitrary record pairs,
//! metric laws, RNG/statistics laws, and search-space construction.
//!
//! Std-only stand-in for a proptest suite (crates.io is unreachable from
//! the build environment): each test loops over many deterministic seeds
//! and generates its inputs with [`linalg::Rng`], so the input diversity is
//! comparable while failures reproduce exactly from the printed seed.

use em_core::tokenizer::{tokenize_pair, TokenizerMode};
use em_data::csv::{read_csv, write_csv};
use em_data::{AttrType, Attribute, DatasetKind, EmDataset, Entity, RecordPair, Schema};
use linalg::Rng;
use ml::metrics::{best_f1_threshold, f1_at_threshold, roc_auc, Confusion};
use std::io::BufReader;

/// Arbitrary cell value: possibly missing, possibly nasty (commas, quotes,
/// unicode, numerics).
fn cell(rng: &mut Rng) -> Option<String> {
    match rng.below(10) {
        0 | 1 => None,
        2..=6 => {
            const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789 ";
            let len = 1 + rng.below(20);
            Some(
                (0..len)
                    .map(|_| ALPHA[rng.below(ALPHA.len())] as char)
                    .collect(),
            )
        }
        7 | 8 => {
            const NASTY: [&str; 8] = [
                ",",
                "\"",
                "a,b",
                "\"quoted\"",
                "αβγ δε",
                "x\"y,z",
                "tab\there",
                "ünïcode",
            ];
            Some(NASTY[rng.below(NASTY.len())].to_owned())
        }
        _ => Some(format!("{:.2}", rng.uniform(-1000.0, 1000.0))),
    }
}

/// A raw labelled pair: left cells, right cells, match flag.
type RawPair = (Vec<Option<String>>, Vec<Option<String>>, bool);

fn random_pairs(rng: &mut Rng, width: usize, max_n: usize) -> Vec<RawPair> {
    let n = 1 + rng.below(max_n);
    (0..n)
        .map(|_| {
            (
                (0..width).map(|_| cell(rng)).collect(),
                (0..width).map(|_| cell(rng)).collect(),
                rng.chance(0.5),
            )
        })
        .collect()
}

fn build_dataset(raw: Vec<RawPair>, width: usize) -> EmDataset {
    let attrs: Vec<Attribute> = (0..width)
        .map(|i| Attribute::new(&format!("a{i}"), AttrType::Text))
        .collect();
    let schema = Schema::new(attrs);
    let pairs: Vec<RecordPair> = raw
        .into_iter()
        .map(|(l, r, y)| RecordPair::new(Entity::new(l), Entity::new(r), y))
        .collect();
    let mut rng = Rng::new(1);
    EmDataset::with_split("prop", DatasetKind::Structured, schema, pairs, &mut rng)
}

#[test]
fn csv_roundtrip_preserves_labels_and_count() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let d = build_dataset(random_pairs(&mut rng, 3, 24), 3);
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let loaded = read_csv("p", DatasetKind::Structured, BufReader::new(&buf[..]), 2).unwrap();
        assert_eq!(loaded.len(), d.len(), "seed {seed}");
        assert!(
            (loaded.match_ratio() - d.match_ratio()).abs() < 1e-12,
            "seed {seed}"
        );
        // every non-empty original value survives somewhere (labels sorted
        // differently because of the fresh split, so compare multisets of
        // flattened rows)
        let flat = |d: &EmDataset| {
            let mut v: Vec<String> = d
                .pairs()
                .iter()
                .map(|p| format!("{}|{}|{}", p.label, p.left.flatten(), p.right.flatten()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(flat(&d), flat(&loaded), "seed {seed}");
    }
}

#[test]
fn tokenizer_total_and_counts_correct() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(seed);
        let d = build_dataset(random_pairs(&mut rng, 4, 6), 4);
        let mode = [
            TokenizerMode::Unstructured,
            TokenizerMode::AttributeBased,
            TokenizerMode::Hybrid,
        ][rng.below(3)];
        for pair in d.pairs() {
            let seqs = tokenize_pair(pair, d.schema(), mode);
            assert_eq!(
                seqs.len(),
                mode.n_sequences(d.schema().len()),
                "seed {seed} mode {mode:?}"
            );
        }
    }
}

#[test]
fn split_partition_invariants() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let d = build_dataset(random_pairs(&mut rng, 2, 60), 2);
        let (tr, va, te) = (
            d.split(em_data::Split::Train).len(),
            d.split(em_data::Split::Validation).len(),
            d.split(em_data::Split::Test).len(),
        );
        assert_eq!(tr + va + te, d.len(), "seed {seed}");
        // 60/20/20 within integer rounding
        assert!(tr >= d.len() * 60 / 100, "seed {seed}");
        assert!(tr <= d.len() * 60 / 100 + 1, "seed {seed}");
    }
}

#[test]
fn f1_bounds_and_threshold_optimality() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let n = 4 + rng.below(76);
        let probs: Vec<f32> = (0..n).map(|_| rng.f32()).collect();
        let labels: Vec<bool> = probs.iter().map(|_| rng.chance(0.3)).collect();
        let (thr, best) = best_f1_threshold(&probs, &labels);
        assert!((0.0..=100.0).contains(&best), "seed {seed}");
        // the tuned threshold is at least as good as the default
        let at_half = f1_at_threshold(&probs, &labels, 0.5);
        assert!(best >= at_half - 1e-9, "seed {seed}");
        assert!((0.0..=1.0).contains(&thr), "seed {seed}");
    }
}

#[test]
fn confusion_counts_always_partition() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let n = 1 + rng.below(99);
        let pred: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
        let act: Vec<bool> = (0..n).map(|_| rng.chance(0.2)).collect();
        let c = Confusion::from_predictions(&pred, &act);
        assert_eq!(c.tp + c.fp + c.tn + c.fn_, n, "seed {seed}");
        assert!(c.precision() >= 0.0 && c.precision() <= 1.0, "seed {seed}");
        assert!(c.recall() >= 0.0 && c.recall() <= 1.0, "seed {seed}");
    }
}

#[test]
fn auc_is_flip_symmetric() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let n = 6 + rng.below(54);
        let probs: Vec<f32> = (0..n).map(|_| rng.f32()).collect();
        let labels: Vec<bool> = probs.iter().map(|_| rng.chance(0.4)).collect();
        let auc = roc_auc(&probs, &labels);
        let flipped: Vec<f32> = probs.iter().map(|p| 1.0 - p).collect();
        let auc_flipped = roc_auc(&flipped, &labels);
        assert!(
            (auc + auc_flipped - 1.0).abs() < 1e-9
                // degenerate single-class case returns 0.5 for both
                || (auc == 0.5 && auc_flipped == 0.5),
            "seed {seed}: {auc} vs {auc_flipped}"
        );
    }
}

#[test]
fn rng_below_always_in_range() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed.wrapping_mul(0x9E37_79B9));
        let n = 1 + Rng::new(seed).below(999);
        for _ in 0..50 {
            assert!(rng.below(n) < n, "seed {seed}");
        }
    }
}

#[test]
fn candidate_encoding_stays_in_cube() {
    for seed in 0..64u64 {
        let families = automl::space::sklearn_families();
        let mut rng = Rng::new(seed);
        let c = automl::space::Candidate::sample(&families, &mut rng);
        let enc = c.encode(&families);
        assert!(enc.iter().all(|&v| (0.0..=1.0).contains(&v)), "seed {seed}");
        let p = c.perturb(0.3, &mut rng);
        assert!(
            p.params.iter().all(|&v| (0.0..=1.0).contains(&v)),
            "seed {seed}"
        );
    }
}
