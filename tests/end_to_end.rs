//! Cross-crate integration tests: the full paper pipeline, end to end, on
//! small dataset slices. These exercise em-data → embed → em-core → automl
//! together (and deepmatcher for the baseline), checking the *relationships*
//! the paper's tables are built on rather than point values.

use automl::Budget;
use bench::experiments::{adapter_run, make_system, SYSTEM_NAMES};
use deepmatcher::{train_deepmatcher, TrainConfig};
use em_core::{run_pipeline, run_raw, Combiner, EmAdapter, PipelineConfig, TokenizerMode};
use em_data::{MagellanDataset, Split};
use embed::families::{EmbedderFamily, PretrainConfig, PretrainedTransformer};

fn quick_embedder(seed: u64) -> PretrainedTransformer {
    let dataset = MagellanDataset::SFZ.profile().generate(seed);
    let domain_text: Vec<String> = dataset
        .pairs()
        .iter()
        .take(120)
        .flat_map(|p| [p.left.flatten(), p.right.flatten()])
        .collect();
    PretrainedTransformer::pretrain(
        EmbedderFamily::Albert,
        &domain_text,
        PretrainConfig {
            corpus_sentences: 900,
            steps: 350,
            seed,
            ..PretrainConfig::default()
        },
    )
}

#[test]
fn adapter_pipeline_beats_raw_automl_on_easy_dataset() {
    // the paper's central claim (Table 4): the EM adapter lifts AutoML F1
    let dataset = MagellanDataset::SFZ.profile().generate(3);
    let embedder = quick_embedder(3);
    let adapter = EmAdapter::new(TokenizerMode::Hybrid, &embedder, Combiner::Average);
    let cfg = PipelineConfig {
        budget_hours: 1.0,
        ..PipelineConfig::default()
    };
    let mut sys_a = make_system(0, 3);
    let adapted = run_pipeline(sys_a.as_mut(), &adapter, &dataset, cfg).unwrap();
    let mut sys_r = make_system(0, 3);
    let raw = run_raw(sys_r.as_mut(), &dataset, cfg).unwrap();
    assert!(
        adapted.test_f1 > raw.test_f1 + 10.0,
        "adapter must clearly lift raw AutoML: adapted {:.1} vs raw {:.1}",
        adapted.test_f1,
        raw.test_f1
    );
    assert!(
        adapted.test_f1 > 60.0,
        "S-FZ is the saturated dataset; adapted F1 {:.1}",
        adapted.test_f1
    );
}

#[test]
fn all_three_systems_run_under_budget_and_predict() {
    let dataset = MagellanDataset::SBR.profile().generate(5);
    let embedder = quick_embedder(5);
    let adapter = EmAdapter::new(TokenizerMode::Hybrid, &embedder, Combiner::Average);
    let train = adapter.encode_split(&dataset, Split::Train);
    let valid = adapter.encode_split(&dataset, Split::Validation);
    let test = adapter.encode_split(&dataset, Split::Test);
    for (idx, name) in SYSTEM_NAMES.iter().enumerate() {
        let mut sys = make_system(idx, 5);
        let mut budget = Budget::hours(0.5).unwrap();
        let report = sys.fit(&train, &valid, &mut budget).unwrap();
        assert!(
            budget.used() <= budget.used() + budget.remaining() + 1e-9,
            "{name}: accounting"
        );
        assert!(
            !report.leaderboard.is_empty(),
            "{name}: no models evaluated"
        );
        assert!((0.0..=1.0).contains(&sys.threshold()), "{name}: threshold");
        let probs = sys.predict_proba(&test.x);
        assert_eq!(probs.len(), test.len(), "{name}");
        assert!(
            probs
                .iter()
                .all(|p| p.is_finite() && (0.0..=1.0).contains(p)),
            "{name}: probabilities out of range"
        );
    }
}

#[test]
fn hybrid_tokenizer_is_more_dirt_robust_than_attribute() {
    // Table 4's dirty-dataset story, checked as a relationship
    let embedder = quick_embedder(7);
    let dirty = MagellanDataset::DIA.profile().generate(7);
    let attr = adapter_run(
        &dirty,
        &embedder,
        TokenizerMode::AttributeBased,
        Combiner::Average,
        0,
        0.7,
        7,
    );
    let hybrid = adapter_run(
        &dirty,
        &embedder,
        TokenizerMode::Hybrid,
        Combiner::Average,
        0,
        0.7,
        7,
    );
    assert!(
        hybrid.test_f1 >= attr.test_f1 - 5.0,
        "hybrid should not lose badly to attr on dirty data: {:.1} vs {:.1}",
        hybrid.test_f1,
        attr.test_f1
    );
}

#[test]
fn deepmatcher_trains_and_is_competitive_on_easy_data() {
    let dataset = MagellanDataset::SFZ.profile().generate(9);
    let dm = train_deepmatcher(
        &dataset,
        TrainConfig {
            seed: 9,
            ..TrainConfig::default()
        },
    );
    let f1 = dm.f1_on(dataset.split(Split::Test));
    // well above the all-positive baseline (~21 F1 at 11.6% matches);
    // absolute levels at reproduction scale are seed-sensitive
    assert!(f1 > 45.0, "DeepMatcher on S-FZ: {f1:.1}");
}

#[test]
fn pipeline_results_are_reproducible() {
    let dataset = MagellanDataset::SBR.profile().generate(11);
    let embedder = quick_embedder(11);
    let run = || {
        let adapter = EmAdapter::new(TokenizerMode::Hybrid, &embedder, Combiner::Average);
        let mut sys = make_system(2, 11);
        run_pipeline(
            &mut *sys,
            &adapter,
            &dataset,
            PipelineConfig {
                budget_hours: 0.4,
                ..PipelineConfig::default()
            },
        )
        .unwrap()
        .test_f1
    };
    assert_eq!(run(), run());
}

#[test]
fn six_hour_budget_never_loses_to_one_hour_by_much() {
    // Table 5's budget relationship: more budget ⇒ same or better (small
    // tolerance for search randomness)
    let dataset = MagellanDataset::SBR.profile().generate(13);
    let embedder = quick_embedder(13);
    let one = adapter_run(
        &dataset,
        &embedder,
        TokenizerMode::Hybrid,
        Combiner::Average,
        0,
        1.0,
        13,
    );
    let six = adapter_run(
        &dataset,
        &embedder,
        TokenizerMode::Hybrid,
        Combiner::Average,
        0,
        6.0,
        13,
    );
    assert!(
        six.test_f1 >= one.test_f1 - 8.0,
        "6h {:.1} vs 1h {:.1}",
        six.test_f1,
        one.test_f1
    );
    assert!(six.hours_used >= one.hours_used - 1e-9);
}

#[test]
fn embedder_families_all_feed_the_pipeline() {
    let dataset = MagellanDataset::SBR.profile().generate(15);
    for family in EmbedderFamily::ALL {
        let embedder = PretrainedTransformer::pretrain(
            family,
            &[],
            PretrainConfig {
                corpus_sentences: 300,
                steps: 40,
                seed: 15,
                ..PretrainConfig::default()
            },
        );
        let r = adapter_run(
            &dataset,
            &embedder,
            TokenizerMode::AttributeBased,
            Combiner::Average,
            0,
            0.3,
            15,
        );
        assert!(
            r.test_f1.is_finite() && (0.0..=100.0).contains(&r.test_f1),
            "{family:?}: {r:?}"
        );
    }
}
