//! Observability contract: tracing and cost attribution are write-only.
//!
//! Turning the trace collector on must never change results — the
//! [`FitReport`] and prediction vector stay byte-identical with tracing
//! on and off, at 1 and 4 worker threads. The exported Chrome trace must
//! be well-formed (parseable JSON, per-thread timestamps monotone,
//! begin/end balanced) and replay-stable (re-exporting yields identical
//! bytes). Finally the `obs_report` phase-share gate must stay quiet on
//! identical runs and fire when a run is slowed by an injected
//! [`Fault::Hang`].
//!
//! The trace flag, ledger and par pool are process-global, so every test
//! serializes on one lock (this binary is its own process).

use automl::fault::{Fault, FaultPlan};
use automl::sklearn_like::AutoSklearnStyle;
use automl::{AutoMlSystem, Budget, Deadline, FitReport, ResumePolicy};
use bench::obsreport::{diff_runs, load_run, RunData};
use linalg::{Matrix, Rng};
use ml::dataset::TabularData;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Serializes tests that flip global obs / par state.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn blob_data(n: usize, seed: u64) -> TabularData {
    let mut rng = Rng::new(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let pos = rng.chance(0.3);
        let c = if pos { 1.2f32 } else { -1.2 };
        rows.push(vec![c + rng.normal(), -c + rng.normal(), rng.normal()]);
        y.push(if pos { 1.0 } else { 0.0 });
    }
    TabularData::new(Matrix::from_rows(&rows), y)
}

/// One fixed-seed fit at a fixed thread count and trace setting.
fn fit_traced(threads: usize, trace: bool) -> (FitReport, Vec<f32>) {
    obs::reset();
    obs::trace::set_enabled(trace);
    par::set_threads(threads);
    let train = blob_data(240, 21);
    let valid = blob_data(80, 22);
    let mut sys = AutoSklearnStyle::new(9);
    let mut budget = Budget::hours(0.4).unwrap();
    let report = sys.fit(&train, &valid, &mut budget).unwrap();
    let probs = sys.predict_proba(&valid.x);
    par::reset_threads();
    obs::trace::set_enabled(false);
    (report, probs)
}

#[test]
fn fit_report_is_byte_identical_with_tracing_on_and_off() {
    let _g = guard();
    for threads in [1, 4] {
        let (r_off, p_off) = fit_traced(threads, false);
        let (r_on, p_on) = fit_traced(threads, true);
        assert_eq!(
            r_off, r_on,
            "FitReport changed when tracing was enabled ({threads} threads)"
        );
        assert_eq!(
            p_off, p_on,
            "predictions changed when tracing was enabled ({threads} threads)"
        );
    }
}

#[test]
fn trace_export_is_well_formed_and_replay_stable() {
    let _g = guard();
    let (_, _) = fit_traced(4, true); // leaves a real multi-thread trace behind
    let json_a = obs::trace::to_chrome_json();
    let json_b = obs::trace::to_chrome_json();
    assert_eq!(json_a, json_b, "re-export must be byte-identical");

    let root = obs::json::parse(&json_a).expect("trace JSON must parse");
    let events = match root.get("traceEvents") {
        Some(obs::json::Json::Arr(items)) => items.clone(),
        other => panic!("traceEvents array missing: {other:?}"),
    };
    assert!(!events.is_empty(), "traced fit recorded no events");

    // per-thread: timestamps are non-decreasing and begin/end balance
    use std::collections::BTreeMap;
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    let mut depth: BTreeMap<u64, i64> = BTreeMap::new();
    for ev in &events {
        let tid = ev.get("tid").and_then(|j| j.as_u64()).expect("tid");
        let ts = ev.get("ts").and_then(|j| j.as_f64()).expect("ts");
        let ph = ev.get("ph").and_then(|j| j.as_str()).expect("ph");
        if let Some(prev) = last_ts.get(&tid) {
            assert!(ts >= *prev, "tid {tid}: ts went backwards ({prev} -> {ts})");
        }
        last_ts.insert(tid, ts);
        let d = depth.entry(tid).or_insert(0);
        match ph {
            "B" => *d += 1,
            "E" => {
                *d -= 1;
                assert!(*d >= 0, "tid {tid}: end without begin");
            }
            "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (tid, d) in depth {
        assert_eq!(d, 0, "tid {tid}: {d} unbalanced begin event(s)");
    }

    // the folded export replays the same buffers without panicking and
    // attributes every stack to a known root
    let folded = obs::trace::to_folded();
    for line in folded.lines() {
        let (stack, us) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!stack.is_empty());
        assert!(us.parse::<u64>().is_ok(), "bad self-time {us:?}");
    }
}

/// Fit once (optionally slowed by a hang fault) and leave a manifest in
/// a fresh run directory, as a table binary's `--out` would.
fn run_into_dir(dir: &std::path::Path, hang: bool) {
    obs::reset();
    let _ = std::fs::remove_dir_all(dir);
    let train = blob_data(240, 31);
    let valid = blob_data(80, 32);
    let plan = if hang {
        FaultPlan::none().inject(1, Fault::Hang)
    } else {
        FaultPlan::none()
    };
    let mut sys = AutoSklearnStyle::with_faults(9, plan);
    let mut budget = Budget::hours(0.4).unwrap();
    // the deadline is what ends the hung trial: the fault spins until the
    // cancellation token fires, booking ~1.5s of pure `trial` time
    let deadline = Deadline::within(Duration::from_millis(1500));
    let _ = sys
        .fit_resumable(&train, &valid, &mut budget, &ResumePolicy::Fresh, deadline)
        .unwrap();
    obs::Manifest::new("obsgate")
        .write_to(dir.to_str().unwrap())
        .unwrap();
}

#[test]
fn hang_fault_trips_the_phase_share_gate() {
    let _g = guard();
    let base_dir = std::env::temp_dir().join("obs_gate_base");
    let hung_dir = std::env::temp_dir().join("obs_gate_hung");
    run_into_dir(&base_dir, false);
    run_into_dir(&hung_dir, true);

    let base = load_run(&base_dir).unwrap();
    let hung = load_run(&hung_dir).unwrap();
    assert!(
        base.ledger.iter().any(|r| r.phase == "trial"),
        "baseline ledger has no trial phase: {:?}",
        base.ledger
    );

    // a run diffed against itself is clean …
    assert!(diff_runs(&base, &base, 25.0).is_empty());
    // … while the hung run's `trial` share balloons past the band
    let regs = diff_runs(&base, &hung, 25.0);
    assert!(
        regs.iter().any(|r| r.phase == "trial"),
        "hang did not trip the trial-phase gate: {regs:?}"
    );

    let _ = std::fs::remove_dir_all(&base_dir);
    let _ = std::fs::remove_dir_all(&hung_dir);
}

#[test]
fn ledger_survives_the_manifest_roundtrip() {
    let _g = guard();
    obs::reset();
    {
        let _s = obs::ledger::scope("t.obsint.engine");
        let _t = obs::ledger::phase("gemm");
        std::thread::sleep(Duration::from_millis(2));
    }
    let dir = std::env::temp_dir().join("obs_roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    obs::Manifest::new("roundtrip")
        .write_to(dir.to_str().unwrap())
        .unwrap();
    let data: RunData = load_run(&dir).unwrap();
    let row = data
        .ledger
        .iter()
        .find(|r| r.scope == "t.obsint.engine" && r.phase == "gemm")
        .expect("booked phase missing from reloaded manifest");
    assert!(row.ns >= 1_000_000, "2ms sleep booked only {}ns", row.ns);
    assert_eq!(row.count, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
