//! Continuous-EM battery: the streaming layer's equivalence, staleness,
//! crash-safety and promotion contracts.
//!
//! * Incremental blocking tracks a from-scratch rebuild — same candidate
//!   set, same order — across random insert/update/delete interleavings.
//! * An updated record can never serve a stale embedding vector, at 1
//!   and at 4 reader threads, and every invalidation is accounted.
//! * A cold start replaying the record ledger reconstructs bit-identical
//!   derived state (digest equality), survives torn tails, and refuses a
//!   ledger written for another schema.
//! * A background re-search killed mid-flight (`Fault::Kill`) resumes
//!   from its trial journal to a byte-identical bundle and `FitReport`.
//! * End to end: a drifting stream trips the drift monitor, a
//!   deadline-bounded background re-search runs off the serving thread,
//!   and the winning bundle is promoted through em-serve's hot-swap
//!   while clients hammer `/match` — zero drops, zero cross-version
//!   mixing, monotonically advancing `x-model-version`.

use em_core::model::{load_model, ModelHost, ModelSpec};
use em_data::{token_blocking, BlockerConfig, RecordPair, Schema, Side, Split};
use em_serve::{serve, ServeConfig};
use em_stream::{
    generate_events, record_key, ContinuousConfig, ContinuousEm, DriftConfig, LedgerError,
    RecordEvent, RecordLedger, ScenarioConfig, StreamState,
};
use embed::cache::EmbeddingCache;
use embed::HashingEmbedder;
use obs::json::{self, Json};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Per-client observation log: (bad-response count, then for every good
/// response its request index, `x-model-version`, and score bits).
type ClientObs = Vec<(usize, Vec<(usize, u64, u32)>)>;

/// Serializes tests that touch process-global state (the fault env var,
/// the `par` thread override, the obs registry).
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn restaurant_domain() -> Box<dyn em_data::generators::Domain> {
    ModelSpec::fixture().dataset.profile().domain()
}

fn tmp_dir(tag: &str) -> PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("em_streaming_{}_{}_{tag}", std::process::id(), n));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ----------------------------------------------------- blocking equivalence

/// Rebuild the candidate set from scratch with the batch blocker and map
/// its row indices back to record ids through the live id order.
fn batch_id_pairs(state: &StreamState) -> Vec<(u64, u64)> {
    let left_ids = state.blocker().ids(Side::Left);
    let right_ids = state.blocker().ids(Side::Right);
    let left: Vec<_> = left_ids
        .iter()
        .map(|id| state.entity(Side::Left, *id).unwrap().clone())
        .collect();
    let right: Vec<_> = right_ids
        .iter()
        .map(|id| state.entity(Side::Right, *id).unwrap().clone())
        .collect();
    let result = token_blocking(&left, &right, state.schema(), state.blocker().config());
    let mut pairs: Vec<(u64, u64)> = result
        .candidates
        .iter()
        .map(|c| (left_ids[c.left], right_ids[c.right]))
        .collect();
    pairs.sort_unstable();
    pairs
}

/// Satellite 1: random interleavings of insert/update/delete leave the
/// incremental index identical — same candidate-pair set *and order* —
/// to a from-scratch rebuild, checked repeatedly along the stream.
#[test]
fn incremental_blocking_matches_batch_rebuild_across_interleavings() {
    let domain = restaurant_domain();
    for seed in [3u64, 11, 42, 2026] {
        let events = generate_events(
            domain.as_ref(),
            &ScenarioConfig {
                seed,
                initial_pairs: 10,
                events: 90,
                drift_after: 45, // cover both regimes: churn exercises deletes
                ..ScenarioConfig::default()
            },
        );
        let mut state = StreamState::new(domain.schema(), BlockerConfig::default());
        for (step, ev) in events.iter().enumerate() {
            state.apply(ev, None).unwrap();
            if step % 7 == 0 || step + 1 == events.len() {
                let incremental: Vec<(u64, u64)> = state
                    .candidates()
                    .iter()
                    .map(|c| (c.left, c.right))
                    .collect();
                let mut sorted = incremental.clone();
                sorted.sort_unstable();
                assert_eq!(
                    incremental, sorted,
                    "seed {seed} step {step}: candidates not in (left,right) order"
                );
                assert_eq!(
                    incremental,
                    batch_id_pairs(&state),
                    "seed {seed} step {step}: incremental index diverged from rebuild"
                );
            }
        }
    }
}

// ----------------------------------------------------- cache invalidation

/// Satellite 2: after an update (or delete) of a record, the next encode
/// can never return the pre-update vector — at 1 and at 4 reader
/// threads — and the cache accounts every invalidation.
#[test]
fn updated_record_never_serves_a_stale_vector() {
    let domain = restaurant_domain();
    let schema = domain.schema();
    for threads in [1usize, 4] {
        let embedder = HashingEmbedder::new(32);
        let cache = EmbeddingCache::new(&embedder);
        let mut state = StreamState::new(schema.clone(), BlockerConfig::default());
        let mk = |vals: &[&str]| {
            let mut v: Vec<Option<String>> = vals.iter().map(|s| Some((*s).to_owned())).collect();
            v.resize(schema.len(), None);
            em_data::Entity::new(v)
        };
        let old = mk(&["golden dragon", "szechuan", "boston"]);
        let new = mk(&["red lantern", "dim sum", "chicago"]);
        state
            .apply(
                &RecordEvent::Insert {
                    side: Side::Left,
                    id: 1,
                    entity: old.clone(),
                },
                Some(&cache),
            )
            .unwrap();
        // populate the id-keyed cache entry with the pre-update vector
        let stale = state.encode_record(Side::Left, 1, &cache).unwrap();
        assert_eq!(stale, embedder_truth(&embedder, &old));
        let before = cache.invalidations();
        state
            .apply(
                &RecordEvent::Update {
                    side: Side::Left,
                    id: 1,
                    entity: new.clone(),
                },
                Some(&cache),
            )
            .unwrap();
        assert_eq!(
            cache.invalidations(),
            before + 1,
            "{threads}t: the update must be accounted as exactly one invalidation"
        );
        // every concurrent reader sees the post-update vector, never the
        // stale one
        let want = embedder_truth(&embedder, &new);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let state = &state;
                    let cache = &cache;
                    s.spawn(move || state.encode_record(Side::Left, 1, cache).unwrap())
                })
                .collect();
            for h in handles {
                let got = h.join().unwrap();
                assert_ne!(got, stale, "{threads}t: stale vector served after update");
                assert_eq!(got, want, "{threads}t: wrong post-update vector");
            }
        });
        // delete drops the key too: re-inserting under the same id with
        // different text can never resurrect the old vector
        state
            .apply(
                &RecordEvent::Delete {
                    side: Side::Left,
                    id: 1,
                },
                Some(&cache),
            )
            .unwrap();
        assert_eq!(cache.invalidations(), before + 2);
        state
            .apply(
                &RecordEvent::Insert {
                    side: Side::Left,
                    id: 1,
                    entity: old.clone(),
                },
                Some(&cache),
            )
            .unwrap();
        assert_eq!(
            state.encode_record(Side::Left, 1, &cache).unwrap(),
            embedder_truth(&embedder, &old)
        );
    }
}

/// The uncached ground truth for a record's vector.
fn embedder_truth(embedder: &HashingEmbedder, entity: &em_data::Entity) -> Vec<f32> {
    use embed::SequenceEmbedder;
    embedder.embed(&entity.flatten())
}

// ------------------------------------------------------- ledger cold start

/// Tentpole: replay-from-ledger cold start reconstructs bit-identical
/// derived state (digest equality over tables + blocking index), torn
/// tails are truncated and appending resumes, and a ledger written for a
/// different schema is refused.
#[test]
fn cold_start_replay_is_bit_identical_and_crash_safe() {
    let domain = restaurant_domain();
    let schema = domain.schema();
    let dir = tmp_dir("coldstart");
    let path = dir.join("records.jsonl");
    let events = generate_events(
        domain.as_ref(),
        &ScenarioConfig {
            seed: 5,
            initial_pairs: 8,
            events: 60,
            drift_after: 30,
            ..ScenarioConfig::default()
        },
    );

    // live process: apply + append, fsync every 16 events
    let mut ledger = RecordLedger::create(&path, &schema).unwrap();
    let mut live = StreamState::new(schema.clone(), BlockerConfig::default());
    for (i, ev) in events.iter().enumerate() {
        live.apply(ev, None).unwrap();
        ledger.append(ev).unwrap();
        if i % 16 == 15 {
            ledger.sync().unwrap();
        }
    }
    ledger.sync().unwrap();
    drop(ledger);
    let live_digest = live.digest();

    // cold start #1: clean file
    let (_l, replay) = RecordLedger::open(&path, &schema).unwrap();
    assert_eq!(replay.truncated_bytes, 0);
    let mut cold = StreamState::new(schema.clone(), BlockerConfig::default());
    for ev in &replay.events {
        cold.apply(ev, None).unwrap();
    }
    assert_eq!(cold.digest(), live_digest, "cold start diverged from live");
    drop(_l);

    // cold start #2: torn tail (simulated crash mid-append) is truncated
    // back to the last complete event and appending resumes
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"{\"ev\":\"insert\",\"side\":\"left\",\"id\":9999,\"val")
            .unwrap();
    }
    let (mut ledger, replay) = RecordLedger::open(&path, &schema).unwrap();
    assert!(replay.truncated_bytes > 0, "torn tail went unnoticed");
    assert_eq!(replay.events.len(), events.len());
    let mut torn = StreamState::new(schema.clone(), BlockerConfig::default());
    for ev in &replay.events {
        torn.apply(ev, None).unwrap();
    }
    assert_eq!(torn.digest(), live_digest, "torn-tail recovery diverged");
    ledger
        .append(&RecordEvent::Delete {
            side: replay.events[0].side(),
            id: replay.events[0].id(),
        })
        .unwrap();
    ledger.sync().unwrap();
    drop(ledger);
    let replay = RecordLedger::replay(&path, &schema).unwrap();
    assert_eq!(replay.events.len(), events.len() + 1);

    // refusal: a ledger bound to another schema must not replay
    let other = Schema::new(vec![em_data::Attribute::new(
        "title",
        em_data::AttrType::Text,
    )]);
    let err = RecordLedger::open(&path, &other)
        .err()
        .expect("must refuse");
    assert!(matches!(err, LedgerError::SchemaMismatch { .. }), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

// ------------------------------------------------------ research crash

/// Satellite 3: a background re-search killed mid-search (`Fault::Kill`
/// through the engine's env plan) resumes from its trial journal and
/// produces a bundle — and `FitReport` — byte-identical to a run that
/// was never interrupted.
#[test]
fn killed_research_resumes_to_byte_identical_bundle() {
    let _g = guard();
    automl::fault::silence_injected_panic_output();
    let dir = tmp_dir("killres");
    let spec = em_stream::derive_drift_spec(
        &ModelSpec {
            scale: 0.3,
            budget_hours: 0.1,
            ..ModelSpec::fixture()
        },
        1,
    );

    // baseline: uninterrupted research
    let baseline = em_stream::run_research(
        &spec,
        &dir.join("baseline.journal.jsonl"),
        &dir.join("baseline.json"),
        automl::Deadline::none(),
    )
    .expect("baseline research failed");
    let baseline_bytes = std::fs::read(dir.join("baseline.json")).unwrap();

    // killed run: the engine reads AUTOML_EM_FAULTS at build time inside
    // the research call, so the kill fires mid-search, after trials have
    // been journaled
    let journal = dir.join("killed.journal.jsonl");
    let bundle = dir.join("killed.json");
    std::env::set_var("AUTOML_EM_FAULTS", "kill@2");
    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        em_stream::run_research(&spec, &journal, &bundle, automl::Deadline::none())
    }));
    std::env::remove_var("AUTOML_EM_FAULTS");
    assert!(unwound.is_err(), "kill@2 did not abort the research");
    assert!(journal.exists(), "no trial journal survived the kill");
    assert!(!bundle.exists(), "a killed research must not export");

    // resume: same journal, no faults
    let resumed = em_stream::run_research(&spec, &journal, &bundle, automl::Deadline::none())
        .expect("resumed research failed");
    assert_eq!(
        baseline.report, resumed.report,
        "resumed FitReport differs from uninterrupted run"
    );
    assert_eq!(
        baseline.digest, resumed.digest,
        "resumed model fingerprint differs"
    );
    assert_eq!(
        baseline_bytes,
        std::fs::read(&bundle).unwrap(),
        "resumed bundle is not byte-identical"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ------------------------------------------------------------ e2e serving

fn read_one_response(stream: &mut TcpStream) -> String {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
            let need: usize = head
                .lines()
                .find_map(|l| {
                    let (k, v) = l.split_once(':')?;
                    k.eq_ignore_ascii_case("content-length")
                        .then(|| v.trim().parse().ok())?
                })
                .unwrap_or(0);
            if buf.len() >= head_end + 4 + need {
                return String::from_utf8_lossy(&buf[..head_end + 4 + need]).to_string();
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return String::from_utf8_lossy(&buf).to_string(),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read failed: {e}"),
        }
    }
}

fn roundtrip(addr: SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw).expect("write");
    read_one_response(&mut stream)
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

fn header_of(response: &str, name: &str) -> Option<String> {
    let head = response.split("\r\n\r\n").next()?;
    head.lines().skip(1).find_map(|l| {
        let (k, v) = l.split_once(':')?;
        k.trim()
            .eq_ignore_ascii_case(name)
            .then(|| v.trim().to_string())
    })
}

fn post(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn pair_body(schema: &Schema, pair: &RecordPair) -> String {
    let entity = |e: &em_data::Entity| {
        let mut o = json::Obj::new();
        for (i, attr) in schema.attributes().iter().enumerate() {
            if let Some(v) = e.value(i) {
                o.str(&attr.name, v);
            }
        }
        o.finish()
    };
    let mut o = json::Obj::new();
    o.raw("left", &entity(&pair.left))
        .raw("right", &entity(&pair.right));
    o.finish()
}

/// One fixture model for the whole binary.
fn fixture_arc() -> std::sync::Arc<ModelHost> {
    static HOST: OnceLock<std::sync::Arc<ModelHost>> = OnceLock::new();
    std::sync::Arc::clone(HOST.get_or_init(|| {
        std::sync::Arc::new(
            ModelSpec {
                scale: 0.3,
                budget_hours: 0.1,
                ..ModelSpec::fixture()
            }
            .train()
            .expect("fixture training failed"),
        )
    }))
}

/// The tentpole e2e: a drifting event stream trips the drift monitor,
/// the background re-search runs to its deadline, and the winning bundle
/// is promoted through `/admin/reload` while clients hammer `/match` —
/// every in-flight request gets exactly one correct response, versions
/// advance monotonically per connection, and post-promotion traffic is
/// served by the new model.
#[test]
fn drifting_stream_triggers_research_and_zero_drop_promotion_under_load() {
    let _g = guard();
    let dir = tmp_dir("e2e");
    let host_a = fixture_arc();
    let base_spec = host_a.spec().clone();
    let pairs = &host_a.dataset().split(Split::Test)[..4];
    let schema = host_a.schema().clone();
    let offline_a: Vec<u32> = host_a
        .match_proba(pairs)
        .iter()
        .map(|p| p.to_bits())
        .collect();

    let handle = serve(
        fixture_arc(),
        &ServeConfig {
            addr: "127.0.0.1:0".into(),
            linger_us: 500,
            ..ServeConfig::default()
        },
    )
    .expect("bind failed");
    let addr = handle.addr();

    // promotion = the production path: POST the bundle to /admin/reload
    // and report back the swapped-in version
    let promote: em_stream::PromoteFn = Box::new(move |bundle: &std::path::Path| {
        let body = format!("{{\"path\":\"{}\"}}", bundle.display());
        let rsp = roundtrip(addr, &post("/admin/reload", &body));
        if !rsp.starts_with("HTTP/1.1 200") {
            return Err(format!("reload rejected: {rsp}"));
        }
        json::parse(body_of(&rsp))
            .ok()
            .and_then(|v| v.get("version")?.as_u64())
            .ok_or_else(|| "reload response had no version".to_owned())
    });

    let mut em = ContinuousEm::open(
        base_spec,
        ContinuousConfig {
            drift: DriftConfig {
                window_events: 32,
                churn_threshold: 0.55,
                score_shift_threshold: 0.25,
            },
            research_deadline: Duration::from_secs(30),
            ..ContinuousConfig::new(dir.clone())
        },
        promote,
    )
    .expect("open continuous instance");

    let events = generate_events(
        restaurant_domain().as_ref(),
        &ScenarioConfig {
            seed: 17,
            initial_pairs: 24,
            events: 260,
            drift_after: 96,
            ..ScenarioConfig::default()
        },
    );

    let stop = std::sync::atomic::AtomicBool::new(false);
    let (drift_fired, promoted_version, client_obs) = std::thread::scope(|s| {
        // clients hammer /match for the whole ingest + research window
        let clients: Vec<_> = (0..3)
            .map(|c: usize| {
                let stop = &stop;
                let schema = &schema;
                s.spawn(move || {
                    let mut seen: Vec<(usize, u64, u32)> = Vec::new();
                    let mut bad = 0usize;
                    let mut last_version = 0u64;
                    let mut stream = TcpStream::connect(addr).unwrap();
                    let mut i = c;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let idx = i % pairs.len();
                        i += 1;
                        stream
                            .write_all(&post("/match", &pair_body(schema, &pairs[idx])))
                            .unwrap();
                        let rsp = read_one_response(&mut stream);
                        if !rsp.starts_with("HTTP/1.1 200") {
                            bad += 1;
                            continue;
                        }
                        let version = header_of(&rsp, "x-model-version")
                            .and_then(|v| v.parse::<u64>().ok())
                            .unwrap_or(0);
                        if version < last_version {
                            bad += 1; // a version rollback is a drop-equivalent defect
                        }
                        last_version = version;
                        let bits = json::parse(body_of(&rsp))
                            .unwrap()
                            .get("p_match")
                            .and_then(Json::as_f64)
                            .map(|p| (p as f32).to_bits())
                            .unwrap_or(0);
                        seen.push((idx, version, bits));
                    }
                    (bad, seen)
                })
            })
            .collect();

        // ingest the drifting stream; drift launches the background
        // re-search from inside `ingest`
        let mut drift_fired = 0usize;
        for (i, ev) in events.iter().enumerate() {
            if em.ingest(ev).expect("ingest").is_some() {
                drift_fired += 1;
            }
            if i % 32 == 31 {
                em.sync().expect("sync");
            }
        }
        em.sync().expect("sync");
        assert!(
            drift_fired > 0,
            "the drifting stream never tripped the monitor"
        );
        assert!(
            em.research_running() || !em.promotions().is_empty(),
            "drift fired but no research was launched"
        );
        // wait for the research + promotion while clients keep firing
        let record = em
            .drain()
            .expect("research/promotion failed")
            .expect("no research was in flight")
            .clone();
        // keep load on the swapped host a little longer, then stop
        std::thread::sleep(Duration::from_millis(50));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let obs: ClientObs = clients
            .into_iter()
            .map(|c| {
                let (bad, seen) = c.join().unwrap();
                (bad, seen)
            })
            .collect();
        (drift_fired, record.version, obs)
    });

    assert!(drift_fired >= 1);
    assert_eq!(promoted_version, 2, "promotion must advance the version");
    assert_eq!(handle.model_version(), 2);
    let promotions = em.promotions();
    assert_eq!(promotions.len(), 1);
    assert!(promotions[0].report.val_f1.is_finite());

    // exactly-one-correct-response accounting: every 200 matches the
    // model named by its version header, bit for bit
    let host_b = load_model(&em.config().bundle_path(promotions[0].epoch))
        .expect("promoted bundle must load back");
    let offline_b: Vec<u32> = host_b
        .match_proba(pairs)
        .iter()
        .map(|p| p.to_bits())
        .collect();
    let mut total = 0usize;
    let mut v2 = 0usize;
    for (bad, seen) in &client_obs {
        assert_eq!(*bad, 0, "dropped/rolled-back responses under promotion");
        for (idx, version, bits) in seen {
            let want = match version {
                1 => offline_a[*idx],
                2 => offline_b[*idx],
                v => panic!("unknown model version {v}"),
            };
            assert_eq!(*bits, want, "cross-version response mixing");
            total += 1;
            if *version == 2 {
                v2 += 1;
            }
        }
    }
    assert!(total > 0, "clients never got a response in");
    assert!(v2 > 0, "no traffic observed on the promoted model");

    // a fresh cold start of the streaming layer replays the ledger to
    // the exact same derived state the live instance reached
    let live_digest = em.state().digest();
    let applied = em.state().applied();
    drop(em);
    let em2 = ContinuousEm::open(
        fixture_arc().spec().clone(),
        ContinuousConfig::new(dir.clone()),
        Box::new(|_| Ok(0)),
    )
    .expect("cold start");
    assert_eq!(em2.state().digest(), live_digest);
    assert_eq!(em2.state().applied(), applied);

    assert!(handle.shutdown());
    std::fs::remove_dir_all(&dir).ok();
}

/// The id-keyed cache protocol end to end through `ContinuousEm`:
/// ingesting updates invalidates exactly the touched records' vectors.
#[test]
fn continuous_ingest_invalidates_exactly_the_touched_records() {
    let _g = guard();
    let dir = tmp_dir("inval");
    let mut em = ContinuousEm::open(
        fixture_arc().spec().clone(),
        ContinuousConfig {
            drift: DriftConfig {
                window_events: usize::MAX, // never evaluate: isolate the cache
                ..DriftConfig::default()
            },
            ..ContinuousConfig::new(dir.clone())
        },
        Box::new(|_| Ok(0)),
    )
    .unwrap();
    let domain = restaurant_domain();
    let e1 = domain.generate(&mut linalg::Rng::new(1));
    let e2 = domain.generate(&mut linalg::Rng::new(2));
    em.ingest(&RecordEvent::Insert {
        side: Side::Right,
        id: 7,
        entity: e1.clone(),
    })
    .unwrap();
    // warm the id-keyed entry, then update the record
    let v_old = em
        .state()
        .encode_record(Side::Right, 7, em.cache())
        .unwrap();
    let before = em.cache().invalidations();
    em.ingest(&RecordEvent::Update {
        side: Side::Right,
        id: 7,
        entity: e2.clone(),
    })
    .unwrap();
    assert_eq!(em.cache().invalidations(), before + 1);
    let v_new = em
        .state()
        .encode_record(Side::Right, 7, em.cache())
        .unwrap();
    assert_ne!(v_old, v_new, "stale vector survived the update");
    // an update to a record whose vector was never cached is a no-op on
    // the cache (nothing to invalidate, nothing accounted)
    em.ingest(&RecordEvent::Insert {
        side: Side::Left,
        id: 8,
        entity: e1,
    })
    .unwrap();
    let mid = em.cache().invalidations();
    em.ingest(&RecordEvent::Update {
        side: Side::Left,
        id: 8,
        entity: e2,
    })
    .unwrap();
    assert_eq!(
        em.cache().invalidations(),
        mid,
        "invalidation accounted for a vector that was never cached"
    );
    // the key really is per-record: id 7's entry was repopulated above
    // and survives other records' churn
    assert_eq!(
        em.state()
            .encode_record(Side::Right, 7, em.cache())
            .unwrap(),
        v_new
    );
    let _ = record_key(Side::Right, 7); // exercised implicitly above
    em.sync().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
