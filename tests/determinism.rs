//! Determinism contract: thread count must never change results.
//!
//! Every AutoML engine is fitted twice on the same data and seed — once
//! with the `par` pool pinned to 1 worker, once to 4 — and the two runs
//! must agree **byte for byte**: the full [`FitReport`] (val F1,
//! threshold, budget charges, leaderboard order) and the prediction
//! vector. The same holds for the parallel matmul path and the batch
//! embedding cache. Threads are allowed to change wall-clock time only.
//!
//! The thread override is process-global, so every test here serializes
//! on one lock (this binary is its own process; other test binaries are
//! unaffected).

use automl::{AutoMlSystem, Budget, FitReport};
use embed::cache::EmbeddingCache;
use embed::SequenceEmbedder;
use linalg::{Matrix, Rng};
use ml::dataset::TabularData;
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that flip the global `par` thread override.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn blob_data(n: usize, seed: u64) -> TabularData {
    let mut rng = Rng::new(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let pos = rng.chance(0.3);
        let c = if pos { 1.2f32 } else { -1.2 };
        rows.push(vec![c + rng.normal(), -c + rng.normal(), rng.normal()]);
        y.push(if pos { 1.0 } else { 0.0 });
    }
    TabularData::new(Matrix::from_rows(&rows), y)
}

/// Fit `make()`'s engine at a fixed worker count; return the report and
/// the validation predictions.
fn fit_at(
    threads: usize,
    make: &dyn Fn() -> Box<dyn AutoMlSystem>,
    train: &TabularData,
    valid: &TabularData,
    budget_hours: f64,
) -> (FitReport, Vec<f32>) {
    par::set_threads(threads);
    let mut sys = make();
    let mut budget = Budget::hours(budget_hours).unwrap();
    let report = sys.fit(train, valid, &mut budget).unwrap();
    let probs = sys.predict_proba(&valid.x);
    par::reset_threads();
    (report, probs)
}

/// The core contract check, shared by the per-engine tests.
fn engine_is_thread_count_invariant(make: &dyn Fn() -> Box<dyn AutoMlSystem>, budget_hours: f64) {
    let _g = guard();
    let train = blob_data(260, 11);
    let valid = blob_data(90, 12);
    let (r1, p1) = fit_at(1, make, &train, &valid, budget_hours);
    let (r4, p4) = fit_at(4, make, &train, &valid, budget_hours);
    assert_eq!(
        r1, r4,
        "{}: FitReport differs across thread counts",
        r1.system
    );
    assert_eq!(
        p1, p4,
        "{}: predictions differ across thread counts",
        r1.system
    );
    assert!(!r1.leaderboard.is_empty());
}

#[test]
fn autosklearn_fit_is_byte_identical_across_thread_counts() {
    engine_is_thread_count_invariant(
        &|| Box::new(automl::sklearn_like::AutoSklearnStyle::new(5)),
        0.4,
    );
}

#[test]
fn autogluon_fit_is_byte_identical_across_thread_counts() {
    engine_is_thread_count_invariant(
        &|| Box::new(automl::gluon_like::AutoGluonStyle::new(5)),
        0.6,
    );
}

#[test]
fn h2o_fit_is_byte_identical_across_thread_counts() {
    engine_is_thread_count_invariant(&|| Box::new(automl::h2o_like::H2oStyle::new(5)), 1.0);
}

#[test]
fn halving_fit_is_byte_identical_across_thread_counts() {
    engine_is_thread_count_invariant(
        &|| Box::new(automl::halving::SuccessiveHalving::new(5)),
        0.7,
    );
}

#[test]
fn parallel_matmul_is_bit_identical_to_single_thread() {
    let _g = guard();
    // large enough to cross PAR_MATMUL_FLOPS (190*170*180 ≈ 5.8M ≥ 2^21)
    let mut rng = Rng::new(42);
    let a = Matrix::from_fn(190, 170, |_, _| rng.normal());
    let b = Matrix::from_fn(170, 180, |_, _| rng.normal());
    par::set_threads(1);
    let seq = a.matmul(&b);
    par::set_threads(4);
    let par4 = a.matmul(&b);
    par::reset_threads();
    assert_eq!(
        seq.as_slice(),
        par4.as_slice(),
        "matmul drifted with thread count"
    );
}

struct LenEmbedder;

impl SequenceEmbedder for LenEmbedder {
    fn dim(&self) -> usize {
        3
    }

    fn embed(&self, textv: &str) -> Vec<f32> {
        let l = textv.len() as f32;
        vec![l, l * 0.5, 1.0 / (1.0 + l)]
    }

    fn name(&self) -> String {
        "len".into()
    }
}

#[test]
fn embed_batch_is_identical_across_thread_counts() {
    let _g = guard();
    let texts: Vec<String> = (0..300)
        .map(|i| format!("record value {}", i % 41))
        .collect();
    let run = |threads: usize| {
        par::set_threads(threads);
        let inner = LenEmbedder;
        let cache = EmbeddingCache::new(&inner);
        let out = cache.embed_batch(&texts);
        par::reset_threads();
        out
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn adapter_encode_split_is_identical_across_thread_counts() {
    let _g = guard();
    use em_core::{Combiner, EmAdapter, TokenizerMode};
    use em_data::{MagellanDataset, Split};
    let d = MagellanDataset::SBR.profile().generate_scaled(3, 0.5);
    let run = |threads: usize| {
        par::set_threads(threads);
        let inner = LenEmbedder;
        let adapter = EmAdapter::new(TokenizerMode::Hybrid, &inner, Combiner::Average);
        let data = adapter.encode_split(&d, Split::Train);
        par::reset_threads();
        (data.x.as_slice().to_vec(), data.y)
    };
    assert_eq!(run(1), run(4));
}
