//! Golden leaderboard snapshots: a tiny fixed-seed search per AutoML
//! engine whose **entire** [`automl::FitReport`] — model ids, validation
//! F1 to the last bit, budget charges, threshold — must match a recorded
//! snapshot byte for byte.
//!
//! The determinism suite proves runs agree *with themselves* across
//! thread counts; this suite pins them to a *recorded* trajectory, so any
//! accidental change to search order, scoring, budget accounting or
//! kernel numerics shows up as a readable diff of the snapshot text. The
//! snapshot strings use Rust's shortest-round-trip float formatting,
//! which is lossless for `f32`/`f64` — textual equality is bit equality.
//!
//! If a PR changes these values *on purpose* (new search heuristic, new
//! kernel semantics), regenerate by running with `--nocapture` and
//! copying the printed `actual` block — and say so in the PR description.

use automl::{AutoMlSystem, Budget};
use linalg::{Matrix, Rng};
use ml::dataset::TabularData;
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that flip the global `par` thread override.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Same two-cluster generator as the determinism suite, different seeds.
fn blob_data(n: usize, seed: u64) -> TabularData {
    let mut rng = Rng::new(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let pos = rng.chance(0.3);
        let c = if pos { 1.2f32 } else { -1.2 };
        rows.push(vec![c + rng.normal(), -c + rng.normal(), rng.normal()]);
        y.push(if pos { 1.0 } else { 0.0 });
    }
    TabularData::new(Matrix::from_rows(&rows), y)
}

/// Render a report as one line per fact, floats in shortest round-trip
/// form (lossless), so golden comparison is bit comparison with a
/// readable diff.
fn snapshot(report: &automl::FitReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "system={} units={} hours={} val_f1={} threshold={}\n",
        report.system, report.units_used, report.hours_used, report.val_f1, report.threshold
    ));
    for e in report.leaderboard.entries() {
        s.push_str(&format!(
            "  model={} val_f1={} cost={} error={}\n",
            e.model,
            e.val_f1,
            e.cost_units,
            e.error
                .as_ref()
                .map_or("none".to_owned(), |err| format!("{err:?}")),
        ));
    }
    s
}

fn fit_snapshot(mut sys: Box<dyn AutoMlSystem>, budget_hours: f64) -> String {
    let _g = guard();
    par::set_threads(1);
    let train = blob_data(160, 21);
    let valid = blob_data(60, 22);
    let mut budget = Budget::hours(budget_hours).unwrap();
    let report = sys.fit(&train, &valid, &mut budget).unwrap();
    par::reset_threads();
    snapshot(&report)
}

fn assert_golden(actual: &str, golden: &str, engine: &str) {
    if actual != golden {
        panic!(
            "{engine}: leaderboard drifted from golden snapshot.\n\
             --- golden ---\n{golden}\n--- actual ---\n{actual}\n\
             If this change is intentional, update the snapshot above."
        );
    }
}

#[test]
fn autosklearn_leaderboard_matches_golden_snapshot() {
    let actual = fit_snapshot(
        Box::new(automl::sklearn_like::AutoSklearnStyle::new(4)),
        0.4,
    );
    println!("actual:\n{actual}");
    let golden = "\
system=AutoSklearn units=4.800000000000001 hours=0.4000000000000001 val_f1=100 threshold=0.5
  model=gbm(n=80,lr=0.09486833,depth=5) val_f1=100 cost=0.43679999999999997 error=none
  model=logreg(l2=1e-3) val_f1=97.56097560975608 cost=0.1456 error=none
  model=rf(n=58,depth=9) val_f1=100 cost=0.364 error=none
  model=rf(n=78,depth=10) val_f1=95.23809523809523 cost=0.364 error=none
  model=gaussian_nb val_f1=97.56097560975608 cost=0.0364 error=none
  model=logreg(l2=3e-3) val_f1=97.56097560975608 cost=0.1456 error=none
  model=tree(depth=18) val_f1=88.88888888888889 cost=0.091 error=none
  model=rf(n=71,depth=11) val_f1=97.56097560975608 cost=0.364 error=none
  model=gbm(n=74,lr=0.04034378,depth=5) val_f1=100 cost=0.43679999999999997 error=none
  model=tree(depth=9) val_f1=90.9090909090909 cost=0.091 error=none
  model=gbm(n=65,lr=0.048242953,depth=6) val_f1=100 cost=0.43679999999999997 error=none
  model=tree(depth=5) val_f1=77.55102040816327 cost=0.091 error=none
  model=gbm(n=42,lr=0.108817235,depth=5) val_f1=100 cost=0.43679999999999997 error=none
  model=linsvm(l2=2e-5) val_f1=95.23809523809523 cost=0.1456 error=none
  model=gbm(n=40,lr=0.21723014,depth=4) val_f1=97.56097560975608 cost=0.43679999999999997 error=none
  model=gbm(n=51,lr=0.03,depth=5) val_f1=100 cost=0.43679999999999997 error=none
";
    assert_golden(&actual, golden, "AutoSklearnStyle");
}

#[test]
fn autogluon_leaderboard_matches_golden_snapshot() {
    let actual = fit_snapshot(Box::new(automl::gluon_like::AutoGluonStyle::new(4)), 0.6);
    println!("actual:\n{actual}");
    let golden = "\
system=AutoGluon units=6.6428 hours=0.5535666666666667 val_f1=100 threshold=0.5
  model=bag[gbm(n=110,lr=0.08,depth=6)] val_f1=100 cost=2.1071999999999997 error=none
  model=bag[catgbm(n=90,lr=0.1,depth=5)] val_f1=100 cost=2.6340000000000003 error=none
  model=bag[rf(n=60,depth=16)] val_f1=97.56097560975608 cost=1.756 error=none
  model=stacker[glm] val_f1=100 cost=0.1456 error=none
";
    assert_golden(&actual, golden, "AutoGluonStyle");
}

#[test]
fn h2o_leaderboard_matches_golden_snapshot() {
    let actual = fit_snapshot(Box::new(automl::h2o_like::H2oStyle::new(4)), 0.35);
    println!("actual:\n{actual}");
    let golden = "\
system=H2OAutoML units=4.123999999999999 hours=0.34366666666666656 val_f1=100 threshold=0.36495915
  model=rf(n=30,depth=7) val_f1=97.56097560975608 cost=0.364 error=none
  model=gbm(n=34,lr=0.12074531,depth=4) val_f1=100 cost=0.43679999999999997 error=none
  model=xt(n=42,depth=17) val_f1=100 cost=0.2912 error=none
  model=logreg(l2=3e-2) val_f1=97.56097560975608 cost=0.1456 error=none
  model=xt(n=43,depth=16) val_f1=97.56097560975608 cost=0.2912 error=none
  model=logreg(l2=7e-2) val_f1=97.56097560975608 cost=0.1456 error=none
  model=gbm(n=102,lr=0.25955328,depth=6) val_f1=100 cost=0.43679999999999997 error=none
  model=xt(n=40,depth=12) val_f1=97.43589743589745 cost=0.2912 error=none
  model=xt(n=28,depth=7) val_f1=100 cost=0.2912 error=none
  model=logreg(l2=1e-5) val_f1=97.56097560975608 cost=0.1456 error=none
  model=gbm(n=128,lr=0.04423905,depth=6) val_f1=100 cost=0.43679999999999997 error=none
  model=xt(n=34,depth=18) val_f1=100 cost=0.2912 error=none
";
    assert_golden(&actual, golden, "H2oStyle");
}

#[test]
fn halving_leaderboard_matches_golden_snapshot() {
    let actual = fit_snapshot(Box::new(automl::halving::SuccessiveHalving::new(4)), 0.7);
    println!("actual:\n{actual}");
    let golden = "\
system=SuccessiveHalving units=4.611159999999999 hours=0.38426333333333323 val_f1=100 threshold=0.40855548
  model=rung0[gaussian_nb] val_f1=100 cost=0.03156 error=none
  model=rung0[rf(n=52,depth=11)] val_f1=97.56097560975608 cost=0.3156 error=none
  model=rung0[linsvm(l2=5e-2)] val_f1=100 cost=0.12624 error=none
  model=rung0[xt(n=39,depth=14)] val_f1=100 cost=0.25248 error=none
  model=rung0[rf(n=72,depth=11)] val_f1=100 cost=0.3156 error=none
  model=rung0[gaussian_nb] val_f1=100 cost=0.03156 error=none
  model=rung0[tree(depth=13)] val_f1=92.3076923076923 cost=0.0789 error=none
  model=rung0[knn(k=30)] val_f1=97.56097560975608 cost=0.28404 error=none
  model=rung0[gaussian_nb] val_f1=100 cost=0.03156 error=none
  model=rung0[linsvm(l2=1e-3)] val_f1=100 cost=0.12624 error=none
  model=rung0[rf(n=35,depth=12)] val_f1=97.56097560975608 cost=0.3156 error=none
  model=rung0[linsvm(l2=2e-2)] val_f1=100 cost=0.12624 error=none
  model=rung0[rf(n=65,depth=8)] val_f1=97.56097560975608 cost=0.3156 error=none
  model=rung0[rf(n=52,depth=16)] val_f1=97.56097560975608 cost=0.3156 error=none
  model=rung0[rf(n=74,depth=14)] val_f1=97.56097560975608 cost=0.3156 error=none
  model=rung0[tree(depth=10)] val_f1=92.3076923076923 cost=0.0789 error=none
  model=rung0[xt(n=80,depth=18)] val_f1=97.56097560975608 cost=0.25248 error=none
  model=rung0[gaussian_nb] val_f1=100 cost=0.03156 error=none
  model=rung1[gaussian_nb] val_f1=97.43589743589745 cost=0.03316 error=none
  model=rung1[linsvm(l2=5e-2)] val_f1=97.56097560975608 cost=0.13264 error=none
  model=rung1[xt(n=39,depth=14)] val_f1=100 cost=0.26528 error=none
  model=rung1[rf(n=72,depth=11)] val_f1=95.23809523809523 cost=0.3316 error=none
  model=rung1[gaussian_nb] val_f1=97.43589743589745 cost=0.03316 error=none
  model=rung1[gaussian_nb] val_f1=97.43589743589745 cost=0.03316 error=none
  model=rung2[xt(n=39,depth=14)] val_f1=100 cost=0.2912 error=none
  model=rung2[linsvm(l2=5e-2)] val_f1=97.56097560975608 cost=0.1456 error=none
";
    assert_golden(&actual, golden, "SuccessiveHalving");
}
