//! Property tests over the synthetic-benchmark substrate: noise operators,
//! domain generators, blocking and the budget/search machinery.

use automl::budget::{fit_cost, Budget, ModelFamily};
use em_data::generators::{Beer, Bibliographic, Domain, Music, ProductRetail, Restaurant};
use em_data::noise::{corrupt_entity, dirtify, NoiseConfig};
use em_data::{token_blocking, BlockerConfig, MagellanDataset};
use linalg::Rng;
use proptest::prelude::*;

fn domains() -> Vec<Box<dyn Domain>> {
    vec![
        Box::new(Bibliographic),
        Box::new(ProductRetail),
        Box::new(Beer),
        Box::new(Music),
        Box::new(Restaurant),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn corruption_never_panics_and_preserves_width(
        seed in any::<u64>(),
        level in 0.0f64..1.0,
        domain_idx in 0usize..5
    ) {
        let domain = &domains()[domain_idx];
        let schema = domain.schema();
        let mut rng = Rng::new(seed);
        let entity = domain.generate(&mut rng);
        let cfg = NoiseConfig::from_level(level);
        let corrupted = corrupt_entity(&entity, &schema, &cfg, &["extra"], &mut rng);
        prop_assert_eq!(corrupted.width(), entity.width());
        // corrupted values never become empty strings (empty = None)
        for v in corrupted.values().flatten() {
            prop_assert!(!v.is_empty());
        }
    }

    #[test]
    fn dirtify_preserves_token_multiset(seed in any::<u64>(), domain_idx in 0usize..5) {
        let domain = &domains()[domain_idx];
        let mut rng = Rng::new(seed);
        let entity = domain.generate(&mut rng);
        let dirty = dirtify(&entity, 0.5, &mut rng);
        let mut before: Vec<String> = entity
            .flatten()
            .split_whitespace()
            .map(str::to_owned)
            .collect();
        let mut after: Vec<String> = dirty
            .flatten()
            .split_whitespace()
            .map(str::to_owned)
            .collect();
        before.sort();
        after.sort();
        prop_assert_eq!(before, after, "dirtify must move, not destroy, values");
    }

    #[test]
    fn near_miss_always_differs(
        seed in any::<u64>(),
        closeness in 0.0f64..1.0,
        domain_idx in 0usize..5
    ) {
        let domain = &domains()[domain_idx];
        let mut rng = Rng::new(seed);
        let entity = domain.generate(&mut rng);
        let near = domain.near_miss(&entity, closeness, &mut rng);
        prop_assert_ne!(&near, &entity);
        prop_assert_eq!(near.width(), entity.width());
    }

    #[test]
    fn dataset_generation_hits_profile_at_any_seed(seed in any::<u64>()) {
        let p = MagellanDataset::SIA.profile();
        let d = p.generate(seed);
        prop_assert_eq!(d.len(), p.size);
        let pct = d.match_ratio() * 100.0;
        prop_assert!((pct - p.match_pct).abs() < 1.5, "{} vs {}", pct, p.match_pct);
    }

    #[test]
    fn blocking_candidates_within_cross_product(
        seed in any::<u64>(),
        n_left in 1usize..40,
        n_right in 1usize..40,
        min_overlap in 1usize..3
    ) {
        let domain = Restaurant;
        let schema = domain.schema();
        let mut rng = Rng::new(seed);
        let left: Vec<_> = (0..n_left).map(|_| domain.generate(&mut rng)).collect();
        let right: Vec<_> = (0..n_right).map(|_| domain.generate(&mut rng)).collect();
        let r = token_blocking(&left, &right, &schema, &BlockerConfig {
            min_overlap,
            ..BlockerConfig::default()
        });
        prop_assert!(r.candidates.len() <= r.cross_product);
        for c in &r.candidates {
            prop_assert!(c.left < n_left && c.right < n_right);
        }
        // sorted and unique
        for w in r.candidates.windows(2) {
            prop_assert!((w[0].left, w[0].right) < (w[1].left, w[1].right));
        }
        prop_assert!((0.0..=1.0).contains(&r.reduction_ratio()));
    }

    #[test]
    fn budget_arithmetic_never_goes_negative(
        charges in prop::collection::vec(0.0f64..10.0, 0..30),
        hours in 0.1f64..10.0
    ) {
        let mut b = Budget::hours(hours);
        for c in charges {
            b.consume(c);
            prop_assert!(b.remaining() >= 0.0);
            prop_assert!(b.used() >= 0.0);
            prop_assert!(b.used_hours() <= b.used() / automl::budget::UNITS_PER_HOUR + 1e-9);
        }
    }

    #[test]
    fn fit_cost_is_monotone_in_rows(rows_a in 1usize..50_000, rows_b in 1usize..50_000) {
        let (lo, hi) = if rows_a <= rows_b { (rows_a, rows_b) } else { (rows_b, rows_a) };
        for family in [ModelFamily::Gbm, ModelFamily::Knn, ModelFamily::NaiveBayes] {
            prop_assert!(fit_cost(family, lo) <= fit_cost(family, hi));
            prop_assert!(fit_cost(family, lo) > 0.0);
        }
    }
}
