//! Property-style tests over the synthetic-benchmark substrate: noise
//! operators, domain generators, blocking and the budget/search machinery.
//!
//! Std-only stand-in for a proptest suite (crates.io is unreachable from
//! the build environment): each test loops over many deterministic seeds
//! and generates its inputs with [`linalg::Rng`].

use automl::budget::{fit_cost, Budget, ModelFamily};
use em_data::generators::{Beer, Bibliographic, Domain, Music, ProductRetail, Restaurant};
use em_data::noise::{corrupt_entity, dirtify, NoiseConfig};
use em_data::{token_blocking, BlockerConfig, MagellanDataset};
use linalg::Rng;

fn domains() -> Vec<Box<dyn Domain>> {
    vec![
        Box::new(Bibliographic),
        Box::new(ProductRetail),
        Box::new(Beer),
        Box::new(Music),
        Box::new(Restaurant),
    ]
}

#[test]
fn corruption_never_panics_and_preserves_width() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(seed);
        let level = rng.f64();
        let domain = &domains()[rng.below(5)];
        let schema = domain.schema();
        let entity = domain.generate(&mut rng);
        let cfg = NoiseConfig::from_level(level);
        let corrupted = corrupt_entity(&entity, &schema, &cfg, &["extra"], &mut rng);
        assert_eq!(corrupted.width(), entity.width(), "seed {seed}");
        // corrupted values never become empty strings (empty = None)
        for v in corrupted.values().flatten() {
            assert!(!v.is_empty(), "seed {seed}");
        }
    }
}

#[test]
fn dirtify_preserves_token_multiset() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(seed);
        let domain = &domains()[rng.below(5)];
        let entity = domain.generate(&mut rng);
        let dirty = dirtify(&entity, 0.5, &mut rng);
        let tokens = |e: &em_data::Entity| {
            let mut v: Vec<String> = e.flatten().split_whitespace().map(str::to_owned).collect();
            v.sort();
            v
        };
        assert_eq!(
            tokens(&entity),
            tokens(&dirty),
            "seed {seed}: dirtify must move, not destroy, values"
        );
    }
}

#[test]
fn near_miss_always_differs() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(seed);
        let closeness = rng.f64();
        let domain = &domains()[rng.below(5)];
        let entity = domain.generate(&mut rng);
        let near = domain.near_miss(&entity, closeness, &mut rng);
        assert_ne!(&near, &entity, "seed {seed}");
        assert_eq!(near.width(), entity.width(), "seed {seed}");
    }
}

#[test]
fn dataset_generation_hits_profile_at_any_seed() {
    for seed in [0u64, 1, 7, 42, 1234, u64::MAX, 0xDEAD_BEEF, 3, 99, 2026] {
        let p = MagellanDataset::SIA.profile();
        let d = p.generate(seed);
        assert_eq!(d.len(), p.size, "seed {seed}");
        let pct = d.match_ratio() * 100.0;
        assert!(
            (pct - p.match_pct).abs() < 1.5,
            "seed {seed}: {pct} vs {}",
            p.match_pct
        );
    }
}

#[test]
fn blocking_candidates_within_cross_product() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(seed);
        let n_left = 1 + rng.below(39);
        let n_right = 1 + rng.below(39);
        let min_overlap = 1 + rng.below(2);
        let domain = Restaurant;
        let schema = domain.schema();
        let left: Vec<_> = (0..n_left).map(|_| domain.generate(&mut rng)).collect();
        let right: Vec<_> = (0..n_right).map(|_| domain.generate(&mut rng)).collect();
        let r = token_blocking(
            &left,
            &right,
            &schema,
            &BlockerConfig {
                min_overlap,
                ..BlockerConfig::default()
            },
        );
        assert!(r.candidates.len() <= r.cross_product, "seed {seed}");
        for c in &r.candidates {
            assert!(c.left < n_left && c.right < n_right, "seed {seed}");
        }
        // sorted and unique
        for w in r.candidates.windows(2) {
            assert!(
                (w[0].left, w[0].right) < (w[1].left, w[1].right),
                "seed {seed}"
            );
        }
        assert!((0.0..=1.0).contains(&r.reduction_ratio()), "seed {seed}");
    }
}

#[test]
fn budget_arithmetic_never_goes_negative() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(seed);
        let hours = 0.1 + rng.f64() * 9.9;
        let n_charges = rng.below(31);
        let mut b = Budget::hours(hours).unwrap();
        for _ in 0..n_charges {
            b.consume(rng.f64() * 10.0);
            assert!(b.remaining() >= 0.0, "seed {seed}");
            assert!(b.used() >= 0.0, "seed {seed}");
            assert!(
                b.used_hours() <= b.used() / automl::budget::UNITS_PER_HOUR + 1e-9,
                "seed {seed}"
            );
        }
    }
}

#[test]
fn streaming_scenarios_are_deterministic_and_always_valid() {
    // the drifting event-stream generator backs the streaming battery,
    // the CI fixture ledger and stream_bench: it must be a pure function
    // of its config, and every update/delete must target a then-live id
    // (StreamState::apply rejects anything else)
    use em_stream::{generate_events, ScenarioConfig, StreamState};
    let domain = Restaurant;
    for seed in [0u64, 1, 7, 42, 1234] {
        let config = ScenarioConfig {
            seed,
            initial_pairs: 8,
            events: 80,
            drift_after: 40,
            ..ScenarioConfig::default()
        };
        let a = generate_events(&domain, &config);
        let b = generate_events(&domain, &config);
        assert_eq!(a, b, "seed {seed}: stream is not deterministic");
        assert!(a.len() >= config.initial_pairs * 2 + config.events);
        let mut state = StreamState::new(domain.schema(), BlockerConfig::default());
        for (i, ev) in a.iter().enumerate() {
            state
                .apply(ev, None)
                .unwrap_or_else(|e| panic!("seed {seed} event {i}: invalid event: {e}"));
        }
        assert_eq!(state.applied(), a.len() as u64);
    }
}

#[test]
fn streaming_scenarios_shift_vocabulary_after_the_drift_point() {
    use em_stream::{generate_events, RecordEvent, ScenarioConfig};
    let domain = Restaurant;
    for seed in [3u64, 11, 2026] {
        let config = ScenarioConfig {
            seed,
            initial_pairs: 8,
            events: 80,
            drift_after: 30,
            ..ScenarioConfig::default()
        };
        let events = generate_events(&domain, &config);
        let carries_marker = |ev: &RecordEvent| {
            matches!(ev, RecordEvent::Insert { entity, .. } | RecordEvent::Update { entity, .. }
                if entity.flatten().split_whitespace().any(|w| w.starts_with("zz")))
        };
        let pre = config.initial_pairs * 2 + config.drift_after;
        assert!(
            events[..pre].iter().all(|e| !carries_marker(e)),
            "seed {seed}: drift marker leaked into the stable regime"
        );
        assert!(
            events[pre..].iter().any(carries_marker),
            "seed {seed}: drifted regime never shifted the vocabulary"
        );
    }
}

#[test]
fn fit_cost_is_monotone_in_rows() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(seed);
        let rows_a = 1 + rng.below(49_999);
        let rows_b = 1 + rng.below(49_999);
        let (lo, hi) = if rows_a <= rows_b {
            (rows_a, rows_b)
        } else {
            (rows_b, rows_a)
        };
        for family in [ModelFamily::Gbm, ModelFamily::Knn, ModelFamily::NaiveBayes] {
            assert!(fit_cost(family, lo) <= fit_cost(family, hi), "seed {seed}");
            assert!(fit_cost(family, lo) > 0.0, "seed {seed}");
        }
    }
}
