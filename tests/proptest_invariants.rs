//! Property-based tests over cross-crate invariants: CSV round-trips with
//! arbitrary content, tokenizer/adapter totality on arbitrary record pairs,
//! metric laws, RNG/statistics laws, and search-space construction.

use em_core::tokenizer::{tokenize_pair, TokenizerMode};
use em_data::csv::{read_csv, write_csv};
use em_data::{AttrType, Attribute, DatasetKind, EmDataset, Entity, RecordPair, Schema};
use linalg::Rng;
use ml::metrics::{best_f1_threshold, f1_at_threshold, roc_auc, Confusion};
use proptest::prelude::*;
use std::io::BufReader;

/// Arbitrary cell value: possibly missing, possibly nasty (commas, quotes,
/// unicode, numerics).
fn cell() -> impl Strategy<Value = Option<String>> {
    prop_oneof![
        2 => Just(None),
        5 => "[a-z0-9 ]{1,20}".prop_map(Some),
        2 => "[\\PC,\"]{0,12}".prop_map(Some),
        1 => (-1000.0..1000.0f64).prop_map(|v| Some(format!("{v:.2}"))),
    ]
}

fn record_pairs(width: usize, n: usize) -> impl Strategy<Value = Vec<(Vec<Option<String>>, Vec<Option<String>>, bool)>> {
    prop::collection::vec(
        (
            prop::collection::vec(cell(), width),
            prop::collection::vec(cell(), width),
            any::<bool>(),
        ),
        1..=n,
    )
}

fn build_dataset(raw: Vec<(Vec<Option<String>>, Vec<Option<String>>, bool)>, width: usize) -> EmDataset {
    let attrs: Vec<Attribute> = (0..width)
        .map(|i| Attribute::new(&format!("a{i}"), AttrType::Text))
        .collect();
    let schema = Schema::new(attrs);
    let pairs: Vec<RecordPair> = raw
        .into_iter()
        .map(|(l, r, y)| RecordPair::new(Entity::new(l), Entity::new(r), y))
        .collect();
    let mut rng = Rng::new(1);
    EmDataset::with_split("prop", DatasetKind::Structured, schema, pairs, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_roundtrip_preserves_labels_and_count(
        raw in record_pairs(3, 24)
    ) {
        let d = build_dataset(raw, 3);
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let loaded = read_csv("p", DatasetKind::Structured, BufReader::new(&buf[..]), 2).unwrap();
        prop_assert_eq!(loaded.len(), d.len());
        prop_assert!((loaded.match_ratio() - d.match_ratio()).abs() < 1e-12);
        // every non-empty original value survives somewhere (labels sorted
        // differently because of the fresh split, so compare multisets of
        // flattened rows)
        let mut a: Vec<String> = d.pairs().iter().map(|p| format!("{}|{}|{}", p.label, p.left.flatten(), p.right.flatten())).collect();
        let mut b: Vec<String> = loaded.pairs().iter().map(|p| format!("{}|{}|{}", p.label, p.left.flatten(), p.right.flatten())).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn tokenizer_total_and_counts_correct(
        raw in record_pairs(4, 6),
        mode_idx in 0usize..3
    ) {
        let d = build_dataset(raw, 4);
        let mode = [TokenizerMode::Unstructured, TokenizerMode::AttributeBased, TokenizerMode::Hybrid][mode_idx];
        for pair in d.pairs() {
            let seqs = tokenize_pair(pair, d.schema(), mode);
            prop_assert_eq!(seqs.len(), mode.n_sequences(d.schema().len()));
        }
    }

    #[test]
    fn split_partition_invariants(raw in record_pairs(2, 60)) {
        let d = build_dataset(raw, 2);
        let (tr, va, te) = (
            d.split(em_data::Split::Train).len(),
            d.split(em_data::Split::Validation).len(),
            d.split(em_data::Split::Test).len(),
        );
        prop_assert_eq!(tr + va + te, d.len());
        // 60/20/20 within integer rounding
        prop_assert!(tr >= d.len() * 60 / 100);
        prop_assert!(tr <= d.len() * 60 / 100 + 1);
    }

    #[test]
    fn f1_bounds_and_threshold_optimality(
        probs in prop::collection::vec(0.0f32..1.0, 4..80),
        labels_seed in any::<u64>()
    ) {
        let mut rng = Rng::new(labels_seed);
        let labels: Vec<bool> = probs.iter().map(|_| rng.chance(0.3)).collect();
        let (thr, best) = best_f1_threshold(&probs, &labels);
        prop_assert!((0.0..=100.0).contains(&best));
        // the tuned threshold is at least as good as the default
        let at_half = f1_at_threshold(&probs, &labels, 0.5);
        prop_assert!(best >= at_half - 1e-9);
        prop_assert!((0.0..=1.0).contains(&thr));
    }

    #[test]
    fn confusion_counts_always_partition(
        n in 1usize..100,
        seed in any::<u64>()
    ) {
        let mut rng = Rng::new(seed);
        let pred: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
        let act: Vec<bool> = (0..n).map(|_| rng.chance(0.2)).collect();
        let c = Confusion::from_predictions(&pred, &act);
        prop_assert_eq!(c.tp + c.fp + c.tn + c.fn_, n);
        prop_assert!(c.precision() >= 0.0 && c.precision() <= 1.0);
        prop_assert!(c.recall() >= 0.0 && c.recall() <= 1.0);
    }

    #[test]
    fn auc_is_flip_symmetric(
        probs in prop::collection::vec(0.0f32..1.0, 6..60),
        seed in any::<u64>()
    ) {
        let mut rng = Rng::new(seed);
        let labels: Vec<bool> = probs.iter().map(|_| rng.chance(0.4)).collect();
        let auc = roc_auc(&probs, &labels);
        let flipped: Vec<f32> = probs.iter().map(|p| 1.0 - p).collect();
        let auc_flipped = roc_auc(&flipped, &labels);
        prop_assert!((auc + auc_flipped - 1.0).abs() < 1e-9
            // degenerate single-class case returns 0.5 for both
            || (auc == 0.5 && auc_flipped == 0.5));
    }

    #[test]
    fn rng_below_always_in_range(seed in any::<u64>(), n in 1usize..1000) {
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn candidate_encoding_stays_in_cube(seed in any::<u64>()) {
        let families = automl::space::sklearn_families();
        let mut rng = Rng::new(seed);
        let c = automl::space::Candidate::sample(&families, &mut rng);
        let enc = c.encode(&families);
        prop_assert!(enc.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let p = c.perturb(0.3, &mut rng);
        prop_assert!(p.params.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
