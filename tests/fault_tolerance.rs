//! Fault-tolerance contract: a poisoned trial must never take down a run.
//!
//! Each AutoML engine is fitted with deterministic faults injected at
//! exact trial indices — NaN scores, mid-fit panics, hard failures,
//! inflated costs — and must (a) complete the search, (b) quarantine the
//! poisoned candidate on the leaderboard with its failure reason, (c)
//! surface the failure in the obs trial stream, and (d) stay byte-
//! identical across thread counts even while failing.
//!
//! The thread override and the obs event ring are process-global, so the
//! engine tests serialize on one lock (this binary is its own process;
//! other test binaries are unaffected).

use automl::fault::silence_injected_panic_output;
use automl::gluon_like::AutoGluonStyle;
use automl::h2o_like::H2oStyle;
use automl::halving::SuccessiveHalving;
use automl::sklearn_like::AutoSklearnStyle;
use automl::{AutoMlSystem, Budget, Deadline, Fault, FaultPlan, FitReport, ResumePolicy};
use linalg::{Matrix, Rng};
use ml::calibrate::{average_precision, pr_curve, PlattScaler};
use ml::dataset::TabularData;
use ml::metrics::{best_f1_threshold, f1_at_threshold, roc_auc};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Serializes tests that flip the global `par` thread override or read
/// the global obs event ring.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn blob_data(n: usize, seed: u64) -> TabularData {
    let mut rng = Rng::new(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let pos = rng.chance(0.3);
        let c = if pos { 1.1f32 } else { -1.1 };
        rows.push(vec![c + rng.normal(), -c + rng.normal(), rng.normal()]);
        y.push(if pos { 1.0 } else { 0.0 });
    }
    TabularData::new(Matrix::from_rows(&rows), y)
}

type MakeEngine = fn(FaultPlan) -> Box<dyn AutoMlSystem>;

/// Every engine, constructible with an explicit fault plan.
fn engines() -> Vec<(&'static str, MakeEngine)> {
    vec![
        ("AutoSklearn", |p| {
            Box::new(AutoSklearnStyle::with_faults(7, p))
        }),
        ("AutoGluon", |p| Box::new(AutoGluonStyle::with_faults(7, p))),
        ("H2OAutoML", |p| Box::new(H2oStyle::with_faults(7, p))),
        ("SuccessiveHalving", |p| {
            Box::new(SuccessiveHalving::with_faults(7, p))
        }),
    ]
}

fn fit_with(make: MakeEngine, plan: FaultPlan, hours: f64) -> (FitReport, Vec<f32>) {
    let train = blob_data(220, 31);
    let valid = blob_data(80, 32);
    let mut sys = make(plan);
    let mut budget = Budget::hours(hours).unwrap();
    let report = sys.fit(&train, &valid, &mut budget).unwrap();
    let probs = sys.predict_proba(&valid.x);
    (report, probs)
}

/// [`fit_with`] through the crash-safe entry point.
fn fit_resumable_with(
    make: MakeEngine,
    plan: FaultPlan,
    hours: f64,
    policy: &ResumePolicy,
    deadline: Deadline,
) -> Result<(FitReport, Vec<f32>), automl::TrialError> {
    let train = blob_data(220, 31);
    let valid = blob_data(80, 32);
    let mut sys = make(plan);
    let mut budget = Budget::hours(hours).unwrap();
    let report = sys.fit_resumable(&train, &valid, &mut budget, policy, deadline)?;
    let probs = sys.predict_proba(&valid.x);
    Ok((report, probs))
}

/// Unique scratch journal path for one test scenario.
fn tmp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "em_fault_tolerance_{}_{tag}.jsonl",
        std::process::id()
    ))
}

/// The shared contract: the run completes, the poisoned candidate is on
/// the leaderboard as a failure with the expected reason, it never wins,
/// and the obs trial stream carries the error.
fn poisoned_run_is_quarantined(fault: Fault, expected_kind: &str) {
    let _g = guard();
    silence_injected_panic_output();
    for (name, make) in engines() {
        obs::reset();
        let (report, probs) = fit_with(make, FaultPlan::none().inject(1, fault), 0.4);

        let failed = report.failed_trials();
        assert!(
            !failed.is_empty(),
            "{name}: injected fault left no failed trial on the leaderboard"
        );
        for entry in &failed {
            let err = entry.error.as_ref().unwrap();
            assert_eq!(err.kind(), expected_kind, "{name}: wrong failure reason");
            assert_eq!(
                entry.val_f1,
                f64::NEG_INFINITY,
                "{name}: failed entry must score -inf, never NaN"
            );
        }
        // the run still produced a usable predictor from the survivors
        let best = report.leaderboard.best().unwrap();
        assert!(best.succeeded(), "{name}: a failed trial won the board");
        assert!(
            report.leaderboard.len() > report.leaderboard.n_failed(),
            "{name}: no surviving trials"
        );
        assert!(report.val_f1.is_finite(), "{name}: non-finite run score");
        assert!(
            probs.iter().all(|p| p.is_finite()),
            "{name}: non-finite predictions after quarantine"
        );
        // the failure is visible in the telemetry stream too
        let events = obs::recent_trials(Some(name));
        let errored: Vec<_> = events.iter().filter(|e| e.error.is_some()).collect();
        assert!(
            !errored.is_empty(),
            "{name}: no errored trial event in the obs stream"
        );
        assert!(
            errored
                .iter()
                .all(|e| e.val_f1 == f64::NEG_INFINITY && !e.val_f1.is_nan()),
            "{name}: errored events must carry -inf scores"
        );
    }
}

#[test]
fn nan_poisoned_trial_is_quarantined_and_run_completes() {
    poisoned_run_is_quarantined(Fault::NanScore, "non_finite_score");
}

#[test]
fn panicking_trial_is_quarantined_and_run_completes() {
    poisoned_run_is_quarantined(Fault::Panic, "fit_panic");
}

#[test]
fn failing_trial_is_quarantined_and_run_completes() {
    poisoned_run_is_quarantined(Fault::Fail, "injected");
}

#[test]
fn faulted_reports_are_thread_count_invariant() {
    // the acceptance bar: byte-identical FitReports at 1 and 4 workers
    // *while trials are failing* — a lost worker or a reordered failure
    // would show up here
    let _g = guard();
    silence_injected_panic_output();
    let plan = || {
        FaultPlan::none()
            .inject(0, Fault::Fail)
            .inject(1, Fault::NanScore)
            .inject(2, Fault::Panic)
            .inject(3, Fault::InflateCost(2.5))
    };
    for (name, make) in engines() {
        // enough budget that every engine retains at least one survivor
        par::set_threads(1);
        let (r1, p1) = fit_with(make, plan(), 1.0);
        par::reset_threads();
        par::set_threads(4);
        let (r4, p4) = fit_with(make, plan(), 1.0);
        par::reset_threads();
        assert_eq!(
            r1, r4,
            "{name}: faulted FitReport differs across thread counts"
        );
        assert_eq!(
            p1, p4,
            "{name}: faulted predictions differ across thread counts"
        );
        assert!(
            r1.leaderboard.n_failed() >= 1,
            "{name}: plan injected nothing"
        );
    }
}

#[test]
fn inflated_cost_is_charged_to_the_trial() {
    let _g = guard();
    for (name, make) in engines() {
        let (base, _) = fit_with(make, FaultPlan::none(), 0.4);
        let (inflated, _) = fit_with(
            make,
            FaultPlan::none().inject(0, Fault::InflateCost(3.0)),
            0.4,
        );
        let b0 = &base.leaderboard.entries()[0];
        let i0 = &inflated.leaderboard.entries()[0];
        assert!(
            (i0.cost_units - b0.cost_units * 3.0).abs() < 1e-9,
            "{name}: trial 0 charged {} units, expected {}",
            i0.cost_units,
            b0.cost_units * 3.0
        );
        assert!(
            i0.succeeded(),
            "{name}: cost inflation must not fail the trial"
        );
    }
}

#[test]
fn all_trials_failing_is_a_typed_run_error_not_a_panic() {
    let _g = guard();
    // fail every trial the engines could possibly plan under this budget
    let mut plan = FaultPlan::none();
    for i in 0..512 {
        plan = plan.inject(i, Fault::Fail);
    }
    for (name, make) in engines() {
        let train = blob_data(220, 31);
        let valid = blob_data(80, 32);
        let mut sys = make(plan.clone());
        let mut budget = Budget::hours(0.4).unwrap();
        match sys.fit(&train, &valid, &mut budget) {
            Err(err) => assert_eq!(err.kind(), "all_trials_failed", "{name}"),
            // AutoGluon deliberately degrades to a majority-class
            // constant predictor instead of erroring
            Ok(report) => {
                assert_eq!(name, "AutoGluon", "{name}: expected a run error");
                assert!(
                    report.val_f1.is_finite(),
                    "{name}: fallback must score finitely"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Metric-level properties: poisoned probabilities and degenerate labels
// must never panic or hang the scoring path.
// ---------------------------------------------------------------------------

fn poisoned_probs(seed: u64) -> (Vec<f32>, Vec<bool>) {
    let mut rng = Rng::new(seed);
    let n = 40 + rng.below(60);
    let mut probs = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let p = match rng.below(8) {
            0 => f32::NAN,
            1 => f32::INFINITY,
            2 => f32::NEG_INFINITY,
            _ => rng.f64() as f32,
        };
        probs.push(p);
        labels.push(i % 3 == 0);
    }
    (probs, labels)
}

#[test]
fn metrics_survive_non_finite_probabilities() {
    for seed in 0..32u64 {
        let (probs, labels) = poisoned_probs(seed);
        // none of these may panic or loop forever; scores that come back
        // must be usable (finite or at worst NaN — never an abort)
        let (thr, f1) = best_f1_threshold(&probs, &labels);
        assert!(!f1.is_infinite(), "seed {seed}: infinite F1");
        let _ = f1_at_threshold(&probs, &labels, thr);
        let _ = roc_auc(&probs, &labels);
        let _ = average_precision(&probs, &labels);
        let curve = pr_curve(&probs, &labels);
        assert!(
            curve.len() <= probs.len() + 2,
            "seed {seed}: runaway PR curve"
        );
        let scaler = PlattScaler::fit(&probs, &labels);
        for p in scaler.transform(&probs) {
            assert!(!p.is_infinite(), "seed {seed}: calibration blew up");
        }
    }
}

#[test]
fn metrics_survive_single_class_labels() {
    let mut rng = Rng::new(99);
    let probs: Vec<f32> = (0..50).map(|_| rng.f64() as f32).collect();
    for constant in [false, true] {
        let labels = vec![constant; probs.len()];
        let (thr, f1) = best_f1_threshold(&probs, &labels);
        assert!(
            f1.is_finite(),
            "single-class F1 must follow the 0.0 convention"
        );
        assert!(f1_at_threshold(&probs, &labels, thr).is_finite());
        assert!(!average_precision(&probs, &labels).is_infinite());
        let _ = roc_auc(&probs, &labels);
        let _ = pr_curve(&probs, &labels);
        let scaler = PlattScaler::fit(&probs, &labels);
        assert!(scaler.transform(&probs).iter().all(|p| !p.is_infinite()));
    }
}

#[test]
fn engines_survive_single_class_training_data() {
    let _g = guard();
    // all-negative training labels: every fold and threshold sweep sees
    // one class; the run must end in Ok or a typed error, never a panic
    let mut rng = Rng::new(5);
    let rows: Vec<Vec<f32>> = (0..120)
        .map(|_| vec![rng.normal(), rng.normal(), rng.normal()])
        .collect();
    let train = TabularData::new(Matrix::from_rows(&rows), vec![0.0; 120]);
    let valid = blob_data(60, 6);
    for (name, make) in engines() {
        let mut sys = make(FaultPlan::none());
        let mut budget = Budget::hours(0.2).unwrap();
        if let Ok(report) = sys.fit(&train, &valid, &mut budget) {
            assert!(
                report.val_f1.is_finite(),
                "{name}: NaN leaked into the report"
            );
            assert!(
                report
                    .leaderboard
                    .entries()
                    .iter()
                    .all(|e| !e.val_f1.is_nan()),
                "{name}: NaN on the leaderboard"
            );
        }
    }
}

#[test]
fn fault_plan_env_spec_matches_builder() {
    // the documented EXPERIMENTS.md reproduction spec parses to the same
    // plan the tests build programmatically
    let parsed = FaultPlan::parse("fail@0, nan@1, panic@2, cost@3=2.5, hang@4, kill@5");
    let built = FaultPlan::none()
        .inject(0, Fault::Fail)
        .inject(1, Fault::NanScore)
        .inject(2, Fault::Panic)
        .inject(3, Fault::InflateCost(2.5))
        .inject(4, Fault::Hang)
        .inject(5, Fault::Kill);
    assert_eq!(parsed, Ok(built));
}

// ---------------------------------------------------------------------------
// Crash safety: kill-and-resume byte-identity, deadline-bounded anytime
// results, and journaled budget accounting.
// ---------------------------------------------------------------------------

/// The tentpole acceptance bar: for every engine, a search SIGKILL'd (in
/// process: an unwinding abort outside the trial boundary) after K trials
/// and then resumed from its journal must produce a `FitReport` — and
/// predictions — byte-identical to the run that was never interrupted, at
/// 1 and at 4 threads.
#[test]
fn kill_and_resume_is_byte_identical_to_the_uninterrupted_run() {
    let _g = guard();
    silence_injected_panic_output();
    for threads in [1usize, 4] {
        par::set_threads(threads);
        for (name, make) in engines() {
            let (baseline, base_probs) = fit_with(make, FaultPlan::none(), 0.6);
            let planned = baseline.leaderboard.len() as u64;
            // kill early (first parallel batch, nothing journaled yet) and
            // late (prior batches already journaled, so resume must replay)
            let mut kills = vec![1u64];
            if planned > 3 {
                kills.push(planned - 2);
            }
            for k in kills {
                let path = tmp_journal(&format!("kill_{name}_{threads}t_{k}"));
                let _ = std::fs::remove_file(&path);
                let policy = ResumePolicy::Resume(path.clone());
                let unwound = catch_unwind(AssertUnwindSafe(|| {
                    fit_resumable_with(
                        make,
                        FaultPlan::none().inject(k, Fault::Kill),
                        0.6,
                        &policy,
                        Deadline::none(),
                    )
                }));
                assert!(
                    unwound.is_err(),
                    "{name}@{threads}t: kill@{k} did not abort the search"
                );
                assert!(
                    path.exists(),
                    "{name}@{threads}t: no journal survived the kill"
                );
                let (resumed, resumed_probs) =
                    fit_resumable_with(make, FaultPlan::none(), 0.6, &policy, Deadline::none())
                        .unwrap_or_else(|e| panic!("{name}@{threads}t: resume failed: {e}"));
                assert_eq!(
                    baseline, resumed,
                    "{name}@{threads}t: kill@{k} resumed FitReport differs from uninterrupted"
                );
                assert_eq!(
                    base_probs, resumed_probs,
                    "{name}@{threads}t: kill@{k} resumed predictions differ"
                );
                let _ = std::fs::remove_file(&path);
            }
        }
        par::reset_threads();
    }
}

/// Resume equivalence must also hold while *other* faults are firing: a
/// quarantined failure recorded before the kill is replayed from the
/// journal (never re-run), and an inflated charge is restored verbatim.
#[test]
fn kill_and_resume_replays_failures_and_charges_under_concurrent_faults() {
    let _g = guard();
    silence_injected_panic_output();
    let plan = || {
        FaultPlan::none()
            .inject(0, Fault::InflateCost(2.5))
            .inject(2, Fault::NanScore)
    };
    par::set_threads(4);
    for (name, make) in engines() {
        let (baseline, base_probs) = fit_with(make, plan(), 0.6);
        let planned = baseline.leaderboard.len() as u64;
        // the last trial the engine actually plans under this budget —
        // guaranteed to execute, so the kill is guaranteed to fire (a
        // collision with a faulted index just means kill wins that trial)
        let k = (planned - 1).clamp(1, 5);
        let path = tmp_journal(&format!("faulted_kill_{name}"));
        let _ = std::fs::remove_file(&path);
        let policy = ResumePolicy::Resume(path.clone());
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            fit_resumable_with(
                make,
                plan().inject(k, Fault::Kill),
                0.6,
                &policy,
                Deadline::none(),
            )
        }));
        assert!(unwound.is_err(), "{name}: kill@{k} did not abort");
        let (resumed, resumed_probs) =
            fit_resumable_with(make, plan(), 0.6, &policy, Deadline::none())
                .unwrap_or_else(|e| panic!("{name}: faulted resume failed: {e}"));
        assert_eq!(baseline, resumed, "{name}: faulted resume diverged");
        assert_eq!(base_probs, resumed_probs, "{name}: predictions diverged");
        assert!(
            resumed.leaderboard.n_failed() >= 1,
            "{name}: the NaN fault should have quarantined a trial"
        );
        let _ = std::fs::remove_file(&path);
    }
    par::reset_threads();
}

/// Resume refuses a journal written by a different search configuration
/// instead of silently mixing incompatible trials.
#[test]
fn resume_refuses_a_journal_from_a_different_configuration() {
    let _g = guard();
    let path = tmp_journal("config_mismatch");
    let _ = std::fs::remove_file(&path);
    let policy = ResumePolicy::Resume(path.clone());
    // seed 7 writes the journal…
    fit_resumable_with(
        |p| Box::new(AutoSklearnStyle::with_faults(7, p)),
        FaultPlan::none(),
        0.4,
        &policy,
        Deadline::none(),
    )
    .unwrap();
    // …and a seed-8 search must refuse to resume from it
    let err = fit_resumable_with(
        |p| Box::new(AutoSklearnStyle::with_faults(8, p)),
        FaultPlan::none(),
        0.4,
        &policy,
        Deadline::none(),
    )
    .unwrap_err();
    assert_eq!(err.kind(), "resume_mismatch", "got: {err}");
    let _ = std::fs::remove_file(&path);
}

/// Deadline-bounded anytime behavior: a search with a hung trial and a
/// tight wall-clock deadline still returns a valid best-so-far report,
/// with the hung trial quarantined as `deadline_exceeded`, well within
/// deadline + one trial-cancellation grace period (and far under the
/// 60 s hang safety valve).
#[test]
fn deadline_returns_best_so_far_with_hung_trials_quarantined() {
    let _g = guard();
    silence_injected_panic_output();
    for (name, make) in engines() {
        let start = Instant::now();
        let result = fit_resumable_with(
            make,
            FaultPlan::none().inject(2, Fault::Hang),
            0.8,
            &ResumePolicy::Fresh,
            Deadline::within(Duration::from_millis(300)),
        );
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(30),
            "{name}: deadline overrun: took {elapsed:?}"
        );
        let (report, probs) =
            result.unwrap_or_else(|e| panic!("{name}: no best-so-far report: {e}"));
        assert!(report.val_f1.is_finite(), "{name}: non-finite best-so-far");
        assert!(
            probs.iter().all(|p| p.is_finite()),
            "{name}: non-finite predictions"
        );
        let abandoned = report
            .failed_trials()
            .iter()
            .filter(|e| {
                e.error
                    .as_ref()
                    .is_some_and(|err| err.kind() == "deadline_exceeded")
            })
            .count();
        assert!(
            abandoned >= 1,
            "{name}: hung trial not quarantined as deadline_exceeded"
        );
    }
}

/// Satellite 6: the units charged to a deadline-abandoned trial are
/// recorded in the journal and restored — not recomputed, not re-run
/// (re-running would hang again), not double-charged — when the search
/// resumes without the deadline.
#[test]
fn deadline_abandoned_charge_is_replayed_not_double_charged() {
    let _g = guard();
    silence_injected_panic_output();
    let make: MakeEngine = |p| Box::new(AutoSklearnStyle::with_faults(7, p));
    let plan = || FaultPlan::none().inject(1, Fault::Hang);
    let path = tmp_journal("deadline_charge");
    let _ = std::fs::remove_file(&path);
    let policy = ResumePolicy::Resume(path.clone());
    // first run: the hang at trial 1 is abandoned when the 250 ms
    // deadline fires, charged, journaled, and the run ends early
    let (first, _) = fit_resumable_with(
        make,
        plan(),
        0.6,
        &policy,
        Deadline::within(Duration::from_millis(250)),
    )
    .unwrap();
    let a1 = &first.leaderboard.entries()[1];
    assert_eq!(
        a1.error.as_ref().map(|e| e.kind()),
        Some("deadline_exceeded"),
        "trial 1 should have been abandoned at the deadline"
    );
    // resumed run, no deadline: the abandoned trial is replayed from the
    // journal — if it re-ran, the hang fault would spin for the 60 s
    // safety valve, so finishing quickly proves the replay
    let start = Instant::now();
    let (second, _) = fit_resumable_with(make, plan(), 0.6, &policy, Deadline::none()).unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "resume re-ran the hung trial instead of replaying it"
    );
    let b1 = &second.leaderboard.entries()[1];
    assert_eq!(
        b1.error.as_ref().map(|e| e.kind()),
        Some("deadline_exceeded"),
        "the journaled abandonment must survive the resume"
    );
    assert_eq!(
        a1.cost_units.to_bits(),
        b1.cost_units.to_bits(),
        "abandoned-trial charge must be restored verbatim, not recomputed"
    );
    // the resumed (undeadlined) run continues past where the first stopped
    assert!(
        second.leaderboard.len() >= first.leaderboard.len(),
        "resume lost journaled trials"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn fault_plan_rejects_malformed_specs() {
    for bad in [
        "fail",         // missing @trial
        "fail@x",       // bad trial index
        "explode@1",    // unknown kind
        "cost@1",       // missing multiplier
        "cost@1=zero",  // bad multiplier
        "cost@1=-2",    // non-positive multiplier
        "nan@1=3",      // argument on an arg-less kind
        "fail@0 nan@1", // missing comma separator
    ] {
        let err = FaultPlan::parse(bad).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("expected"),
            "{bad:?}: error should show the expected forms, got {msg:?}"
        );
    }
}
