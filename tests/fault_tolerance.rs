//! Fault-tolerance contract: a poisoned trial must never take down a run.
//!
//! Each AutoML engine is fitted with deterministic faults injected at
//! exact trial indices — NaN scores, mid-fit panics, hard failures,
//! inflated costs — and must (a) complete the search, (b) quarantine the
//! poisoned candidate on the leaderboard with its failure reason, (c)
//! surface the failure in the obs trial stream, and (d) stay byte-
//! identical across thread counts even while failing.
//!
//! The thread override and the obs event ring are process-global, so the
//! engine tests serialize on one lock (this binary is its own process;
//! other test binaries are unaffected).

use automl::fault::silence_injected_panic_output;
use automl::gluon_like::AutoGluonStyle;
use automl::h2o_like::H2oStyle;
use automl::halving::SuccessiveHalving;
use automl::sklearn_like::AutoSklearnStyle;
use automl::{AutoMlSystem, Budget, Fault, FaultPlan, FitReport};
use linalg::{Matrix, Rng};
use ml::calibrate::{average_precision, pr_curve, PlattScaler};
use ml::dataset::TabularData;
use ml::metrics::{best_f1_threshold, f1_at_threshold, roc_auc};
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that flip the global `par` thread override or read
/// the global obs event ring.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn blob_data(n: usize, seed: u64) -> TabularData {
    let mut rng = Rng::new(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let pos = rng.chance(0.3);
        let c = if pos { 1.1f32 } else { -1.1 };
        rows.push(vec![c + rng.normal(), -c + rng.normal(), rng.normal()]);
        y.push(if pos { 1.0 } else { 0.0 });
    }
    TabularData::new(Matrix::from_rows(&rows), y)
}

type MakeEngine = fn(FaultPlan) -> Box<dyn AutoMlSystem>;

/// Every engine, constructible with an explicit fault plan.
fn engines() -> Vec<(&'static str, MakeEngine)> {
    vec![
        ("AutoSklearn", |p| {
            Box::new(AutoSklearnStyle::with_faults(7, p))
        }),
        ("AutoGluon", |p| Box::new(AutoGluonStyle::with_faults(7, p))),
        ("H2OAutoML", |p| Box::new(H2oStyle::with_faults(7, p))),
        ("SuccessiveHalving", |p| {
            Box::new(SuccessiveHalving::with_faults(7, p))
        }),
    ]
}

fn fit_with(make: MakeEngine, plan: FaultPlan, hours: f64) -> (FitReport, Vec<f32>) {
    let train = blob_data(220, 31);
    let valid = blob_data(80, 32);
    let mut sys = make(plan);
    let mut budget = Budget::hours(hours).unwrap();
    let report = sys.fit(&train, &valid, &mut budget).unwrap();
    let probs = sys.predict_proba(&valid.x);
    (report, probs)
}

/// The shared contract: the run completes, the poisoned candidate is on
/// the leaderboard as a failure with the expected reason, it never wins,
/// and the obs trial stream carries the error.
fn poisoned_run_is_quarantined(fault: Fault, expected_kind: &str) {
    let _g = guard();
    silence_injected_panic_output();
    for (name, make) in engines() {
        obs::reset();
        let (report, probs) = fit_with(make, FaultPlan::none().inject(1, fault), 0.4);

        let failed = report.failed_trials();
        assert!(
            !failed.is_empty(),
            "{name}: injected fault left no failed trial on the leaderboard"
        );
        for entry in &failed {
            let err = entry.error.as_ref().unwrap();
            assert_eq!(err.kind(), expected_kind, "{name}: wrong failure reason");
            assert_eq!(
                entry.val_f1,
                f64::NEG_INFINITY,
                "{name}: failed entry must score -inf, never NaN"
            );
        }
        // the run still produced a usable predictor from the survivors
        let best = report.leaderboard.best().unwrap();
        assert!(best.succeeded(), "{name}: a failed trial won the board");
        assert!(
            report.leaderboard.len() > report.leaderboard.n_failed(),
            "{name}: no surviving trials"
        );
        assert!(report.val_f1.is_finite(), "{name}: non-finite run score");
        assert!(
            probs.iter().all(|p| p.is_finite()),
            "{name}: non-finite predictions after quarantine"
        );
        // the failure is visible in the telemetry stream too
        let events = obs::recent_trials(Some(name));
        let errored: Vec<_> = events.iter().filter(|e| e.error.is_some()).collect();
        assert!(
            !errored.is_empty(),
            "{name}: no errored trial event in the obs stream"
        );
        assert!(
            errored
                .iter()
                .all(|e| e.val_f1 == f64::NEG_INFINITY && !e.val_f1.is_nan()),
            "{name}: errored events must carry -inf scores"
        );
    }
}

#[test]
fn nan_poisoned_trial_is_quarantined_and_run_completes() {
    poisoned_run_is_quarantined(Fault::NanScore, "non_finite_score");
}

#[test]
fn panicking_trial_is_quarantined_and_run_completes() {
    poisoned_run_is_quarantined(Fault::Panic, "fit_panic");
}

#[test]
fn failing_trial_is_quarantined_and_run_completes() {
    poisoned_run_is_quarantined(Fault::Fail, "injected");
}

#[test]
fn faulted_reports_are_thread_count_invariant() {
    // the acceptance bar: byte-identical FitReports at 1 and 4 workers
    // *while trials are failing* — a lost worker or a reordered failure
    // would show up here
    let _g = guard();
    silence_injected_panic_output();
    let plan = || {
        FaultPlan::none()
            .inject(0, Fault::Fail)
            .inject(1, Fault::NanScore)
            .inject(2, Fault::Panic)
            .inject(3, Fault::InflateCost(2.5))
    };
    for (name, make) in engines() {
        // enough budget that every engine retains at least one survivor
        par::set_threads(1);
        let (r1, p1) = fit_with(make, plan(), 1.0);
        par::reset_threads();
        par::set_threads(4);
        let (r4, p4) = fit_with(make, plan(), 1.0);
        par::reset_threads();
        assert_eq!(
            r1, r4,
            "{name}: faulted FitReport differs across thread counts"
        );
        assert_eq!(
            p1, p4,
            "{name}: faulted predictions differ across thread counts"
        );
        assert!(
            r1.leaderboard.n_failed() >= 1,
            "{name}: plan injected nothing"
        );
    }
}

#[test]
fn inflated_cost_is_charged_to_the_trial() {
    let _g = guard();
    for (name, make) in engines() {
        let (base, _) = fit_with(make, FaultPlan::none(), 0.4);
        let (inflated, _) = fit_with(
            make,
            FaultPlan::none().inject(0, Fault::InflateCost(3.0)),
            0.4,
        );
        let b0 = &base.leaderboard.entries()[0];
        let i0 = &inflated.leaderboard.entries()[0];
        assert!(
            (i0.cost_units - b0.cost_units * 3.0).abs() < 1e-9,
            "{name}: trial 0 charged {} units, expected {}",
            i0.cost_units,
            b0.cost_units * 3.0
        );
        assert!(
            i0.succeeded(),
            "{name}: cost inflation must not fail the trial"
        );
    }
}

#[test]
fn all_trials_failing_is_a_typed_run_error_not_a_panic() {
    let _g = guard();
    // fail every trial the engines could possibly plan under this budget
    let mut plan = FaultPlan::none();
    for i in 0..512 {
        plan = plan.inject(i, Fault::Fail);
    }
    for (name, make) in engines() {
        let train = blob_data(220, 31);
        let valid = blob_data(80, 32);
        let mut sys = make(plan.clone());
        let mut budget = Budget::hours(0.4).unwrap();
        match sys.fit(&train, &valid, &mut budget) {
            Err(err) => assert_eq!(err.kind(), "all_trials_failed", "{name}"),
            // AutoGluon deliberately degrades to a majority-class
            // constant predictor instead of erroring
            Ok(report) => {
                assert_eq!(name, "AutoGluon", "{name}: expected a run error");
                assert!(
                    report.val_f1.is_finite(),
                    "{name}: fallback must score finitely"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Metric-level properties: poisoned probabilities and degenerate labels
// must never panic or hang the scoring path.
// ---------------------------------------------------------------------------

fn poisoned_probs(seed: u64) -> (Vec<f32>, Vec<bool>) {
    let mut rng = Rng::new(seed);
    let n = 40 + rng.below(60);
    let mut probs = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let p = match rng.below(8) {
            0 => f32::NAN,
            1 => f32::INFINITY,
            2 => f32::NEG_INFINITY,
            _ => rng.f64() as f32,
        };
        probs.push(p);
        labels.push(i % 3 == 0);
    }
    (probs, labels)
}

#[test]
fn metrics_survive_non_finite_probabilities() {
    for seed in 0..32u64 {
        let (probs, labels) = poisoned_probs(seed);
        // none of these may panic or loop forever; scores that come back
        // must be usable (finite or at worst NaN — never an abort)
        let (thr, f1) = best_f1_threshold(&probs, &labels);
        assert!(!f1.is_infinite(), "seed {seed}: infinite F1");
        let _ = f1_at_threshold(&probs, &labels, thr);
        let _ = roc_auc(&probs, &labels);
        let _ = average_precision(&probs, &labels);
        let curve = pr_curve(&probs, &labels);
        assert!(
            curve.len() <= probs.len() + 2,
            "seed {seed}: runaway PR curve"
        );
        let scaler = PlattScaler::fit(&probs, &labels);
        for p in scaler.transform(&probs) {
            assert!(!p.is_infinite(), "seed {seed}: calibration blew up");
        }
    }
}

#[test]
fn metrics_survive_single_class_labels() {
    let mut rng = Rng::new(99);
    let probs: Vec<f32> = (0..50).map(|_| rng.f64() as f32).collect();
    for constant in [false, true] {
        let labels = vec![constant; probs.len()];
        let (thr, f1) = best_f1_threshold(&probs, &labels);
        assert!(
            f1.is_finite(),
            "single-class F1 must follow the 0.0 convention"
        );
        assert!(f1_at_threshold(&probs, &labels, thr).is_finite());
        assert!(!average_precision(&probs, &labels).is_infinite());
        let _ = roc_auc(&probs, &labels);
        let _ = pr_curve(&probs, &labels);
        let scaler = PlattScaler::fit(&probs, &labels);
        assert!(scaler.transform(&probs).iter().all(|p| !p.is_infinite()));
    }
}

#[test]
fn engines_survive_single_class_training_data() {
    let _g = guard();
    // all-negative training labels: every fold and threshold sweep sees
    // one class; the run must end in Ok or a typed error, never a panic
    let mut rng = Rng::new(5);
    let rows: Vec<Vec<f32>> = (0..120)
        .map(|_| vec![rng.normal(), rng.normal(), rng.normal()])
        .collect();
    let train = TabularData::new(Matrix::from_rows(&rows), vec![0.0; 120]);
    let valid = blob_data(60, 6);
    for (name, make) in engines() {
        let mut sys = make(FaultPlan::none());
        let mut budget = Budget::hours(0.2).unwrap();
        if let Ok(report) = sys.fit(&train, &valid, &mut budget) {
            assert!(
                report.val_f1.is_finite(),
                "{name}: NaN leaked into the report"
            );
            assert!(
                report
                    .leaderboard
                    .entries()
                    .iter()
                    .all(|e| !e.val_f1.is_nan()),
                "{name}: NaN on the leaderboard"
            );
        }
    }
}

#[test]
fn fault_plan_env_spec_matches_builder() {
    // the documented EXPERIMENTS.md reproduction spec parses to the same
    // plan the tests build programmatically
    let parsed = FaultPlan::parse("fail@0, nan@1, panic@2, cost@3=2.5");
    let built = FaultPlan::none()
        .inject(0, Fault::Fail)
        .inject(1, Fault::NanScore)
        .inject(2, Fault::Panic)
        .inject(3, Fault::InflateCost(2.5));
    assert_eq!(parsed, built);
}
