//! Zero-drop model hot-swap: a versioned atomic model pointer
//! ([`HostCell`]), a WAL-journaled swap protocol ([`Reloader`]), and
//! crash recovery to a well-defined version ([`SwapJournal::recover`]).
//!
//! The swap path never touches the request hot path. Loading a new
//! bundle (`em_core::model::load_model` — a deterministic refit with
//! bit-for-bit fingerprint verification) runs on the admin connection's
//! thread; batch workers keep scoring against the old model the whole
//! time. The flip itself is one `RwLock<Arc<_>>` write of a pointer:
//! each worker snapshots the cell **once per microbatch**, so every
//! accepted request is answered by exactly one model version (echoed in
//! the `x-model-version` response header) and a batch can never straddle
//! the swap. Verification failure rolls back — the old model keeps
//! serving and the journal records why.
//!
//! Swap events are journaled append-only (`begin` → `commit`, or
//! `begin` → `rollback`) with an fsync after every record, the same
//! discipline as the search WAL (PR 4). A crash mid-swap therefore
//! leaves either no `commit` (recovery re-serves the previous committed
//! version) or a `commit` (recovery re-serves the new one) — never an
//! ambiguous in-between. [`SwapJournal::recover`] tolerates a torn tail
//! line exactly like `automl::journal` does.

use em_core::model::{load_model, ModelError, ModelHost};
use obs::json::{self, Json};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// One immutable (model, version) pairing. Everything downstream of a
/// snapshot — scoring, threshold, version header — reads from this one
/// struct, so a request can never mix fields from two versions.
pub struct VersionedHost {
    /// The loaded model.
    pub host: Arc<ModelHost>,
    /// Monotonic model version (1 = the boot model, +1 per swap).
    pub version: u64,
}

/// The serving layer's shared, swappable model pointer. Readers
/// ([`snapshot`](HostCell::snapshot)) clone an `Arc` under a read lock —
/// nanoseconds; the only writer is the swap flip. Requests in flight on
/// the old `Arc` finish against the old model; new microbatches see the
/// new one.
pub struct HostCell {
    current: RwLock<Arc<VersionedHost>>,
}

impl HostCell {
    /// A cell serving `host` as `version`.
    pub fn new(host: Arc<ModelHost>, version: u64) -> Arc<Self> {
        Arc::new(Self {
            current: RwLock::new(Arc::new(VersionedHost { host, version })),
        })
    }

    /// The current (model, version) — cheap, lock held only for the
    /// `Arc` clone. Callers hold the snapshot for the whole unit of work
    /// (one microbatch, one health probe) so the unit sees one version.
    pub fn snapshot(&self) -> Arc<VersionedHost> {
        Arc::clone(&self.current.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// The current version number.
    pub fn version(&self) -> u64 {
        self.snapshot().version
    }

    /// Flip to `host`, assigning the next version. Returns it.
    fn swap(&self, host: Arc<ModelHost>) -> u64 {
        let mut cur = self.current.write().unwrap_or_else(|p| p.into_inner());
        let version = cur.version + 1;
        *cur = Arc::new(VersionedHost { host, version });
        version
    }
}

/// What a committed swap looks like after recovery: which version to
/// serve and which bundle file produces it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapRecovery {
    /// The last committed model version.
    pub version: u64,
    /// The bundle path that version was loaded from.
    pub bundle_path: String,
    /// The committed model's fingerprint digest.
    pub digest: String,
}

/// Append-only JSONL journal of swap events, fsync'd per record.
pub struct SwapJournal {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl SwapJournal {
    /// Open (creating or appending) the journal at `path`.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Self {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// The journal's on-disk location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append(&self, record: &str) {
        let mut f = self.file.lock().unwrap_or_else(|p| p.into_inner());
        // a failed journal write must not take serving down — the model
        // swap is correct without it; only crash recovery loses fidelity
        let _ = writeln!(f, "{record}");
        let _ = f.sync_data();
    }

    fn record(&self, event: &str, fields: impl FnOnce(&mut json::Obj)) {
        let mut o = json::Obj::new();
        o.str("event", event);
        fields(&mut o);
        self.append(&o.finish());
    }

    /// Journal the start of a swap attempt.
    pub fn begin(&self, from_version: u64, to_version: u64, bundle_path: &str) {
        self.record("swap.begin", |o| {
            o.u64("from_version", from_version)
                .u64("to_version", to_version)
                .str("path", bundle_path);
        });
    }

    /// Journal a committed swap: `version` is now the serving model.
    pub fn commit(&self, version: u64, bundle_path: &str, digest: &str) {
        self.record("swap.commit", |o| {
            o.u64("version", version)
                .str("path", bundle_path)
                .str("digest", digest);
        });
    }

    /// Journal a rolled-back swap attempt (old model keeps serving).
    pub fn rollback(&self, to_version: u64, reason: &str) {
        self.record("swap.rollback", |o| {
            o.u64("to_version", to_version).str("reason", reason);
        });
    }

    /// Read a journal and return the last **committed** swap, if any.
    /// Recovery is the shared WAL scan ([`obs::wal::scan_jsonl`]): it
    /// stops at the first torn or unparseable line (crash mid-append),
    /// exactly like the search WAL's torn-tail truncation; a `begin`
    /// without a `commit` simply never became the serving version. A
    /// missing file means no swaps.
    pub fn recover(path: &Path) -> std::io::Result<Option<SwapRecovery>> {
        let bytes = match std::fs::read(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut last = None;
        for line in obs::wal::scan_jsonl(&bytes) {
            let v = line.value;
            if v.get("event").and_then(Json::as_str) != Some("swap.commit") {
                continue;
            }
            let (Some(version), Some(bundle_path)) = (
                v.get("version").and_then(Json::as_u64),
                v.get("path").and_then(Json::as_str),
            ) else {
                continue;
            };
            last = Some(SwapRecovery {
                version,
                bundle_path: bundle_path.to_owned(),
                digest: v
                    .get("digest")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_owned(),
            });
        }
        Ok(last)
    }
}

/// Why a reload attempt was refused or failed. The serving layer maps
/// these onto typed HTTP responses; in every failure case the old model
/// keeps serving untouched.
#[derive(Debug)]
pub enum ReloadError {
    /// Another reload is already in progress (HTTP 409).
    Busy,
    /// Loading/verifying the bundle failed (HTTP 500, rolled back).
    Load(ModelError),
    /// The new model's schema differs from the serving one — swapping it
    /// under live connections would break request parsing (HTTP 409,
    /// rolled back).
    SchemaMismatch,
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::Busy => write!(f, "another reload is already in progress"),
            ReloadError::Load(e) => write!(f, "bundle load failed: {e}"),
            ReloadError::SchemaMismatch => {
                write!(f, "new model's schema differs from the serving model")
            }
        }
    }
}

impl std::error::Error for ReloadError {}

/// A committed swap, as reported to the admin caller.
#[derive(Debug, Clone)]
pub struct SwapOutcome {
    /// Version before the swap.
    pub previous: u64,
    /// Version now serving.
    pub version: u64,
    /// Fingerprint digest of the new model.
    pub digest: String,
    /// Winning system name of the new model.
    pub system: String,
    /// Wall-clock milliseconds the load + verify took (off hot path).
    pub load_ms: u64,
}

/// The swap orchestrator: serializes reload attempts, journals the
/// protocol, flips the [`HostCell`] on success.
pub struct Reloader {
    cell: Arc<HostCell>,
    journal: Option<SwapJournal>,
    in_progress: Mutex<()>,
}

impl Reloader {
    /// A reloader flipping `cell`, journaling into `journal` when given.
    pub fn new(cell: Arc<HostCell>, journal: Option<SwapJournal>) -> Self {
        Self {
            cell,
            journal,
            in_progress: Mutex::new(()),
        }
    }

    /// Load the bundle at `path` (slow: deterministic refit +
    /// bit-verification, on the caller's thread), then atomically swap
    /// it in. Exactly one reload runs at a time; concurrent calls get
    /// [`ReloadError::Busy`] instead of queueing, so an operator
    /// retrying a slow reload cannot stack refits.
    pub fn reload_from_path(&self, path: &Path) -> Result<SwapOutcome, ReloadError> {
        let Ok(_guard) = self.in_progress.try_lock() else {
            obs::counter("serve.swap.busy").inc();
            return Err(ReloadError::Busy);
        };
        let before = self.cell.snapshot();
        let to_version = before.version + 1;
        let path_str = path.display().to_string();
        if let Some(j) = &self.journal {
            j.begin(before.version, to_version, &path_str);
        }
        let t0 = Instant::now();
        let loaded = match load_model(path) {
            Ok(h) => h,
            Err(e) => {
                let reason = e.to_string();
                if let Some(j) = &self.journal {
                    j.rollback(to_version, &reason);
                }
                obs::counter("serve.swap.failed").inc();
                obs::emit(
                    "serve.swap.rollback",
                    &[
                        ("to_version", obs::Value::U64(to_version)),
                        ("reason", obs::Value::Str(reason)),
                    ],
                );
                return Err(ReloadError::Load(e));
            }
        };
        if !before.host.swap_compatible(&loaded) {
            if let Some(j) = &self.journal {
                j.rollback(to_version, "schema mismatch");
            }
            obs::counter("serve.swap.failed").inc();
            return Err(ReloadError::SchemaMismatch);
        }
        let load_ms = t0.elapsed().as_millis() as u64;
        let digest = loaded.fingerprint_digest();
        let system = loaded.report().system.to_owned();
        let version = self.cell.swap(Arc::new(loaded));
        if let Some(j) = &self.journal {
            j.commit(version, &path_str, &digest);
        }
        obs::counter("serve.swap.count").inc();
        obs::gauge("serve.model.version").set(version as f64);
        obs::emit(
            "serve.swap.commit",
            &[
                ("version", obs::Value::U64(version)),
                ("digest", obs::Value::Str(digest.clone())),
                ("load_ms", obs::Value::U64(load_ms)),
            ],
        );
        Ok(SwapOutcome {
            previous: before.version,
            version,
            digest,
            system,
            load_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("em_serve_reload_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn recover_returns_last_commit_and_tolerates_torn_tail() {
        let path = tmp("journal_torn.jsonl");
        let _ = std::fs::remove_file(&path);
        assert_eq!(SwapJournal::recover(&path).unwrap(), None, "missing file");
        let j = SwapJournal::open(&path).unwrap();
        j.begin(1, 2, "/m/b2.json");
        j.commit(2, "/m/b2.json", "abcd");
        j.begin(2, 3, "/m/b3.json");
        j.rollback(3, "fingerprint mismatch");
        j.begin(2, 3, "/m/b3b.json");
        j.commit(3, "/m/b3b.json", "ef01");
        // crash mid-append: a torn begin line with no newline-complete JSON
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "{{\"event\":\"swap.begin\",\"from_ver").unwrap();
        }
        let rec = SwapJournal::recover(&path).unwrap().expect("a commit");
        assert_eq!(
            rec,
            SwapRecovery {
                version: 3,
                bundle_path: "/m/b3b.json".into(),
                digest: "ef01".into()
            }
        );
    }

    #[test]
    fn begin_without_commit_recovers_to_previous_commit() {
        let path = tmp("journal_midswap.jsonl");
        let _ = std::fs::remove_file(&path);
        let j = SwapJournal::open(&path).unwrap();
        j.commit(2, "/m/b2.json", "abcd");
        j.begin(2, 3, "/m/b3.json"); // crash here: no commit, no rollback
        let rec = SwapJournal::recover(&path).unwrap().expect("a commit");
        assert_eq!(rec.version, 2);
        assert_eq!(rec.bundle_path, "/m/b2.json");
    }
}
