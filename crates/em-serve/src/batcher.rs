//! The request coalescer: many small `/match` requests become few
//! GEMM-sized `match_proba` calls.
//!
//! Connection threads [`submit`](Batcher::submit) their pairs into a
//! bounded queue and block on a per-job waiter; worker threads pull
//! *microbatches* off the queue — up to `max_batch` pairs, or whatever
//! accumulated within a `linger` window of the oldest queued job — run
//! one fused encode→scale→predict pass and scatter the results back to
//! the waiters. Because every stage of
//! [`em_core::model::ModelHost::match_proba`] is row-independent, the
//! probabilities are bit-identical however requests get grouped: the
//! coalescer changes latency and throughput, never answers.
//!
//! Each microbatch snapshots the [`HostCell`] exactly once, so all of a
//! batch's requests are scored by **one model version** — the hot-swap
//! atomicity unit (see [`crate::reload`]). The scatter carries the
//! version and that version's threshold back to the waiter, so responses
//! can never mix one model's probability with another's threshold.
//!
//! Admission is explicit: a full queue rejects with
//! [`Rejected::Overloaded`] (HTTP 429), a draining batcher with
//! [`Rejected::Draining`] (HTTP 503), and an open circuit breaker with
//! [`Rejected::Unavailable`] (HTTP 503 + `Retry-After`). Shutdown is
//! *lossless* — workers keep pulling until the queue is empty, so every
//! job admitted before [`shutdown`](Batcher::shutdown) still gets its
//! answer. A worker that dies mid-batch fails that batch's waiters with
//! a typed [`ServeFailure`] (HTTP 500) instead of hanging them — the
//! supervisor ([`crate::supervisor`]) then restarts the worker loop.

use crate::reload::HostCell;
use automl::fault::ServeFaultPlan;
use em_data::RecordPair;
use par::CircuitBreaker;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a submission was refused at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The queue already holds the configured maximum number of pairs.
    Overloaded,
    /// The batcher is shutting down and no longer admits work.
    Draining,
    /// The circuit breaker is open after repeated worker failures; retry
    /// after the embedded number of seconds.
    Unavailable {
        /// Suggested client wait before retrying, in whole seconds
        /// (the breaker cooldown remainder, rounded up, at least 1).
        retry_after_secs: u64,
    },
}

/// A successfully scored job: the job's probabilities plus the identity
/// of the model version that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct Scored {
    /// Match probabilities, one per submitted pair, in order.
    pub probs: Vec<f32>,
    /// The model version that scored this job (exactly one per batch).
    pub version: u64,
    /// That version's validation-tuned decision threshold.
    pub threshold: f32,
}

/// Why a job that was *admitted* could not be scored. These map onto
/// typed HTTP 500s — an accepted request always gets exactly one
/// response, even when the worker underneath it died.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeFailure {
    /// The batch worker panicked while scoring this job's microbatch.
    /// The payload is the panic message; the worker restarts under
    /// supervision.
    WorkerPanic(String),
    /// The predict pass failed with a typed error (today only injected
    /// via `err@predict` fault plans); the worker survives.
    PredictError(String),
}

impl ServeFailure {
    /// Machine-readable error code for the JSON error body.
    pub fn code(&self) -> &'static str {
        match self {
            ServeFailure::WorkerPanic(_) => "worker_panic",
            ServeFailure::PredictError(_) => "predict_error",
        }
    }

    /// Human-readable description.
    pub fn message(&self) -> String {
        match self {
            ServeFailure::WorkerPanic(m) => {
                format!("batch worker panicked while scoring this request: {m}")
            }
            ServeFailure::PredictError(m) => format!("predict pass failed: {m}"),
        }
    }
}

/// How one supervised worker loop ended — consumed by the supervisor.
#[derive(Debug)]
pub enum WorkerExit {
    /// The batcher is draining and the queue ran dry: normal shutdown.
    Drained,
    /// The worker panicked mid-batch. In-flight waiters of that batch
    /// were already failed with typed errors; the supervisor decides
    /// whether and when to restart.
    Panicked {
        /// The panic message.
        message: String,
        /// Batches successfully scored since this worker (re)started —
        /// lets the supervisor reset its backoff after a healthy stretch.
        batches_done: u64,
    },
}

/// The completion slot a submitter blocks on.
#[derive(Debug, Default)]
pub struct Waiter {
    slot: Mutex<Option<Result<Scored, ServeFailure>>>,
    done: Condvar,
}

impl Waiter {
    /// Block until the worker fills in this job's outcome: the scored
    /// probabilities, or the typed failure that hit its microbatch.
    pub fn wait(&self) -> Result<Scored, ServeFailure> {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(out) = slot.take() {
                return out;
            }
            slot = self.done.wait(slot).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn fill(&self, out: Result<Scored, ServeFailure>) {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        *slot = Some(out);
        self.done.notify_all();
    }
}

struct Job {
    pairs: Vec<RecordPair>,
    waiter: Arc<Waiter>,
}

struct State {
    queue: VecDeque<Job>,
    queued_pairs: usize,
    draining: bool,
}

struct Inner {
    state: Mutex<State>,
    arrived: Condvar,
    max_batch: usize,
    max_queued_pairs: usize,
    linger: Duration,
    faults: ServeFaultPlan,
    breaker: CircuitBreaker,
    /// Global microbatch sequence number — the key the serve fault plan
    /// (`panic@batcher:K`, `err@predict:K`) is indexed by.
    batch_seq: AtomicU64,
}

/// The coalescing queue handle. Cheap to clone; all clones share one
/// queue, fault plan and breaker.
#[derive(Clone)]
pub struct Batcher {
    inner: Arc<Inner>,
}

impl Batcher {
    /// Build a batcher that groups up to `max_batch` pairs per predict
    /// call, admits at most `max_queued_pairs` queued pairs, lets a
    /// non-full batch linger for `linger` after its first job before
    /// flushing, injects `faults` into its workers, and refuses
    /// admission while `breaker` is open.
    pub fn new(
        max_batch: usize,
        max_queued_pairs: usize,
        linger: Duration,
        faults: ServeFaultPlan,
        breaker: CircuitBreaker,
    ) -> Self {
        Self {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    queue: VecDeque::new(),
                    queued_pairs: 0,
                    draining: false,
                }),
                arrived: Condvar::new(),
                max_batch: max_batch.max(1),
                max_queued_pairs: max_queued_pairs.max(1),
                linger,
                faults,
                breaker,
                batch_seq: AtomicU64::new(0),
            }),
        }
    }

    /// Enqueue one job (any number of pairs ≥ 1) for the next
    /// microbatch. Returns the waiter to block on, or the typed refusal.
    /// `route` labels the per-route rejection counters
    /// (`serve.rejected.<reason>.<route>`), so `/metrics` can tell
    /// overload rejections apart from drain rejections per endpoint.
    pub fn submit(
        &self,
        pairs: Vec<RecordPair>,
        route: &'static str,
    ) -> Result<Arc<Waiter>, Rejected> {
        if !self.inner.breaker.allow() {
            let secs = self
                .inner
                .breaker
                .retry_after()
                .as_secs_f64()
                .ceil()
                .max(1.0) as u64;
            obs::counter(&format!("serve.rejected.breaker.{route}")).inc();
            return Err(Rejected::Unavailable {
                retry_after_secs: secs,
            });
        }
        let mut st = self.lock();
        if st.draining {
            obs::counter(&format!("serve.rejected.draining.{route}")).inc();
            return Err(Rejected::Draining);
        }
        if st.queued_pairs + pairs.len() > self.inner.max_queued_pairs {
            obs::counter(&format!("serve.rejected.overload.{route}")).inc();
            return Err(Rejected::Overloaded);
        }
        let waiter = Arc::new(Waiter::default());
        st.queued_pairs += pairs.len();
        st.queue.push_back(Job {
            pairs,
            waiter: Arc::clone(&waiter),
        });
        obs::gauge("serve.queue.depth").set(st.queued_pairs as f64);
        drop(st);
        self.inner.arrived.notify_all();
        Ok(waiter)
    }

    /// Stop admitting work. Already-queued jobs will still be processed;
    /// worker loops exit once the queue runs dry.
    pub fn shutdown(&self) {
        self.lock().draining = true;
        self.inner.arrived.notify_all();
    }

    /// Whether [`shutdown`](Self::shutdown) has been called (used by the
    /// supervisor to cut restart backoff short during a drain).
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Pairs currently queued (for tests and capacity introspection).
    pub fn queued_pairs(&self) -> usize {
        self.lock().queued_pairs
    }

    /// The shared circuit breaker (admission + supervisor wiring).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.inner.breaker
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.inner.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// One supervised worker loop: pull microbatches, snapshot the model
    /// cell once per batch, score, scatter. Returns [`WorkerExit::Drained`]
    /// when the batcher is draining *and* the queue is empty — never
    /// abandoning an admitted job — or [`WorkerExit::Panicked`] after a
    /// panic, with that batch's waiters already failed with typed errors.
    ///
    /// Call from a supervisor ([`crate::supervisor::spawn_workers`]) or
    /// directly from a dedicated thread in tests.
    pub fn run_supervised(&self, cell: &HostCell) -> WorkerExit {
        let mut batches_done: u64 = 0;
        loop {
            let batch = match self.next_batch() {
                Some(b) => b,
                None => return WorkerExit::Drained,
            };
            let batch_idx = self.inner.batch_seq.fetch_add(1, Ordering::SeqCst);
            // one snapshot per microbatch: the hot-swap atomicity unit
            let snap = cell.snapshot();
            if let Some(ms) = self.inner.faults.slow_embed_ms() {
                std::thread::sleep(Duration::from_millis(ms));
            }
            let n_pairs: usize = batch.iter().map(|j| j.pairs.len()).sum();
            obs::histogram(
                "serve.batch_pairs",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
            )
            .observe(n_pairs as f64);
            let outcome: Result<Vec<f32>, ServeFailure> = if self.inner.faults.errs_at(batch_idx) {
                Err(ServeFailure::PredictError(
                    "injected fault: err@predict".into(),
                ))
            } else {
                let faults = &self.inner.faults;
                let host = &snap.host;
                let all: Vec<RecordPair> =
                    batch.iter().flat_map(|j| j.pairs.iter().cloned()).collect();
                par::catch_panic(move || {
                    if faults.panics_at(batch_idx) {
                        // marker prefix keeps test logs readable via
                        // automl::fault::silence_injected_panic_output
                        panic!("injected fault: panic@batcher (microbatch {batch_idx})");
                    }
                    host.match_proba(&all)
                })
                .map_err(ServeFailure::WorkerPanic)
            };
            match outcome {
                Ok(probs) => {
                    let threshold = snap.host.threshold();
                    let mut off = 0;
                    for job in batch {
                        let take = job.pairs.len();
                        job.waiter.fill(Ok(Scored {
                            probs: probs[off..off + take].to_vec(),
                            version: snap.version,
                            threshold,
                        }));
                        off += take;
                    }
                    batches_done += 1;
                    // closes a half-open breaker; no-op when closed
                    self.inner.breaker.record_success();
                }
                Err(failure) => {
                    obs::counter("serve.batch_failures").inc();
                    for job in &batch {
                        job.waiter.fill(Err(failure.clone()));
                    }
                    if let ServeFailure::WorkerPanic(message) = failure {
                        return WorkerExit::Panicked {
                            message,
                            batches_done,
                        };
                    }
                }
            }
        }
    }

    /// Block until a microbatch is ready; `None` means drained + empty.
    fn next_batch(&self) -> Option<Vec<Job>> {
        let mut st = self.lock();
        // wait for the first job (or drain-with-empty-queue)
        loop {
            if !st.queue.is_empty() {
                break;
            }
            if st.draining {
                return None;
            }
            st = self
                .inner
                .arrived
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
        // linger from the moment we saw work, hoping to fill the batch —
        // unless it is already full or we are draining (then flush now)
        let deadline = Instant::now() + self.inner.linger;
        while st.queued_pairs < self.inner.max_batch && !st.draining {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = self
                .inner
                .arrived
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
            if timeout.timed_out() {
                break;
            }
        }
        // pop whole jobs until the batch is full (always at least one,
        // even if that single job alone exceeds max_batch)
        let mut batch = Vec::new();
        let mut pairs = 0usize;
        while let Some(job) = st.queue.front() {
            if !batch.is_empty() && pairs + job.pairs.len() > self.inner.max_batch {
                break;
            }
            pairs += job.pairs.len();
            let job = match st.queue.pop_front() {
                Some(j) => j,
                None => break,
            };
            batch.push(job);
        }
        st.queued_pairs -= pairs;
        obs::gauge("serve.queue.depth").set(st.queued_pairs as f64);
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::model::{ModelHost, ModelSpec};
    use em_data::Split;
    use std::thread;

    fn tiny_host() -> ModelHost {
        ModelSpec {
            scale: 0.25,
            budget_hours: 0.1,
            ..ModelSpec::fixture()
        }
        .train()
        .unwrap()
    }

    fn plain_batcher(max_batch: usize, queue: usize, linger_ms: u64) -> Batcher {
        Batcher::new(
            max_batch,
            queue,
            Duration::from_millis(linger_ms),
            ServeFaultPlan::none(),
            CircuitBreaker::new(1000, Duration::from_secs(60), Duration::from_millis(50)),
        )
    }

    #[test]
    fn coalesced_probs_match_direct_predict() {
        let host = tiny_host();
        let pairs: Vec<RecordPair> = host.dataset().split(Split::Test).to_vec();
        let direct = host.match_proba(&pairs);
        let threshold = host.threshold();
        let cell = HostCell::new(Arc::new(host), 1);
        let batcher = plain_batcher(8, 1024, 1);
        thread::scope(|s| {
            let worker = {
                let b = batcher.clone();
                let c = Arc::clone(&cell);
                s.spawn(move || b.run_supervised(&c))
            };
            let waiters: Vec<_> = pairs
                .iter()
                .map(|p| batcher.submit(vec![p.clone()], "match").unwrap())
                .collect();
            for (i, w) in waiters.iter().enumerate() {
                let got = w.wait().expect("scored");
                assert_eq!(got.probs.len(), 1);
                assert_eq!(got.probs[0].to_bits(), direct[i].to_bits(), "pair {i}");
                assert_eq!(got.version, 1);
                assert_eq!(got.threshold.to_bits(), threshold.to_bits());
            }
            batcher.shutdown();
            assert!(matches!(worker.join().unwrap(), WorkerExit::Drained));
        });
    }

    #[test]
    fn overload_and_drain_reject_with_typed_errors() {
        let host = tiny_host();
        let pair = host.dataset().split(Split::Test)[0].clone();
        let batcher = plain_batcher(4, 2, 1);
        // no worker running: fill the queue
        let _w1 = batcher.submit(vec![pair.clone()], "match").unwrap();
        let _w2 = batcher.submit(vec![pair.clone()], "match").unwrap();
        assert!(matches!(
            batcher.submit(vec![pair.clone()], "match"),
            Err(Rejected::Overloaded)
        ));
        batcher.shutdown();
        assert!(matches!(
            batcher.submit(vec![pair], "match"),
            Err(Rejected::Draining)
        ));
    }

    #[test]
    fn open_breaker_rejects_with_retry_after() {
        let host = tiny_host();
        let pair = host.dataset().split(Split::Test)[0].clone();
        let batcher = Batcher::new(
            4,
            1024,
            Duration::from_millis(1),
            ServeFaultPlan::none(),
            CircuitBreaker::new(1, Duration::from_secs(60), Duration::from_secs(30)),
        );
        batcher.breaker().record_failure(); // trips immediately
        match batcher.submit(vec![pair], "match") {
            Err(Rejected::Unavailable { retry_after_secs }) => {
                assert!((1..=30).contains(&retry_after_secs));
            }
            other => panic!("expected Unavailable, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_drains_every_admitted_job() {
        let host = tiny_host();
        let pairs: Vec<RecordPair> = host.dataset().split(Split::Test)[..6].to_vec();
        let cell = HostCell::new(Arc::new(host), 1);
        let batcher = plain_batcher(4, 1024, 50);
        // queue everything BEFORE any worker exists, then shut down and
        // only then start the worker: all jobs must still be answered
        let waiters: Vec<_> = pairs
            .iter()
            .map(|p| batcher.submit(vec![p.clone()], "match").unwrap())
            .collect();
        batcher.shutdown();
        thread::scope(|s| {
            let b = batcher.clone();
            let c = Arc::clone(&cell);
            let worker = s.spawn(move || b.run_supervised(&c));
            for w in &waiters {
                assert_eq!(w.wait().expect("scored").probs.len(), 1);
            }
            assert!(matches!(worker.join().unwrap(), WorkerExit::Drained));
        });
        assert_eq!(batcher.queued_pairs(), 0);
    }

    #[test]
    fn injected_panic_fails_inflight_jobs_and_reports_exit() {
        automl::fault::silence_injected_panic_output();
        let host = tiny_host();
        let pairs = host.dataset().split(Split::Test).to_vec();
        let cell = HostCell::new(Arc::new(host), 1);
        let batcher = Batcher::new(
            8,
            1024,
            Duration::from_millis(1),
            ServeFaultPlan::none().panic_batcher_at(0),
            CircuitBreaker::new(1000, Duration::from_secs(60), Duration::from_millis(50)),
        );
        let w = batcher.submit(vec![pairs[0].clone()], "match").unwrap();
        let exit = batcher.run_supervised(&cell); // processes batch 0, panics
        match exit {
            WorkerExit::Panicked {
                message,
                batches_done,
            } => {
                assert!(message.contains("panic@batcher"), "{message}");
                assert_eq!(batches_done, 0);
            }
            other => panic!("expected panic exit, got {other:?}"),
        }
        match w.wait() {
            Err(ServeFailure::WorkerPanic(m)) => assert!(m.contains("panic@batcher"), "{m}"),
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        // the next batch (index 1) scores normally on a fresh worker run
        let w2 = batcher.submit(vec![pairs[1].clone()], "match").unwrap();
        batcher.shutdown();
        assert!(matches!(batcher.run_supervised(&cell), WorkerExit::Drained));
        assert!(w2.wait().is_ok());
    }

    #[test]
    fn injected_predict_error_is_typed_and_worker_survives() {
        let host = tiny_host();
        let pairs = host.dataset().split(Split::Test).to_vec();
        let cell = HostCell::new(Arc::new(host), 1);
        let batcher = Batcher::new(
            8,
            1024,
            Duration::from_millis(1),
            ServeFaultPlan::none().err_predict_at(0),
            CircuitBreaker::new(1000, Duration::from_secs(60), Duration::from_millis(50)),
        );
        let w0 = batcher.submit(vec![pairs[0].clone()], "match").unwrap();
        thread::scope(|s| {
            let b = batcher.clone();
            let c = Arc::clone(&cell);
            let worker = s.spawn(move || b.run_supervised(&c));
            match w0.wait() {
                Err(ServeFailure::PredictError(m)) => assert!(m.contains("err@predict"), "{m}"),
                other => panic!("expected PredictError, got {other:?}"),
            }
            // same worker, no restart needed: the very next job succeeds
            let w1 = batcher.submit(vec![pairs[1].clone()], "match").unwrap();
            assert!(w1.wait().is_ok());
            batcher.shutdown();
            assert!(matches!(worker.join().unwrap(), WorkerExit::Drained));
        });
    }
}
