//! The request coalescer: many small `/match` requests become few
//! GEMM-sized `match_proba` calls.
//!
//! Connection threads [`submit`](Batcher::submit) their pairs into a
//! bounded queue and block on a per-job waiter; worker threads pull
//! *microbatches* off the queue — up to `max_batch` pairs, or whatever
//! accumulated within a `linger` window of the oldest queued job — run
//! one fused encode→scale→predict pass and scatter the probabilities
//! back to the waiters. Because every stage of
//! [`em_core::model::ModelHost::match_proba`] is row-independent, the
//! probabilities are bit-identical however requests get grouped: the
//! coalescer changes latency and throughput, never answers.
//!
//! Admission is explicit: a full queue rejects with
//! [`Rejected::Overloaded`] (HTTP 429) and a draining batcher with
//! [`Rejected::Draining`] (HTTP 503). Shutdown is *lossless* — workers
//! keep pulling until the queue is empty, so every job admitted before
//! [`shutdown`](Batcher::shutdown) still gets its answer.

use em_core::model::ModelHost;
use em_data::RecordPair;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a submission was refused at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The queue already holds the configured maximum number of pairs.
    Overloaded,
    /// The batcher is shutting down and no longer admits work.
    Draining,
}

/// The completion slot a submitter blocks on.
#[derive(Debug, Default)]
pub struct Waiter {
    slot: Mutex<Option<Vec<f32>>>,
    done: Condvar,
}

impl Waiter {
    /// Block until the worker fills in this job's probabilities.
    pub fn wait(&self) -> Vec<f32> {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(out) = slot.take() {
                return out;
            }
            slot = self.done.wait(slot).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn fill(&self, out: Vec<f32>) {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        *slot = Some(out);
        self.done.notify_all();
    }
}

struct Job {
    pairs: Vec<RecordPair>,
    waiter: Arc<Waiter>,
}

struct State {
    queue: VecDeque<Job>,
    queued_pairs: usize,
    draining: bool,
}

struct Inner {
    state: Mutex<State>,
    arrived: Condvar,
    max_batch: usize,
    max_queued_pairs: usize,
    linger: Duration,
}

/// The coalescing queue handle. Cheap to clone; all clones share one
/// queue.
#[derive(Clone)]
pub struct Batcher {
    inner: Arc<Inner>,
}

impl Batcher {
    /// Build a batcher that groups up to `max_batch` pairs per predict
    /// call, admits at most `max_queued_pairs` queued pairs, and lets a
    /// non-full batch linger for `linger` after its first job before
    /// flushing.
    pub fn new(max_batch: usize, max_queued_pairs: usize, linger: Duration) -> Self {
        Self {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    queue: VecDeque::new(),
                    queued_pairs: 0,
                    draining: false,
                }),
                arrived: Condvar::new(),
                max_batch: max_batch.max(1),
                max_queued_pairs: max_queued_pairs.max(1),
                linger,
            }),
        }
    }

    /// Enqueue one job (any number of pairs ≥ 1) for the next
    /// microbatch. Returns the waiter to block on, or the typed refusal.
    pub fn submit(&self, pairs: Vec<RecordPair>) -> Result<Arc<Waiter>, Rejected> {
        let mut st = self.lock();
        if st.draining {
            obs::counter("serve.rejected.draining").inc();
            return Err(Rejected::Draining);
        }
        if st.queued_pairs + pairs.len() > self.inner.max_queued_pairs {
            obs::counter("serve.rejected.overload").inc();
            return Err(Rejected::Overloaded);
        }
        let waiter = Arc::new(Waiter::default());
        st.queued_pairs += pairs.len();
        st.queue.push_back(Job {
            pairs,
            waiter: Arc::clone(&waiter),
        });
        obs::gauge("serve.queue.depth").set(st.queued_pairs as f64);
        drop(st);
        self.inner.arrived.notify_all();
        Ok(waiter)
    }

    /// Stop admitting work. Already-queued jobs will still be processed;
    /// worker loops exit once the queue runs dry.
    pub fn shutdown(&self) {
        self.lock().draining = true;
        self.inner.arrived.notify_all();
    }

    /// Pairs currently queued (for tests and capacity introspection).
    pub fn queued_pairs(&self) -> usize {
        self.lock().queued_pairs
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.inner.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The worker loop: call from a dedicated thread with the shared
    /// model host. Returns when the batcher is draining *and* the queue
    /// is empty — never abandons an admitted job.
    pub fn run_worker(&self, host: &ModelHost) {
        loop {
            let batch = match self.next_batch() {
                Some(b) => b,
                None => return,
            };
            let n_pairs: usize = batch.iter().map(|j| j.pairs.len()).sum();
            obs::histogram(
                "serve.batch_pairs",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
            )
            .observe(n_pairs as f64);
            let mut all: Vec<RecordPair> = Vec::with_capacity(n_pairs);
            for job in &batch {
                all.extend(job.pairs.iter().cloned());
            }
            let probs = host.match_proba(&all);
            let mut off = 0;
            for job in batch {
                let take = job.pairs.len();
                job.waiter.fill(probs[off..off + take].to_vec());
                off += take;
            }
        }
    }

    /// Block until a microbatch is ready; `None` means drained + empty.
    fn next_batch(&self) -> Option<Vec<Job>> {
        let mut st = self.lock();
        // wait for the first job (or drain-with-empty-queue)
        loop {
            if !st.queue.is_empty() {
                break;
            }
            if st.draining {
                return None;
            }
            st = self
                .inner
                .arrived
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
        // linger from the moment we saw work, hoping to fill the batch —
        // unless it is already full or we are draining (then flush now)
        let deadline = Instant::now() + self.inner.linger;
        while st.queued_pairs < self.inner.max_batch && !st.draining {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = self
                .inner
                .arrived
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
            if timeout.timed_out() {
                break;
            }
        }
        // pop whole jobs until the batch is full (always at least one,
        // even if that single job alone exceeds max_batch)
        let mut batch = Vec::new();
        let mut pairs = 0usize;
        while let Some(job) = st.queue.front() {
            if !batch.is_empty() && pairs + job.pairs.len() > self.inner.max_batch {
                break;
            }
            pairs += job.pairs.len();
            let job = match st.queue.pop_front() {
                Some(j) => j,
                None => break,
            };
            batch.push(job);
        }
        st.queued_pairs -= pairs;
        obs::gauge("serve.queue.depth").set(st.queued_pairs as f64);
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::model::ModelSpec;
    use em_data::Split;
    use std::thread;

    fn tiny_host() -> ModelHost {
        ModelSpec {
            scale: 0.25,
            budget_hours: 0.1,
            ..ModelSpec::fixture()
        }
        .train()
        .unwrap()
    }

    #[test]
    fn coalesced_probs_match_direct_predict() {
        let host = tiny_host();
        let pairs: Vec<RecordPair> = host.dataset().split(Split::Test).to_vec();
        let direct = host.match_proba(&pairs);
        let batcher = Batcher::new(8, 1024, Duration::from_millis(1));
        thread::scope(|s| {
            let worker = {
                let b = batcher.clone();
                let h = &host;
                s.spawn(move || b.run_worker(h))
            };
            let waiters: Vec<_> = pairs
                .iter()
                .map(|p| batcher.submit(vec![p.clone()]).unwrap())
                .collect();
            for (i, w) in waiters.iter().enumerate() {
                let got = w.wait();
                assert_eq!(got.len(), 1);
                assert_eq!(got[0].to_bits(), direct[i].to_bits(), "pair {i}");
            }
            batcher.shutdown();
            worker.join().unwrap();
        });
    }

    #[test]
    fn overload_and_drain_reject_with_typed_errors() {
        let host = tiny_host();
        let pair = host.dataset().split(Split::Test)[0].clone();
        let batcher = Batcher::new(4, 2, Duration::from_millis(1));
        // no worker running: fill the queue
        let _w1 = batcher.submit(vec![pair.clone()]).unwrap();
        let _w2 = batcher.submit(vec![pair.clone()]).unwrap();
        assert!(matches!(
            batcher.submit(vec![pair.clone()]),
            Err(Rejected::Overloaded)
        ));
        batcher.shutdown();
        assert!(matches!(
            batcher.submit(vec![pair]),
            Err(Rejected::Draining)
        ));
    }

    #[test]
    fn shutdown_drains_every_admitted_job() {
        let host = tiny_host();
        let pairs: Vec<RecordPair> = host.dataset().split(Split::Test)[..6].to_vec();
        let batcher = Batcher::new(4, 1024, Duration::from_millis(50));
        // queue everything BEFORE any worker exists, then shut down and
        // only then start the worker: all jobs must still be answered
        let waiters: Vec<_> = pairs
            .iter()
            .map(|p| batcher.submit(vec![p.clone()]).unwrap())
            .collect();
        batcher.shutdown();
        thread::scope(|s| {
            let b = batcher.clone();
            let h = &host;
            let worker = s.spawn(move || b.run_worker(h));
            for w in &waiters {
                assert_eq!(w.wait().len(), 1);
            }
            worker.join().unwrap();
        });
        assert_eq!(batcher.queued_pairs(), 0);
    }
}
