//! A minimal HTTP/1.1 message layer over raw byte buffers.
//!
//! Only what the matching service needs, implemented defensively:
//! `Content-Length` framed bodies (no chunked transfer — a `POST` with
//! `Transfer-Encoding` earns a `501`), keep-alive with pipelining (the
//! parser consumes one request from the front of a connection buffer and
//! leaves the rest in place), and hard caps on header-block and body
//! size so a misbehaving client cannot balloon server memory. Parsing is
//! *incremental*: [`parse_request`] returns `Ok(None)` while the buffer
//! holds only a prefix of a request ("torn" reads), so callers keep
//! reading until a full message or a protocol error materializes.

/// Maximum size of the request line + headers block, in bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method token, uppercased by the client ("GET", "POST").
    pub method: String,
    /// Request target path, e.g. `/match/batch` (query strings are kept
    /// as-is; the service routes on the full target).
    pub path: String,
    /// Body bytes as framed by `Content-Length` (empty when absent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open
    /// (HTTP/1.1 default yes, `Connection: close` opts out).
    pub keep_alive: bool,
}

/// Why a byte stream could not be parsed into a [`Request`]. Each
/// variant maps onto the HTTP status the connection should answer with
/// before closing ([`HttpError::status`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header or framing → `400`.
    BadRequest(&'static str),
    /// Header block exceeds [`MAX_HEAD_BYTES`] → `431`.
    HeadersTooLarge,
    /// Declared body exceeds the configured cap → `413`.
    BodyTooLarge,
    /// A method that takes a body arrived without `Content-Length` → `411`.
    LengthRequired,
    /// `Transfer-Encoding` framing is not implemented → `501`.
    NotImplemented,
}

impl HttpError {
    /// The HTTP status code this error should be answered with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::HeadersTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::LengthRequired => 411,
            HttpError::NotImplemented => 501,
        }
    }

    /// Machine-readable error code for the JSON error body.
    pub fn code(&self) -> &'static str {
        match self {
            HttpError::BadRequest(_) => "bad_request",
            HttpError::HeadersTooLarge => "headers_too_large",
            HttpError::BodyTooLarge => "body_too_large",
            HttpError::LengthRequired => "length_required",
            HttpError::NotImplemented => "not_implemented",
        }
    }

    /// Human-readable description.
    pub fn message(&self) -> String {
        match self {
            HttpError::BadRequest(m) => format!("malformed request: {m}"),
            HttpError::HeadersTooLarge => {
                format!("request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            HttpError::BodyTooLarge => "request body exceeds the configured cap".into(),
            HttpError::LengthRequired => "POST requires Content-Length".into(),
            HttpError::NotImplemented => "Transfer-Encoding is not supported".into(),
        }
    }
}

/// Try to parse one request from the front of `buf`.
///
/// * `Ok(Some((request, consumed)))` — a complete request; the caller
///   drains `consumed` bytes and may find the next pipelined request
///   right behind them.
/// * `Ok(None)` — `buf` holds only a prefix (torn request); read more.
/// * `Err(e)` — protocol violation; answer with [`HttpError::status`]
///   and close the connection.
///
/// `max_body` caps the declared `Content-Length`.
pub fn parse_request(buf: &[u8], max_body: usize) -> Result<Option<(Request, usize)>, HttpError> {
    // locate the end of the head (\r\n\r\n), bounding how far we look
    let scan = buf.len().min(MAX_HEAD_BYTES + 4);
    let head_end = buf[..scan].windows(4).position(|w| w == b"\r\n\r\n");
    let head_end = match head_end {
        Some(i) => i,
        None if buf.len() > MAX_HEAD_BYTES => return Err(HttpError::HeadersTooLarge),
        None => return Ok(None),
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(HttpError::HeadersTooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("non-UTF8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Err(HttpError::BadRequest("request line")),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest("unsupported HTTP version"));
    }
    let mut content_length: Option<usize> = None;
    let mut keep_alive = version == "HTTP/1.1";
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::BadRequest("header without colon"))?;
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let n: usize = value
                .parse()
                .map_err(|_| HttpError::BadRequest("bad Content-Length"))?;
            if content_length.is_some_and(|prev| prev != n) {
                return Err(HttpError::BadRequest("conflicting Content-Length"));
            }
            content_length = Some(n);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::NotImplemented);
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    let body_len = match content_length {
        Some(n) => n,
        None if method == "POST" || method == "PUT" => return Err(HttpError::LengthRequired),
        None => 0,
    };
    if body_len > max_body {
        return Err(HttpError::BodyTooLarge);
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + body_len {
        return Ok(None); // torn body
    }
    Ok(Some((
        Request {
            method: method.to_owned(),
            path: path.to_owned(),
            body: buf[body_start..body_start + body_len].to_vec(),
            keep_alive,
        },
        body_start + body_len,
    )))
}

/// Render a response head + body into wire bytes. `body` is always
/// `application/json` in this service.
pub fn render_response(status: u16, body: &str, keep_alive: bool) -> Vec<u8> {
    render_response_with(status, body, keep_alive, &[])
}

/// Like [`render_response`], with extra response headers — the service
/// uses this for `retry-after` on `429`/`503` and `x-model-version` on
/// scored responses. Header names must be lowercase ASCII without CR/LF
/// (callers pass literals; nothing client-controlled lands here).
pub fn render_response_with(
    status: u16,
    body: &str,
    keep_alive: bool,
    extra: &[(&str, String)],
) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Render the standard JSON error body `{"error":{"code":…,"message":…}}`.
pub fn error_body(code: &str, message: &str) -> String {
    let mut inner = obs::json::Obj::new();
    inner.str("code", code).str("message", message);
    let mut o = obs::json::Obj::new();
    o.raw("error", &inner.finish());
    o.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: usize = 1 << 20;

    #[test]
    fn complete_get_parses() {
        let raw = b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n";
        let (req, used) = parse_request(raw, CAP).unwrap().unwrap();
        assert_eq!(used, raw.len());
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn torn_request_needs_more_bytes() {
        let raw = b"POST /match HTTP/1.1\r\ncontent-length: 10\r\n\r\n12345";
        assert_eq!(parse_request(raw, CAP).unwrap(), None);
        let head_only = b"GET /healthz HTT";
        assert_eq!(parse_request(head_only, CAP).unwrap(), None);
    }

    #[test]
    fn pipelined_requests_consume_one_at_a_time() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n".to_vec();
        let (r1, used) = parse_request(&raw, CAP).unwrap().unwrap();
        assert_eq!(r1.path, "/a");
        let (r2, used2) = parse_request(&raw[used..], CAP).unwrap().unwrap();
        assert_eq!(r2.path, "/b");
        assert_eq!(used + used2, raw.len());
    }

    #[test]
    fn post_without_length_is_411() {
        let raw = b"POST /match HTTP/1.1\r\n\r\n";
        assert_eq!(parse_request(raw, CAP), Err(HttpError::LengthRequired));
    }

    #[test]
    fn oversized_body_is_413() {
        let raw = b"POST /match HTTP/1.1\r\ncontent-length: 100\r\n\r\n";
        assert_eq!(parse_request(raw, 50), Err(HttpError::BodyTooLarge));
    }

    #[test]
    fn oversized_head_is_431() {
        let mut raw = b"GET / HTTP/1.1\r\nx-pad: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        assert_eq!(parse_request(&raw, CAP), Err(HttpError::HeadersTooLarge));
    }

    #[test]
    fn chunked_is_501_and_garbage_is_400() {
        let raw = b"POST /m HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
        assert_eq!(parse_request(raw, CAP), Err(HttpError::NotImplemented));
        let raw = b"NOT-HTTP\r\n\r\n";
        assert!(matches!(
            parse_request(raw, CAP),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn connection_close_is_honored() {
        let raw = b"GET / HTTP/1.1\r\nconnection: close\r\n\r\n";
        let (req, _) = parse_request(raw, CAP).unwrap().unwrap();
        assert!(!req.keep_alive);
        let raw10 = b"GET / HTTP/1.0\r\n\r\n";
        let (req, _) = parse_request(raw10, CAP).unwrap().unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn response_renders_with_framing() {
        let bytes = render_response(200, "{}", true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn extra_headers_land_in_the_head() {
        let bytes = render_response_with(
            503,
            "{}",
            false,
            &[
                ("retry-after", "2".to_string()),
                ("x-model-version", "7".to_string()),
            ],
        );
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("\r\nretry-after: 2\r\n"), "{text}");
        assert!(text.contains("\r\nx-model-version: 7\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"));
        // headers stay inside the head, before the blank line
        let head_end = text.find("\r\n\r\n").unwrap();
        assert!(text.find("retry-after").unwrap() < head_end);
    }
}
