//! The TCP accept loop, per-connection protocol driver and HTTP routes.
//!
//! Life of a request: the accept thread admits a connection through the
//! server's [`par::Gate`] (a closed gate answers `503 draining` and
//! hangs up), a per-connection thread incrementally parses HTTP/1.1
//! messages ([`crate::http`]), the route handler decodes entities
//! against the model's schema, and `/match` bodies flow through the
//! [`crate::batcher::Batcher`] into fused `match_proba` microbatches.
//! Shutdown ([`ServerHandle::shutdown`]) closes the gate, drains the
//! queue and joins every thread — no admitted request is dropped.

use crate::batcher::{Batcher, Rejected};
use crate::http::{self, error_body, render_response, HttpError, Request};
use crate::ServeConfig;
use em_core::model::ModelHost;
use em_data::{Entity, RecordPair, Schema};
use obs::json::{self, Json};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Exponential latency buckets in microseconds (64 µs … ~4 s).
const LATENCY_BOUNDS_US: &[f64] = &[
    64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0, 16384.0, 32768.0, 65536.0, 131072.0,
    262144.0, 524288.0, 1048576.0, 2097152.0, 4194304.0,
];

/// Start serving `host` per `config`. Binds the listener synchronously
/// (so a returned handle is already accepting) and spawns the accept
/// loop plus `config.workers` batch workers.
///
/// ```no_run
/// use std::sync::Arc;
/// let host = Arc::new(em_core::model::ModelSpec::fixture().train().unwrap());
/// let config = em_serve::ServeConfig { addr: "127.0.0.1:0".into(), ..Default::default() };
/// let handle = em_serve::serve(host, &config).unwrap();
/// println!("listening on http://{}", handle.addr());
/// handle.shutdown();
/// ```
pub fn serve(host: Arc<ModelHost>, config: &ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let gate = par::Gate::new();
    let batcher = Batcher::new(
        config.max_batch,
        config.queue_pairs,
        Duration::from_micros(config.linger_us),
    );
    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|i| {
            let b = batcher.clone();
            let h = Arc::clone(&host);
            std::thread::Builder::new()
                .name(format!("em-serve-worker-{i}"))
                .spawn(move || b.run_worker(&h))
        })
        .collect::<std::io::Result<_>>()?;
    let accept = {
        let gate = gate.clone();
        let batcher = batcher.clone();
        let host = Arc::clone(&host);
        let max_body = config.max_body;
        let max_conns = config.max_conns.max(1);
        std::thread::Builder::new()
            .name("em-serve-accept".into())
            .spawn(move || {
                accept_loop(&listener, &gate, &batcher, &host, max_body, max_conns);
            })?
    };
    obs::emit(
        "serve.started",
        &[
            ("addr", obs::Value::Str(addr.to_string())),
            ("workers", obs::Value::U64(config.workers.max(1) as u64)),
            ("max_batch", obs::Value::U64(config.max_batch as u64)),
        ],
    );
    Ok(ServerHandle {
        addr,
        gate,
        batcher,
        accept: Some(accept),
        workers,
        drain: Duration::from_millis(config.drain_ms),
    })
}

/// A running server. Dropping the handle shuts the server down (with
/// drain); call [`shutdown`](Self::shutdown) explicitly to observe
/// whether the drain completed in time.
pub struct ServerHandle {
    addr: SocketAddr,
    gate: par::Gate,
    batcher: Batcher,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    drain: Duration,
}

impl ServerHandle {
    /// The bound address (useful with a `:0` config port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop admitting connections and jobs, answer
    /// everything already accepted, then join all threads. Returns
    /// `true` when every connection finished inside the configured
    /// drain window.
    pub fn shutdown(mut self) -> bool {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> bool {
        if self.accept.is_none() {
            return true; // already shut down
        }
        // 1. close the front door: no new connections are admitted, and
        //    connection threads switch keep-alive responses to `close`
        self.gate.close();
        // 2. poke the blocking accept() so the accept thread observes
        //    the closed gate and exits
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        // 3. stop admitting jobs; workers drain the queue, then exit —
        //    every job admitted before this line still gets its answer
        self.batcher.shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // 4. wait for connection threads to flush responses and hang up
        let drained = self.gate.drain(self.drain);
        obs::emit("serve.stopped", &[("drained", obs::Value::Bool(drained))]);
        drained
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(
    listener: &TcpListener,
    gate: &par::Gate,
    batcher: &Batcher,
    host: &Arc<ModelHost>,
    max_body: usize,
    max_conns: usize,
) {
    loop {
        let (mut stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if gate.is_closed() {
                    return;
                }
                continue;
            }
        };
        let permit = match gate.enter() {
            Some(p) => p,
            None => {
                // draining: tell the client why before hanging up
                let body = error_body("draining", "server is shutting down");
                let _ = stream.write_all(&render_response(503, &body, false));
                return;
            }
        };
        if gate.in_flight() > max_conns {
            obs::counter("serve.rejected.conns").inc();
            let body = error_body("too_many_connections", "connection limit reached");
            let _ = stream.write_all(&render_response(429, &body, false));
            continue; // permit drops here
        }
        let gate = gate.clone();
        let batcher = batcher.clone();
        let host = Arc::clone(host);
        let spawned = std::thread::Builder::new()
            .name("em-serve-conn".into())
            .spawn(move || {
                let _permit = permit;
                handle_connection(stream, &gate, &batcher, &host, max_body);
            });
        if spawned.is_err() {
            obs::counter("serve.rejected.conns").inc();
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    gate: &par::Gate,
    batcher: &Batcher,
    host: &ModelHost,
    max_body: usize,
) {
    // short read timeout so idle keep-alive connections notice a drain
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // answer every complete pipelined request already buffered
        loop {
            match http::parse_request(&buf, max_body) {
                Ok(Some((req, used))) => {
                    buf.drain(..used);
                    let keep = req.keep_alive && !gate.is_closed();
                    let (status, body) = route(&req, batcher, host);
                    observe_status(status);
                    if stream
                        .write_all(&render_response(status, &body, keep))
                        .is_err()
                        || !keep
                    {
                        return;
                    }
                }
                Ok(None) => break, // torn: need more bytes
                Err(e) => {
                    respond_http_error(&mut stream, &e);
                    return;
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer hung up
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // idle tick: during a drain with no request in flight,
                // close instead of holding the permit forever
                if gate.is_closed() && buf.is_empty() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn respond_http_error(stream: &mut TcpStream, e: &HttpError) {
    observe_status(e.status());
    let body = error_body(e.code(), &e.message());
    let _ = stream.write_all(&render_response(e.status(), &body, false));
}

fn observe_status(status: u16) {
    let class = match status {
        200..=299 => "serve.rsp.2xx",
        400..=499 => "serve.rsp.4xx",
        _ => "serve.rsp.5xx",
    };
    obs::counter(class).inc();
}

fn route(req: &Request, batcher: &Batcher, host: &ModelHost) -> (u16, String) {
    let _span = obs::span("serve.request");
    let start = Instant::now();
    let (status, body, latency_metric) = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            obs::counter("serve.req.health").inc();
            (200, health_body(host), None)
        }
        ("GET", "/metrics") => {
            obs::counter("serve.req.metrics").inc();
            (200, metrics_body(), None)
        }
        ("POST", "/match") => {
            obs::counter("serve.req.match").inc();
            let (s, b) = handle_match(&req.body, batcher, host);
            (s, b, Some("serve.latency_us.match"))
        }
        ("POST", "/match/batch") => {
            obs::counter("serve.req.batch").inc();
            let (s, b) = handle_batch(&req.body, batcher, host);
            (s, b, Some("serve.latency_us.batch"))
        }
        (_, "/healthz" | "/metrics" | "/match" | "/match/batch") => (
            405,
            error_body("method_not_allowed", "wrong method for this route"),
            None,
        ),
        (_, path) => (
            404,
            error_body("not_found", &format!("no route {path}")),
            None,
        ),
    };
    if let Some(metric) = latency_metric {
        obs::histogram(metric, LATENCY_BOUNDS_US).observe(start.elapsed().as_micros() as f64);
    }
    (status, body)
}

fn health_body(host: &ModelHost) -> String {
    let (hits, misses) = host.cache_stats();
    let mut o = json::Obj::new();
    o.str("status", "ok")
        .str("dataset", host.spec().dataset.code())
        .str("system", host.report().system)
        .f64("val_f1", host.report().val_f1)
        .f64("threshold", f64::from(host.threshold()))
        .u64("cache_hits", hits as u64)
        .u64("cache_misses", misses as u64);
    o.finish()
}

fn metrics_body() -> String {
    let mut o = json::Obj::new();
    for (name, snap) in obs::snapshot() {
        o.raw(&name, &snap.to_json());
    }
    o.finish()
}

fn handle_match(body: &[u8], batcher: &Batcher, host: &ModelHost) -> (u16, String) {
    let pair = match parse_pair_body(body, host.schema()) {
        Ok(p) => p,
        Err(msg) => return (400, error_body("bad_request", &msg)),
    };
    match submit_and_wait(batcher, vec![pair]) {
        Ok(probs) => {
            let t = host.threshold();
            let p = probs[0];
            let mut o = json::Obj::new();
            o.f64("p_match", f64::from(p))
                .bool("match", p >= t)
                .f64("threshold", f64::from(t));
            (200, o.finish())
        }
        Err(rejection) => rejected_response(rejection),
    }
}

fn handle_batch(body: &[u8], batcher: &Batcher, host: &ModelHost) -> (u16, String) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return (400, error_body("bad_request", "body is not UTF-8")),
    };
    let v = match json::parse(text) {
        Ok(v) => v,
        Err(e) => {
            return (
                400,
                error_body("bad_request", &format!("invalid JSON: {e}")),
            )
        }
    };
    let pairs_json = match v.get("pairs") {
        Some(Json::Arr(items)) => items,
        _ => return (400, error_body("bad_request", "expected a 'pairs' array")),
    };
    if pairs_json.is_empty() {
        return (400, error_body("bad_request", "'pairs' must not be empty"));
    }
    let mut pairs = Vec::with_capacity(pairs_json.len());
    for (i, item) in pairs_json.iter().enumerate() {
        match parse_pair(item, host.schema()) {
            Ok(p) => pairs.push(p),
            Err(msg) => {
                return (
                    400,
                    error_body("bad_request", &format!("pairs[{i}]: {msg}")),
                )
            }
        }
    }
    let n = pairs.len();
    match submit_and_wait(batcher, pairs) {
        Ok(probs) => {
            let t = host.threshold();
            let results = json::array(probs.iter().map(|&p| {
                let mut o = json::Obj::new();
                o.f64("p_match", f64::from(p)).bool("match", p >= t);
                o.finish()
            }));
            let mut o = json::Obj::new();
            o.raw("results", &results)
                .f64("threshold", f64::from(t))
                .u64("batch", n as u64);
            (200, o.finish())
        }
        Err(rejection) => rejected_response(rejection),
    }
}

fn submit_and_wait(batcher: &Batcher, pairs: Vec<RecordPair>) -> Result<Vec<f32>, Rejected> {
    let waiter = batcher.submit(pairs)?;
    Ok(waiter.wait())
}

fn rejected_response(r: Rejected) -> (u16, String) {
    match r {
        Rejected::Overloaded => (
            429,
            error_body("overloaded", "request queue is full, retry with backoff"),
        ),
        Rejected::Draining => (503, error_body("draining", "server is shutting down")),
    }
}

fn parse_pair_body(body: &[u8], schema: &Schema) -> Result<RecordPair, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let v = json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    parse_pair(&v, schema)
}

fn parse_pair(v: &Json, schema: &Schema) -> Result<RecordPair, String> {
    let left = parse_entity(
        v.get("left").ok_or_else(|| "missing 'left'".to_owned())?,
        schema,
    )
    .map_err(|m| format!("left: {m}"))?;
    let right = parse_entity(
        v.get("right").ok_or_else(|| "missing 'right'".to_owned())?,
        schema,
    )
    .map_err(|m| format!("right: {m}"))?;
    Ok(RecordPair::new(left, right, false))
}

fn parse_entity(v: &Json, schema: &Schema) -> Result<Entity, String> {
    let fields = match v {
        Json::Object(fields) => fields,
        _ => return Err("entity must be a JSON object".into()),
    };
    let mut values: Vec<Option<String>> = vec![None; schema.len()];
    for (key, value) in fields {
        let idx = schema.index_of(key).ok_or_else(|| {
            let known: Vec<&str> = schema
                .attributes()
                .iter()
                .map(|a| a.name.as_str())
                .collect();
            format!("unknown attribute '{key}' (schema: {})", known.join(", "))
        })?;
        values[idx] = match value {
            Json::Null => None,
            Json::Str(s) => Some(s.clone()),
            Json::Num(tok) => Some(tok.clone()),
            _ => {
                return Err(format!(
                    "attribute '{key}' must be a string, number or null"
                ))
            }
        };
    }
    Ok(Entity::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::{AttrType, Attribute};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("name", AttrType::Text),
            Attribute::new("price", AttrType::Numeric),
        ])
    }

    #[test]
    fn entity_parsing_fills_by_attribute_name() {
        let v = json::parse(r#"{"price":"9.99","name":"ipad"}"#).unwrap();
        let e = parse_entity(&v, &schema()).unwrap();
        assert_eq!(e.value(0), Some("ipad"));
        assert_eq!(e.value(1), Some("9.99"));
    }

    #[test]
    fn unknown_attribute_is_rejected_with_schema_hint() {
        let v = json::parse(r#"{"nam":"typo"}"#).unwrap();
        let err = parse_entity(&v, &schema()).unwrap_err();
        assert!(err.contains("unknown attribute 'nam'"), "{err}");
        assert!(err.contains("name, price"), "{err}");
    }

    #[test]
    fn missing_and_null_attributes_become_none() {
        let v = json::parse(r#"{"name":null}"#).unwrap();
        let e = parse_entity(&v, &schema()).unwrap();
        assert_eq!(e.value(0), None);
        assert_eq!(e.value(1), None);
    }

    #[test]
    fn pair_requires_both_sides() {
        let v = json::parse(r#"{"left":{"name":"a"}}"#).unwrap();
        assert!(parse_pair(&v, &schema()).unwrap_err().contains("right"));
    }
}
