//! The TCP accept loop, per-connection protocol driver and HTTP routes.
//!
//! Life of a request: the accept thread admits a connection through the
//! server's [`par::Gate`] (a closed gate answers `503 draining` and
//! hangs up), a per-connection thread incrementally parses HTTP/1.1
//! messages ([`crate::http`]), the route handler decodes entities
//! against the model's schema, and `/match` bodies flow through the
//! [`crate::batcher::Batcher`] into fused `match_proba` microbatches
//! scored by supervised workers ([`crate::supervisor`]). Every scored
//! response carries the `x-model-version` header of the exact model
//! that produced it; `POST /admin/reload` hot-swaps that model with
//! zero dropped requests ([`crate::reload`]). Shutdown
//! ([`ServerHandle::shutdown`]) closes the gate, drains the queue and
//! joins every thread — no admitted request is dropped.

use crate::batcher::{Batcher, Rejected, ServeFailure};
use crate::http::{self, error_body, render_response, render_response_with, HttpError, Request};
use crate::reload::{HostCell, ReloadError, Reloader, SwapJournal};
use crate::supervisor::{self, SupervisorConfig};
use crate::ServeConfig;
use em_core::model::{load_model, ModelHost};
use em_data::{Entity, RecordPair, Schema};
use obs::json::{self, Json};
use par::CircuitBreaker;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Extra response headers attached by route handlers (`retry-after`,
/// `x-model-version`). Names are `&'static` lowercase literals.
type Headers = Vec<(&'static str, String)>;

/// Exponential latency buckets in microseconds (64 µs … ~4 s).
const LATENCY_BOUNDS_US: &[f64] = &[
    64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0, 16384.0, 32768.0, 65536.0, 131072.0,
    262144.0, 524288.0, 1048576.0, 2097152.0, 4194304.0,
];

/// Start serving `host` per `config`. Binds the listener synchronously
/// (so a returned handle is already accepting) and spawns the accept
/// loop plus `config.workers` batch workers.
///
/// ```no_run
/// use std::sync::Arc;
/// let host = Arc::new(em_core::model::ModelSpec::fixture().train().unwrap());
/// let config = em_serve::ServeConfig { addr: "127.0.0.1:0".into(), ..Default::default() };
/// let handle = em_serve::serve(host, &config).unwrap();
/// println!("listening on http://{}", handle.addr());
/// handle.shutdown();
/// ```
pub fn serve(host: Arc<ModelHost>, config: &ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let gate = par::Gate::new();
    let breaker = CircuitBreaker::new(
        config.restart_max,
        Duration::from_millis(config.restart_window_ms),
        Duration::from_millis(config.breaker_cooldown_ms),
    );
    let batcher = Batcher::new(
        config.max_batch,
        config.queue_pairs,
        Duration::from_micros(config.linger_us),
        config.faults.clone(),
        breaker,
    );
    // crash recovery: a journaled commit from a previous process decides
    // which model version this process boots as (see crate::reload)
    let (boot_host, boot_version, journal) = match &config.swap_journal {
        Some(p) => {
            let path = Path::new(p);
            let (h, v) = match SwapJournal::recover(path) {
                Ok(Some(rec)) => match load_model(Path::new(&rec.bundle_path)) {
                    Ok(loaded) if loaded.fingerprint_digest() == rec.digest => {
                        obs::emit(
                            "serve.swap.recovered",
                            &[
                                ("version", obs::Value::U64(rec.version)),
                                ("path", obs::Value::Str(rec.bundle_path.clone())),
                            ],
                        );
                        (Arc::new(loaded), rec.version)
                    }
                    _ => {
                        // committed bundle is gone or no longer verifies:
                        // serve the boot model as a NEW version so stale
                        // journal state can never masquerade as current
                        obs::counter("serve.swap.recovery_failed").inc();
                        (Arc::clone(&host), rec.version + 1)
                    }
                },
                _ => (Arc::clone(&host), 1),
            };
            (h, v, Some(SwapJournal::open(path)?))
        }
        None => (Arc::clone(&host), 1, None),
    };
    let cell = HostCell::new(boot_host, boot_version);
    obs::gauge("serve.model.version").set(boot_version as f64);
    let reloader = Arc::new(Reloader::new(Arc::clone(&cell), journal));
    let sup = SupervisorConfig {
        backoff_base: Duration::from_millis(config.backoff_base_ms),
        backoff_cap: Duration::from_millis(config.backoff_cap_ms),
        ..SupervisorConfig::default()
    };
    let workers = supervisor::spawn_workers(config.workers, &batcher, &cell, &sup);
    let accept = {
        let gate = gate.clone();
        let batcher = batcher.clone();
        let cell = Arc::clone(&cell);
        let reloader = Arc::clone(&reloader);
        let max_body = config.max_body;
        let max_conns = config.max_conns.max(1);
        std::thread::Builder::new()
            .name("em-serve-accept".into())
            .spawn(move || {
                accept_loop(
                    &listener, &gate, &batcher, &cell, &reloader, max_body, max_conns,
                );
            })?
    };
    obs::emit(
        "serve.started",
        &[
            ("addr", obs::Value::Str(addr.to_string())),
            ("workers", obs::Value::U64(config.workers.max(1) as u64)),
            ("max_batch", obs::Value::U64(config.max_batch as u64)),
            ("model_version", obs::Value::U64(boot_version)),
        ],
    );
    Ok(ServerHandle {
        addr,
        gate,
        batcher,
        cell,
        accept: Some(accept),
        workers,
        drain: Duration::from_millis(config.drain_ms),
    })
}

/// A running server. Dropping the handle shuts the server down (with
/// drain); call [`shutdown`](Self::shutdown) explicitly to observe
/// whether the drain completed in time.
pub struct ServerHandle {
    addr: SocketAddr,
    gate: par::Gate,
    batcher: Batcher,
    cell: Arc<HostCell>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    drain: Duration,
}

impl ServerHandle {
    /// The bound address (useful with a `:0` config port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The model version currently serving (1 at boot, +1 per hot-swap;
    /// crash recovery may boot higher — see [`crate::reload`]).
    pub fn model_version(&self) -> u64 {
        self.cell.version()
    }

    /// Graceful shutdown: stop admitting connections and jobs, answer
    /// everything already accepted, then join all threads. Returns
    /// `true` when every connection finished inside the configured
    /// drain window.
    pub fn shutdown(mut self) -> bool {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> bool {
        if self.accept.is_none() {
            return true; // already shut down
        }
        // 1. close the front door: no new connections are admitted, and
        //    connection threads switch keep-alive responses to `close`
        self.gate.close();
        // 2. poke the blocking accept() so the accept thread observes
        //    the closed gate and exits
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        // 3. stop admitting jobs; workers drain the queue, then exit —
        //    every job admitted before this line still gets its answer
        self.batcher.shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // 4. wait for connection threads to flush responses and hang up
        let drained = self.gate.drain(self.drain);
        obs::emit("serve.stopped", &[("drained", obs::Value::Bool(drained))]);
        drained
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(
    listener: &TcpListener,
    gate: &par::Gate,
    batcher: &Batcher,
    cell: &Arc<HostCell>,
    reloader: &Arc<Reloader>,
    max_body: usize,
    max_conns: usize,
) {
    loop {
        let (mut stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if gate.is_closed() {
                    return;
                }
                continue;
            }
        };
        let permit = match gate.enter() {
            Some(p) => p,
            None => {
                // draining: tell the client why before hanging up
                let body = error_body("draining", "server is shutting down");
                let _ = stream.write_all(&render_response_with(
                    503,
                    &body,
                    false,
                    &[("retry-after", "1".to_string())],
                ));
                return;
            }
        };
        if gate.in_flight() > max_conns {
            obs::counter("serve.rejected.conns").inc();
            let body = error_body("too_many_connections", "connection limit reached");
            let _ = stream.write_all(&render_response_with(
                429,
                &body,
                false,
                &[("retry-after", "1".to_string())],
            ));
            continue; // permit drops here
        }
        let gate = gate.clone();
        let batcher = batcher.clone();
        let cell = Arc::clone(cell);
        let reloader = Arc::clone(reloader);
        let spawned = std::thread::Builder::new()
            .name("em-serve-conn".into())
            .spawn(move || {
                let _permit = permit;
                handle_connection(stream, &gate, &batcher, &cell, &reloader, max_body);
            });
        if spawned.is_err() {
            obs::counter("serve.rejected.conns").inc();
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    gate: &par::Gate,
    batcher: &Batcher,
    cell: &HostCell,
    reloader: &Reloader,
    max_body: usize,
) {
    // short read timeout so idle keep-alive connections notice a drain
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // answer every complete pipelined request already buffered
        loop {
            match http::parse_request(&buf, max_body) {
                Ok(Some((req, used))) => {
                    buf.drain(..used);
                    let keep = req.keep_alive && !gate.is_closed();
                    let (status, body, headers) = route(&req, batcher, cell, reloader);
                    observe_status(status);
                    if stream
                        .write_all(&render_response_with(status, &body, keep, &headers))
                        .is_err()
                        || !keep
                    {
                        return;
                    }
                }
                Ok(None) => break, // torn: need more bytes
                Err(e) => {
                    respond_http_error(&mut stream, &e);
                    return;
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer hung up
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // idle tick: during a drain with no request in flight,
                // close instead of holding the permit forever
                if gate.is_closed() && buf.is_empty() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn respond_http_error(stream: &mut TcpStream, e: &HttpError) {
    observe_status(e.status());
    let body = error_body(e.code(), &e.message());
    let _ = stream.write_all(&render_response(e.status(), &body, false));
}

fn observe_status(status: u16) {
    let class = match status {
        200..=299 => "serve.rsp.2xx",
        400..=499 => "serve.rsp.4xx",
        _ => "serve.rsp.5xx",
    };
    obs::counter(class).inc();
}

fn route(
    req: &Request,
    batcher: &Batcher,
    cell: &HostCell,
    reloader: &Reloader,
) -> (u16, String, Headers) {
    let _span = obs::span("serve.request");
    let start = Instant::now();
    let (status, body, headers, latency_metric) = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            obs::counter("serve.req.health").inc();
            let snap = cell.snapshot();
            (
                200,
                health_body(&snap.host, snap.version),
                vec![("x-model-version", snap.version.to_string())],
                None,
            )
        }
        ("GET", "/metrics") => {
            obs::counter("serve.req.metrics").inc();
            (200, metrics_body(), Vec::new(), None)
        }
        ("POST", "/match") => {
            obs::counter("serve.req.match").inc();
            let (s, b, h) = handle_match(&req.body, batcher, cell);
            (s, b, h, Some("serve.latency_us.match"))
        }
        ("POST", "/match/batch") => {
            obs::counter("serve.req.batch").inc();
            let (s, b, h) = handle_batch(&req.body, batcher, cell);
            (s, b, h, Some("serve.latency_us.batch"))
        }
        ("POST", "/admin/reload") => {
            obs::counter("serve.req.reload").inc();
            let (s, b, h) = handle_reload(&req.body, reloader);
            (s, b, h, Some("serve.latency_us.reload"))
        }
        (_, "/healthz" | "/metrics" | "/match" | "/match/batch" | "/admin/reload") => (
            405,
            error_body("method_not_allowed", "wrong method for this route"),
            Vec::new(),
            None,
        ),
        (_, path) => (
            404,
            error_body("not_found", &format!("no route {path}")),
            Vec::new(),
            None,
        ),
    };
    if let Some(metric) = latency_metric {
        obs::histogram(metric, LATENCY_BOUNDS_US).observe(start.elapsed().as_micros() as f64);
    }
    (status, body, headers)
}

fn health_body(host: &ModelHost, version: u64) -> String {
    let (hits, misses) = host.cache_stats();
    let mut o = json::Obj::new();
    o.str("status", "ok")
        .str("dataset", host.spec().dataset.code())
        .str("system", host.report().system)
        .f64("val_f1", host.report().val_f1)
        .f64("threshold", f64::from(host.threshold()))
        .u64("model_version", version)
        .str("digest", &host.fingerprint_digest())
        .u64("cache_hits", hits as u64)
        .u64("cache_misses", misses as u64);
    o.finish()
}

fn metrics_body() -> String {
    let mut o = json::Obj::new();
    for (name, snap) in obs::snapshot() {
        o.raw(&name, &snap.to_json());
    }
    o.finish()
}

fn handle_match(body: &[u8], batcher: &Batcher, cell: &HostCell) -> (u16, String, Headers) {
    // parse against the *current* schema; swaps are schema-compatible by
    // construction (Reloader refuses mismatches), so any snapshot works
    let schema = cell.snapshot();
    let pair = match parse_pair_body(body, schema.host.schema()) {
        Ok(p) => p,
        Err(msg) => return (400, error_body("bad_request", &msg), Vec::new()),
    };
    drop(schema);
    match batcher.submit(vec![pair], "match") {
        Ok(waiter) => match waiter.wait() {
            Ok(scored) => {
                let t = scored.threshold;
                let p = scored.probs[0];
                let mut o = json::Obj::new();
                o.f64("p_match", f64::from(p))
                    .bool("match", p >= t)
                    .f64("threshold", f64::from(t));
                (200, o.finish(), version_header(scored.version))
            }
            Err(failure) => failure_response(&failure),
        },
        Err(rejection) => rejected_response(rejection),
    }
}

fn handle_batch(body: &[u8], batcher: &Batcher, cell: &HostCell) -> (u16, String, Headers) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => {
            return (
                400,
                error_body("bad_request", "body is not UTF-8"),
                Vec::new(),
            )
        }
    };
    let v = match json::parse(text) {
        Ok(v) => v,
        Err(e) => {
            return (
                400,
                error_body("bad_request", &format!("invalid JSON: {e}")),
                Vec::new(),
            )
        }
    };
    let pairs_json = match v.get("pairs") {
        Some(Json::Arr(items)) => items,
        _ => {
            return (
                400,
                error_body("bad_request", "expected a 'pairs' array"),
                Vec::new(),
            )
        }
    };
    if pairs_json.is_empty() {
        return (
            400,
            error_body("bad_request", "'pairs' must not be empty"),
            Vec::new(),
        );
    }
    let schema = cell.snapshot();
    let mut pairs = Vec::with_capacity(pairs_json.len());
    for (i, item) in pairs_json.iter().enumerate() {
        match parse_pair(item, schema.host.schema()) {
            Ok(p) => pairs.push(p),
            Err(msg) => {
                return (
                    400,
                    error_body("bad_request", &format!("pairs[{i}]: {msg}")),
                    Vec::new(),
                )
            }
        }
    }
    drop(schema);
    let n = pairs.len();
    match batcher.submit(pairs, "batch") {
        Ok(waiter) => match waiter.wait() {
            Ok(scored) => {
                let t = scored.threshold;
                let results = json::array(scored.probs.iter().map(|&p| {
                    let mut o = json::Obj::new();
                    o.f64("p_match", f64::from(p)).bool("match", p >= t);
                    o.finish()
                }));
                let mut o = json::Obj::new();
                o.raw("results", &results)
                    .f64("threshold", f64::from(t))
                    .u64("batch", n as u64);
                (200, o.finish(), version_header(scored.version))
            }
            Err(failure) => failure_response(&failure),
        },
        Err(rejection) => rejected_response(rejection),
    }
}

fn handle_reload(body: &[u8], reloader: &Reloader) -> (u16, String, Headers) {
    let parsed = std::str::from_utf8(body)
        .ok()
        .and_then(|t| json::parse(t).ok());
    let path = parsed
        .as_ref()
        .and_then(|v| v.get("path"))
        .and_then(Json::as_str);
    let Some(path) = path else {
        return (
            400,
            error_body("bad_request", "expected {\"path\": \"<bundle.json>\"}"),
            Vec::new(),
        );
    };
    match reloader.reload_from_path(Path::new(path)) {
        Ok(outcome) => {
            let mut o = json::Obj::new();
            o.str("status", "swapped")
                .u64("previous_version", outcome.previous)
                .u64("version", outcome.version)
                .str("digest", &outcome.digest)
                .str("system", &outcome.system)
                .u64("load_ms", outcome.load_ms);
            (200, o.finish(), version_header(outcome.version))
        }
        Err(ReloadError::Busy) => (
            409,
            error_body("reload_busy", "another reload is already in progress"),
            Vec::new(),
        ),
        Err(ReloadError::SchemaMismatch) => (
            409,
            error_body(
                "schema_mismatch",
                "new model's schema differs from the serving model; rolled back",
            ),
            Vec::new(),
        ),
        Err(ReloadError::Load(e)) => (
            500,
            error_body(
                "reload_failed",
                &format!("bundle load failed: {e}; rolled back"),
            ),
            Vec::new(),
        ),
    }
}

fn version_header(version: u64) -> Headers {
    vec![("x-model-version", version.to_string())]
}

fn rejected_response(r: Rejected) -> (u16, String, Headers) {
    match r {
        Rejected::Overloaded => (
            429,
            error_body("overloaded", "request queue is full, retry with backoff"),
            vec![("retry-after", "1".to_string())],
        ),
        Rejected::Draining => (
            503,
            error_body("draining", "server is shutting down"),
            vec![("retry-after", "1".to_string())],
        ),
        Rejected::Unavailable { retry_after_secs } => (
            503,
            error_body(
                "breaker_open",
                "circuit breaker is open after repeated worker failures",
            ),
            vec![("retry-after", retry_after_secs.to_string())],
        ),
    }
}

fn failure_response(f: &ServeFailure) -> (u16, String, Headers) {
    (500, error_body(f.code(), &f.message()), Vec::new())
}

fn parse_pair_body(body: &[u8], schema: &Schema) -> Result<RecordPair, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let v = json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    parse_pair(&v, schema)
}

fn parse_pair(v: &Json, schema: &Schema) -> Result<RecordPair, String> {
    let left = parse_entity(
        v.get("left").ok_or_else(|| "missing 'left'".to_owned())?,
        schema,
    )
    .map_err(|m| format!("left: {m}"))?;
    let right = parse_entity(
        v.get("right").ok_or_else(|| "missing 'right'".to_owned())?,
        schema,
    )
    .map_err(|m| format!("right: {m}"))?;
    Ok(RecordPair::new(left, right, false))
}

fn parse_entity(v: &Json, schema: &Schema) -> Result<Entity, String> {
    let fields = match v {
        Json::Object(fields) => fields,
        _ => return Err("entity must be a JSON object".into()),
    };
    let mut values: Vec<Option<String>> = vec![None; schema.len()];
    for (key, value) in fields {
        let idx = schema.index_of(key).ok_or_else(|| {
            let known: Vec<&str> = schema
                .attributes()
                .iter()
                .map(|a| a.name.as_str())
                .collect();
            format!("unknown attribute '{key}' (schema: {})", known.join(", "))
        })?;
        values[idx] = match value {
            Json::Null => None,
            Json::Str(s) => Some(s.clone()),
            Json::Num(tok) => Some(tok.clone()),
            _ => {
                return Err(format!(
                    "attribute '{key}' must be a string, number or null"
                ))
            }
        };
    }
    Ok(Entity::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::{AttrType, Attribute};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("name", AttrType::Text),
            Attribute::new("price", AttrType::Numeric),
        ])
    }

    #[test]
    fn entity_parsing_fills_by_attribute_name() {
        let v = json::parse(r#"{"price":"9.99","name":"ipad"}"#).unwrap();
        let e = parse_entity(&v, &schema()).unwrap();
        assert_eq!(e.value(0), Some("ipad"));
        assert_eq!(e.value(1), Some("9.99"));
    }

    #[test]
    fn unknown_attribute_is_rejected_with_schema_hint() {
        let v = json::parse(r#"{"nam":"typo"}"#).unwrap();
        let err = parse_entity(&v, &schema()).unwrap_err();
        assert!(err.contains("unknown attribute 'nam'"), "{err}");
        assert!(err.contains("name, price"), "{err}");
    }

    #[test]
    fn missing_and_null_attributes_become_none() {
        let v = json::parse(r#"{"name":null}"#).unwrap();
        let e = parse_entity(&v, &schema()).unwrap();
        assert_eq!(e.value(0), None);
        assert_eq!(e.value(1), None);
    }

    #[test]
    fn pair_requires_both_sides() {
        let v = json::parse(r#"{"left":{"name":"a"}}"#).unwrap();
        assert!(parse_pair(&v, &schema()).unwrap_err().contains("right"));
    }
}
