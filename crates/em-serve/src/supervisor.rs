//! Worker supervision: keep the batch workers alive across panics.
//!
//! Each supervised thread runs [`Batcher::run_supervised`] in a loop. A
//! [`WorkerExit::Drained`] ends the thread (normal shutdown); a
//! [`WorkerExit::Panicked`] records a failure on the shared
//! [`par::CircuitBreaker`], sleeps an exponential-with-jitter [`Backoff`]
//! delay, and restarts the worker loop. A worker that scored at least
//! one batch before dying resets its backoff — only *consecutive*
//! zero-progress deaths escalate the delay.
//!
//! The breaker is the coupling point to admission: once
//! `restart_max` failures land inside `restart_window`, the breaker
//! trips and [`Batcher::submit`](crate::batcher::Batcher::submit) starts
//! refusing with `503` + `Retry-After` until the cooldown half-opens it;
//! the first successfully scored batch after that closes it again. The
//! supervisor itself never stops restarting — an open breaker sheds
//! *new* load while restarts keep draining whatever is already queued.
//!
//! Backoff sleeps are chopped into short ticks and cut short when the
//! batcher starts draining, so shutdown never waits out a restart delay.

use crate::batcher::{Batcher, WorkerExit};
use crate::reload::HostCell;
use par::Backoff;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Restart policy for one server's worker pool.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// First restart delay (doubles per consecutive failure).
    pub backoff_base: Duration,
    /// Pre-jitter ceiling on the restart delay.
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter (worker index is
    /// folded in so siblings don't restart in lockstep).
    pub seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(1000),
            seed: 0xE55E_12E5,
        }
    }
}

/// Spawn `n` supervised worker threads over a shared batcher and model
/// cell. Threads exit when the batcher drains; join the handles after
/// calling [`Batcher::shutdown`].
pub fn spawn_workers(
    n: usize,
    batcher: &Batcher,
    cell: &Arc<HostCell>,
    cfg: &SupervisorConfig,
) -> Vec<JoinHandle<()>> {
    (0..n.max(1))
        .map(|i| {
            let batcher = batcher.clone();
            let cell = Arc::clone(cell);
            let cfg = cfg.clone();
            thread::Builder::new()
                .name(format!("em-serve-worker-{i}"))
                .spawn(move || supervise(i, &batcher, &cell, &cfg))
                .expect("spawn worker thread")
        })
        .collect()
}

/// The supervision loop for one worker slot.
fn supervise(index: usize, batcher: &Batcher, cell: &HostCell, cfg: &SupervisorConfig) {
    let mut backoff = Backoff::new(
        cfg.backoff_base,
        cfg.backoff_cap,
        cfg.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    loop {
        // belt and braces: run_supervised already catches per-batch
        // panics, but a panic in the batching machinery itself (queue,
        // condvar, obs) must not kill the supervision thread either
        let exit = par::catch_panic({
            let batcher = batcher.clone();
            move || batcher.run_supervised(cell)
        });
        let (message, batches_done) = match exit {
            Ok(WorkerExit::Drained) => return,
            Ok(WorkerExit::Panicked {
                message,
                batches_done,
            }) => (message, batches_done),
            Err(message) => (message, 0),
        };
        obs::counter("serve.worker.restarts").inc();
        obs::emit(
            "serve.worker.panic",
            &[
                ("worker", obs::Value::U64(index as u64)),
                ("batches_done", obs::Value::U64(batches_done)),
                ("message", obs::Value::Str(message.clone())),
            ],
        );
        if batcher.breaker().record_failure() {
            obs::counter("serve.breaker.trips").inc();
        }
        if batches_done > 0 {
            // the worker was healthy before this death: fresh schedule
            backoff.reset();
        }
        sleep_interruptible(batcher, backoff.next_delay());
    }
}

/// Sleep up to `delay`, returning early once the batcher starts
/// draining so queued jobs are picked up without waiting out a backoff.
fn sleep_interruptible(batcher: &Batcher, delay: Duration) {
    let tick = Duration::from_millis(5);
    let mut remaining = delay;
    while remaining > Duration::ZERO {
        if batcher.is_draining() {
            return;
        }
        let step = remaining.min(tick);
        thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automl::fault::ServeFaultPlan;
    use em_core::model::{ModelHost, ModelSpec};
    use em_data::Split;
    use par::CircuitBreaker;

    fn tiny_host() -> ModelHost {
        ModelSpec {
            scale: 0.25,
            budget_hours: 0.1,
            ..ModelSpec::fixture()
        }
        .train()
        .unwrap()
    }

    #[test]
    fn supervisor_restarts_worker_after_injected_panic() {
        automl::fault::silence_injected_panic_output();
        let host = tiny_host();
        let pairs = host.dataset().split(Split::Test).to_vec();
        let direct = host.match_proba(&pairs[..2]);
        let cell = HostCell::new(Arc::new(host), 1);
        let batcher = Batcher::new(
            1, // one pair per batch: batch index == request index
            1024,
            Duration::from_millis(1),
            ServeFaultPlan::none().panic_batcher_at(0),
            CircuitBreaker::new(100, Duration::from_secs(60), Duration::from_millis(50)),
        );
        let cfg = SupervisorConfig {
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(5),
            seed: 7,
        };
        let handles = spawn_workers(1, &batcher, &cell, &cfg);
        // batch 0 panics → typed failure; batch 1 succeeds after restart
        let w0 = batcher.submit(vec![pairs[0].clone()], "match").unwrap();
        assert!(w0.wait().is_err(), "batch 0 carries the injected panic");
        let w1 = batcher.submit(vec![pairs[1].clone()], "match").unwrap();
        let scored = w1.wait().expect("restarted worker scores batch 1");
        assert_eq!(scored.probs[0].to_bits(), direct[1].to_bits());
        batcher.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn repeated_panics_trip_the_breaker_into_typed_refusals() {
        automl::fault::silence_injected_panic_output();
        let host = tiny_host();
        let pairs = host.dataset().split(Split::Test).to_vec();
        let cell = HostCell::new(Arc::new(host), 1);
        let batcher = Batcher::new(
            1,
            1024,
            Duration::from_millis(1),
            ServeFaultPlan::none()
                .panic_batcher_at(0)
                .panic_batcher_at(1),
            CircuitBreaker::new(2, Duration::from_secs(60), Duration::from_secs(30)),
        );
        let cfg = SupervisorConfig {
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(5),
            seed: 7,
        };
        let handles = spawn_workers(1, &batcher, &cell, &cfg);
        let w0 = batcher.submit(vec![pairs[0].clone()], "match").unwrap();
        assert!(w0.wait().is_err());
        let w1 = batcher.submit(vec![pairs[1].clone()], "match").unwrap();
        assert!(w1.wait().is_err());
        // two restart failures in the window → breaker open → refusal
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match batcher.submit(vec![pairs[2].clone()], "match") {
                Err(crate::batcher::Rejected::Unavailable { retry_after_secs }) => {
                    assert!(retry_after_secs >= 1);
                    break;
                }
                Ok(w) => {
                    // supervisor hasn't recorded the second failure yet
                    let _ = w.wait();
                }
                Err(other) => panic!("unexpected rejection {other:?}"),
            }
            assert!(std::time::Instant::now() < deadline, "breaker never opened");
            thread::sleep(Duration::from_millis(2));
        }
        batcher.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }
}
