//! # em-serve — online entity matching as a service
//!
//! A long-running, std-only HTTP/1.1 server that turns a trained
//! [`em_core::model::ModelHost`] into an online matcher: `POST /match`
//! takes two entity descriptions and answers `P(match)` under the
//! winner's validation-tuned threshold; `POST /match/batch` scores many
//! pairs in one call. The serving contract is **bit-identity**: every
//! probability equals what the offline `predict` path produces for the
//! same pair, whatever microbatch it happened to ride in — see
//! [`batcher`] for why coalescing cannot change answers.
//!
//! Five moving parts:
//!
//! * [`http`] — incremental HTTP/1.1 parsing with keep-alive,
//!   pipelining and hard caps (no chunked bodies, `Content-Length`
//!   only).
//! * [`batcher`] — the request coalescer: a bounded queue where
//!   concurrent small requests merge into GEMM-sized microbatches
//!   (flush at `max_batch` pairs or after a linger window), with typed
//!   admission control (`429 overloaded` / `503 draining` / `503
//!   breaker_open` + `Retry-After`).
//! * [`supervisor`] — keeps batch workers alive across panics:
//!   exponential-backoff restarts, typed `500`s for the batch that
//!   died, and a circuit breaker that sheds load after repeated
//!   failures instead of crash-looping.
//! * [`reload`] — zero-drop model hot-swap: `POST /admin/reload` loads
//!   and bit-verifies a new bundle off the hot path, then flips an
//!   `Arc` between microbatches; every response names the exact model
//!   version that scored it (`x-model-version`), and a WAL journal
//!   makes crash-mid-swap recovery well-defined.
//! * [`server`] — accept loop, per-connection threads behind a
//!   [`par::Gate`], and graceful shutdown that answers everything
//!   admitted before hanging up.
//!
//! Chaos-testing hooks ride the `AUTOML_EM_FAULTS` grammar
//! ([`automl::fault::ServeFaultPlan`]): `panic@batcher:K`,
//! `err@predict:K`, `slow@embed:MS`, `torn@client`, `loris@client:MS`.
//! `serve_bench --chaos` drives them and asserts the serving invariant:
//! every accepted request gets exactly one correct-or-typed-error
//! response, and post-fault responses stay bit-identical to offline
//! predict.
//!
//! Configuration comes from `AUTOML_EM_SERVE_*` environment variables
//! ([`ServeConfig::from_env`]); every route increments `serve.*`
//! counters and latency histograms in the [`obs`] registry, exposed
//! live at `GET /metrics`. The serving handbook lives in
//! `docs/SERVING.md`; `bench/src/bin/serve_bench.rs` measures p50/p99
//! latency and sustained QPS into `results/BENCH_serve.json`.

#![warn(missing_docs)]

pub mod batcher;
pub mod http;
pub mod reload;
pub mod server;
pub mod supervisor;

pub use batcher::{Batcher, Rejected, Scored, ServeFailure, Waiter, WorkerExit};
pub use http::{parse_request, render_response, HttpError, Request};
pub use reload::{HostCell, ReloadError, Reloader, SwapJournal, VersionedHost};
pub use server::{serve, ServerHandle};
pub use supervisor::SupervisorConfig;

/// Server tuning knobs, each overridable via an `AUTOML_EM_SERVE_*`
/// environment variable (see [`from_env`](Self::from_env)).
///
/// ```
/// let config = em_serve::ServeConfig::default();
/// assert_eq!(config.addr, "127.0.0.1:8642");
/// assert_eq!(config.max_batch, 32);
/// // struct-update syntax is the idiomatic way to tweak one knob:
/// let test_config = em_serve::ServeConfig { addr: "127.0.0.1:0".into(), ..config };
/// assert_eq!(test_config.workers, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address (`AUTOML_EM_SERVE_ADDR`, default `127.0.0.1:8642`;
    /// use port `0` to let the OS pick — read it back from
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Maximum pairs fused into one predict microbatch
    /// (`AUTOML_EM_SERVE_MAX_BATCH`, default 32).
    pub max_batch: usize,
    /// How long a non-full microbatch waits for company after its first
    /// job arrives, in microseconds (`AUTOML_EM_SERVE_LINGER_US`,
    /// default 2000).
    pub linger_us: u64,
    /// Admission cap: maximum pairs queued and not yet scored
    /// (`AUTOML_EM_SERVE_QUEUE`, default 256). Beyond it, submissions
    /// get `429 overloaded`.
    pub queue_pairs: usize,
    /// Maximum accepted request body in bytes
    /// (`AUTOML_EM_SERVE_MAX_BODY`, default 1 MiB → `413` beyond).
    pub max_body: usize,
    /// Maximum concurrent connections (`AUTOML_EM_SERVE_MAX_CONNS`,
    /// default 64 → `429 too_many_connections` beyond).
    pub max_conns: usize,
    /// Graceful-shutdown drain window in milliseconds
    /// (`AUTOML_EM_SERVE_DRAIN_MS`, default 5000).
    pub drain_ms: u64,
    /// Batch worker threads (`AUTOML_EM_SERVE_WORKERS`, default 1 —
    /// the predict pass already parallelizes internally over the `par`
    /// pool, so more workers only help when batches are small).
    pub workers: usize,
    /// Worker restarts within [`restart_window_ms`](Self::restart_window_ms)
    /// that trip the circuit breaker (`AUTOML_EM_SERVE_RESTART_MAX`,
    /// default 5).
    pub restart_max: usize,
    /// Sliding window for counting worker restarts, in milliseconds
    /// (`AUTOML_EM_SERVE_RESTART_WINDOW_MS`, default 30000).
    pub restart_window_ms: u64,
    /// How long a tripped breaker refuses work before half-opening, in
    /// milliseconds (`AUTOML_EM_SERVE_BREAKER_COOLDOWN_MS`, default
    /// 1000). Also the basis of the `Retry-After` header on `503
    /// breaker_open` responses.
    pub breaker_cooldown_ms: u64,
    /// First worker-restart backoff delay, in milliseconds
    /// (`AUTOML_EM_SERVE_BACKOFF_BASE_MS`, default 10). Doubles per
    /// consecutive zero-progress restart.
    pub backoff_base_ms: u64,
    /// Pre-jitter ceiling on the restart backoff, in milliseconds
    /// (`AUTOML_EM_SERVE_BACKOFF_CAP_MS`, default 1000).
    pub backoff_cap_ms: u64,
    /// Path of the hot-swap WAL journal
    /// (`AUTOML_EM_SERVE_SWAP_JOURNAL`; unset → swaps work but are not
    /// journaled and crash-mid-swap recovery is unavailable).
    pub swap_journal: Option<String>,
    /// Serve-path fault plan, parsed from the serve productions of
    /// `AUTOML_EM_FAULTS` (`panic@batcher:K`, `err@predict:K`,
    /// `slow@embed:MS`, `torn@client`, `loris@client:MS`). Empty by
    /// default; only chaos harnesses set this.
    pub faults: automl::fault::ServeFaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8642".into(),
            max_batch: 32,
            linger_us: 2000,
            queue_pairs: 256,
            max_body: 1 << 20,
            max_conns: 64,
            drain_ms: 5000,
            workers: 1,
            restart_max: 5,
            restart_window_ms: 30_000,
            breaker_cooldown_ms: 1000,
            backoff_base_ms: 10,
            backoff_cap_ms: 1000,
            swap_journal: None,
            faults: automl::fault::ServeFaultPlan::none(),
        }
    }
}

impl ServeConfig {
    /// Read the configuration from `AUTOML_EM_SERVE_*` environment
    /// variables, falling back to the defaults field by field.
    /// Unparseable values fall back silently — the server should come
    /// up with defaults rather than refuse to start over a typo'd
    /// tuning knob (the bind address is taken verbatim and *will*
    /// surface as a bind error, which is the one mistake that must not
    /// be papered over).
    pub fn from_env() -> Self {
        let d = Self::default();
        Self {
            addr: std::env::var("AUTOML_EM_SERVE_ADDR").unwrap_or(d.addr),
            max_batch: env_parse("AUTOML_EM_SERVE_MAX_BATCH", d.max_batch),
            linger_us: env_parse("AUTOML_EM_SERVE_LINGER_US", d.linger_us),
            queue_pairs: env_parse("AUTOML_EM_SERVE_QUEUE", d.queue_pairs),
            max_body: env_parse("AUTOML_EM_SERVE_MAX_BODY", d.max_body),
            max_conns: env_parse("AUTOML_EM_SERVE_MAX_CONNS", d.max_conns),
            drain_ms: env_parse("AUTOML_EM_SERVE_DRAIN_MS", d.drain_ms),
            workers: env_parse("AUTOML_EM_SERVE_WORKERS", d.workers),
            restart_max: env_parse("AUTOML_EM_SERVE_RESTART_MAX", d.restart_max),
            restart_window_ms: env_parse("AUTOML_EM_SERVE_RESTART_WINDOW_MS", d.restart_window_ms),
            breaker_cooldown_ms: env_parse(
                "AUTOML_EM_SERVE_BREAKER_COOLDOWN_MS",
                d.breaker_cooldown_ms,
            ),
            backoff_base_ms: env_parse("AUTOML_EM_SERVE_BACKOFF_BASE_MS", d.backoff_base_ms),
            backoff_cap_ms: env_parse("AUTOML_EM_SERVE_BACKOFF_CAP_MS", d.backoff_cap_ms),
            swap_journal: std::env::var("AUTOML_EM_SERVE_SWAP_JOURNAL").ok(),
            faults: automl::fault::FaultPlan::from_env().serve().clone(),
        }
    }
}

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_documented_values() {
        let c = ServeConfig::default();
        assert_eq!(c.addr, "127.0.0.1:8642");
        assert_eq!(c.max_batch, 32);
        assert_eq!(c.linger_us, 2000);
        assert_eq!(c.queue_pairs, 256);
        assert_eq!(c.max_body, 1 << 20);
        assert_eq!(c.max_conns, 64);
        assert_eq!(c.drain_ms, 5000);
        assert_eq!(c.workers, 1);
        assert_eq!(c.restart_max, 5);
        assert_eq!(c.restart_window_ms, 30_000);
        assert_eq!(c.breaker_cooldown_ms, 1000);
        assert_eq!(c.backoff_base_ms, 10);
        assert_eq!(c.backoff_cap_ms, 1000);
        assert_eq!(c.swap_journal, None);
        assert!(c.faults.is_empty());
    }

    #[test]
    fn env_parse_falls_back_on_garbage() {
        // uses a name no other test sets, to stay parallel-safe
        std::env::set_var("AUTOML_EM_SERVE_TEST_KNOB", "not-a-number");
        assert_eq!(env_parse("AUTOML_EM_SERVE_TEST_KNOB", 7usize), 7);
        std::env::set_var("AUTOML_EM_SERVE_TEST_KNOB", "12");
        assert_eq!(env_parse("AUTOML_EM_SERVE_TEST_KNOB", 7usize), 12);
        std::env::remove_var("AUTOML_EM_SERVE_TEST_KNOB");
    }
}
