//! # em-serve — online entity matching as a service
//!
//! A long-running, std-only HTTP/1.1 server that turns a trained
//! [`em_core::model::ModelHost`] into an online matcher: `POST /match`
//! takes two entity descriptions and answers `P(match)` under the
//! winner's validation-tuned threshold; `POST /match/batch` scores many
//! pairs in one call. The serving contract is **bit-identity**: every
//! probability equals what the offline `predict` path produces for the
//! same pair, whatever microbatch it happened to ride in — see
//! [`batcher`] for why coalescing cannot change answers.
//!
//! Three moving parts:
//!
//! * [`http`] — incremental HTTP/1.1 parsing with keep-alive,
//!   pipelining and hard caps (no chunked bodies, `Content-Length`
//!   only).
//! * [`batcher`] — the request coalescer: a bounded queue where
//!   concurrent small requests merge into GEMM-sized microbatches
//!   (flush at `max_batch` pairs or after a linger window), with typed
//!   admission control (`429 overloaded` / `503 draining`).
//! * [`server`] — accept loop, per-connection threads behind a
//!   [`par::Gate`], and graceful shutdown that answers everything
//!   admitted before hanging up.
//!
//! Configuration comes from `AUTOML_EM_SERVE_*` environment variables
//! ([`ServeConfig::from_env`]); every route increments `serve.*`
//! counters and latency histograms in the [`obs`] registry, exposed
//! live at `GET /metrics`. The serving handbook lives in
//! `docs/SERVING.md`; `bench/src/bin/serve_bench.rs` measures p50/p99
//! latency and sustained QPS into `results/BENCH_serve.json`.

#![warn(missing_docs)]

pub mod batcher;
pub mod http;
pub mod server;

pub use batcher::{Batcher, Rejected, Waiter};
pub use http::{parse_request, render_response, HttpError, Request};
pub use server::{serve, ServerHandle};

/// Server tuning knobs, each overridable via an `AUTOML_EM_SERVE_*`
/// environment variable (see [`from_env`](Self::from_env)).
///
/// ```
/// let config = em_serve::ServeConfig::default();
/// assert_eq!(config.addr, "127.0.0.1:8642");
/// assert_eq!(config.max_batch, 32);
/// // struct-update syntax is the idiomatic way to tweak one knob:
/// let test_config = em_serve::ServeConfig { addr: "127.0.0.1:0".into(), ..config };
/// assert_eq!(test_config.workers, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address (`AUTOML_EM_SERVE_ADDR`, default `127.0.0.1:8642`;
    /// use port `0` to let the OS pick — read it back from
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Maximum pairs fused into one predict microbatch
    /// (`AUTOML_EM_SERVE_MAX_BATCH`, default 32).
    pub max_batch: usize,
    /// How long a non-full microbatch waits for company after its first
    /// job arrives, in microseconds (`AUTOML_EM_SERVE_LINGER_US`,
    /// default 2000).
    pub linger_us: u64,
    /// Admission cap: maximum pairs queued and not yet scored
    /// (`AUTOML_EM_SERVE_QUEUE`, default 256). Beyond it, submissions
    /// get `429 overloaded`.
    pub queue_pairs: usize,
    /// Maximum accepted request body in bytes
    /// (`AUTOML_EM_SERVE_MAX_BODY`, default 1 MiB → `413` beyond).
    pub max_body: usize,
    /// Maximum concurrent connections (`AUTOML_EM_SERVE_MAX_CONNS`,
    /// default 64 → `429 too_many_connections` beyond).
    pub max_conns: usize,
    /// Graceful-shutdown drain window in milliseconds
    /// (`AUTOML_EM_SERVE_DRAIN_MS`, default 5000).
    pub drain_ms: u64,
    /// Batch worker threads (`AUTOML_EM_SERVE_WORKERS`, default 1 —
    /// the predict pass already parallelizes internally over the `par`
    /// pool, so more workers only help when batches are small).
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8642".into(),
            max_batch: 32,
            linger_us: 2000,
            queue_pairs: 256,
            max_body: 1 << 20,
            max_conns: 64,
            drain_ms: 5000,
            workers: 1,
        }
    }
}

impl ServeConfig {
    /// Read the configuration from `AUTOML_EM_SERVE_*` environment
    /// variables, falling back to the defaults field by field.
    /// Unparseable values fall back silently — the server should come
    /// up with defaults rather than refuse to start over a typo'd
    /// tuning knob (the bind address is taken verbatim and *will*
    /// surface as a bind error, which is the one mistake that must not
    /// be papered over).
    pub fn from_env() -> Self {
        let d = Self::default();
        Self {
            addr: std::env::var("AUTOML_EM_SERVE_ADDR").unwrap_or(d.addr),
            max_batch: env_parse("AUTOML_EM_SERVE_MAX_BATCH", d.max_batch),
            linger_us: env_parse("AUTOML_EM_SERVE_LINGER_US", d.linger_us),
            queue_pairs: env_parse("AUTOML_EM_SERVE_QUEUE", d.queue_pairs),
            max_body: env_parse("AUTOML_EM_SERVE_MAX_BODY", d.max_body),
            max_conns: env_parse("AUTOML_EM_SERVE_MAX_CONNS", d.max_conns),
            drain_ms: env_parse("AUTOML_EM_SERVE_DRAIN_MS", d.drain_ms),
            workers: env_parse("AUTOML_EM_SERVE_WORKERS", d.workers),
        }
    }
}

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_documented_values() {
        let c = ServeConfig::default();
        assert_eq!(c.addr, "127.0.0.1:8642");
        assert_eq!(c.max_batch, 32);
        assert_eq!(c.linger_us, 2000);
        assert_eq!(c.queue_pairs, 256);
        assert_eq!(c.max_body, 1 << 20);
        assert_eq!(c.max_conns, 64);
        assert_eq!(c.drain_ms, 5000);
        assert_eq!(c.workers, 1);
    }

    #[test]
    fn env_parse_falls_back_on_garbage() {
        // uses a name no other test sets, to stay parallel-safe
        std::env::set_var("AUTOML_EM_SERVE_TEST_KNOB", "not-a-number");
        assert_eq!(env_parse("AUTOML_EM_SERVE_TEST_KNOB", 7usize), 7);
        std::env::set_var("AUTOML_EM_SERVE_TEST_KNOB", "12");
        assert_eq!(env_parse("AUTOML_EM_SERVE_TEST_KNOB", 7usize), 12);
        std::env::remove_var("AUTOML_EM_SERVE_TEST_KNOB");
    }
}
