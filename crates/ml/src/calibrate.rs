//! Probability calibration and precision-recall analysis.
//!
//! EM systems act on a decision threshold, so probability *calibration*
//! matters: Platt scaling (a 1-D logistic fit on validation scores) is the
//! standard post-hoc fix that the real AutoML stacks apply to their
//! ensemble outputs. The PR utilities support threshold diagnostics beyond
//! the single F1 number the paper reports.

use linalg::vector::sigmoid;

/// A fitted Platt scaler: `p' = σ(a·logit(p) + b)`.
#[derive(Debug, Clone, Copy)]
pub struct PlattScaler {
    /// Slope.
    pub a: f32,
    /// Intercept.
    pub b: f32,
}

fn logit(p: f32) -> f32 {
    let p = p.clamp(1e-6, 1.0 - 1e-6);
    (p / (1.0 - p)).ln()
}

impl PlattScaler {
    /// Fit on validation probabilities vs labels by gradient descent on
    /// the log loss (the problem is 2-parameter and convex).
    pub fn fit(probs: &[f32], labels: &[bool]) -> Self {
        assert_eq!(probs.len(), labels.len(), "length mismatch");
        assert!(!probs.is_empty(), "cannot calibrate on empty data");
        let scores: Vec<f32> = probs.iter().map(|&p| logit(p)).collect();
        // Platt's target smoothing avoids saturated gradients
        let n_pos = labels.iter().filter(|&&l| l).count() as f32;
        let n_neg = labels.len() as f32 - n_pos;
        let t_pos = (n_pos + 1.0) / (n_pos + 2.0);
        let t_neg = 1.0 / (n_neg + 2.0);
        let mut a = 1.0f32;
        let mut b = 0.0f32;
        let lr = 0.1;
        for _ in 0..2000 {
            let mut ga = 0.0f32;
            let mut gb = 0.0f32;
            for (&s, &l) in scores.iter().zip(labels) {
                let t = if l { t_pos } else { t_neg };
                let p = sigmoid(a * s + b);
                let err = p - t;
                ga += err * s;
                gb += err;
            }
            let inv = 1.0 / scores.len() as f32;
            a -= lr * ga * inv;
            b -= lr * gb * inv;
        }
        Self { a, b }
    }

    /// Apply the scaler to one probability.
    pub fn transform_one(&self, p: f32) -> f32 {
        sigmoid(self.a * logit(p) + self.b)
    }

    /// Apply the scaler to a probability slice.
    pub fn transform(&self, probs: &[f32]) -> Vec<f32> {
        probs.iter().map(|&p| self.transform_one(p)).collect()
    }
}

/// One point of a precision-recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Decision threshold producing this point.
    pub threshold: f32,
    /// Precision at the threshold.
    pub precision: f64,
    /// Recall at the threshold.
    pub recall: f64,
}

/// Precision-recall curve over all distinct thresholds, ordered by
/// decreasing threshold (increasing recall).
pub fn pr_curve(probs: &[f32], labels: &[bool]) -> Vec<PrPoint> {
    assert_eq!(probs.len(), labels.len(), "length mismatch");
    let total_pos = labels.iter().filter(|&&l| l).count();
    if total_pos == 0 || probs.is_empty() {
        return Vec::new();
    }
    // descending by probability; NaN scores deterministically sort last
    // (they are the "worst" threshold) instead of panicking
    let mut order: Vec<usize> = (0..probs.len()).collect();
    order.sort_by(|&a, &b| linalg::stats::nan_worst_cmp_f32(probs[b], probs[a]));
    let mut out = Vec::new();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0;
    while i < order.len() {
        let threshold = probs[order[i]];
        if threshold.is_nan() {
            // NaN probabilities sorted last; `p >= t` is false for NaN at
            // every threshold, so these rows can never be predicted
            // positive and contribute no further curve points.
            break;
        }
        // consume all examples tied at this threshold
        while i < order.len() && probs[order[i]] == threshold {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        out.push(PrPoint {
            threshold,
            precision: tp as f64 / (tp + fp) as f64,
            recall: tp as f64 / total_pos as f64,
        });
    }
    out
}

/// Average precision (area under the PR curve, step interpolation).
pub fn average_precision(probs: &[f32], labels: &[bool]) -> f64 {
    let curve = pr_curve(probs, labels);
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for p in &curve {
        ap += (p.recall - prev_recall) * p.precision;
        prev_recall = p.recall;
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml_test_helpers::*;

    mod ml_test_helpers {
        pub fn labels_alternating(n: usize) -> Vec<bool> {
            (0..n).map(|i| i % 3 == 0).collect()
        }
    }

    #[test]
    fn platt_fixes_systematic_bias() {
        // scores systematically too low: positives near 0.3, negatives 0.05
        let probs: Vec<f32> = (0..200)
            .map(|i| if i % 4 == 0 { 0.3 } else { 0.05 })
            .collect();
        let labels: Vec<bool> = (0..200).map(|i| i % 4 == 0).collect();
        let scaler = PlattScaler::fit(&probs, &labels);
        let cal_pos = scaler.transform_one(0.3);
        let cal_neg = scaler.transform_one(0.05);
        assert!(cal_pos > 0.5, "calibrated positive {cal_pos}");
        assert!(cal_neg < 0.5, "calibrated negative {cal_neg}");
    }

    #[test]
    fn platt_preserves_monotonicity() {
        let probs: Vec<f32> = (1..100).map(|i| i as f32 / 100.0).collect();
        let labels: Vec<bool> = (1..100).map(|i| i > 50).collect();
        let scaler = PlattScaler::fit(&probs, &labels);
        let cal = scaler.transform(&probs);
        for w in cal.windows(2) {
            assert!(w[1] >= w[0] - 1e-6);
        }
    }

    #[test]
    fn pr_curve_perfect_classifier() {
        let probs = [0.9f32, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        let curve = pr_curve(&probs, &labels);
        // every point before recall 1.0 has precision 1.0
        assert!(curve.iter().all(|p| p.recall < 1.0 || p.precision >= 0.5));
        assert!((average_precision(&probs, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pr_curve_random_classifier_ap_near_base_rate() {
        let mut rng = linalg::Rng::new(5);
        let n = 4000;
        let probs: Vec<f32> = (0..n).map(|_| rng.f32()).collect();
        let labels: Vec<bool> = (0..n).map(|_| rng.chance(0.2)).collect();
        let ap = average_precision(&probs, &labels);
        assert!((ap - 0.2).abs() < 0.05, "AP {ap}");
    }

    #[test]
    fn pr_curve_handles_ties_and_degenerates() {
        assert!(pr_curve(&[0.5, 0.5], &[false, false]).is_empty());
        let curve = pr_curve(&[0.5, 0.5, 0.5], &[true, false, true]);
        assert_eq!(curve.len(), 1);
        assert!((curve[0].recall - 1.0).abs() < 1e-12);
        let _ = labels_alternating(3);
    }

    #[test]
    fn recall_is_monotone_along_curve() {
        let mut rng = linalg::Rng::new(6);
        let probs: Vec<f32> = (0..300).map(|_| rng.f32()).collect();
        let labels: Vec<bool> = (0..300).map(|_| rng.chance(0.3)).collect();
        let curve = pr_curve(&probs, &labels);
        for w in curve.windows(2) {
            assert!(w[1].recall >= w[0].recall);
            assert!(w[1].threshold <= w[0].threshold);
        }
    }
}
