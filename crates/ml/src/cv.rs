//! Cross-validation utilities.
//!
//! Stratified k-fold is the backbone of the ensembling strategies: bagged
//! stacking (AutoGluon-style) and the super learner (H2O-style) both need
//! out-of-fold predictions, and the SMBO loop scores candidates on a
//! stratified holdout.

use linalg::Rng;

/// Stratified k-fold split: returns `k` (train_indices, valid_indices)
/// pairs. Both classes are spread evenly across folds.
pub fn stratified_kfold(y: &[f32], k: usize, rng: &mut Rng) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "need at least 2 folds");
    assert!(y.len() >= k, "fewer examples than folds");
    let mut pos: Vec<usize> = (0..y.len()).filter(|&i| y[i] >= 0.5).collect();
    let mut neg: Vec<usize> = (0..y.len()).filter(|&i| y[i] < 0.5).collect();
    rng.shuffle(&mut pos);
    rng.shuffle(&mut neg);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &idx) in pos.iter().enumerate() {
        folds[i % k].push(idx);
    }
    for (i, &idx) in neg.iter().enumerate() {
        folds[i % k].push(idx);
    }
    (0..k)
        .map(|f| {
            let valid = folds[f].clone();
            let train: Vec<usize> = (0..k)
                .filter(|&g| g != f)
                .flat_map(|g| folds[g].iter().copied())
                .collect();
            (train, valid)
        })
        .collect()
}

/// Stratified holdout split: `(train, valid)` index sets with
/// `valid_frac` of each class in the validation part.
pub fn stratified_holdout(y: &[f32], valid_frac: f64, rng: &mut Rng) -> (Vec<usize>, Vec<usize>) {
    assert!((0.0..1.0).contains(&valid_frac), "valid_frac out of range");
    let mut pos: Vec<usize> = (0..y.len()).filter(|&i| y[i] >= 0.5).collect();
    let mut neg: Vec<usize> = (0..y.len()).filter(|&i| y[i] < 0.5).collect();
    rng.shuffle(&mut pos);
    rng.shuffle(&mut neg);
    let mut train = Vec::new();
    let mut valid = Vec::new();
    for class in [pos, neg] {
        // ceil so tiny minority classes keep at least one validation example
        let n_valid = ((class.len() as f64 * valid_frac).ceil() as usize).min(class.len());
        // but never drain a class entirely out of train
        let n_valid = if n_valid == class.len() && !class.is_empty() {
            class.len() - 1
        } else {
            n_valid
        };
        valid.extend_from_slice(&class[..n_valid]);
        train.extend_from_slice(&class[n_valid..]);
    }
    rng.shuffle(&mut train);
    rng.shuffle(&mut valid);
    (train, valid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n_pos: usize, n_neg: usize) -> Vec<f32> {
        let mut y = vec![1.0; n_pos];
        y.extend(vec![0.0; n_neg]);
        y
    }

    #[test]
    fn kfold_partitions_everything() {
        let y = labels(20, 80);
        let mut rng = Rng::new(1);
        let folds = stratified_kfold(&y, 5, &mut rng);
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0usize; 100];
        for (train, valid) in &folds {
            assert_eq!(train.len() + valid.len(), 100);
            for &i in valid {
                seen[i] += 1;
            }
        }
        // every example is in exactly one validation fold
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn kfold_is_stratified() {
        let y = labels(20, 80);
        let mut rng = Rng::new(2);
        for (_, valid) in stratified_kfold(&y, 5, &mut rng) {
            let pos = valid.iter().filter(|&&i| y[i] >= 0.5).count();
            assert_eq!(pos, 4, "each fold should hold 4 of the 20 positives");
        }
    }

    #[test]
    fn kfold_no_train_valid_overlap() {
        let y = labels(10, 30);
        let mut rng = Rng::new(3);
        for (train, valid) in stratified_kfold(&y, 4, &mut rng) {
            for i in valid {
                assert!(!train.contains(&i));
            }
        }
    }

    #[test]
    fn holdout_fractions_and_coverage() {
        let y = labels(10, 90);
        let mut rng = Rng::new(4);
        let (train, valid) = stratified_holdout(&y, 0.2, &mut rng);
        assert_eq!(train.len() + valid.len(), 100);
        let vp = valid.iter().filter(|&&i| y[i] >= 0.5).count();
        assert_eq!(vp, 2); // 20% of 10 positives
    }

    #[test]
    fn holdout_keeps_minority_in_both_sides() {
        // 3 positives, 20% → ceil gives 1 validation positive, 2 train
        let y = labels(3, 50);
        let mut rng = Rng::new(5);
        let (train, valid) = stratified_holdout(&y, 0.2, &mut rng);
        let tp = train.iter().filter(|&&i| y[i] >= 0.5).count();
        let vp = valid.iter().filter(|&&i| y[i] >= 0.5).count();
        assert!(tp >= 1 && vp >= 1, "train {tp}, valid {vp}");
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn kfold_rejects_k1() {
        stratified_kfold(&labels(5, 5), 1, &mut Rng::new(0));
    }
}
