//! Gradient-boosted trees with the logistic loss.
//!
//! Two variants mirror the two boosting libraries in AutoGluon's fixed
//! roster (and the paper's Section 2 description of it):
//!
//! * [`GradientBoosting`] — depth-wise regression trees over histogram bins
//!   with second-order (gradient/hessian) split gains, the LightGBM recipe.
//! * [`ObliviousBoosting`] — *symmetric/oblivious* trees (one split decision
//!   per level shared by every node of that level), CatBoost's signature
//!   tree structure.
//!
//! Both train additive models `F ← F + lr · tree(g, h)` where
//! `g = p − y`, `h = p(1 − p)` and leaves take the Newton step
//! `−G/(H + λ)`.

use crate::tree::{BinnedData, Binner, MAX_BINS};
use crate::{check_fit_inputs, Classifier, TrialError};
use linalg::vector::sigmoid;
use linalg::{Matrix, Rng};

/// Shared boosting hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct BoostConfig {
    /// Number of boosting rounds (trees).
    pub n_rounds: usize,
    /// Shrinkage (learning rate).
    pub lr: f32,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// L2 regularization on leaf values (λ).
    pub lambda: f32,
    /// Minimum hessian sum per child.
    pub min_child_weight: f32,
    /// Row subsample fraction per round.
    pub subsample: f32,
    /// Feature subsample fraction per round.
    pub colsample: f32,
    /// Histogram bins.
    pub n_bins: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for BoostConfig {
    fn default() -> Self {
        Self {
            n_rounds: 100,
            lr: 0.1,
            max_depth: 6,
            lambda: 1.0,
            min_child_weight: 1.0,
            subsample: 1.0,
            colsample: 1.0,
            n_bins: 32,
            seed: 0,
        }
    }
}

/// One node of a fitted regression tree.
#[derive(Debug, Clone)]
enum RNode {
    Leaf {
        value: f32,
    },
    Split {
        feature: u32,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

#[derive(Debug, Clone)]
struct RegTree {
    nodes: Vec<RNode>,
}

impl RegTree {
    fn predict_row(&self, row: &[f32]) -> f32 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                RNode::Leaf { value } => return *value,
                RNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = row[*feature as usize];
                    node = if !v.is_finite() || v <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

struct GrowCtx<'a> {
    binned: &'a BinnedData,
    binner: &'a Binner,
    g: &'a [f32],
    h: &'a [f32],
    cfg: &'a BoostConfig,
    features: &'a [usize],
}

fn leaf_value(gsum: f32, hsum: f32, lambda: f32) -> f32 {
    -gsum / (hsum + lambda)
}

fn split_gain(gl: f32, hl: f32, gr: f32, hr: f32, lambda: f32) -> f32 {
    let score = |g: f32, h: f32| g * g / (h + lambda);
    0.5 * (score(gl, hl) + score(gr, hr) - score(gl + gr, hl + hr))
}

/// Find the best (feature, bin, gain, gl, hl) split for a set of rows.
fn best_split(ctx: &GrowCtx, indices: &[usize]) -> Option<(usize, u8, f32)> {
    let mut gsum = 0.0f32;
    let mut hsum = 0.0f32;
    for &i in indices {
        gsum += ctx.g[i];
        hsum += ctx.h[i];
    }
    let mut best: Option<(usize, u8, f32)> = None;
    for &j in ctx.features {
        let n_bins = ctx.binner.n_bins(j);
        if n_bins < 2 {
            continue;
        }
        let mut gh = [(0.0f32, 0.0f32); MAX_BINS];
        for &i in indices {
            let b = ctx.binned.get(i, j) as usize;
            gh[b].0 += ctx.g[i];
            gh[b].1 += ctx.h[i];
        }
        let mut gl = 0.0f32;
        let mut hl = 0.0f32;
        for (b, &(gb, hb)) in gh.iter().enumerate().take(n_bins - 1) {
            gl += gb;
            hl += hb;
            let hr = hsum - hl;
            if hl < ctx.cfg.min_child_weight || hr < ctx.cfg.min_child_weight {
                continue;
            }
            let gain = split_gain(gl, hl, gsum - gl, hr, ctx.cfg.lambda);
            if gain > 1e-6 && best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((j, b as u8, gain));
            }
        }
    }
    best
}

fn grow_depthwise(
    ctx: &GrowCtx,
    indices: Vec<usize>,
    depth: usize,
    nodes: &mut Vec<RNode>,
) -> usize {
    let mut gsum = 0.0f32;
    let mut hsum = 0.0f32;
    for &i in &indices {
        gsum += ctx.g[i];
        hsum += ctx.h[i];
    }
    if depth >= ctx.cfg.max_depth || indices.len() < 2 {
        nodes.push(RNode::Leaf {
            value: leaf_value(gsum, hsum, ctx.cfg.lambda),
        });
        return nodes.len() - 1;
    }
    let Some((feature, bin, _)) = best_split(ctx, &indices) else {
        nodes.push(RNode::Leaf {
            value: leaf_value(gsum, hsum, ctx.cfg.lambda),
        });
        return nodes.len() - 1;
    };
    // best_split only proposes bins 0..n_bins-1, all of which have a cut
    // point, so this expect encodes an internal invariant.
    #[allow(clippy::expect_used)]
    let threshold = ctx.binner.threshold(feature, bin).expect("valid split bin");
    let (li, ri): (Vec<usize>, Vec<usize>) = indices
        .into_iter()
        .partition(|&i| ctx.binned.get(i, feature) <= bin);
    let slot = nodes.len();
    nodes.push(RNode::Leaf { value: 0.0 });
    let left = grow_depthwise(ctx, li, depth + 1, nodes);
    let right = grow_depthwise(ctx, ri, depth + 1, nodes);
    nodes[slot] = RNode::Split {
        feature: feature as u32,
        threshold,
        left,
        right,
    };
    slot
}

/// Grow a CatBoost-style oblivious tree: one (feature, bin) decision per
/// level, chosen to maximize the summed gain across all current leaves.
fn grow_oblivious(ctx: &GrowCtx, indices: Vec<usize>) -> RegTree {
    // leaves as partitions of indices
    let mut partitions: Vec<Vec<usize>> = vec![indices];
    let mut decisions: Vec<(u32, f32, u8)> = Vec::new(); // feature, threshold, bin
    for _ in 0..ctx.cfg.max_depth {
        // choose the split maximizing total gain over all partitions
        let mut best: Option<(usize, u8, f32)> = None;
        for &j in ctx.features {
            let n_bins = ctx.binner.n_bins(j);
            if n_bins < 2 {
                continue;
            }
            for b in 0..n_bins - 1 {
                let mut total_gain = 0.0f32;
                let mut valid = false;
                for part in &partitions {
                    let mut gl = 0.0;
                    let mut hl = 0.0;
                    let mut gs = 0.0;
                    let mut hs = 0.0;
                    for &i in part {
                        gs += ctx.g[i];
                        hs += ctx.h[i];
                        if ctx.binned.get(i, j) <= b as u8 {
                            gl += ctx.g[i];
                            hl += ctx.h[i];
                        }
                    }
                    let hr = hs - hl;
                    if hl >= ctx.cfg.min_child_weight && hr >= ctx.cfg.min_child_weight {
                        total_gain += split_gain(gl, hl, gs - gl, hr, ctx.cfg.lambda);
                        valid = true;
                    }
                }
                if valid && total_gain > 1e-6 && best.is_none_or(|(_, _, g)| total_gain > g) {
                    best = Some((j, b as u8, total_gain));
                }
            }
        }
        let Some((feature, bin, _)) = best else { break };
        // same invariant as the depth-wise grower: proposed bins always
        // carry a cut point.
        #[allow(clippy::expect_used)]
        let threshold = ctx.binner.threshold(feature, bin).expect("valid split bin");
        decisions.push((feature as u32, threshold, bin));
        let mut next = Vec::with_capacity(partitions.len() * 2);
        for part in partitions {
            let (l, r): (Vec<usize>, Vec<usize>) = part
                .into_iter()
                .partition(|&i| ctx.binned.get(i, feature) <= bin);
            next.push(l);
            next.push(r);
        }
        partitions = next;
    }
    // materialize as a normal node tree (complete binary over decisions)
    let mut nodes = Vec::new();
    build_oblivious_nodes(&decisions, 0, &partitions, 0, ctx, &mut nodes);
    RegTree { nodes }
}

/// Recursively materialize the oblivious decision list into node form.
/// `leaf_base` indexes into `partitions` (leaves are in left-to-right order).
fn build_oblivious_nodes(
    decisions: &[(u32, f32, u8)],
    level: usize,
    partitions: &[Vec<usize>],
    leaf_base: usize,
    ctx: &GrowCtx,
    nodes: &mut Vec<RNode>,
) -> usize {
    if level == decisions.len() {
        let part = &partitions[leaf_base];
        let mut gsum = 0.0;
        let mut hsum = 0.0;
        for &i in part {
            gsum += ctx.g[i];
            hsum += ctx.h[i];
        }
        nodes.push(RNode::Leaf {
            value: leaf_value(gsum, hsum, ctx.cfg.lambda),
        });
        return nodes.len() - 1;
    }
    let (feature, threshold, _) = decisions[level];
    let slot = nodes.len();
    nodes.push(RNode::Leaf { value: 0.0 });
    let stride = 1 << (decisions.len() - level - 1);
    let left = build_oblivious_nodes(decisions, level + 1, partitions, leaf_base, ctx, nodes);
    let right = build_oblivious_nodes(
        decisions,
        level + 1,
        partitions,
        leaf_base + stride,
        ctx,
        nodes,
    );
    nodes[slot] = RNode::Split {
        feature,
        threshold,
        left,
        right,
    };
    slot
}

/// Which tree structure a boosting model grows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TreeKind {
    DepthWise,
    Oblivious,
}

/// Generic boosted-trees classifier.
pub struct Boosted {
    /// Hyperparameters.
    pub config: BoostConfig,
    kind: TreeKind,
    base_score: f32,
    trees: Vec<RegTree>,
}

impl Boosted {
    fn new(config: BoostConfig, kind: TreeKind) -> Self {
        Self {
            config,
            kind,
            base_score: 0.0,
            trees: Vec::new(),
        }
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Split-frequency feature importance over all boosting rounds,
    /// normalized to sum to 1.
    pub fn feature_importance(&self, n_features: usize) -> Vec<f32> {
        assert!(!self.trees.is_empty(), "importance before fit");
        let mut counts = vec![0.0f32; n_features];
        for tree in &self.trees {
            for node in &tree.nodes {
                if let RNode::Split { feature, .. } = node {
                    counts[*feature as usize] += 1.0;
                }
            }
        }
        let total: f32 = counts.iter().sum();
        if total > 0.0 {
            counts.iter_mut().for_each(|c| *c /= total);
        }
        counts
    }

    fn raw_scores(&self, x: &Matrix) -> Vec<f32> {
        let mut scores = vec![self.base_score; x.rows()];
        for tree in &self.trees {
            for (i, row) in x.rows_iter().enumerate() {
                scores[i] += self.config.lr * tree.predict_row(row);
            }
        }
        scores
    }
}

impl Classifier for Boosted {
    fn fit(&mut self, x: &Matrix, y: &[f32]) -> Result<(), TrialError> {
        check_fit_inputs(x, y)?;
        self.trees.clear();
        let n = x.rows();
        let pos = y.iter().filter(|&&v| v >= 0.5).count().max(1) as f32;
        let neg = (n as f32 - pos).max(1.0);
        self.base_score = (pos / neg).ln();
        let binner = Binner::fit(x, self.config.n_bins);
        let binned = binner.transform(x);
        let mut rng = Rng::new(self.config.seed);
        let mut margins = vec![self.base_score; n];
        let d = x.cols();
        // one ledger entry per fit covering every boosting round (booked
        // on every exit path, including deadline abandonment)
        let _t = obs::ledger::phase("fit_epoch");
        for _round in 0..self.config.n_rounds {
            // cooperative deadline check: a boosting round is the natural
            // abandonment granularity for the slowest model family
            if par::cancel_requested() {
                return Err(TrialError::DeadlineExceeded);
            }
            // gradients and hessians of the logistic loss
            let mut g = vec![0.0f32; n];
            let mut h = vec![0.0f32; n];
            for i in 0..n {
                let p = sigmoid(margins[i]);
                g[i] = p - y[i];
                h[i] = (p * (1.0 - p)).max(1e-6);
            }
            // row / column subsampling
            let rows: Vec<usize> = if self.config.subsample < 1.0 {
                let k = ((n as f32 * self.config.subsample) as usize).max(2);
                rng.sample_indices(n, k.min(n))
            } else {
                (0..n).collect()
            };
            let features: Vec<usize> = if self.config.colsample < 1.0 {
                let k = ((d as f32 * self.config.colsample).ceil() as usize).clamp(1, d);
                rng.sample_indices(d, k)
            } else {
                (0..d).collect()
            };
            let ctx = GrowCtx {
                binned: &binned,
                binner: &binner,
                g: &g,
                h: &h,
                cfg: &self.config,
                features: &features,
            };
            let tree = match self.kind {
                TreeKind::DepthWise => {
                    let mut nodes = Vec::new();
                    grow_depthwise(&ctx, rows, 0, &mut nodes);
                    RegTree { nodes }
                }
                TreeKind::Oblivious => grow_oblivious(&ctx, rows),
            };
            // update margins on ALL rows
            for (i, row) in x.rows_iter().enumerate() {
                margins[i] += self.config.lr * tree.predict_row(row);
            }
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        assert!(!self.trees.is_empty(), "predict before fit");
        self.raw_scores(x).into_iter().map(sigmoid).collect()
    }

    fn name(&self) -> String {
        let kind = match self.kind {
            TreeKind::DepthWise => "gbm",
            TreeKind::Oblivious => "catgbm",
        };
        format!(
            "{kind}(n={},lr={},depth={})",
            self.config.n_rounds, self.config.lr, self.config.max_depth
        )
    }

    fn fresh(&self) -> Box<dyn Classifier> {
        Box::new(Boosted::new(self.config, self.kind))
    }
}

/// LightGBM-style depth-wise histogram gradient boosting.
pub struct GradientBoosting;

impl GradientBoosting {
    /// Build an unfitted booster.
    #[allow(clippy::new_ret_no_self)] // constructor of the shared Boosted engine
    pub fn new(config: BoostConfig) -> Boosted {
        Boosted::new(config, TreeKind::DepthWise)
    }
}

/// CatBoost-style boosting with oblivious (symmetric) trees.
pub struct ObliviousBoosting;

impl ObliviousBoosting {
    /// Build an unfitted booster.
    #[allow(clippy::new_ret_no_self)] // constructor of the shared Boosted engine
    pub fn new(config: BoostConfig) -> Boosted {
        Boosted::new(config, TreeKind::Oblivious)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::test_data::{blobs, xor};
    use crate::metrics::{f1_at_threshold, roc_auc};

    fn fit_eval(mut model: Boosted, seed: u64) -> f64 {
        let (x, y) = xor(500, seed);
        let (xt, yt) = xor(300, seed + 1);
        model.fit(&x, &y).unwrap();
        let probs = model.predict_proba(&xt);
        let actual: Vec<bool> = yt.iter().map(|&v| v >= 0.5).collect();
        f1_at_threshold(&probs, &actual, 0.5)
    }

    #[test]
    fn gbm_solves_xor() {
        let cfg = BoostConfig {
            n_rounds: 50,
            ..BoostConfig::default()
        };
        let f1 = fit_eval(GradientBoosting::new(cfg), 1);
        assert!(f1 > 92.0, "F1 {f1}");
    }

    #[test]
    fn oblivious_solves_xor() {
        let cfg = BoostConfig {
            n_rounds: 50,
            max_depth: 4,
            ..BoostConfig::default()
        };
        let f1 = fit_eval(ObliviousBoosting::new(cfg), 2);
        assert!(f1 > 92.0, "F1 {f1}");
    }

    #[test]
    fn more_rounds_do_not_hurt_training_fit() {
        let (x, y) = blobs(300, 0.3, 0.8, 3);
        let actual: Vec<bool> = y.iter().map(|&v| v >= 0.5).collect();
        let mut short = GradientBoosting::new(BoostConfig {
            n_rounds: 5,
            ..BoostConfig::default()
        });
        let mut long = GradientBoosting::new(BoostConfig {
            n_rounds: 80,
            ..BoostConfig::default()
        });
        short.fit(&x, &y).unwrap();
        long.fit(&x, &y).unwrap();
        let auc_s = roc_auc(&short.predict_proba(&x), &actual);
        let auc_l = roc_auc(&long.predict_proba(&x), &actual);
        assert!(auc_l >= auc_s - 1e-9, "{auc_l} vs {auc_s}");
    }

    #[test]
    fn subsampling_still_learns() {
        let cfg = BoostConfig {
            n_rounds: 60,
            subsample: 0.7,
            colsample: 0.8,
            ..BoostConfig::default()
        };
        let f1 = fit_eval(GradientBoosting::new(cfg), 4);
        assert!(f1 > 88.0, "F1 {f1}");
    }

    #[test]
    fn deterministic() {
        let (x, y) = blobs(200, 0.4, 1.0, 5);
        let cfg = BoostConfig {
            n_rounds: 10,
            subsample: 0.8,
            ..BoostConfig::default()
        };
        let mut a = GradientBoosting::new(cfg);
        let mut b = GradientBoosting::new(cfg);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn base_score_reflects_prior() {
        // without trees the prediction is the class prior logit; with heavy
        // imbalance the untrained probability must be far below 0.5
        let (x, y) = blobs(300, 0.05, 0.1, 6);
        let mut m = GradientBoosting::new(BoostConfig {
            n_rounds: 1,
            lr: 0.0,
            ..BoostConfig::default()
        });
        m.fit(&x, &y).unwrap();
        let probs = m.predict_proba(&x);
        assert!(probs[0] < 0.2, "{}", probs[0]);
    }

    #[test]
    fn importance_sums_to_one_and_prefers_signal() {
        let (x, y) = blobs(300, 0.4, 2.0, 12);
        let mut m = GradientBoosting::new(BoostConfig {
            n_rounds: 30,
            ..BoostConfig::default()
        });
        m.fit(&x, &y).unwrap();
        let imp = m.feature_importance(x.cols());
        assert!((imp.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert!(imp[0] + imp[1] > imp[2], "{imp:?}");
    }

    #[test]
    fn oblivious_trees_are_symmetric() {
        // an oblivious tree of depth k has exactly 2^k leaves when splits
        // are found at every level; verify the node count is consistent
        let (x, y) = blobs(400, 0.5, 1.5, 7);
        let mut m = ObliviousBoosting::new(BoostConfig {
            n_rounds: 1,
            max_depth: 3,
            ..BoostConfig::default()
        });
        m.fit(&x, &y).unwrap();
        assert_eq!(m.n_trees(), 1);
        // depth-3 complete tree: 2^4 - 1 = 15 nodes (or fewer levels if no
        // gain was found, giving 2^d+1 - 1)
        let n = m.trees[0].nodes.len();
        assert!([1usize, 3, 7, 15].contains(&n), "nodes {n}");
    }
}
