//! Feature preprocessing: imputation and standardization.
//!
//! The adapters emit dense embeddings that are already well-scaled, but the
//! raw-feature baseline path (Table 2) produces heterogeneous columns
//! (similarities, numeric diffs, missing indicators), so AutoML pipelines
//! fit a scaler + imputer as their first stage, like the real systems do.

use linalg::Matrix;

/// Mean imputer: replaces non-finite entries (NaN encodes "missing") with
/// the column mean computed over finite training values.
#[derive(Debug, Clone)]
pub struct MeanImputer {
    means: Vec<f32>,
}

impl MeanImputer {
    /// Learn column means from the finite entries of `x`.
    pub fn fit(x: &Matrix) -> Self {
        let mut means = vec![0.0f32; x.cols()];
        let mut counts = vec![0usize; x.cols()];
        for row in x.rows_iter() {
            for (j, &v) in row.iter().enumerate() {
                if v.is_finite() {
                    means[j] += v;
                    counts[j] += 1;
                }
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            if c > 0 {
                *m /= c as f32;
            }
        }
        Self { means }
    }

    /// Replace non-finite entries with the learned means.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.means.len(), "imputer column mismatch");
        let mut out = x.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                if !v.is_finite() {
                    *v = self.means[j];
                }
            }
        }
        out
    }
}

/// Standard (z-score) scaler. Constant columns are left centered at zero.
#[derive(Debug, Clone)]
pub struct StandardScaler {
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl StandardScaler {
    /// Learn per-column mean and standard deviation.
    pub fn fit(x: &Matrix) -> Self {
        let means = x.col_means();
        let stds = x
            .col_stds()
            .into_iter()
            .map(|s| if s > 1e-12 { s } else { 1.0 })
            .collect();
        Self { means, stds }
    }

    /// Apply `(x - mean) / std` per column.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.means.len(), "scaler column mismatch");
        let mut out = x.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                *v = (*v - self.means[j]) / self.stds[j];
            }
        }
        out
    }

    /// Fit and transform in one step.
    pub fn fit_transform(x: &Matrix) -> (Self, Matrix) {
        let s = Self::fit(x);
        let t = s.transform(x);
        (s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imputer_fills_nan_with_mean() {
        let x = Matrix::from_rows(&[vec![1.0, f32::NAN], vec![3.0, 4.0], vec![f32::NAN, 6.0]]);
        let imp = MeanImputer::fit(&x);
        let t = imp.transform(&x);
        assert!((t[(2, 0)] - 2.0).abs() < 1e-6);
        assert!((t[(0, 1)] - 5.0).abs() < 1e-6);
        assert!(t.all_finite());
    }

    #[test]
    fn imputer_all_missing_column() {
        let x = Matrix::from_rows(&[vec![f32::NAN], vec![f32::NAN]]);
        let t = MeanImputer::fit(&x).transform(&x);
        assert_eq!(t.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn scaler_zero_mean_unit_std() {
        let x = Matrix::from_rows(&[vec![1.0, 100.0], vec![3.0, 200.0], vec![5.0, 300.0]]);
        let (_, t) = StandardScaler::fit_transform(&x);
        for j in 0..2 {
            let col = t.col(j);
            let m: f32 = col.iter().sum::<f32>() / 3.0;
            assert!(m.abs() < 1e-6);
            let var: f32 = col.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / 3.0;
            assert!((var - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn scaler_constant_column_is_centered() {
        let x = Matrix::from_rows(&[vec![7.0], vec![7.0]]);
        let (_, t) = StandardScaler::fit_transform(&x);
        assert_eq!(t.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn scaler_applies_train_stats_to_test() {
        let train = Matrix::from_rows(&[vec![0.0], vec![10.0]]);
        let test = Matrix::from_rows(&[vec![5.0]]);
        let s = StandardScaler::fit(&train);
        let t = s.transform(&test);
        assert!(t[(0, 0)].abs() < 1e-6); // 5 is the train mean
    }
}
