//! The workspace-wide trial-failure taxonomy.
//!
//! A *trial* is one attempt to fit and score a candidate model. Anything
//! that can go wrong on that path — degenerate inputs, a score that came
//! back NaN, a panic inside model code, an exhausted budget — is folded
//! into [`TrialError`] so the AutoML engines can quarantine the failure
//! into their leaderboard and keep searching instead of aborting the run.
//!
//! The enum lives in `ml` because `fit` entry points are the lowest layer
//! that can fail; `automl` and `em-core` re-export it so callers never
//! need to depend on `ml` directly just for the error type.

use std::fmt;

/// Why a single trial (or a whole search, when nothing survived) failed.
///
/// Derives `Clone` + `PartialEq` so failed entries can live inside
/// `FitReport` without breaking the byte-identical-across-thread-counts
/// determinism contract. No variant ever stores a NaN for the same
/// reason (`NaN != NaN` would poison `PartialEq`); offending values are
/// rendered into strings at construction time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrialError {
    /// A probability or score came back non-finite (NaN or ±inf).
    /// `stage` names where it surfaced, e.g. `"probability"` or `"score"`.
    NonFiniteScore {
        /// Pipeline stage that produced the non-finite value.
        stage: &'static str,
    },
    /// Training inputs were unusable: shape mismatch, empty set, …
    DegenerateInput(String),
    /// A trial needed more budget than the run had left.
    BudgetExceeded {
        /// Units the trial would have cost, rendered to a string so the
        /// variant stays `Eq`-safe even for non-finite inputs.
        needed: String,
        /// Units remaining when the trial was attempted.
        remaining: String,
    },
    /// Model code panicked; the payload message was captured at the
    /// trial boundary (`catch_unwind`) so the worker survived.
    FitPanic(String),
    /// A budget was constructed with a non-positive or non-finite limit.
    InvalidBudget(String),
    /// A deterministic fault-injection plan forced this failure.
    Injected(&'static str),
    /// Every attempted trial failed, so the search has no model to return.
    AllTrialsFailed {
        /// How many trials were attempted before giving up.
        attempted: usize,
    },
    /// The wall-clock deadline passed while this trial was running (or
    /// before it could start); the trial was abandoned cooperatively and
    /// quarantined so the engine could return its best-so-far report.
    /// Deliberately fieldless: wall-clock timings are nondeterministic,
    /// so nothing timing-dependent may leak into a `FitReport`.
    DeadlineExceeded,
    /// A journal could not be replayed against the current run: the
    /// engine, seed, budget, data shape or search space changed since the
    /// journal was written, or a recomputed trial disagreed with its
    /// recorded outcome.
    ResumeMismatch(String),
    /// The search journal itself could not be opened or read.
    JournalIo(String),
}

impl TrialError {
    /// Build a [`TrialError::BudgetExceeded`] from raw unit counts.
    pub fn budget_exceeded(needed: f64, remaining: f64) -> Self {
        TrialError::BudgetExceeded {
            needed: format!("{needed:.3}"),
            remaining: format!("{remaining:.3}"),
        }
    }

    /// Short stable label for counters and event streams.
    pub fn kind(&self) -> &'static str {
        match self {
            TrialError::NonFiniteScore { .. } => "non_finite_score",
            TrialError::DegenerateInput(_) => "degenerate_input",
            TrialError::BudgetExceeded { .. } => "budget_exceeded",
            TrialError::FitPanic(_) => "fit_panic",
            TrialError::InvalidBudget(_) => "invalid_budget",
            TrialError::Injected(_) => "injected",
            TrialError::AllTrialsFailed { .. } => "all_trials_failed",
            TrialError::DeadlineExceeded => "deadline_exceeded",
            TrialError::ResumeMismatch(_) => "resume_mismatch",
            TrialError::JournalIo(_) => "journal_io",
        }
    }
}

impl fmt::Display for TrialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrialError::NonFiniteScore { stage } => {
                write!(f, "non-finite value in {stage}")
            }
            TrialError::DegenerateInput(msg) => write!(f, "degenerate input: {msg}"),
            TrialError::BudgetExceeded { needed, remaining } => {
                write!(
                    f,
                    "budget exceeded: needed {needed} units, {remaining} left"
                )
            }
            TrialError::FitPanic(msg) => write!(f, "fit panicked: {msg}"),
            TrialError::InvalidBudget(msg) => write!(f, "invalid budget: {msg}"),
            TrialError::Injected(what) => write!(f, "injected fault: {what}"),
            TrialError::AllTrialsFailed { attempted } => {
                write!(f, "all {attempted} attempted trials failed")
            }
            TrialError::DeadlineExceeded => {
                write!(f, "wall-clock deadline exceeded; trial abandoned")
            }
            TrialError::ResumeMismatch(msg) => write!(f, "cannot resume from journal: {msg}"),
            TrialError::JournalIo(msg) => write!(f, "search journal I/O failed: {msg}"),
        }
    }
}

impl std::error::Error for TrialError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TrialError::NonFiniteScore { stage: "score" };
        assert_eq!(e.to_string(), "non-finite value in score");
        let e = TrialError::budget_exceeded(2.0, 0.5);
        assert!(e.to_string().contains("2.000"));
        assert!(e.to_string().contains("0.500"));
        let e = TrialError::FitPanic("boom".into());
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn kinds_are_stable() {
        assert_eq!(TrialError::Injected("panic").kind(), "injected");
        assert_eq!(
            TrialError::AllTrialsFailed { attempted: 3 }.kind(),
            "all_trials_failed"
        );
    }

    #[test]
    fn equality_holds_even_for_nonfinite_inputs() {
        // NaN limits render to the same string, so Eq stays coherent.
        let a = TrialError::budget_exceeded(f64::NAN, 1.0);
        let b = TrialError::budget_exceeded(f64::NAN, 1.0);
        assert_eq!(a, b);
    }
}
