//! Linear models: logistic regression and linear SVM.
//!
//! Both train with deterministic mini-batch SGD (momentum + inverse-scaling
//! learning-rate decay) and L2 regularization. They handle the class
//! imbalance of EM with optional class weighting, mirroring
//! `class_weight="balanced"` in scikit-learn — part of the AutoSklearn
//! search space.

use crate::{check_fit_inputs, Classifier, TrialError};
use linalg::vector::{dot, sigmoid};
use linalg::{Matrix, Rng};

/// Configuration shared by the linear models.
#[derive(Debug, Clone, Copy)]
pub struct LinearConfig {
    /// L2 regularization strength.
    pub l2: f32,
    /// Initial learning rate.
    pub lr: f32,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Weight positive examples by `n_neg / n_pos` (balanced class weight).
    pub balanced: bool,
    /// RNG seed (shuffling, init).
    pub seed: u64,
}

impl Default for LinearConfig {
    fn default() -> Self {
        Self {
            l2: 1e-4,
            lr: 0.1,
            epochs: 30,
            batch: 32,
            balanced: true,
            seed: 0,
        }
    }
}

/// Logistic regression trained with mini-batch SGD.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Training configuration.
    pub config: LinearConfig,
    weights: Vec<f32>,
    bias: f32,
}

impl LogisticRegression {
    /// Unfitted model with the given configuration.
    pub fn new(config: LinearConfig) -> Self {
        Self {
            config,
            weights: Vec::new(),
            bias: 0.0,
        }
    }

    /// Learned weights (empty before `fit`).
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self::new(LinearConfig::default())
    }
}

fn class_weights(y: &[f32], balanced: bool) -> (f32, f32) {
    if !balanced {
        return (1.0, 1.0);
    }
    let n_pos = y.iter().filter(|&&v| v >= 0.5).count().max(1) as f32;
    let n_neg = (y.len() - n_pos as usize).max(1) as f32;
    // weights scaled so their average over the data is ~1
    let total = y.len() as f32;
    (total / (2.0 * n_neg), total / (2.0 * n_pos))
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &Matrix, y: &[f32]) -> Result<(), TrialError> {
        check_fit_inputs(x, y)?;
        let d = x.cols();
        let mut rng = Rng::new(self.config.seed);
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        let (w_neg, w_pos) = class_weights(y, self.config.balanced);
        let mut idx: Vec<usize> = (0..x.rows()).collect();
        let mut vel = vec![0.0f32; d];
        let mut vel_b = 0.0f32;
        let momentum = 0.9f32;
        let mut step = 0usize;
        // one ledger entry per fit covering the whole epoch loop (booked
        // on every exit path, including deadline abandonment)
        let _t = obs::ledger::phase("fit_epoch");
        for _ in 0..self.config.epochs {
            // cooperative deadline check between epochs
            if par::cancel_requested() {
                return Err(TrialError::DeadlineExceeded);
            }
            rng.shuffle(&mut idx);
            for chunk in idx.chunks(self.config.batch.max(1)) {
                let lr = self.config.lr / (1.0 + 0.01 * step as f32);
                step += 1;
                let mut grad = vec![0.0f32; d];
                let mut grad_b = 0.0f32;
                for &i in chunk {
                    let row = x.row(i);
                    let p = sigmoid(dot(&self.weights, row) + self.bias);
                    let w = if y[i] >= 0.5 { w_pos } else { w_neg };
                    let err = (p - y[i]) * w;
                    for (g, &xv) in grad.iter_mut().zip(row) {
                        *g += err * xv;
                    }
                    grad_b += err;
                }
                let inv = 1.0 / chunk.len() as f32;
                for ((w, g), v) in self.weights.iter_mut().zip(&grad).zip(&mut vel) {
                    *v = momentum * *v - lr * (g * inv + self.config.l2 * *w);
                    *w += *v;
                }
                vel_b = momentum * vel_b - lr * grad_b * inv;
                self.bias += vel_b;
            }
        }
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        assert_eq!(x.cols(), self.weights.len(), "predict before fit?");
        x.rows_iter()
            .map(|row| sigmoid(dot(&self.weights, row) + self.bias))
            .collect()
    }

    fn name(&self) -> String {
        format!("logreg(l2={:.0e})", self.config.l2)
    }

    fn fresh(&self) -> Box<dyn Classifier> {
        Box::new(LogisticRegression::new(self.config))
    }
}

/// Linear SVM (hinge loss) trained with Pegasos-style SGD. Probabilities
/// are produced by squashing the margin with a sigmoid (Platt-style with
/// fixed slope — adequate for ranking inside ensembles).
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// Training configuration (`l2` plays the role of `λ` in Pegasos).
    pub config: LinearConfig,
    weights: Vec<f32>,
    bias: f32,
}

impl LinearSvm {
    /// Unfitted model with the given configuration.
    pub fn new(config: LinearConfig) -> Self {
        Self {
            config,
            weights: Vec::new(),
            bias: 0.0,
        }
    }
}

impl Default for LinearSvm {
    fn default() -> Self {
        Self::new(LinearConfig {
            l2: 1e-3,
            ..LinearConfig::default()
        })
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, x: &Matrix, y: &[f32]) -> Result<(), TrialError> {
        check_fit_inputs(x, y)?;
        let d = x.cols();
        let lambda = self.config.l2.max(1e-6);
        let mut rng = Rng::new(self.config.seed);
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        let (w_neg, w_pos) = class_weights(y, self.config.balanced);
        // start the Pegasos clock at 1/λ so the first step size is ≤ 1;
        // the textbook t = 1 start makes the initial bias update explode
        let mut t = (1.0 / lambda).ceil() as usize;
        let mut idx: Vec<usize> = (0..x.rows()).collect();
        let _t = obs::ledger::phase("fit_epoch");
        for _ in 0..self.config.epochs {
            // cooperative deadline check between epochs
            if par::cancel_requested() {
                return Err(TrialError::DeadlineExceeded);
            }
            rng.shuffle(&mut idx);
            for &i in &idx {
                let lr = 1.0 / (lambda * t as f32);
                t += 1;
                let row = x.row(i);
                let target = if y[i] >= 0.5 { 1.0f32 } else { -1.0 };
                let cw = if y[i] >= 0.5 { w_pos } else { w_neg };
                let margin = target * (dot(&self.weights, row) + self.bias);
                // w ← (1 − lr·λ)·w  [+ lr·cw·target·x when margin < 1]
                let shrink = 1.0 - lr * lambda;
                for w in &mut self.weights {
                    *w *= shrink;
                }
                if margin < 1.0 {
                    for (w, &xv) in self.weights.iter_mut().zip(row) {
                        *w += lr * cw * target * xv;
                    }
                    self.bias += lr * cw * target;
                }
            }
        }
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        assert_eq!(x.cols(), self.weights.len(), "predict before fit?");
        x.rows_iter()
            .map(|row| sigmoid(2.0 * (dot(&self.weights, row) + self.bias)))
            .collect()
    }

    fn name(&self) -> String {
        format!("linsvm(l2={:.0e})", self.config.l2)
    }

    fn fresh(&self) -> Box<dyn Classifier> {
        Box::new(LinearSvm::new(self.config))
    }
}

#[cfg(test)]
pub(crate) mod test_data {
    use linalg::{Matrix, Rng};

    /// Two Gaussian blobs with the given separation and imbalance.
    pub fn blobs(n: usize, pos_ratio: f64, sep: f32, seed: u64) -> (Matrix, Vec<f32>) {
        let mut rng = Rng::new(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let pos = rng.chance(pos_ratio);
            let center = if pos { sep } else { -sep };
            rows.push(vec![
                center + rng.normal(),
                -center + rng.normal(),
                rng.normal(), // noise feature
            ]);
            y.push(if pos { 1.0 } else { 0.0 });
        }
        (Matrix::from_rows(&rows), y)
    }

    /// XOR-ish dataset no linear model can solve.
    pub fn xor(n: usize, seed: u64) -> (Matrix, Vec<f32>) {
        let mut rng = Rng::new(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a = rng.chance(0.5);
            let b = rng.chance(0.5);
            rows.push(vec![
                if a { 1.0 } else { -1.0 } + 0.2 * rng.normal(),
                if b { 1.0 } else { -1.0 } + 0.2 * rng.normal(),
            ]);
            y.push(if a ^ b { 1.0 } else { 0.0 });
        }
        (Matrix::from_rows(&rows), y)
    }
}

#[cfg(test)]
mod tests {
    use super::test_data::blobs;
    use super::*;
    use crate::metrics::f1_at_threshold;

    fn f1_of(model: &mut dyn Classifier, seed: u64) -> f64 {
        let (x, y) = blobs(400, 0.3, 1.5, seed);
        let (xt, yt) = blobs(200, 0.3, 1.5, seed + 1);
        model.fit(&x, &y).unwrap();
        let probs = model.predict_proba(&xt);
        let actual: Vec<bool> = yt.iter().map(|&v| v >= 0.5).collect();
        f1_at_threshold(&probs, &actual, 0.5)
    }

    #[test]
    fn logreg_separates_blobs() {
        let mut m = LogisticRegression::default();
        let f1 = f1_of(&mut m, 1);
        assert!(f1 > 90.0, "F1 {f1}");
    }

    #[test]
    fn svm_separates_blobs() {
        let mut m = LinearSvm::default();
        let f1 = f1_of(&mut m, 2);
        assert!(f1 > 90.0, "F1 {f1}");
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = blobs(200, 0.3, 1.0, 3);
        let mut a = LogisticRegression::default();
        let mut b = LogisticRegression::default();
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn balanced_weighting_helps_recall_on_imbalance() {
        let (x, y) = blobs(600, 0.05, 0.8, 4);
        let (xt, yt) = blobs(400, 0.05, 0.8, 5);
        let actual: Vec<bool> = yt.iter().map(|&v| v >= 0.5).collect();
        let mut balanced = LogisticRegression::new(LinearConfig {
            balanced: true,
            ..LinearConfig::default()
        });
        let mut plain = LogisticRegression::new(LinearConfig {
            balanced: false,
            ..LinearConfig::default()
        });
        balanced.fit(&x, &y).unwrap();
        plain.fit(&x, &y).unwrap();
        let recall = |probs: &[f32]| {
            let tp = probs
                .iter()
                .zip(&actual)
                .filter(|(&p, &a)| p >= 0.5 && a)
                .count();
            let pos = actual.iter().filter(|&&a| a).count();
            tp as f64 / pos as f64
        };
        let rb = recall(&balanced.predict_proba(&xt));
        let rp = recall(&plain.predict_proba(&xt));
        assert!(rb >= rp, "balanced {rb} vs plain {rp}");
    }

    #[test]
    fn fresh_resets_fit_state() {
        let (x, y) = blobs(100, 0.4, 1.0, 6);
        let mut m = LogisticRegression::default();
        m.fit(&x, &y).unwrap();
        let f = m.fresh();
        // fresh model must not carry weights — predicting should panic
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f.predict_proba(&x);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (x, y) = blobs(150, 0.3, 1.0, 7);
        for model in [
            &mut LogisticRegression::default() as &mut dyn Classifier,
            &mut LinearSvm::default(),
        ] {
            model.fit(&x, &y).unwrap();
            for p in model.predict_proba(&x) {
                assert!((0.0..=1.0).contains(&p), "{p}");
            }
        }
    }
}
