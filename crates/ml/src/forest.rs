//! Tree ensembles: random forests and extremely randomized trees.
//!
//! Both appear in the fixed roster of the AutoGluon-style system and in the
//! AutoSklearn-style search space. They share one binning pass over the
//! training matrix, then average the probability output of their trees.

use crate::tree::{Binner, DecisionTree, SplitRule, TreeConfig};
use crate::{check_fit_inputs, Classifier, TrialError};
use linalg::{Matrix, Rng};

/// Forest hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree depth limit.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Fraction of features per split (`0.0` → √d heuristic).
    pub max_features: f32,
    /// Bootstrap rows per tree (random forest) or use the full sample
    /// (extra-trees convention).
    pub bootstrap: bool,
    /// Threshold selection: `Best` = random forest, `Random` = extra-trees.
    pub split_rule: SplitRule,
    /// Histogram bins.
    pub n_bins: usize,
    /// Seed.
    pub seed: u64,
}

impl ForestConfig {
    /// Canonical random-forest configuration.
    pub fn random_forest(n_trees: usize, seed: u64) -> Self {
        Self {
            n_trees,
            max_depth: 16,
            min_samples_leaf: 1,
            max_features: 0.0,
            bootstrap: true,
            split_rule: SplitRule::Best,
            n_bins: 32,
            seed,
        }
    }

    /// Canonical extremely-randomized-trees configuration.
    pub fn extra_trees(n_trees: usize, seed: u64) -> Self {
        Self {
            bootstrap: false,
            split_rule: SplitRule::Random,
            ..Self::random_forest(n_trees, seed)
        }
    }
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self::random_forest(100, 0)
    }
}

/// Bagged ensemble of [`DecisionTree`]s.
pub struct RandomForest {
    /// Hyperparameters.
    pub config: ForestConfig,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Unfitted forest.
    pub fn new(config: ForestConfig) -> Self {
        Self {
            config,
            trees: Vec::new(),
        }
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Mean split-frequency feature importance across the forest's trees.
    pub fn feature_importance(&self, n_features: usize) -> Vec<f32> {
        assert!(!self.trees.is_empty(), "importance before fit");
        let mut out = vec![0.0f32; n_features];
        for tree in &self.trees {
            for (o, v) in out.iter_mut().zip(tree.feature_importance(n_features)) {
                *o += v;
            }
        }
        let inv = 1.0 / self.trees.len() as f32;
        out.iter_mut().for_each(|o| *o *= inv);
        out
    }
}

impl Default for RandomForest {
    fn default() -> Self {
        Self::new(ForestConfig::default())
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[f32]) -> Result<(), TrialError> {
        check_fit_inputs(x, y)?;
        self.trees.clear();
        let binner = Binner::fit(x, self.config.n_bins);
        let binned = binner.transform(x);
        let mut rng = Rng::new(self.config.seed);
        let all: Vec<usize> = (0..x.rows()).collect();
        for t in 0..self.config.n_trees {
            // cooperative deadline check between trees
            if par::cancel_requested() {
                return Err(TrialError::DeadlineExceeded);
            }
            let mut tree_rng = rng.fork(t as u64);
            let indices: Vec<usize> = if self.config.bootstrap {
                (0..x.rows()).map(|_| tree_rng.below(x.rows())).collect()
            } else {
                all.clone()
            };
            let mut tree = DecisionTree::new(TreeConfig {
                max_depth: self.config.max_depth,
                min_samples_leaf: self.config.min_samples_leaf,
                max_features: self.config.max_features,
                split_rule: self.config.split_rule,
                n_bins: self.config.n_bins,
                seed: 0, // rng passed explicitly below
            });
            tree.fit_binned(&binned, &binner, y, &indices, &mut tree_rng);
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        assert!(!self.trees.is_empty(), "predict before fit");
        let mut probs = vec![0.0f32; x.rows()];
        for tree in &self.trees {
            for (i, row) in x.rows_iter().enumerate() {
                probs[i] += tree.predict_row(row);
            }
        }
        let inv = 1.0 / self.trees.len() as f32;
        for p in &mut probs {
            *p *= inv;
        }
        probs
    }

    fn name(&self) -> String {
        let kind = match self.config.split_rule {
            SplitRule::Best => "rf",
            SplitRule::Random => "xt",
        };
        format!(
            "{kind}(n={},depth={})",
            self.config.n_trees, self.config.max_depth
        )
    }

    fn fresh(&self) -> Box<dyn Classifier> {
        Box::new(RandomForest::new(self.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::test_data::{blobs, xor};
    use crate::metrics::{f1_at_threshold, roc_auc};

    #[test]
    fn forest_solves_xor_better_than_chance() {
        let (x, y) = xor(500, 1);
        let (xt, yt) = xor(300, 2);
        let mut rf = RandomForest::new(ForestConfig::random_forest(30, 7));
        rf.fit(&x, &y).unwrap();
        let probs = rf.predict_proba(&xt);
        let actual: Vec<bool> = yt.iter().map(|&v| v >= 0.5).collect();
        let f1 = f1_at_threshold(&probs, &actual, 0.5);
        assert!(f1 > 90.0, "F1 {f1}");
    }

    #[test]
    fn extra_trees_work_too() {
        let (x, y) = blobs(400, 0.3, 1.5, 3);
        let (xt, yt) = blobs(200, 0.3, 1.5, 4);
        let mut xt_model = RandomForest::new(ForestConfig::extra_trees(30, 9));
        xt_model.fit(&x, &y).unwrap();
        let probs = xt_model.predict_proba(&xt);
        let actual: Vec<bool> = yt.iter().map(|&v| v >= 0.5).collect();
        assert!(roc_auc(&probs, &actual) > 0.95);
    }

    #[test]
    fn forest_beats_single_tree_on_noisy_data() {
        let (x, y) = blobs(300, 0.4, 0.6, 5);
        let (xt, yt) = blobs(300, 0.4, 0.6, 6);
        let actual: Vec<bool> = yt.iter().map(|&v| v >= 0.5).collect();
        let mut tree = DecisionTree::default();
        tree.fit(&x, &y).unwrap();
        let mut forest = RandomForest::new(ForestConfig::random_forest(50, 1));
        forest.fit(&x, &y).unwrap();
        let auc_tree = roc_auc(&tree.predict_proba(&xt), &actual);
        let auc_forest = roc_auc(&forest.predict_proba(&xt), &actual);
        assert!(
            auc_forest >= auc_tree - 0.01,
            "forest {auc_forest} vs tree {auc_tree}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs(200, 0.3, 1.0, 8);
        let mut a = RandomForest::new(ForestConfig::random_forest(10, 3));
        let mut b = RandomForest::new(ForestConfig::random_forest(10, 3));
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = blobs(200, 0.3, 0.7, 9);
        let mut a = RandomForest::new(ForestConfig::random_forest(5, 1));
        let mut b = RandomForest::new(ForestConfig::random_forest(5, 2));
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_ne!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn importance_identifies_informative_features() {
        // feature 0 carries the signal; features 1-2 are noise
        let (x, y) = blobs(400, 0.5, 2.0, 11);
        let mut rf = RandomForest::new(ForestConfig::random_forest(20, 2));
        rf.fit(&x, &y).unwrap();
        let imp = rf.feature_importance(x.cols());
        assert_eq!(imp.len(), 3);
        assert!((imp.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        // the informative features (0 and 1 are ±center) dominate noise (2)
        assert!(imp[0] + imp[1] > imp[2], "{imp:?}");
    }

    #[test]
    fn probabilities_bounded() {
        let (x, y) = blobs(150, 0.2, 1.0, 10);
        let mut rf = RandomForest::new(ForestConfig::random_forest(15, 4));
        rf.fit(&x, &y).unwrap();
        for p in rf.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
