//! Gaussian naive Bayes — the cheap baseline of the AutoSklearn space.

use crate::{check_fit_inputs, Classifier, TrialError};
use linalg::Matrix;

/// Gaussian NB with per-class feature means/variances and class priors.
#[derive(Debug, Clone, Default)]
pub struct GaussianNb {
    // [class][feature]
    means: [Vec<f32>; 2],
    vars: [Vec<f32>; 2],
    log_priors: [f64; 2],
    fitted: bool,
}

impl GaussianNb {
    /// Unfitted model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Classifier for GaussianNb {
    fn fit(&mut self, x: &Matrix, y: &[f32]) -> Result<(), TrialError> {
        check_fit_inputs(x, y)?;
        let d = x.cols();
        let mut counts = [0usize; 2];
        let mut sums = [vec![0.0f64; d], vec![0.0f64; d]];
        for (i, row) in x.rows_iter().enumerate() {
            let c = usize::from(y[i] >= 0.5);
            counts[c] += 1;
            for (s, &v) in sums[c].iter_mut().zip(row) {
                *s += v as f64;
            }
        }
        let mut means = [vec![0.0f32; d], vec![0.0f32; d]];
        for c in 0..2 {
            if counts[c] > 0 {
                for j in 0..d {
                    means[c][j] = (sums[c][j] / counts[c] as f64) as f32;
                }
            }
        }
        let mut vars = [vec![0.0f64; d], vec![0.0f64; d]];
        for (i, row) in x.rows_iter().enumerate() {
            let c = usize::from(y[i] >= 0.5);
            for (v, (&xv, &m)) in vars[c].iter_mut().zip(row.iter().zip(&means[c])) {
                let dmean = xv as f64 - m as f64;
                *v += dmean * dmean;
            }
        }
        // variance smoothing à la sklearn: eps = 1e-9 · max feature variance
        let global_max_var = x
            .col_stds()
            .iter()
            .map(|s| (s * s) as f64)
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let eps = 1e-9 * global_max_var;
        let mut var_out = [vec![0.0f32; d], vec![0.0f32; d]];
        for c in 0..2 {
            for j in 0..d {
                let v = if counts[c] > 0 {
                    vars[c][j] / counts[c] as f64
                } else {
                    1.0
                };
                var_out[c][j] = (v + eps).max(1e-9) as f32;
            }
        }
        let total = (counts[0] + counts[1]) as f64;
        self.log_priors = [
            ((counts[0].max(1)) as f64 / total).ln(),
            ((counts[1].max(1)) as f64 / total).ln(),
        ];
        self.means = means;
        self.vars = var_out;
        self.fitted = true;
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        assert!(self.fitted, "predict before fit");
        let mut out = Vec::with_capacity(x.rows());
        for row in x.rows_iter() {
            let mut log_like = [self.log_priors[0], self.log_priors[1]];
            for (c, ll) in log_like.iter_mut().enumerate() {
                for (j, &v) in row.iter().enumerate() {
                    let var = self.vars[c][j] as f64;
                    let diff = v as f64 - self.means[c][j] as f64;
                    *ll += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var);
                }
            }
            // softmax over the two log-likelihoods
            let m = log_like[0].max(log_like[1]);
            let e0 = (log_like[0] - m).exp();
            let e1 = (log_like[1] - m).exp();
            out.push((e1 / (e0 + e1)) as f32);
        }
        out
    }

    fn name(&self) -> String {
        "gaussian_nb".to_owned()
    }

    fn fresh(&self) -> Box<dyn Classifier> {
        Box::new(GaussianNb::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::test_data::blobs;
    use crate::metrics::f1_at_threshold;

    #[test]
    fn nb_separates_blobs() {
        let (x, y) = blobs(400, 0.3, 2.0, 1);
        let (xt, yt) = blobs(200, 0.3, 2.0, 2);
        let mut m = GaussianNb::new();
        m.fit(&x, &y).unwrap();
        let probs = m.predict_proba(&xt);
        let actual: Vec<bool> = yt.iter().map(|&v| v >= 0.5).collect();
        let f1 = f1_at_threshold(&probs, &actual, 0.5);
        assert!(f1 > 90.0, "F1 {f1}");
    }

    #[test]
    fn priors_dominate_with_uninformative_features() {
        // features identical across classes, 90/10 prior → probs near 0.1
        let x = Matrix::full(200, 2, 1.0);
        let mut y = vec![0.0f32; 180];
        y.extend(vec![1.0; 20]);
        let mut m = GaussianNb::new();
        m.fit(&x, &y).unwrap();
        let p = m.predict_proba(&Matrix::full(1, 2, 1.0))[0];
        assert!((p - 0.1).abs() < 0.02, "{p}");
    }

    #[test]
    fn handles_single_class_training() {
        let x = Matrix::full(10, 2, 1.0);
        let y = vec![1.0; 10];
        let mut m = GaussianNb::new();
        m.fit(&x, &y).unwrap();
        let p = m.predict_proba(&x);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!(p[0] > 0.5);
    }

    #[test]
    fn probabilities_bounded_and_finite() {
        let (x, y) = blobs(100, 0.5, 5.0, 3);
        let mut m = GaussianNb::new();
        m.fit(&x, &y).unwrap();
        for p in m.predict_proba(&x) {
            assert!(p.is_finite() && (0.0..=1.0).contains(&p));
        }
    }
}
