//! CART decision trees over histogram-binned features.
//!
//! Both the forests and the boosting machines share the [`Binner`]
//! quantile-binning front end (the core trick of LightGBM-class libraries):
//! features are discretized once into ≤ 64 bins, after which every split
//! search is a linear scan over bin statistics instead of a sort.
//!
//! [`DecisionTree`] is the classification tree (Gini impurity, probability
//! leaves) used by [`crate::forest`]; the boosting module builds its own
//! gradient/hessian regression tree on the same binned representation.

use crate::{check_fit_inputs, Classifier, TrialError};
use linalg::{Matrix, Rng};

/// Maximum number of histogram bins per feature.
pub const MAX_BINS: usize = 64;

/// Quantile binner: maps each feature to a small integer bin id.
#[derive(Debug, Clone)]
pub struct Binner {
    /// Per feature: ascending cut points; bin id = #cuts < value.
    edges: Vec<Vec<f32>>,
}

impl Binner {
    /// Learn per-feature quantile cut points from `x`.
    pub fn fit(x: &Matrix, n_bins: usize) -> Self {
        let n_bins = n_bins.clamp(2, MAX_BINS);
        let mut edges = Vec::with_capacity(x.cols());
        for j in 0..x.cols() {
            let mut col = x.col(j);
            col.retain(|v| v.is_finite());
            col.sort_by(f32::total_cmp);
            col.dedup();
            let mut cuts = Vec::new();
            if col.len() > 1 {
                // midpoints between the quantile values
                for k in 1..n_bins {
                    let pos = k * (col.len() - 1) / n_bins;
                    let next = (pos + 1).min(col.len() - 1);
                    let cut = (col[pos] + col[next]) / 2.0;
                    if cuts.last().is_none_or(|&last| cut > last) {
                        cuts.push(cut);
                    }
                }
            }
            edges.push(cuts);
        }
        Self { edges }
    }

    /// Number of features this binner was fitted on.
    pub fn n_features(&self) -> usize {
        self.edges.len()
    }

    /// Number of bins for feature `j` (`#cuts + 1`).
    pub fn n_bins(&self, j: usize) -> usize {
        self.edges[j].len() + 1
    }

    /// Bin id of a raw value for feature `j`.
    pub fn bin(&self, j: usize, value: f32) -> u8 {
        if !value.is_finite() {
            return 0; // missing values sink to the lowest bin
        }
        let cuts = &self.edges[j];
        cuts.partition_point(|&c| c < value) as u8
    }

    /// The raw-value threshold meaning "bin ≤ b": the cut point after bin
    /// `b` (values ≤ this go left). `None` when `b` is the last bin.
    pub fn threshold(&self, j: usize, b: u8) -> Option<f32> {
        self.edges[j].get(b as usize).copied()
    }

    /// Bin an entire matrix (row-major `u8` codes).
    pub fn transform(&self, x: &Matrix) -> BinnedData {
        assert_eq!(x.cols(), self.n_features(), "binner column mismatch");
        let mut bins = Vec::with_capacity(x.rows() * x.cols());
        for row in x.rows_iter() {
            for (j, &v) in row.iter().enumerate() {
                bins.push(self.bin(j, v));
            }
        }
        BinnedData {
            bins,
            rows: x.rows(),
            cols: x.cols(),
        }
    }
}

/// A matrix of bin codes.
#[derive(Debug, Clone)]
pub struct BinnedData {
    bins: Vec<u8>,
    rows: usize,
    cols: usize,
}

impl BinnedData {
    /// Bin code of `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> u8 {
        self.bins[row * self.cols + col]
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of feature columns.
    pub fn cols(&self) -> usize {
        self.cols
    }
}

/// How split thresholds are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitRule {
    /// Scan all bins, choose the best Gini gain (classic CART / RF).
    Best,
    /// Choose one uniformly random bin per feature (extremely randomized
    /// trees); the best of the sampled (feature, threshold) pairs wins.
    Random,
}

/// Decision-tree hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required in a leaf.
    pub min_samples_leaf: usize,
    /// Fraction of features examined per split (`1.0` = all, `0.0` → √d).
    pub max_features: f32,
    /// Split-threshold selection rule.
    pub split_rule: SplitRule,
    /// Number of histogram bins.
    pub n_bins: usize,
    /// Seed for feature subsampling / random thresholds.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_leaf: 2,
            max_features: 1.0,
            split_rule: SplitRule::Best,
            n_bins: 32,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        prob: f32,
    },
    Split {
        feature: u32,
        /// Raw-value threshold: go left when `value <= threshold`
        /// (missing/NaN goes left).
        threshold: f32,
        left: usize,
        right: usize,
    },
}

/// A single CART classification tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    /// Hyperparameters.
    pub config: TreeConfig,
    nodes: Vec<Node>,
}

impl DecisionTree {
    /// Unfitted tree.
    pub fn new(config: TreeConfig) -> Self {
        Self {
            config,
            nodes: Vec::new(),
        }
    }

    /// Number of nodes in the fitted tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Fit on pre-binned data (used by forests to share one binning pass).
    /// `indices` selects the training rows (with repetitions for bagging).
    pub fn fit_binned(
        &mut self,
        binned: &BinnedData,
        binner: &Binner,
        y: &[f32],
        indices: &[usize],
        rng: &mut Rng,
    ) {
        assert!(!indices.is_empty(), "empty training subset");
        self.nodes.clear();
        self.grow(binned, binner, y, indices.to_vec(), 0, rng);
    }

    fn grow(
        &mut self,
        binned: &BinnedData,
        binner: &Binner,
        y: &[f32],
        indices: Vec<usize>,
        depth: usize,
        rng: &mut Rng,
    ) -> usize {
        let n = indices.len();
        let n_pos: f32 = indices.iter().map(|&i| y[i]).sum();
        let prob = n_pos / n as f32;
        let pure = prob <= f32::EPSILON || prob >= 1.0 - f32::EPSILON;
        if depth >= self.config.max_depth || n < 2 * self.config.min_samples_leaf || pure {
            self.nodes.push(Node::Leaf { prob });
            return self.nodes.len() - 1;
        }

        // feature subsample
        let d = binned.cols();
        let k = if self.config.max_features <= 0.0 {
            (d as f32).sqrt().ceil() as usize
        } else {
            ((d as f32 * self.config.max_features).ceil() as usize).clamp(1, d)
        };
        let features = rng.sample_indices(d, k);

        // find best split among candidate features
        let mut best: Option<(usize, u8, f32)> = None; // (feature, bin, gain)
        let base_impurity = gini(n_pos, n as f32);
        for &j in &features {
            let n_bins = binner.n_bins(j);
            if n_bins < 2 {
                continue;
            }
            // histogram of (count, pos) per bin
            let mut count = [0f32; MAX_BINS];
            let mut pos = [0f32; MAX_BINS];
            for &i in &indices {
                let b = binned.get(i, j) as usize;
                count[b] += 1.0;
                pos[b] += y[i];
            }
            let candidate_bins: Vec<u8> = match self.config.split_rule {
                SplitRule::Best => (0..n_bins as u8 - 1).collect(),
                SplitRule::Random => vec![rng.below(n_bins - 1) as u8],
            };
            let total = n as f32;
            for &b in &candidate_bins {
                let mut left_n = 0.0;
                let mut left_pos = 0.0;
                for bb in 0..=b as usize {
                    left_n += count[bb];
                    left_pos += pos[bb];
                }
                let right_n = total - left_n;
                let right_pos = n_pos - left_pos;
                if left_n < self.config.min_samples_leaf as f32
                    || right_n < self.config.min_samples_leaf as f32
                {
                    continue;
                }
                let gain = base_impurity
                    - (left_n / total) * gini(left_pos, left_n)
                    - (right_n / total) * gini(right_pos, right_n);
                if gain > 1e-7 && best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((j, b, gain));
                }
            }
        }

        let Some((feature, bin, _)) = best else {
            self.nodes.push(Node::Leaf { prob });
            return self.nodes.len() - 1;
        };
        // A winning split bin always has a cut point: candidate bins range
        // over 0..n_bins-1 and `threshold` only returns None for the last
        // bin, so this cannot fire without a bug in the split search.
        #[allow(clippy::expect_used)]
        let threshold = binner
            .threshold(feature, bin)
            .expect("split bin has a cut point");
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .into_iter()
            .partition(|&i| binned.get(i, feature) <= bin);

        // reserve this node's slot, then grow children
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { prob }); // placeholder
        let left = self.grow(binned, binner, y, left_idx, depth + 1, rng);
        let right = self.grow(binned, binner, y, right_idx, depth + 1, rng);
        self.nodes[slot] = Node::Split {
            feature: feature as u32,
            threshold,
            left,
            right,
        };
        slot
    }

    /// Split-frequency feature importance: how often each feature is used
    /// as a split, normalized to sum to 1 (all-zeros for a stump-less tree).
    pub fn feature_importance(&self, n_features: usize) -> Vec<f32> {
        let mut counts = vec![0.0f32; n_features];
        for node in &self.nodes {
            if let Node::Split { feature, .. } = node {
                counts[*feature as usize] += 1.0;
            }
        }
        let total: f32 = counts.iter().sum();
        if total > 0.0 {
            for c in &mut counts {
                *c /= total;
            }
        }
        counts
    }

    /// Probability for one raw feature row.
    pub fn predict_row(&self, row: &[f32]) -> f32 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { prob } => return *prob,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = row[*feature as usize];
                    node = if !v.is_finite() || v <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

impl Default for DecisionTree {
    fn default() -> Self {
        Self::new(TreeConfig::default())
    }
}

fn gini(pos: f32, total: f32) -> f32 {
    if total <= 0.0 {
        return 0.0;
    }
    let p = pos / total;
    2.0 * p * (1.0 - p)
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &Matrix, y: &[f32]) -> Result<(), TrialError> {
        check_fit_inputs(x, y)?;
        let binner = Binner::fit(x, self.config.n_bins);
        let binned = binner.transform(x);
        let indices: Vec<usize> = (0..x.rows()).collect();
        let mut rng = Rng::new(self.config.seed);
        self.fit_binned(&binned, &binner, y, &indices, &mut rng);
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        assert!(!self.nodes.is_empty(), "predict before fit");
        x.rows_iter().map(|row| self.predict_row(row)).collect()
    }

    fn name(&self) -> String {
        format!("tree(depth={})", self.config.max_depth)
    }

    fn fresh(&self) -> Box<dyn Classifier> {
        Box::new(DecisionTree::new(self.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::test_data::{blobs, xor};
    use crate::metrics::f1_at_threshold;

    #[test]
    fn binner_respects_order() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![10.0]]);
        let b = Binner::fit(&x, 4);
        assert!(b.bin(0, 0.5) <= b.bin(0, 2.5));
        assert!(b.bin(0, 2.5) <= b.bin(0, 20.0));
        assert_eq!(b.bin(0, f32::NAN), 0);
    }

    #[test]
    fn binner_constant_column() {
        let x = Matrix::from_rows(&[vec![5.0], vec![5.0], vec![5.0]]);
        let b = Binner::fit(&x, 8);
        assert_eq!(b.n_bins(0), 1);
        assert_eq!(b.bin(0, 5.0), 0);
    }

    #[test]
    fn binner_threshold_consistent_with_bin() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![4.0]]);
        let b = Binner::fit(&x, 4);
        for bin in 0..(b.n_bins(0) - 1) as u8 {
            let t = b.threshold(0, bin).unwrap();
            // values at/below the threshold must land in bins <= bin
            assert!(b.bin(0, t) <= bin, "bin {bin}, t {t}");
            assert!(b.bin(0, t + 0.01) > bin);
        }
    }

    #[test]
    fn tree_solves_xor() {
        let (x, y) = xor(400, 1);
        let (xt, yt) = xor(200, 2);
        let mut tree = DecisionTree::default();
        tree.fit(&x, &y).unwrap();
        let probs = tree.predict_proba(&xt);
        let actual: Vec<bool> = yt.iter().map(|&v| v >= 0.5).collect();
        let f1 = f1_at_threshold(&probs, &actual, 0.5);
        assert!(f1 > 90.0, "F1 {f1}");
    }

    #[test]
    fn tree_respects_max_depth_1() {
        let (x, y) = blobs(300, 0.5, 2.0, 3);
        let mut tree = DecisionTree::new(TreeConfig {
            max_depth: 1,
            ..TreeConfig::default()
        });
        tree.fit(&x, &y).unwrap();
        // a stump has at most 3 nodes
        assert!(tree.node_count() <= 3, "{}", tree.node_count());
    }

    #[test]
    fn pure_node_stops_growing() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![0.2]]);
        let y = vec![1.0, 1.0, 1.0];
        let mut tree = DecisionTree::default();
        tree.fit(&x, &y).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict_proba(&x), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn random_split_rule_still_learns() {
        let (x, y) = blobs(400, 0.4, 2.0, 4);
        let mut tree = DecisionTree::new(TreeConfig {
            split_rule: SplitRule::Random,
            ..TreeConfig::default()
        });
        tree.fit(&x, &y).unwrap();
        let probs = tree.predict_proba(&x);
        let actual: Vec<bool> = y.iter().map(|&v| v >= 0.5).collect();
        let f1 = f1_at_threshold(&probs, &actual, 0.5);
        assert!(f1 > 85.0, "F1 {f1}");
    }

    #[test]
    fn deterministic_fit() {
        let (x, y) = blobs(200, 0.3, 1.0, 5);
        let mut a = DecisionTree::default();
        let mut b = DecisionTree::default();
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn min_samples_leaf_respected() {
        let (x, y) = blobs(100, 0.5, 0.2, 6);
        let mut tree = DecisionTree::new(TreeConfig {
            min_samples_leaf: 40,
            ..TreeConfig::default()
        });
        tree.fit(&x, &y).unwrap();
        // with such a large leaf requirement only ~1 split is possible
        assert!(tree.node_count() <= 3);
    }
}
