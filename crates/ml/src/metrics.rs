//! Binary-classification metrics.
//!
//! Every table of the paper reports **F1 on the match class**, so this
//! module is the measurement backbone of the whole reproduction. F1 values
//! are returned in `[0, 100]` percentage points, matching the paper's
//! presentation.
//!
//! **Zero-division convention**: precision, recall and F1 all return `0.0`
//! when their denominator is zero (nothing predicted positive, no actual
//! positives, or both). This is scikit-learn's `zero_division=0` default
//! and makes degenerate classifiers score worst instead of propagating
//! NaN into leaderboards.

/// Counts of a binary confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// Predicted match, was match.
    pub tp: usize,
    /// Predicted match, was non-match.
    pub fp: usize,
    /// Predicted non-match, was non-match.
    pub tn: usize,
    /// Predicted non-match, was match.
    pub fn_: usize,
}

impl Confusion {
    /// Tally predictions against ground truth.
    pub fn from_predictions(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "prediction length mismatch");
        let mut c = Confusion::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            match (p, a) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Precision of the match class; `0.0` when nothing was predicted
    /// positive (see the module-level zero-division convention).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall of the match class; `0.0` when there are no actual positives
    /// (see the module-level zero-division convention).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 of the match class, in **percentage points** `[0, 100]`; `0.0`
    /// when precision + recall is zero (see the module-level convention).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            100.0 * 2.0 * p * r / (p + r)
        }
    }

    /// Overall accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }
}

/// F1 (percentage points) from hard predictions.
pub fn f1_score(predicted: &[bool], actual: &[bool]) -> f64 {
    Confusion::from_predictions(predicted, actual).f1()
}

/// F1 (percentage points) from probabilities at a fixed threshold.
pub fn f1_at_threshold(probs: &[f32], actual: &[bool], threshold: f32) -> f64 {
    let preds: Vec<bool> = probs.iter().map(|&p| p >= threshold).collect();
    f1_score(&preds, actual)
}

/// Binary cross-entropy (log loss) of probabilities; lower is better.
pub fn log_loss(probs: &[f32], actual: &[bool]) -> f64 {
    assert_eq!(probs.len(), actual.len(), "log_loss length mismatch");
    if probs.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f64;
    for (&p, &a) in probs.iter().zip(actual) {
        let p = (p as f64).clamp(1e-7, 1.0 - 1e-7);
        total -= if a { p.ln() } else { (1.0 - p).ln() };
    }
    total / probs.len() as f64
}

/// Area under the ROC curve via the rank-sum formulation; 0.5 when one
/// class is absent.
pub fn roc_auc(probs: &[f32], actual: &[bool]) -> f64 {
    assert_eq!(probs.len(), actual.len(), "roc_auc length mismatch");
    let n_pos = actual.iter().filter(|&&a| a).count();
    let n_neg = actual.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // rank probabilities (average ranks on ties)
    // NaN probabilities rank last (deterministically) instead of panicking
    let mut order: Vec<usize> = (0..probs.len()).collect();
    order.sort_by(|&a, &b| linalg::stats::nan_last_cmp_f32(probs[a], probs[b]));
    let mut ranks = vec![0.0f64; probs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && probs[order[j + 1]] == probs[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg_rank;
        }
        i = j + 1;
    }
    let pos_rank_sum: f64 = actual
        .iter()
        .zip(&ranks)
        .filter(|(&a, _)| a)
        .map(|(_, &r)| r)
        .sum();
    (pos_rank_sum - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

/// Pick the probability threshold maximizing F1 on a validation set.
///
/// EM is heavily imbalanced, so the 0.5 default is rarely optimal; every
/// system in the stack tunes the threshold on validation data, which is also
/// what the AutoML tools in the paper do internally.
pub fn best_f1_threshold(probs: &[f32], actual: &[bool]) -> (f32, f64) {
    let mut candidates: Vec<f32> = probs.to_vec();
    candidates.push(0.5);
    candidates.sort_by(|a, b| linalg::stats::nan_last_cmp_f32(*a, *b));
    candidates.dedup();
    // a NaN threshold predicts nothing positive (p >= NaN is false) and
    // scores 0, so stray NaNs can never win the sweep
    candidates.retain(|t| t.is_finite());
    if candidates.is_empty() {
        return (0.5, 0.0);
    }
    let mut best = (0.5f32, -1.0f64);
    for &t in &candidates {
        let f1 = f1_at_threshold(probs, actual, t);
        if f1 > best.1 {
            best = (t, f1);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let pred = [true, true, false, false, true];
        let actual = [true, false, false, true, true];
        let c = Confusion::from_predictions(&pred, &actual);
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (2, 1, 1, 1));
    }

    #[test]
    fn perfect_f1_is_100() {
        let y = [true, false, true, false];
        assert_eq!(f1_score(&y, &y), 100.0);
    }

    #[test]
    fn degenerate_predictions() {
        let actual = [true, false, true];
        assert_eq!(f1_score(&[false, false, false], &actual), 0.0);
        // all-positive: precision 2/3, recall 1 → F1 = 80
        assert!((f1_score(&[true, true, true], &actual) - 80.0).abs() < 1e-9);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let pred = [true, true, false, false, true, false];
        let actual = [true, false, true, false, true, true];
        let c = Confusion::from_predictions(&pred, &actual);
        let (p, r) = (c.precision(), c.recall());
        assert!((c.f1() / 100.0 - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    fn log_loss_behaviour() {
        let actual = [true, false];
        let good = log_loss(&[0.9, 0.1], &actual);
        let bad = log_loss(&[0.1, 0.9], &actual);
        assert!(good < bad);
        // clamping keeps extreme probabilities finite
        assert!(log_loss(&[1.0, 0.0], &actual).is_finite());
    }

    #[test]
    fn auc_known_values() {
        let actual = [true, true, false, false];
        assert_eq!(roc_auc(&[0.9, 0.8, 0.2, 0.1], &actual), 1.0);
        assert_eq!(roc_auc(&[0.1, 0.2, 0.8, 0.9], &actual), 0.0);
        assert_eq!(roc_auc(&[0.5; 4], &actual), 0.5);
        assert_eq!(roc_auc(&[0.9, 0.1], &[true, true]), 0.5);
    }

    #[test]
    fn threshold_tuning_beats_default_on_imbalance() {
        // 10% positives, scores shifted low: 0.5 threshold catches nothing
        let mut probs = vec![0.05f32; 90];
        probs.extend(vec![0.3f32; 10]);
        let mut actual = vec![false; 90];
        actual.extend(vec![true; 10]);
        let at_half = f1_at_threshold(&probs, &actual, 0.5);
        let (t, best) = best_f1_threshold(&probs, &actual);
        assert_eq!(at_half, 0.0);
        assert_eq!(best, 100.0);
        assert!(t <= 0.3);
    }

    #[test]
    fn accuracy_sanity() {
        let c = Confusion {
            tp: 3,
            fp: 1,
            tn: 5,
            fn_: 1,
        };
        assert!((c.accuracy() - 0.8).abs() < 1e-12);
    }
}
