//! k-nearest-neighbours classifier (brute force, Euclidean).
//!
//! Part of the AutoGluon roster. Brute force is adequate at benchmark scale
//! (≤ ~17k training rows, ≤ few hundred dims); distances reuse the
//! vectorized kernels in `linalg`.

use crate::{check_fit_inputs, Classifier, TrialError};
use linalg::vector::sq_dist;
use linalg::Matrix;

/// kNN hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct KnnConfig {
    /// Number of neighbours.
    pub k: usize,
    /// Weight votes by inverse distance instead of uniformly.
    pub distance_weighted: bool,
}

impl Default for KnnConfig {
    fn default() -> Self {
        Self {
            k: 5,
            distance_weighted: true,
        }
    }
}

/// Brute-force kNN over the training matrix.
pub struct KNearest {
    /// Hyperparameters.
    pub config: KnnConfig,
    x: Option<Matrix>,
    y: Vec<f32>,
}

impl KNearest {
    /// Unfitted model.
    pub fn new(config: KnnConfig) -> Self {
        Self {
            config,
            x: None,
            y: Vec::new(),
        }
    }
}

impl Default for KNearest {
    fn default() -> Self {
        Self::new(KnnConfig::default())
    }
}

impl Classifier for KNearest {
    fn fit(&mut self, x: &Matrix, y: &[f32]) -> Result<(), TrialError> {
        check_fit_inputs(x, y)?;
        self.x = Some(x.clone());
        self.y = y.to_vec();
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        // Predict-before-fit is a caller bug, not a recoverable trial
        // failure; the panic is caught at the trial boundary anyway.
        #[allow(clippy::expect_used)]
        let train = self.x.as_ref().expect("predict before fit");
        assert_eq!(train.cols(), x.cols(), "feature width mismatch");
        let k = self.config.k.clamp(1, train.rows());
        let mut out = Vec::with_capacity(x.rows());
        // reusable scratch of (distance, label)
        let mut dists: Vec<(f32, f32)> = Vec::with_capacity(train.rows());
        for row in x.rows_iter() {
            dists.clear();
            for (ti, trow) in train.rows_iter().enumerate() {
                dists.push((sq_dist(row, trow), self.y[ti]));
            }
            // partial selection of the k smallest; NaN distances (from
            // non-finite features) sort last so they never become neighbours
            dists.select_nth_unstable_by(k - 1, |a, b| linalg::stats::nan_last_cmp_f32(a.0, b.0));
            let neighbours = &dists[..k];
            let prob = if self.config.distance_weighted {
                let mut wsum = 0.0f64;
                let mut psum = 0.0f64;
                for &(d, label) in neighbours {
                    let w = 1.0 / (d as f64 + 1e-9);
                    wsum += w;
                    psum += w * label as f64;
                }
                (psum / wsum) as f32
            } else {
                neighbours.iter().map(|&(_, l)| l).sum::<f32>() / k as f32
            };
            out.push(prob);
        }
        out
    }

    fn name(&self) -> String {
        format!("knn(k={})", self.config.k)
    }

    fn fresh(&self) -> Box<dyn Classifier> {
        Box::new(KNearest::new(self.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::test_data::blobs;
    use crate::metrics::f1_at_threshold;

    #[test]
    fn knn_separates_blobs() {
        let (x, y) = blobs(300, 0.4, 2.0, 1);
        let (xt, yt) = blobs(150, 0.4, 2.0, 2);
        let mut m = KNearest::default();
        m.fit(&x, &y).unwrap();
        let probs = m.predict_proba(&xt);
        let actual: Vec<bool> = yt.iter().map(|&v| v >= 0.5).collect();
        let f1 = f1_at_threshold(&probs, &actual, 0.5);
        assert!(f1 > 90.0, "F1 {f1}");
    }

    #[test]
    fn k1_memorizes_training_data() {
        let (x, y) = blobs(100, 0.5, 1.0, 3);
        let mut m = KNearest::new(KnnConfig {
            k: 1,
            distance_weighted: false,
        });
        m.fit(&x, &y).unwrap();
        let probs = m.predict_proba(&x);
        for (p, &label) in probs.iter().zip(&y) {
            assert_eq!(*p, label);
        }
    }

    #[test]
    fn k_clamped_to_train_size() {
        let (x, y) = blobs(5, 0.4, 1.0, 4);
        let mut m = KNearest::new(KnnConfig {
            k: 50,
            distance_weighted: false,
        });
        m.fit(&x, &y).unwrap();
        let probs = m.predict_proba(&x);
        // with k = n every prediction equals the global positive rate
        let rate = y.iter().sum::<f32>() / y.len() as f32;
        for p in probs {
            assert!((p - rate).abs() < 1e-6);
        }
    }

    #[test]
    fn distance_weighting_prefers_close_neighbours() {
        // train: one positive at 0, two negatives at 1 and 1.1
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![1.1]]);
        let y = vec![1.0, 0.0, 0.0];
        let mut m = KNearest::new(KnnConfig {
            k: 3,
            distance_weighted: true,
        });
        m.fit(&x, &y).unwrap();
        // query right on the positive: weighted prob must exceed 1/3
        let p = m.predict_proba(&Matrix::from_rows(&[vec![0.01]]))[0];
        assert!(p > 0.8, "{p}");
    }
}
