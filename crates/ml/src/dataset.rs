//! Feature-matrix dataset container shared by models and AutoML.

use linalg::{Matrix, Rng};

/// A supervised binary-classification dataset: a dense feature matrix plus
/// one `{0.0, 1.0}` label per row.
#[derive(Debug, Clone)]
pub struct TabularData {
    /// Features, one row per example.
    pub x: Matrix,
    /// Labels, `0.0` = non-match, `1.0` = match.
    pub y: Vec<f32>,
}

impl TabularData {
    /// Build and validate shapes.
    pub fn new(x: Matrix, y: Vec<f32>) -> Self {
        assert_eq!(x.rows(), y.len(), "features/labels length mismatch");
        Self { x, y }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when there are no examples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.x.cols()
    }

    /// Labels as booleans.
    pub fn labels_bool(&self) -> Vec<bool> {
        self.y.iter().map(|&v| v >= 0.5).collect()
    }

    /// Fraction of positive examples.
    pub fn positive_ratio(&self) -> f64 {
        if self.y.is_empty() {
            return 0.0;
        }
        self.y.iter().filter(|&&v| v >= 0.5).count() as f64 / self.y.len() as f64
    }

    /// Subset by row indices.
    pub fn select(&self, indices: &[usize]) -> TabularData {
        TabularData {
            x: self.x.select_rows(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
        }
    }

    /// Bootstrap resample of the same size (sampling with replacement).
    pub fn bootstrap(&self, rng: &mut Rng) -> TabularData {
        let idx: Vec<usize> = (0..self.len()).map(|_| rng.below(self.len())).collect();
        self.select(&idx)
    }

    /// Random-oversample the minority class until the classes are balanced —
    /// the data-augmentation hook the paper lists as future work (§6); wired
    /// into the pipeline as an ablation.
    pub fn oversample_minority(&self, rng: &mut Rng) -> TabularData {
        let pos: Vec<usize> = (0..self.len()).filter(|&i| self.y[i] >= 0.5).collect();
        let neg: Vec<usize> = (0..self.len()).filter(|&i| self.y[i] < 0.5).collect();
        if pos.is_empty() || neg.is_empty() || pos.len() == neg.len() {
            return self.clone();
        }
        let (minority, majority) = if pos.len() < neg.len() {
            (&pos, &neg)
        } else {
            (&neg, &pos)
        };
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for _ in 0..(majority.len() - minority.len()) {
            idx.push(*rng.choose(minority));
        }
        rng.shuffle(&mut idx);
        self.select(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n_pos: usize, n_neg: usize) -> TabularData {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n_pos {
            rows.push(vec![i as f32, 1.0]);
            y.push(1.0);
        }
        for i in 0..n_neg {
            rows.push(vec![i as f32, 0.0]);
            y.push(0.0);
        }
        TabularData::new(Matrix::from_rows(&rows), y)
    }

    #[test]
    fn basic_accessors() {
        let d = toy(3, 7);
        assert_eq!(d.len(), 10);
        assert_eq!(d.n_features(), 2);
        assert!((d.positive_ratio() - 0.3).abs() < 1e-9);
        assert_eq!(d.labels_bool().iter().filter(|&&b| b).count(), 3);
    }

    #[test]
    fn select_subsets() {
        let d = toy(2, 2);
        let s = d.select(&[3, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.y, vec![0.0, 1.0]);
    }

    #[test]
    fn bootstrap_preserves_size() {
        let d = toy(5, 5);
        let mut rng = Rng::new(1);
        let b = d.bootstrap(&mut rng);
        assert_eq!(b.len(), d.len());
    }

    #[test]
    fn oversampling_balances() {
        let d = toy(2, 18);
        let mut rng = Rng::new(2);
        let o = d.oversample_minority(&mut rng);
        assert_eq!(o.len(), 36);
        assert!((o.positive_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn oversampling_noop_when_balanced_or_degenerate() {
        let d = toy(5, 5);
        let mut rng = Rng::new(3);
        assert_eq!(d.oversample_minority(&mut rng).len(), 10);
        let all_pos = toy(4, 0);
        assert_eq!(all_pos.oversample_minority(&mut rng).len(), 4);
    }
}
