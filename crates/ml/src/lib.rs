//! # ml — classical machine-learning model zoo
//!
//! The model families the three AutoML systems of the paper search over,
//! reimplemented from scratch:
//!
//! | module | models | used by |
//! |---|---|---|
//! | [`linear`] | logistic regression, linear SVM | AutoSklearn space, H2O GLM metalearner |
//! | [`tree`] | CART decision tree | building block of every ensemble |
//! | [`forest`] | random forest, extremely randomized trees | all three systems |
//! | [`boosting`] | histogram gradient boosting ("LightGBM-style"), ordered boosting ("CatBoost-style") | AutoGluon roster, AutoSklearn space |
//! | [`knn`] | k-nearest neighbours | AutoGluon roster |
//! | [`naive_bayes`] | Gaussian naive Bayes | AutoSklearn space |
//!
//! Everything trains on a dense [`linalg::Matrix`] of `f32` features with
//! binary labels in `{0.0, 1.0}` and predicts a match probability — the
//! interface captured by the [`Classifier`] trait. Supporting modules:
//! [`metrics`] (F1 and friends — the currency of every experiment table),
//! [`preprocess`] (scaling/imputation), [`cv`] (stratified k-fold, used by
//! the ensembling strategies) and [`dataset`] (feature-matrix container).
//!
//! Models are deterministic given their `seed` configuration field.

#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod boosting;
pub mod calibrate;
pub mod cv;
pub mod dataset;
pub mod error;
pub mod forest;
pub mod knn;
pub mod linear;
pub mod metrics;
pub mod naive_bayes;
pub mod preprocess;
pub mod tree;

use linalg::Matrix;

pub use error::TrialError;

/// A binary probabilistic classifier.
///
/// `fit` consumes features `x` (one row per example) and labels `y`
/// (`0.0` / `1.0`); `predict_proba` returns the probability of the positive
/// ("match") class per row.
///
/// `Send` lets the AutoML engines fan candidate fits across the `par`
/// pool; `Sync` lets a *fitted* model serve concurrent `predict_proba`
/// calls by shared reference (the `em-serve` hot path). Every model in
/// the zoo is plain data after `fit`, so both bounds are free.
pub trait Classifier: Send + Sync {
    /// Train on the given data, replacing any previous fit. Returns a
    /// [`TrialError`] instead of panicking on degenerate inputs so one
    /// bad candidate never aborts a whole AutoML search.
    fn fit(&mut self, x: &Matrix, y: &[f32]) -> Result<(), TrialError>;

    /// Probability of the positive class for each row of `x`.
    fn predict_proba(&self, x: &Matrix) -> Vec<f32>;

    /// Hard predictions at the 0.5 threshold.
    fn predict(&self, x: &Matrix) -> Vec<bool> {
        self.predict_proba(x).iter().map(|&p| p >= 0.5).collect()
    }

    /// Short human-readable model name (for leaderboards).
    fn name(&self) -> String;

    /// Clone into a fresh, unfitted box with the same configuration.
    fn fresh(&self) -> Box<dyn Classifier>;
}

/// Validate a training-set shape shared by every `fit` implementation.
pub(crate) fn check_fit_inputs(x: &Matrix, y: &[f32]) -> Result<(), TrialError> {
    if x.rows() != y.len() {
        return Err(TrialError::DegenerateInput(format!(
            "features/labels length mismatch: {} rows vs {} labels",
            x.rows(),
            y.len()
        )));
    }
    if x.rows() == 0 {
        return Err(TrialError::DegenerateInput(
            "cannot fit on an empty dataset".into(),
        ));
    }
    debug_assert!(
        y.iter().all(|&v| v == 0.0 || v == 1.0),
        "labels must be 0.0 or 1.0"
    );
    Ok(())
}
