//! # nn — reverse-mode autodiff and neural layers
//!
//! The deep-learning substrate of the reproduction. Two consumers:
//!
//! * the **transformer embedder families** in `embed` (BERT, DistilBERT,
//!   ALBERT, RoBERTa, XLNet stand-ins) — pretrained here with a masked-token
//!   objective, then used frozen by the EM adapter, exactly as the paper
//!   uses HuggingFace checkpoints ("no fine-tuning technique was applied");
//! * the **DeepMatcher baseline** in `deepmatcher` — a bi-GRU + attention
//!   *Hybrid* model trained end-to-end.
//!
//! The engine is a classic **tape**: every op appends a node with its value
//! (a 2-D [`linalg::Matrix`]) and enough structure to compute vector-Jacobian
//! products in reverse. Ops are a closed enum (no closures), so the whole
//! graph is inspectable and the backward pass is a simple reverse loop —
//! and deterministic, like everything else in this stack.
//!
//! Trainable parameters live in a [`params::ParamStore`] outside any tape;
//! a forward pass borrows their current values, `backward` returns a
//! [`params::Grads`] keyed by parameter id, and an [`optim`] optimizer
//! applies the update. Tapes are rebuilt per example (define-by-run).

pub mod attention;
pub mod layers;
pub mod optim;
pub mod params;
pub mod rnn;
pub mod tape;
pub mod transformer;

pub use params::{Grads, ParamId, ParamStore};
pub use tape::{Tape, TensorId};
