//! Reusable layers: linear, embedding, layer norm with affine parameters.
//!
//! A layer owns [`ParamId`]s registered at construction and replays its
//! forward computation on any tape.

use crate::params::{normal_init, xavier, ParamId, ParamStore};
use crate::tape::{Tape, TensorId};
use linalg::{Matrix, Rng};

/// Fully connected layer `x W + b`.
#[derive(Debug, Clone, Copy)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    /// Input feature width.
    pub in_dim: usize,
    /// Output feature width.
    pub out_dim: usize,
}

impl Linear {
    /// Register a `(in_dim → out_dim)` layer.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        let w = store.add(&format!("{name}.w"), xavier(in_dim, out_dim, rng));
        let b = store.add(&format!("{name}.b"), Matrix::zeros(1, out_dim));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Weight parameter id (the tied MLM head needs direct access).
    pub fn weight_id(&self) -> ParamId {
        self.w
    }

    /// Apply to `(n × in_dim)` → `(n × out_dim)`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: TensorId) -> TensorId {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        let h = tape.matmul(x, w);
        tape.add_row(h, b)
    }
}

/// Token-embedding table.
#[derive(Debug, Clone, Copy)]
pub struct Embedding {
    table: ParamId,
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding width.
    pub dim: usize,
}

impl Embedding {
    /// Register a `(vocab × dim)` table with transformer-style init.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut Rng,
    ) -> Self {
        let table = store.add(&format!("{name}.table"), normal_init(vocab, dim, rng));
        Self { table, vocab, dim }
    }

    /// Look up a token-id sequence → `(len × dim)`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, ids: &[u32]) -> TensorId {
        debug_assert!(ids.iter().all(|&i| (i as usize) < self.vocab));
        tape.gather(store, self.table, ids)
    }

    /// The raw table parameter (the MLM head ties output weights to it).
    pub fn table(&self) -> ParamId {
        self.table
    }
}

/// Layer normalization with learned scale γ and shift β.
#[derive(Debug, Clone, Copy)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    eps: f32,
}

impl LayerNorm {
    /// Register γ = 1, β = 0 of width `dim`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.add(&format!("{name}.gamma"), Matrix::full(1, dim, 1.0));
        let beta = store.add(&format!("{name}.beta"), Matrix::zeros(1, dim));
        Self {
            gamma,
            beta,
            eps: 1e-5,
        }
    }

    /// Normalize rows, then apply the affine part.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: TensorId) -> TensorId {
        let n = tape.layer_norm_rows(x, self.eps);
        let g = tape.param(store, self.gamma);
        let b = tape.param(store, self.beta);
        let scaled = tape.mul_row(n, g);
        tape.add_row(scaled, b)
    }
}

/// Build an inverted-dropout mask for a `(rows × cols)` activation.
/// Returns an all-ones mask when `p == 0` (or at inference time).
pub fn dropout_mask(rows: usize, cols: usize, p: f32, rng: &mut Rng) -> Vec<f32> {
    if p <= 0.0 {
        return vec![1.0; rows * cols];
    }
    let keep = 1.0 - p;
    let scale = 1.0 / keep;
    (0..rows * cols)
        .map(|_| if rng.f32() < keep { scale } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Grads;

    #[test]
    fn linear_shapes_and_bias() {
        let mut rng = Rng::new(1);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 3, 2, &mut rng);
        let mut tape = Tape::new();
        let x = tape.input(Matrix::zeros(4, 3));
        let y = lin.forward(&mut tape, &store, x);
        assert_eq!(tape.shape(y), (4, 2));
        // zero input → output equals bias (zeros at init)
        assert_eq!(tape.value(y).as_slice(), &[0.0; 8]);
    }

    #[test]
    fn embedding_lookup_matches_table() {
        let mut rng = Rng::new(2);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 10, 4, &mut rng);
        let mut tape = Tape::new();
        let out = emb.forward(&mut tape, &store, &[3, 3, 7]);
        assert_eq!(tape.shape(out), (3, 4));
        assert_eq!(tape.value(out).row(0), tape.value(out).row(1));
        assert_eq!(tape.value(out).row(0), store.get(emb.table()).row(3));
    }

    #[test]
    fn layer_norm_normalizes_then_affines() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let mut tape = Tape::new();
        let x = tape.input(Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]));
        let y = ln.forward(&mut tape, &store, x);
        let row = tape.value(y).row(0);
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layers_are_trainable_end_to_end() {
        // one gradient step must reduce a simple regression loss
        let mut rng = Rng::new(3);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 2, 1, &mut rng);
        let x_data = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.5, -0.5]);
        let targets = [1.0f32, 0.0, 1.0, 0.0];
        let loss_of = |store: &ParamStore| {
            let mut tape = Tape::new();
            let x = tape.input(x_data.clone());
            let h = lin.forward(&mut tape, store, x);
            let l = tape.bce_logits(h, &targets);
            (tape.value(l)[(0, 0)], tape, l)
        };
        let (before, tape, l) = loss_of(&store);
        let mut grads = Grads::new();
        tape.backward(l, &mut grads);
        let mut opt = crate::optim::Sgd::new(0.5, 0.0);
        opt.step(&mut store, &grads);
        let (after, _, _) = loss_of(&store);
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn dropout_mask_statistics() {
        let mut rng = Rng::new(4);
        let mask = dropout_mask(100, 10, 0.3, &mut rng);
        let zeros = mask.iter().filter(|&&m| m == 0.0).count();
        let frac = zeros as f64 / mask.len() as f64;
        assert!((frac - 0.3).abs() < 0.05, "{frac}");
        // kept entries carry the inverse-keep scale
        let kept = mask.iter().find(|&&m| m > 0.0).unwrap();
        assert!((kept - 1.0 / 0.7).abs() < 1e-6);
        // p = 0 → identity
        assert!(dropout_mask(2, 2, 0.0, &mut rng).iter().all(|&m| m == 1.0));
    }
}
