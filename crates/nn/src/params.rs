//! Trainable-parameter storage, gradient accumulators, initializers.

use linalg::{Matrix, Rng};

/// Handle to one parameter tensor inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// All trainable tensors of a model, stable across tapes.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    values: Vec<Matrix>,
    names: Vec<String>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter tensor; the name is for debugging/reports.
    pub fn add(&mut self, name: &str, value: Matrix) -> ParamId {
        self.values.push(value);
        self.names.push(name.to_owned());
        ParamId(self.values.len() - 1)
    }

    /// Current value of a parameter.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable value (used by optimizers).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights.
    pub fn n_weights(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// Iterate ids in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }
}

/// Gradients keyed by [`ParamId`], accumulated across backward passes
/// (i.e. across the examples of a mini-batch).
#[derive(Debug, Clone, Default)]
pub struct Grads {
    slots: Vec<Option<Matrix>>,
}

impl Grads {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate `grad` into the slot of `id`.
    pub fn accumulate(&mut self, id: ParamId, grad: &Matrix) {
        if self.slots.len() <= id.0 {
            self.slots.resize(id.0 + 1, None);
        }
        match &mut self.slots[id.0] {
            Some(g) => g.axpy(1.0, grad),
            slot @ None => *slot = Some(grad.clone()),
        }
    }

    /// Gradient of `id`, if any op touched it.
    pub fn get(&self, id: ParamId) -> Option<&Matrix> {
        self.slots.get(id.0).and_then(Option::as_ref)
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &Grads) {
        for (i, slot) in other.slots.iter().enumerate() {
            if let Some(g) = slot {
                self.accumulate(ParamId(i), g);
            }
        }
    }

    /// Scale all gradients (e.g. by `1/batch_size`).
    pub fn scale(&mut self, s: f32) {
        for slot in self.slots.iter_mut().flatten() {
            slot.map_inplace(|v| v * s);
        }
    }

    /// Global L2 norm over all gradients.
    pub fn norm(&self) -> f32 {
        self.slots
            .iter()
            .flatten()
            .map(|g| {
                let f = g.frobenius();
                f * f
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Clip the global norm to `max_norm` (no-op when already below).
    pub fn clip_norm(&mut self, max_norm: f32) {
        let n = self.norm();
        if n > max_norm && n > 0.0 {
            self.scale(max_norm / n);
        }
    }

    /// Drop all accumulated gradients.
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    /// Remove the gradient of one parameter (used to freeze it).
    pub fn clear_slot(&mut self, id: ParamId) {
        if let Some(slot) = self.slots.get_mut(id.0) {
            *slot = None;
        }
    }
}

/// Xavier/Glorot-uniform initialization for a `rows × cols` weight.
pub fn xavier(rows: usize, cols: usize, rng: &mut Rng) -> Matrix {
    let bound = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::rand_uniform(rows, cols, -bound, bound, rng)
}

/// Small-normal initialization (std 0.02), the transformer convention.
pub fn normal_init(rows: usize, cols: usize, rng: &mut Rng) -> Matrix {
    Matrix::randn(rows, cols, 0.02, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_roundtrip() {
        let mut store = ParamStore::new();
        let id = store.add("w", Matrix::full(2, 3, 1.5));
        assert_eq!(store.get(id)[(1, 2)], 1.5);
        assert_eq!(store.name(id), "w");
        assert_eq!(store.n_weights(), 6);
        store.get_mut(id)[(0, 0)] = 9.0;
        assert_eq!(store.get(id)[(0, 0)], 9.0);
    }

    #[test]
    fn grads_accumulate_and_merge() {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::zeros(1, 2));
        let b = store.add("b", Matrix::zeros(1, 2));
        let mut g1 = Grads::new();
        g1.accumulate(a, &Matrix::full(1, 2, 1.0));
        g1.accumulate(a, &Matrix::full(1, 2, 2.0));
        assert_eq!(g1.get(a).unwrap().as_slice(), &[3.0, 3.0]);
        assert!(g1.get(b).is_none());
        let mut g2 = Grads::new();
        g2.accumulate(b, &Matrix::full(1, 2, 5.0));
        g1.merge(&g2);
        assert_eq!(g1.get(b).unwrap().as_slice(), &[5.0, 5.0]);
    }

    #[test]
    fn clip_norm_caps() {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::zeros(1, 2));
        let mut g = Grads::new();
        g.accumulate(a, &Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        assert!((g.norm() - 5.0).abs() < 1e-6);
        g.clip_norm(1.0);
        assert!((g.norm() - 1.0).abs() < 1e-5);
        // already below: untouched
        let before = g.get(a).unwrap().clone();
        g.clip_norm(10.0);
        assert_eq!(g.get(a).unwrap(), &before);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = Rng::new(1);
        let w = xavier(50, 70, &mut rng);
        let bound = (6.0f32 / 120.0).sqrt();
        assert!(w.as_slice().iter().all(|&v| v.abs() <= bound));
        // not degenerate
        assert!(w.frobenius() > 0.0);
    }
}
