//! The reverse-mode autodiff tape.
//!
//! A [`Tape`] is a growing list of nodes; each op appends one node holding
//! its forward value and an `Op` record of how it was produced. Backward
//! is a single reverse sweep dispatching on the op enum. Parameters enter
//! through [`Tape::param`] (dense) or [`Tape::gather`] (row lookup into an
//! embedding table — gradients stay sparse per batch).
//!
//! Everything is 2-D: sequences are `(len × dim)` matrices, scalars are
//! `1 × 1`. Batches are handled by accumulating [`Grads`] across examples.

use crate::params::{Grads, ParamId, ParamStore};
use linalg::vector::sigmoid as sig;
use linalg::Matrix;

/// Handle to a node on a tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorId(usize);

const GELU_C: f32 = 0.797_884_6; // sqrt(2/π)
const GELU_A: f32 = 0.044_715;

#[derive(Debug, Clone)]
enum Op {
    Input,
    Param(ParamId),
    Gather {
        param: ParamId,
        table_rows: usize,
        indices: Vec<u32>,
    },
    MatMul(usize, usize),
    MatMulTB(usize, usize),
    MatMulTA(usize, usize),
    Transpose(usize),
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    AddRow(usize, usize),
    MulRow(usize, usize),
    Scale(usize, f32),
    Sigmoid(usize),
    Tanh(usize),
    Relu(usize),
    Gelu(usize),
    SoftmaxRows(usize),
    LayerNormRows {
        a: usize,
        eps: f32,
    },
    MeanRows(usize),
    MaxRows(usize),
    ConcatCols(usize, usize),
    ConcatRows(usize, usize),
    Rows {
        a: usize,
        start: usize,
    },
    Dropout {
        a: usize,
        mask: Vec<f32>,
    },
    BceLogits {
        a: usize,
        targets: Vec<f32>,
    },
    CeLogitsRows {
        a: usize,
        targets: Vec<u32>,
        weights: Vec<f32>,
    },
}

struct Node {
    value: Matrix,
    op: Op,
}

/// A single forward computation and its recorded structure.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    fn push(&mut self, value: Matrix, op: Op) -> TensorId {
        debug_assert!(value.all_finite(), "non-finite value from {op:?}");
        self.nodes.push(Node { value, op });
        TensorId(self.nodes.len() - 1)
    }

    /// Forward value of a node.
    pub fn value(&self, id: TensorId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// Shape of a node.
    pub fn shape(&self, id: TensorId) -> (usize, usize) {
        self.nodes[id.0].value.shape()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ---- leaves ---------------------------------------------------------

    /// Constant input (no gradient flows into it).
    pub fn input(&mut self, value: Matrix) -> TensorId {
        self.push(value, Op::Input)
    }

    /// Dense parameter leaf: value snapshot from the store, gradients
    /// accumulate under its id.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> TensorId {
        self.push(store.get(id).clone(), Op::Param(id))
    }

    /// Row lookup into an embedding table parameter. The forward value is
    /// `(indices.len() × dim)`; the backward is a sparse row scatter.
    pub fn gather(&mut self, store: &ParamStore, id: ParamId, indices: &[u32]) -> TensorId {
        let table = store.get(id);
        let rows: Vec<usize> = indices.iter().map(|&i| i as usize).collect();
        let value = table.select_rows(&rows);
        self.push(
            value,
            Op::Gather {
                param: id,
                table_rows: table.rows(),
                indices: indices.to_vec(),
            },
        )
    }

    // ---- linear algebra ---------------------------------------------------

    /// Matrix product.
    pub fn matmul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(v, Op::MatMul(a.0, b.0))
    }

    /// Fused `A·Bᵀ` (`b` holds the `n × k` operand). Bit-identical to
    /// `matmul(a, transpose(b))` but skips materializing the transpose in
    /// both the forward and the backward sweep — the fast path for
    /// attention scores (`Q·Kᵀ`) and pair-alignment products.
    pub fn matmul_transpose_b(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self.nodes[a.0]
            .value
            .matmul_transpose_b(&self.nodes[b.0].value);
        self.push(v, Op::MatMulTB(a.0, b.0))
    }

    /// Fused `Aᵀ·B` (`a` holds the `k × m` operand). Bit-identical to
    /// `matmul(transpose(a), b)` without materializing the transpose;
    /// the backward of every plain `matmul` also routes through this
    /// kernel for its `Aᵀ·g` term.
    pub fn matmul_transpose_a(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self.nodes[a.0]
            .value
            .matmul_transpose_a(&self.nodes[b.0].value);
        self.push(v, Op::MatMulTA(a.0, b.0))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: TensorId) -> TensorId {
        let v = self.nodes[a.0].value.transpose();
        self.push(v, Op::Transpose(a.0))
    }

    /// Elementwise sum (same shape).
    pub fn add(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        self.push(v, Op::Add(a.0, b.0))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self.nodes[a.0].value.sub(&self.nodes[b.0].value);
        self.push(v, Op::Sub(a.0, b.0))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self.nodes[a.0].value.hadamard(&self.nodes[b.0].value);
        self.push(v, Op::Mul(a.0, b.0))
    }

    /// Add a `1 × d` row vector to every row of `a`.
    pub fn add_row(&mut self, a: TensorId, row: TensorId) -> TensorId {
        let r = &self.nodes[row.0].value;
        assert_eq!(r.rows(), 1, "add_row expects a 1×d row");
        let mut v = self.nodes[a.0].value.clone();
        for i in 0..v.rows() {
            let dst = v.row_mut(i);
            for (d, &s) in dst.iter_mut().zip(r.row(0)) {
                *d += s;
            }
        }
        self.push(v, Op::AddRow(a.0, row.0))
    }

    /// Multiply every row of `a` by a `1 × d` row vector.
    pub fn mul_row(&mut self, a: TensorId, row: TensorId) -> TensorId {
        let r = &self.nodes[row.0].value;
        assert_eq!(r.rows(), 1, "mul_row expects a 1×d row");
        let mut v = self.nodes[a.0].value.clone();
        for i in 0..v.rows() {
            let dst = v.row_mut(i);
            for (d, &s) in dst.iter_mut().zip(r.row(0)) {
                *d *= s;
            }
        }
        self.push(v, Op::MulRow(a.0, row.0))
    }

    /// Multiply by a constant.
    pub fn scale(&mut self, a: TensorId, c: f32) -> TensorId {
        let v = self.nodes[a.0].value.scale(c);
        self.push(v, Op::Scale(a.0, c))
    }

    // ---- nonlinearities ---------------------------------------------------

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: TensorId) -> TensorId {
        let v = self.nodes[a.0].value.map(sig);
        self.push(v, Op::Sigmoid(a.0))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: TensorId) -> TensorId {
        let v = self.nodes[a.0].value.map(f32::tanh);
        self.push(v, Op::Tanh(a.0))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: TensorId) -> TensorId {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(v, Op::Relu(a.0))
    }

    /// GELU (tanh approximation), the transformer FFN activation.
    pub fn gelu(&mut self, a: TensorId) -> TensorId {
        let v = self.nodes[a.0].value.map(gelu_fwd);
        self.push(v, Op::Gelu(a.0))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: TensorId) -> TensorId {
        let mut v = self.nodes[a.0].value.clone();
        for i in 0..v.rows() {
            linalg::vector::softmax_inplace(v.row_mut(i));
        }
        self.push(v, Op::SoftmaxRows(a.0))
    }

    /// Row-wise layer normalization (no affine part — compose with
    /// [`Tape::mul_row`] / [`Tape::add_row`] for γ and β).
    pub fn layer_norm_rows(&mut self, a: TensorId, eps: f32) -> TensorId {
        let x = &self.nodes[a.0].value;
        let mut v = Matrix::zeros(x.rows(), x.cols());
        for i in 0..x.rows() {
            let row = x.row(i);
            let mean = linalg::vector::mean(row);
            let var = row.iter().map(|&r| (r - mean) * (r - mean)).sum::<f32>() / row.len() as f32;
            let inv_std = 1.0 / (var + eps).sqrt();
            let dst = v.row_mut(i);
            for (d, &r) in dst.iter_mut().zip(row) {
                *d = (r - mean) * inv_std;
            }
        }
        self.push(v, Op::LayerNormRows { a: a.0, eps })
    }

    // ---- shape ops --------------------------------------------------------

    /// Mean over rows: `(n × d)` → `(1 × d)`.
    pub fn mean_rows(&mut self, a: TensorId) -> TensorId {
        let x = &self.nodes[a.0].value;
        let means = x.col_means();
        self.push(Matrix::from_vec(1, x.cols(), means), Op::MeanRows(a.0))
    }

    /// Column-wise maximum over rows: `(n × d)` → `(1 × d)`.
    pub fn max_rows(&mut self, a: TensorId) -> TensorId {
        let x = &self.nodes[a.0].value;
        let mut maxs = vec![f32::NEG_INFINITY; x.cols()];
        for row in x.rows_iter() {
            for (m, &v) in maxs.iter_mut().zip(row) {
                *m = m.max(v);
            }
        }
        self.push(Matrix::from_vec(1, x.cols(), maxs), Op::MaxRows(a.0))
    }

    /// Horizontal concatenation.
    pub fn concat_cols(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self.nodes[a.0].value.hstack(&self.nodes[b.0].value);
        self.push(v, Op::ConcatCols(a.0, b.0))
    }

    /// Vertical concatenation.
    pub fn concat_rows(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self.nodes[a.0].value.vstack(&self.nodes[b.0].value);
        self.push(v, Op::ConcatRows(a.0, b.0))
    }

    /// Contiguous row slice `[start, start+len)`.
    pub fn rows(&mut self, a: TensorId, start: usize, len: usize) -> TensorId {
        let x = &self.nodes[a.0].value;
        assert!(start + len <= x.rows(), "row slice out of range");
        let idx: Vec<usize> = (start..start + len).collect();
        self.push(x.select_rows(&idx), Op::Rows { a: a.0, start })
    }

    /// Inverted dropout with the given keep mask (1/keep_prob or 0 per
    /// entry). Pass the mask explicitly so training loops own the RNG.
    pub fn dropout(&mut self, a: TensorId, mask: Vec<f32>) -> TensorId {
        let x = &self.nodes[a.0].value;
        assert_eq!(mask.len(), x.len(), "dropout mask length mismatch");
        let mut v = x.clone();
        for (d, &m) in v.as_mut_slice().iter_mut().zip(&mask) {
            *d *= m;
        }
        self.push(v, Op::Dropout { a: a.0, mask })
    }

    // ---- losses -----------------------------------------------------------

    /// Mean binary cross-entropy over logits `(n × 1)` against targets.
    pub fn bce_logits(&mut self, a: TensorId, targets: &[f32]) -> TensorId {
        let x = &self.nodes[a.0].value;
        assert_eq!(x.cols(), 1, "bce_logits expects n×1 logits");
        assert_eq!(x.rows(), targets.len(), "target length mismatch");
        let mut loss = 0.0f64;
        for (i, &t) in targets.iter().enumerate() {
            let z = x[(i, 0)];
            // stable: max(z,0) − z·t + ln(1 + e^{−|z|})
            loss += (z.max(0.0) - z * t + (-z.abs()).exp().ln_1p()) as f64;
        }
        let v = Matrix::from_vec(1, 1, vec![(loss / targets.len() as f64) as f32]);
        self.push(
            v,
            Op::BceLogits {
                a: a.0,
                targets: targets.to_vec(),
            },
        )
    }

    /// Weighted mean cross-entropy over row logits `(n × V)` with integer
    /// targets; rows with weight 0 are ignored (the MLM objective masks
    /// most positions out).
    pub fn ce_logits_rows(&mut self, a: TensorId, targets: &[u32], weights: &[f32]) -> TensorId {
        let x = &self.nodes[a.0].value;
        assert_eq!(x.rows(), targets.len(), "target length mismatch");
        assert_eq!(x.rows(), weights.len(), "weight length mismatch");
        let wsum: f32 = weights.iter().sum();
        let mut loss = 0.0f64;
        if wsum > 0.0 {
            for i in 0..x.rows() {
                if weights[i] == 0.0 {
                    continue;
                }
                let row = x.row(i);
                let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let logsum: f32 = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
                loss += (weights[i] * (logsum - row[targets[i] as usize])) as f64;
            }
            loss /= wsum as f64;
        }
        let v = Matrix::from_vec(1, 1, vec![loss as f32]);
        self.push(
            v,
            Op::CeLogitsRows {
                a: a.0,
                targets: targets.to_vec(),
                weights: weights.to_vec(),
            },
        )
    }

    // ---- backward -----------------------------------------------------------

    /// Reverse sweep from `loss` (must be `1 × 1`), accumulating parameter
    /// gradients into `grads`.
    pub fn backward(&self, loss: TensorId, grads: &mut Grads) {
        assert_eq!(self.shape(loss), (1, 1), "loss must be a scalar");
        let mut adj: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        adj[loss.0] = Some(Matrix::full(1, 1, 1.0));
        for i in (0..=loss.0).rev() {
            let Some(g) = adj[i].take() else { continue };
            match &self.nodes[i].op {
                Op::Input => {}
                Op::Param(id) => grads.accumulate(*id, &g),
                Op::Gather {
                    param,
                    table_rows,
                    indices,
                } => {
                    // sparse scatter: build a zero table once, add rows
                    let mut table_grad = Matrix::zeros(*table_rows, g.cols());
                    for (r, &idx) in indices.iter().enumerate() {
                        let src = g.row(r).to_vec();
                        let dst = table_grad.row_mut(idx as usize);
                        for (d, s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                    grads.accumulate(*param, &table_grad);
                }
                Op::MatMul(a, b) => {
                    // dA = g·Bᵀ, dB = Aᵀ·g — both through the fused
                    // kernels, so backward never materializes a transpose
                    add_adj(&mut adj, *a, &g.matmul_transpose_b(&self.nodes[*b].value));
                    add_adj(&mut adj, *b, &self.nodes[*a].value.matmul_transpose_a(&g));
                }
                Op::MatMulTB(a, b) => {
                    // C = A·Bᵀ with B stored n×k: dA = g·B, dB = gᵀ·A
                    add_adj(&mut adj, *a, &g.matmul(&self.nodes[*b].value));
                    add_adj(&mut adj, *b, &g.matmul_transpose_a(&self.nodes[*a].value));
                }
                Op::MatMulTA(a, b) => {
                    // C = Aᵀ·B with A stored k×m: dA = B·gᵀ, dB = A·g
                    add_adj(&mut adj, *a, &self.nodes[*b].value.matmul_transpose_b(&g));
                    add_adj(&mut adj, *b, &self.nodes[*a].value.matmul(&g));
                }
                Op::Transpose(a) => add_adj(&mut adj, *a, &g.transpose()),
                Op::Add(a, b) => {
                    add_adj(&mut adj, *a, &g);
                    add_adj(&mut adj, *b, &g);
                }
                Op::Sub(a, b) => {
                    add_adj(&mut adj, *a, &g);
                    add_adj(&mut adj, *b, &g.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    add_adj(&mut adj, *a, &g.hadamard(&self.nodes[*b].value));
                    add_adj(&mut adj, *b, &g.hadamard(&self.nodes[*a].value));
                }
                Op::AddRow(a, row) => {
                    add_adj(&mut adj, *a, &g);
                    let sums = col_sums(&g);
                    add_adj(&mut adj, *row, &sums);
                }
                Op::MulRow(a, row) => {
                    // da = g ∘ broadcast(row); drow = colsum(g ∘ a)
                    let rvals = self.nodes[*row].value.row(0).to_vec();
                    let mut da = g.clone();
                    for r in 0..da.rows() {
                        let dst = da.row_mut(r);
                        for (d, &rv) in dst.iter_mut().zip(&rvals) {
                            *d *= rv;
                        }
                    }
                    add_adj(&mut adj, *a, &da);
                    let ga = g.hadamard(&self.nodes[*a].value);
                    add_adj(&mut adj, *row, &col_sums(&ga));
                }
                Op::Scale(a, c) => add_adj(&mut adj, *a, &g.scale(*c)),
                Op::Sigmoid(a) => {
                    let s = &self.nodes[i].value;
                    let da = g.zip(s, |gv, sv| gv * sv * (1.0 - sv));
                    add_adj(&mut adj, *a, &da);
                }
                Op::Tanh(a) => {
                    let t = &self.nodes[i].value;
                    let da = g.zip(t, |gv, tv| gv * (1.0 - tv * tv));
                    add_adj(&mut adj, *a, &da);
                }
                Op::Relu(a) => {
                    let x = &self.nodes[*a].value;
                    let da = g.zip(x, |gv, xv| if xv > 0.0 { gv } else { 0.0 });
                    add_adj(&mut adj, *a, &da);
                }
                Op::Gelu(a) => {
                    let x = &self.nodes[*a].value;
                    let da = g.zip(x, |gv, xv| gv * gelu_bwd(xv));
                    add_adj(&mut adj, *a, &da);
                }
                Op::SoftmaxRows(a) => {
                    let s = &self.nodes[i].value;
                    let mut da = Matrix::zeros(s.rows(), s.cols());
                    for r in 0..s.rows() {
                        let srow = s.row(r);
                        let grow = g.row(r);
                        let dot = linalg::vector::dot(srow, grow);
                        let dst = da.row_mut(r);
                        for ((d, &sv), &gv) in dst.iter_mut().zip(srow).zip(grow) {
                            *d = sv * (gv - dot);
                        }
                    }
                    add_adj(&mut adj, *a, &da);
                }
                Op::LayerNormRows { a, eps } => {
                    let x = &self.nodes[*a].value;
                    let y = &self.nodes[i].value;
                    let d = x.cols() as f32;
                    let mut da = Matrix::zeros(x.rows(), x.cols());
                    for r in 0..x.rows() {
                        let xrow = x.row(r);
                        let yrow = y.row(r);
                        let grow = g.row(r);
                        let mean = linalg::vector::mean(xrow);
                        let var = xrow.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d;
                        let inv_std = 1.0 / (var + eps).sqrt();
                        let g_mean = linalg::vector::mean(grow);
                        let gy_mean = linalg::vector::dot(grow, yrow) / d;
                        let dst = da.row_mut(r);
                        for ((dd, &gv), &yv) in dst.iter_mut().zip(grow).zip(yrow) {
                            *dd = inv_std * (gv - g_mean - yv * gy_mean);
                        }
                    }
                    add_adj(&mut adj, *a, &da);
                }
                Op::MaxRows(a) => {
                    // gradient routes to the first row attaining the max
                    let x = &self.nodes[*a].value;
                    let out = &self.nodes[i].value;
                    let mut da = Matrix::zeros(x.rows(), x.cols());
                    for c in 0..x.cols() {
                        for r in 0..x.rows() {
                            if x[(r, c)] == out[(0, c)] {
                                da[(r, c)] = g[(0, c)];
                                break;
                            }
                        }
                    }
                    add_adj(&mut adj, *a, &da);
                }
                Op::MeanRows(a) => {
                    let n = self.nodes[*a].value.rows();
                    let mut da = Matrix::zeros(n, g.cols());
                    let inv = 1.0 / n as f32;
                    for r in 0..n {
                        let dst = da.row_mut(r);
                        for (d, &gv) in dst.iter_mut().zip(g.row(0)) {
                            *d = gv * inv;
                        }
                    }
                    add_adj(&mut adj, *a, &da);
                }
                Op::ConcatCols(a, b) => {
                    let ca = self.nodes[*a].value.cols();
                    let idx_a: Vec<usize> = (0..ca).collect();
                    let idx_b: Vec<usize> = (ca..g.cols()).collect();
                    add_adj(&mut adj, *a, &g.select_cols(&idx_a));
                    add_adj(&mut adj, *b, &g.select_cols(&idx_b));
                }
                Op::ConcatRows(a, b) => {
                    let ra = self.nodes[*a].value.rows();
                    let idx_a: Vec<usize> = (0..ra).collect();
                    let idx_b: Vec<usize> = (ra..g.rows()).collect();
                    add_adj(&mut adj, *a, &g.select_rows(&idx_a));
                    add_adj(&mut adj, *b, &g.select_rows(&idx_b));
                }
                Op::Rows { a, start } => {
                    let full = &self.nodes[*a].value;
                    let mut da = Matrix::zeros(full.rows(), full.cols());
                    for r in 0..g.rows() {
                        let src = g.row(r).to_vec();
                        let dst = da.row_mut(start + r);
                        dst.copy_from_slice(&src);
                    }
                    add_adj(&mut adj, *a, &da);
                }
                Op::Dropout { a, mask } => {
                    let mut da = g.clone();
                    for (d, &m) in da.as_mut_slice().iter_mut().zip(mask) {
                        *d *= m;
                    }
                    add_adj(&mut adj, *a, &da);
                }
                Op::BceLogits { a, targets } => {
                    let x = &self.nodes[*a].value;
                    let scale = g[(0, 0)] / targets.len() as f32;
                    let mut da = Matrix::zeros(x.rows(), 1);
                    for (r, &t) in targets.iter().enumerate() {
                        da[(r, 0)] = (sig(x[(r, 0)]) - t) * scale;
                    }
                    add_adj(&mut adj, *a, &da);
                }
                Op::CeLogitsRows {
                    a,
                    targets,
                    weights,
                } => {
                    let x = &self.nodes[*a].value;
                    let wsum: f32 = weights.iter().sum();
                    if wsum > 0.0 {
                        let scale = g[(0, 0)] / wsum;
                        let mut da = Matrix::zeros(x.rows(), x.cols());
                        for r in 0..x.rows() {
                            if weights[r] == 0.0 {
                                continue;
                            }
                            let probs = linalg::vector::softmax(x.row(r));
                            let dst = da.row_mut(r);
                            for (c, (d, p)) in dst.iter_mut().zip(probs).enumerate() {
                                let onehot = if c == targets[r] as usize { 1.0 } else { 0.0 };
                                *d = weights[r] * scale * (p - onehot);
                            }
                        }
                        add_adj(&mut adj, *a, &da);
                    }
                }
            }
        }
    }
}

fn add_adj(adj: &mut [Option<Matrix>], idx: usize, g: &Matrix) {
    match &mut adj[idx] {
        Some(existing) => existing.axpy(1.0, g),
        slot @ None => *slot = Some(g.clone()),
    }
}

fn col_sums(m: &Matrix) -> Matrix {
    let mut sums = vec![0.0f32; m.cols()];
    for row in m.rows_iter() {
        for (s, &v) in sums.iter_mut().zip(row) {
            *s += v;
        }
    }
    Matrix::from_vec(1, m.cols(), sums)
}

fn gelu_fwd(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + GELU_A * x * x * x)).tanh())
}

fn gelu_bwd(x: f32) -> f32 {
    let u = GELU_C * (x + GELU_A * x * x * x);
    let t = u.tanh();
    let du = GELU_C * (1.0 + 3.0 * GELU_A * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Rng;

    /// Numerically check d(loss)/d(param) for a builder function.
    fn check_grad(
        build: impl Fn(&mut Tape, &ParamStore, ParamId) -> TensorId,
        param_shape: (usize, usize),
        seed: u64,
        tol: f32,
    ) {
        let mut rng = Rng::new(seed);
        let mut store = ParamStore::new();
        let w = store.add(
            "w",
            Matrix::randn(param_shape.0, param_shape.1, 0.5, &mut rng),
        );
        // analytic gradient
        let mut tape = Tape::new();
        let loss = build(&mut tape, &store, w);
        let mut grads = Grads::new();
        tape.backward(loss, &mut grads);
        let analytic = grads.get(w).expect("gradient exists").clone();
        // numeric gradient (central differences)
        let eps = 1e-2f32;
        for i in 0..param_shape.0 {
            for j in 0..param_shape.1 {
                let orig = store.get(w)[(i, j)];
                store.get_mut(w)[(i, j)] = orig + eps;
                let mut tp = Tape::new();
                let lp_id = build(&mut tp, &store, w);
                let lp = tp.value(lp_id)[(0, 0)];
                store.get_mut(w)[(i, j)] = orig - eps;
                let mut tm = Tape::new();
                let lm_id = build(&mut tm, &store, w);
                let lm = tm.value(lm_id)[(0, 0)];
                store.get_mut(w)[(i, j)] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let a = analytic[(i, j)];
                assert!(
                    (a - numeric).abs() < tol * (1.0 + numeric.abs()),
                    "({i},{j}): analytic {a}, numeric {numeric}"
                );
            }
        }
    }

    /// Reduce any matrix to a scalar via a fixed quadratic-free combination
    /// (sum of entries) so losses are differentiable everywhere.
    fn to_scalar(tape: &mut Tape, x: TensorId) -> TensorId {
        let (r, c) = tape.shape(x);
        let ones_r = tape.input(Matrix::full(1, r, 1.0));
        let ones_c = tape.input(Matrix::full(c, 1, 1.0));
        let s = tape.matmul(ones_r, x);
        tape.matmul(s, ones_c)
    }

    #[test]
    fn grad_matmul_chain() {
        check_grad(
            |tape, store, w| {
                let x = tape.input(Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.3, -0.7]));
                let p = tape.param(store, w);
                let h = tape.matmul(x, p);
                to_scalar(tape, h)
            },
            (3, 2),
            1,
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_transpose_b_both_sides() {
        // param as the transposed (n × k) right operand: C = X·Wᵀ
        check_grad(
            |tape, store, w| {
                let x = tape.input(Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.3, -0.7]));
                let p = tape.param(store, w);
                let h = tape.matmul_transpose_b(x, p);
                to_scalar(tape, h)
            },
            (4, 3),
            11,
            1e-2,
        );
        // param as the left operand: C = W·Xᵀ
        check_grad(
            |tape, store, w| {
                let x = tape.input(Matrix::from_vec(
                    4,
                    3,
                    (0..12).map(|v| v as f32 * 0.2 - 1.1).collect(),
                ));
                let p = tape.param(store, w);
                let h = tape.matmul_transpose_b(p, x);
                to_scalar(tape, h)
            },
            (2, 3),
            12,
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_transpose_a_both_sides() {
        // param as the transposed (k × m) left operand: C = Wᵀ·X
        check_grad(
            |tape, store, w| {
                let x = tape.input(Matrix::from_vec(
                    3,
                    4,
                    (0..12).map(|v| v as f32 * 0.3 - 1.6).collect(),
                ));
                let p = tape.param(store, w);
                let h = tape.matmul_transpose_a(p, x);
                to_scalar(tape, h)
            },
            (3, 2),
            13,
            1e-2,
        );
        // param as the right operand: C = Xᵀ·W
        check_grad(
            |tape, store, w| {
                let x = tape.input(Matrix::from_vec(3, 2, vec![0.4, -0.9, 1.2, 0.8, -0.5, 0.1]));
                let p = tape.param(store, w);
                let h = tape.matmul_transpose_a(x, p);
                to_scalar(tape, h)
            },
            (3, 4),
            14,
            1e-2,
        );
    }

    #[test]
    fn fused_transpose_forwards_bit_match_materialized_transpose() {
        let mut rng = Rng::new(42);
        let a = Matrix::randn(5, 7, 1.0, &mut rng);
        let b = Matrix::randn(9, 7, 1.0, &mut rng); // n × k operand
        let mut tape = Tape::new();
        let (ta, tb) = (tape.input(a.clone()), tape.input(b.clone()));
        let fused = tape.matmul_transpose_b(ta, tb);
        let bt = tape.transpose(tb);
        let materialized = tape.matmul(ta, bt);
        assert_eq!(
            tape.value(fused).as_slice(),
            tape.value(materialized).as_slice()
        );
        let at = tape.transpose(ta); // 7 × 5: the k × m operand for Aᵀ·B
        let fused_ta = tape.matmul_transpose_a(at, bt); // atᵀ·bᵀ = a·bᵀ
        assert_eq!(
            tape.value(fused_ta).as_slice(),
            tape.value(materialized).as_slice()
        );
    }

    #[test]
    fn grad_nonlinearities() {
        for f in [0usize, 1, 2] {
            check_grad(
                move |tape, store, w| {
                    let p = tape.param(store, w);
                    let a = match f {
                        0 => tape.sigmoid(p),
                        1 => tape.tanh(p),
                        _ => tape.gelu(p),
                    };
                    to_scalar(tape, a)
                },
                (2, 3),
                10 + f as u64,
                2e-2,
            );
        }
    }

    #[test]
    fn grad_relu_away_from_kink() {
        // relu is not differentiable at 0, so shift inputs clear of the kink
        // before the numeric check
        check_grad(
            |tape, store, w| {
                let p = tape.param(store, w);
                let shift = tape.input(Matrix::full(2, 3, 2.0));
                let up = tape.add(p, shift); // all positive side
                let down = tape.sub(p, shift); // all negative side
                let a = tape.relu(up);
                let b = tape.relu(down);
                let s = tape.add(a, b);
                to_scalar(tape, s)
            },
            (2, 3),
            13,
            2e-2,
        );
    }

    #[test]
    fn grad_softmax_rows() {
        check_grad(
            |tape, store, w| {
                let p = tape.param(store, w);
                let s = tape.softmax_rows(p);
                // weighted sum to break symmetry
                let weights = tape.input(Matrix::from_vec(4, 1, vec![1.0, -2.0, 0.5, 3.0]));
                let out = tape.matmul(s, weights);
                to_scalar(tape, out)
            },
            (3, 4),
            20,
            2e-2,
        );
    }

    #[test]
    fn grad_layer_norm() {
        check_grad(
            |tape, store, w| {
                let p = tape.param(store, w);
                let n = tape.layer_norm_rows(p, 1e-5);
                let weights = tape.input(Matrix::from_vec(5, 1, vec![1.0, -1.0, 2.0, 0.5, -0.3]));
                let out = tape.matmul(n, weights);
                to_scalar(tape, out)
            },
            (2, 5),
            30,
            5e-2,
        );
    }

    #[test]
    fn grad_max_rows_routes_to_argmax() {
        let mut store = ParamStore::new();
        let w = store.add(
            "w",
            Matrix::from_vec(3, 2, vec![1.0, 5.0, 4.0, 2.0, 0.5, 3.0]),
        );
        let mut tape = Tape::new();
        let p = tape.param(&store, w);
        let m = tape.max_rows(p);
        let loss = to_scalar(&mut tape, m);
        let mut grads = Grads::new();
        tape.backward(loss, &mut grads);
        let g = grads.get(w).unwrap();
        // column maxima are (1,0)=?: col0 max is 4.0 at row 1; col1 max is
        // 5.0 at row 0 — only those entries receive gradient
        assert_eq!(g.as_slice(), &[0.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn grad_max_rows_numeric() {
        // numeric check away from ties
        check_grad(
            |tape, store, w| {
                let p = tape.param(store, w);
                let scaled = tape.scale(p, 3.0); // spread values to avoid ties
                let m = tape.max_rows(scaled);
                to_scalar(tape, m)
            },
            (3, 4),
            123,
            2e-2,
        );
    }

    #[test]
    fn grad_bce_logits() {
        check_grad(
            |tape, store, w| {
                let p = tape.param(store, w);
                tape.bce_logits(p, &[1.0, 0.0, 1.0])
            },
            (3, 1),
            40,
            1e-2,
        );
    }

    #[test]
    fn grad_ce_logits_rows_masked() {
        check_grad(
            |tape, store, w| {
                let p = tape.param(store, w);
                tape.ce_logits_rows(p, &[2, 0, 1], &[1.0, 0.0, 1.0])
            },
            (3, 4),
            50,
            1e-2,
        );
    }

    #[test]
    fn grad_through_composite_ops() {
        check_grad(
            |tape, store, w| {
                let p = tape.param(store, w); // 2×4
                let t = tape.transpose(p); // 4×2
                let top = tape.rows(t, 0, 2); // 2×2
                let bottom = tape.rows(t, 2, 2); // 2×2
                let merged = tape.add(top, bottom);
                let wide = tape.concat_cols(merged, top); // 2×4
                let stacked = tape.concat_rows(wide, wide); // 4×4
                let mean = tape.mean_rows(stacked); // 1×4
                to_scalar(tape, mean)
            },
            (2, 4),
            60,
            2e-2,
        );
    }

    #[test]
    fn grad_row_broadcast_ops() {
        check_grad(
            |tape, store, w| {
                let x = tape.input(Matrix::from_vec(3, 2, vec![1.0, 2.0, -0.5, 0.7, 0.2, -1.2]));
                let p = tape.param(store, w); // 1×2 row
                let scaled = tape.mul_row(x, p);
                let shifted = tape.add_row(scaled, p);
                to_scalar(tape, shifted)
            },
            (1, 2),
            70,
            1e-2,
        );
    }

    #[test]
    fn grad_gather_scatters_sparsely() {
        let mut rng = Rng::new(80);
        let mut store = ParamStore::new();
        let table = store.add("emb", Matrix::randn(5, 3, 0.5, &mut rng));
        let mut tape = Tape::new();
        let looked = tape.gather(&store, table, &[1, 3, 1]);
        let loss = {
            let ones_r = tape.input(Matrix::full(1, 3, 1.0));
            let ones_c = tape.input(Matrix::full(3, 1, 1.0));
            let s = tape.matmul(ones_r, looked);
            tape.matmul(s, ones_c)
        };
        let mut grads = Grads::new();
        tape.backward(loss, &mut grads);
        let g = grads.get(table).unwrap();
        // rows 1 (hit twice) and 3 (once) carry gradient, others zero
        assert_eq!(g.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(g.row(1), &[2.0, 2.0, 2.0]);
        assert_eq!(g.row(2), &[0.0, 0.0, 0.0]);
        assert_eq!(g.row(3), &[1.0, 1.0, 1.0]);
        assert_eq!(g.row(4), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn dropout_scales_and_masks() {
        let mut tape = Tape::new();
        let x = tape.input(Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]));
        let d = tape.dropout(x, vec![2.0, 0.0, 2.0, 0.0]);
        assert_eq!(tape.value(d).as_slice(), &[2.0, 0.0, 6.0, 0.0]);
    }

    #[test]
    fn values_reusable_multiple_times() {
        // a node consumed by two ops must receive both adjoint contributions
        check_grad(
            |tape, store, w| {
                let p = tape.param(store, w);
                let a = tape.sigmoid(p);
                let b = tape.tanh(p);
                let s = tape.add(a, b);
                to_scalar(tape, s)
            },
            (2, 2),
            90,
            2e-2,
        );
    }
}
