//! Recurrent layers: GRU and bidirectional GRU.
//!
//! DeepMatcher's attribute summarizer is a bi-directional RNN; we use GRUs
//! (same family as the paper's DeepER/DeepMatcher LSTMs, cheaper per step).
//! Sequences are `(len × dim)` tensors processed one timestep row at a time
//! on the tape.

use crate::layers::Linear;
use crate::params::ParamStore;
use crate::tape::{Tape, TensorId};
use linalg::{Matrix, Rng};

/// One GRU cell: three gates with input and recurrent weights.
#[derive(Debug, Clone, Copy)]
pub struct GruCell {
    wz: Linear,
    uz: Linear,
    wr: Linear,
    ur: Linear,
    wh: Linear,
    uh: Linear,
    /// Hidden width.
    pub hidden: usize,
}

impl GruCell {
    /// Register a cell mapping `in_dim` inputs to `hidden` state.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut Rng,
    ) -> Self {
        Self {
            wz: Linear::new(store, &format!("{name}.wz"), in_dim, hidden, rng),
            uz: Linear::new(store, &format!("{name}.uz"), hidden, hidden, rng),
            wr: Linear::new(store, &format!("{name}.wr"), in_dim, hidden, rng),
            ur: Linear::new(store, &format!("{name}.ur"), hidden, hidden, rng),
            wh: Linear::new(store, &format!("{name}.wh"), in_dim, hidden, rng),
            uh: Linear::new(store, &format!("{name}.uh"), hidden, hidden, rng),
            hidden,
        }
    }

    /// One step: `(1 × in_dim)` input and `(1 × hidden)` previous state →
    /// new `(1 × hidden)` state.
    pub fn step(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x_t: TensorId,
        h_prev: TensorId,
    ) -> TensorId {
        let zx = self.wz.forward(tape, store, x_t);
        let zh = self.uz.forward(tape, store, h_prev);
        let z_pre = tape.add(zx, zh);
        let z = tape.sigmoid(z_pre);

        let rx = self.wr.forward(tape, store, x_t);
        let rh = self.ur.forward(tape, store, h_prev);
        let r_pre = tape.add(rx, rh);
        let r = tape.sigmoid(r_pre);

        let hx = self.wh.forward(tape, store, x_t);
        let rh_prev = tape.mul(r, h_prev);
        let hh = self.uh.forward(tape, store, rh_prev);
        let h_pre = tape.add(hx, hh);
        let h_cand = tape.tanh(h_pre);

        // h = (1 − z) ∘ h_prev + z ∘ ĥ  =  h_prev + z ∘ (ĥ − h_prev)
        let delta = tape.sub(h_cand, h_prev);
        let gated = tape.mul(z, delta);
        tape.add(h_prev, gated)
    }
}

/// A unidirectional GRU over a sequence.
#[derive(Debug, Clone, Copy)]
pub struct Gru {
    cell: GruCell,
}

impl Gru {
    /// Register a GRU layer.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut Rng,
    ) -> Self {
        Self {
            cell: GruCell::new(store, name, in_dim, hidden, rng),
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.cell.hidden
    }

    /// Run over `(len × in_dim)`; returns the per-step hidden states in
    /// input order. `reverse` scans right-to-left (states still returned in
    /// input order, as a backward RNN's outputs are).
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: TensorId,
        reverse: bool,
    ) -> Vec<TensorId> {
        let (len, _) = tape.shape(x);
        assert!(len > 0, "empty sequence");
        let mut h = tape.input(Matrix::zeros(1, self.cell.hidden));
        let order: Vec<usize> = if reverse {
            (0..len).rev().collect()
        } else {
            (0..len).collect()
        };
        let mut states = vec![None; len];
        for &t in &order {
            let x_t = tape.rows(x, t, 1);
            h = self.cell.step(tape, store, x_t, h);
            states[t] = Some(h);
        }
        states.into_iter().map(|s| s.expect("visited")).collect()
    }
}

/// Bidirectional GRU: forward and backward passes concatenated per step.
#[derive(Debug, Clone, Copy)]
pub struct BiGru {
    fwd: Gru,
    bwd: Gru,
}

impl BiGru {
    /// Register both directions.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut Rng,
    ) -> Self {
        Self {
            fwd: Gru::new(store, &format!("{name}.fwd"), in_dim, hidden, rng),
            bwd: Gru::new(store, &format!("{name}.bwd"), in_dim, hidden, rng),
        }
    }

    /// Output width (`2 × hidden`).
    pub fn out_dim(&self) -> usize {
        2 * self.fwd.hidden()
    }

    /// `(len × in_dim)` → `(len × 2·hidden)`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: TensorId) -> TensorId {
        let f = self.fwd.forward(tape, store, x, false);
        let b = self.bwd.forward(tape, store, x, true);
        let mut out = None;
        for (hf, hb) in f.into_iter().zip(b) {
            let step = tape.concat_cols(hf, hb);
            out = Some(match out {
                None => step,
                Some(acc) => tape.concat_rows(acc, step),
            });
        }
        out.expect("non-empty sequence")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use crate::params::Grads;

    #[test]
    fn gru_shapes() {
        let mut rng = Rng::new(1);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "g", 4, 6, &mut rng);
        let mut tape = Tape::new();
        let x = tape.input(Matrix::randn(5, 4, 1.0, &mut rng));
        let states = gru.forward(&mut tape, &store, x, false);
        assert_eq!(states.len(), 5);
        for s in &states {
            assert_eq!(tape.shape(*s), (1, 6));
        }
    }

    #[test]
    fn bigru_shape_and_direction_sensitivity() {
        let mut rng = Rng::new(2);
        let mut store = ParamStore::new();
        let bi = BiGru::new(&mut store, "b", 3, 4, &mut rng);
        let mut tape = Tape::new();
        let x = tape.input(Matrix::randn(6, 3, 1.0, &mut rng));
        let out = bi.forward(&mut tape, &store, x);
        assert_eq!(tape.shape(out), (6, 8));
        // the backward half of the first step must already see the whole
        // sequence: forward half of step 0 only depends on x₀, so feeding a
        // sequence differing only at the end changes only the bwd half
        let mut tape2 = Tape::new();
        let mut other = tape.value(x).clone();
        other[(5, 0)] += 1.0;
        let x2 = tape2.input(other);
        let out2 = bi.forward(&mut tape2, &store, x2);
        let row_a = tape.value(out).row(0).to_vec();
        let row_b = tape2.value(out2).row(0).to_vec();
        assert_eq!(row_a[..4], row_b[..4], "fwd half must match");
        assert_ne!(row_a[4..], row_b[4..], "bwd half must differ");
    }

    #[test]
    fn gru_learns_sequence_classification() {
        // task: does the sum of the (single-feature) sequence exceed 0?
        let mut rng = Rng::new(3);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "g", 1, 8, &mut rng);
        let head = Linear::new(&mut store, "head", 8, 1, &mut rng);
        let mut opt = Adam::new(0.02);
        let make_example = |rng: &mut Rng| {
            let len = 3 + rng.below(4);
            let vals: Vec<f32> = (0..len).map(|_| rng.normal()).collect();
            let label = if vals.iter().sum::<f32>() > 0.0 {
                1.0f32
            } else {
                0.0
            };
            (Matrix::from_vec(len, 1, vals), label)
        };
        for _ in 0..300 {
            let mut grads = Grads::new();
            for _ in 0..8 {
                let (seq, label) = make_example(&mut rng);
                let mut tape = Tape::new();
                let x = tape.input(seq);
                let states = gru.forward(&mut tape, &store, x, false);
                let last = *states.last().unwrap();
                let logit = head.forward(&mut tape, &store, last);
                let loss = tape.bce_logits(logit, &[label]);
                tape.backward(loss, &mut grads);
            }
            grads.scale(1.0 / 8.0);
            opt.step(&mut store, &grads);
        }
        // evaluate
        let mut correct = 0;
        for _ in 0..100 {
            let (seq, label) = make_example(&mut rng);
            let mut tape = Tape::new();
            let x = tape.input(seq);
            let states = gru.forward(&mut tape, &store, x, false);
            let last = *states.last().unwrap();
            let logit = head.forward(&mut tape, &store, last);
            let pred = tape.value(logit)[(0, 0)] > 0.0;
            if pred == (label > 0.5) {
                correct += 1;
            }
        }
        assert!(correct >= 85, "accuracy {correct}/100");
    }
}
