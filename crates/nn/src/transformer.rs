//! Transformer encoders with the architecture knobs that distinguish the
//! five pretrained families the paper evaluates (§4, Table 3):
//!
//! | family | distinguishing trait | config knob |
//! |---|---|---|
//! | BERT | baseline post-LN encoder, learned absolute positions | — |
//! | DistilBERT | half the layers | `layers` |
//! | ALBERT | cross-layer parameter sharing + factorized embedding | `share_layers`, `factorized_embedding` |
//! | RoBERTa | larger vocabulary, no next-sentence machinery | set by `embed` |
//! | XLNet | relative position bias instead of absolute positions | `relative_positions` |

use crate::attention::{MultiHeadAttention, RelativePositionBias};
use crate::layers::{Embedding, LayerNorm, Linear};
use crate::params::ParamStore;
use crate::tape::{Tape, TensorId};
use linalg::Rng;

/// Architecture hyperparameters of one encoder.
#[derive(Debug, Clone, Copy)]
pub struct TransformerConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Model width.
    pub dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Number of (logical) layers.
    pub layers: usize,
    /// Feed-forward inner width.
    pub ffn_dim: usize,
    /// Maximum sequence length (positions table size).
    pub max_len: usize,
    /// ALBERT-style: one physical block reused for every layer.
    pub share_layers: bool,
    /// ALBERT-style: token embeddings of this smaller width, projected up.
    pub factorized_embedding: Option<usize>,
    /// XLNet-style: relative position bias; otherwise learned absolute
    /// position embeddings.
    pub relative_positions: bool,
}

impl Default for TransformerConfig {
    fn default() -> Self {
        Self {
            vocab: 1000,
            dim: 64,
            heads: 4,
            layers: 4,
            ffn_dim: 128,
            max_len: 128,
            share_layers: false,
            factorized_embedding: None,
            relative_positions: false,
        }
    }
}

/// One post-LN encoder block: self-attention and feed-forward sublayers,
/// each wrapped in residual + layer norm.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    attn: MultiHeadAttention,
    ln1: LayerNorm,
    ff1: Linear,
    ff2: Linear,
    ln2: LayerNorm,
}

impl TransformerBlock {
    /// Register one block.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        ffn_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        Self {
            attn: MultiHeadAttention::new(store, &format!("{name}.attn"), dim, heads, rng),
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), dim),
            ff1: Linear::new(store, &format!("{name}.ff1"), dim, ffn_dim, rng),
            ff2: Linear::new(store, &format!("{name}.ff2"), ffn_dim, dim, rng),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), dim),
        }
    }

    /// Apply the block to a `(len × dim)` sequence.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: TensorId,
        pos_bias: Option<TensorId>,
    ) -> TensorId {
        let attended = self.attn.forward(tape, store, x, pos_bias);
        let res1 = tape.add(x, attended);
        let normed1 = self.ln1.forward(tape, store, res1);
        let inner = self.ff1.forward(tape, store, normed1);
        let activated = tape.gelu(inner);
        let outer = self.ff2.forward(tape, store, activated);
        let res2 = tape.add(normed1, outer);
        self.ln2.forward(tape, store, res2)
    }
}

/// A full encoder: embeddings, position information, stacked blocks and a
/// weight-tied masked-LM head.
pub struct TransformerEncoder {
    /// Architecture configuration.
    pub config: TransformerConfig,
    token_emb: Embedding,
    emb_proj: Option<Linear>,
    pos_emb: Option<Embedding>,
    rel_bias: Option<RelativePositionBias>,
    blocks: Vec<TransformerBlock>,
}

impl TransformerEncoder {
    /// Register all parameters of an encoder into `store`.
    pub fn new(store: &mut ParamStore, config: TransformerConfig, rng: &mut Rng) -> Self {
        let emb_dim = config.factorized_embedding.unwrap_or(config.dim);
        let token_emb = Embedding::new(store, "tok", config.vocab, emb_dim, rng);
        let emb_proj = config
            .factorized_embedding
            .map(|e| Linear::new(store, "embproj", e, config.dim, rng));
        let (pos_emb, rel_bias) = if config.relative_positions {
            (None, Some(RelativePositionBias::new(store, "rel", 32)))
        } else {
            (
                Some(Embedding::new(
                    store,
                    "pos",
                    config.max_len,
                    config.dim,
                    rng,
                )),
                None,
            )
        };
        let physical_blocks = if config.share_layers {
            1
        } else {
            config.layers
        };
        let blocks = (0..physical_blocks)
            .map(|i| {
                TransformerBlock::new(
                    store,
                    &format!("block{i}"),
                    config.dim,
                    config.heads,
                    config.ffn_dim,
                    rng,
                )
            })
            .collect();
        Self {
            config,
            token_emb,
            emb_proj,
            pos_emb,
            rel_bias,
            blocks,
        }
    }

    /// Encode a token-id sequence into `(len × dim)` hidden states.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, ids: &[u32]) -> TensorId {
        *self
            .forward_layers(tape, store, ids)
            .last()
            .expect("at least one layer")
    }

    /// Encode and return the hidden states of **every layer** (index 0 =
    /// first block's output … last = final output). The combiner ablation
    /// concatenates the last four.
    pub fn forward_layers(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        ids: &[u32],
    ) -> Vec<TensorId> {
        assert!(!ids.is_empty(), "cannot encode an empty sequence");
        let len = ids.len().min(self.config.max_len);
        let ids = &ids[..len];
        let mut x = self.token_emb.forward(tape, store, ids);
        if let Some(proj) = &self.emb_proj {
            x = proj.forward(tape, store, x);
        }
        if let Some(pos) = &self.pos_emb {
            let positions: Vec<u32> = (0..len as u32).collect();
            let p = pos.forward(tape, store, &positions);
            x = tape.add(x, p);
        }
        let pos_bias = self
            .rel_bias
            .as_ref()
            .map(|rb| rb.forward(tape, store, len));
        let mut layer_outputs = Vec::with_capacity(self.config.layers);
        for layer in 0..self.config.layers {
            let block = if self.config.share_layers {
                &self.blocks[0]
            } else {
                &self.blocks[layer]
            };
            x = block.forward(tape, store, x, pos_bias);
            layer_outputs.push(x);
        }
        layer_outputs
    }

    /// Raw token embeddings `(len × emb_width)` — no positions, no layers.
    /// Used by pooling readouts that need position-free content vectors.
    pub fn token_embeddings(&self, tape: &mut Tape, store: &ParamStore, ids: &[u32]) -> TensorId {
        let len = ids.len().min(self.config.max_len);
        self.token_emb.forward(tape, store, &ids[..len])
    }

    /// Width of the raw token embeddings.
    pub fn token_embed_dim(&self) -> usize {
        self.config.factorized_embedding.unwrap_or(self.config.dim)
    }

    /// Masked-LM logits `(len × vocab)` with weights tied to the token
    /// embedding table (requires no factorized embedding, or applies the
    /// projection transpose implicitly by scoring in embedding space).
    pub fn mlm_logits(&self, tape: &mut Tape, store: &ParamStore, hidden: TensorId) -> TensorId {
        let table = tape.param(store, self.token_emb.table());
        let table_t = tape.transpose(table);
        match &self.emb_proj {
            None => tape.matmul(hidden, table_t),
            Some(proj) => {
                // project hidden back to the embedding width via the same
                // projection (transposed), then score against the table
                let w_t = {
                    let w = tape.param(store, proj_weight(proj));
                    tape.transpose(w)
                };
                let down = tape.matmul(hidden, w_t);
                tape.matmul(down, table_t)
            }
        }
    }

    /// Number of trainable scalar weights (for reports).
    pub fn n_weights(&self, store: &ParamStore) -> usize {
        store.n_weights()
    }
}

fn proj_weight(l: &Linear) -> crate::params::ParamId {
    l.weight_id()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Grads;

    fn tiny_config() -> TransformerConfig {
        TransformerConfig {
            vocab: 50,
            dim: 16,
            heads: 2,
            layers: 2,
            ffn_dim: 32,
            max_len: 20,
            ..TransformerConfig::default()
        }
    }

    #[test]
    fn encoder_shapes() {
        let mut rng = Rng::new(1);
        let mut store = ParamStore::new();
        let enc = TransformerEncoder::new(&mut store, tiny_config(), &mut rng);
        let mut tape = Tape::new();
        let h = enc.forward(&mut tape, &store, &[1, 5, 9, 3]);
        assert_eq!(tape.shape(h), (4, 16));
        let logits = enc.mlm_logits(&mut tape, &store, h);
        assert_eq!(tape.shape(logits), (4, 50));
    }

    #[test]
    fn sequences_longer_than_max_len_truncate() {
        let mut rng = Rng::new(2);
        let mut store = ParamStore::new();
        let mut cfg = tiny_config();
        cfg.max_len = 3;
        let enc = TransformerEncoder::new(&mut store, cfg, &mut rng);
        let mut tape = Tape::new();
        let h = enc.forward(&mut tape, &store, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(tape.shape(h), (3, 16));
    }

    #[test]
    fn shared_layers_have_fewer_params() {
        let mut rng = Rng::new(3);
        let mut store_full = ParamStore::new();
        TransformerEncoder::new(&mut store_full, tiny_config(), &mut rng);
        let mut store_shared = ParamStore::new();
        let mut cfg = tiny_config();
        cfg.share_layers = true;
        TransformerEncoder::new(&mut store_shared, cfg, &mut rng);
        assert!(
            store_shared.n_weights() < store_full.n_weights(),
            "{} !< {}",
            store_shared.n_weights(),
            store_full.n_weights()
        );
    }

    #[test]
    fn factorized_embedding_shrinks_table() {
        let mut rng = Rng::new(4);
        let mut cfg = tiny_config();
        cfg.vocab = 500; // embedding-dominated
        let mut full = ParamStore::new();
        TransformerEncoder::new(&mut full, cfg, &mut rng);
        cfg.factorized_embedding = Some(4);
        let mut fact = ParamStore::new();
        let enc = TransformerEncoder::new(&mut fact, cfg, &mut rng);
        assert!(fact.n_weights() < full.n_weights());
        // factorized MLM head still produces vocab-wide logits
        let mut tape = Tape::new();
        let h = enc.forward(&mut tape, &fact, &[1, 2]);
        let logits = enc.mlm_logits(&mut tape, &fact, h);
        assert_eq!(tape.shape(logits), (2, 500));
    }

    #[test]
    fn relative_positions_replace_absolute() {
        let mut rng = Rng::new(5);
        let mut cfg = tiny_config();
        cfg.relative_positions = true;
        let mut store = ParamStore::new();
        let enc = TransformerEncoder::new(&mut store, cfg, &mut rng);
        // the bias table initializes to zero; give distances distinct values
        // so position information actually flows
        for id in store.ids().collect::<Vec<_>>() {
            if store.name(id).contains("relpos") {
                let t = store.get_mut(id);
                for d in 0..t.rows() {
                    // non-linear in d: a linear ramp would be softmax-shift-
                    // invariant and invisible to the attention weights
                    t[(d, 0)] = ((d * 37) % 11) as f32 * 0.3;
                }
            }
        }
        let mut tape = Tape::new();
        // tokens [3,5,3]: without position information rows 0 and 2 would be
        // exactly equal (same token, same attention score multiset); the
        // asymmetric relative bias must break the tie
        let h = enc.forward(&mut tape, &store, &[3, 5, 3]);
        assert_eq!(tape.shape(h), (3, 16));
        let v = tape.value(h);
        assert_ne!(v.row(0), v.row(2));
    }

    #[test]
    fn mlm_training_step_reduces_loss() {
        let mut rng = Rng::new(6);
        let mut store = ParamStore::new();
        let enc = TransformerEncoder::new(&mut store, tiny_config(), &mut rng);
        let ids = [2u32, 7, 4, 9, 1];
        let targets = [2u32, 7, 8, 9, 1];
        let weights = [0.0f32, 0.0, 1.0, 0.0, 0.0];
        let loss_value = |store: &ParamStore| {
            let mut tape = Tape::new();
            let h = enc.forward(&mut tape, store, &ids);
            let logits = enc.mlm_logits(&mut tape, store, h);
            let loss = tape.ce_logits_rows(logits, &targets, &weights);
            (tape.value(loss)[(0, 0)], tape, loss)
        };
        let (before, tape, loss) = loss_value(&store);
        let mut grads = Grads::new();
        tape.backward(loss, &mut grads);
        let mut opt = crate::optim::Adam::new(0.01);
        for _ in 0..10 {
            opt.step(&mut store, &grads);
        }
        let (after, _, _) = loss_value(&store);
        assert!(after < before, "{after} !< {before}");
    }
}
