//! Optimizers: SGD with momentum and Adam.

use crate::params::{Grads, ParamStore};
use linalg::Matrix;

/// Plain SGD with optional momentum.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (`0.0` disables).
    pub momentum: f32,
    velocity: Vec<Option<Matrix>>,
}

impl Sgd {
    /// New optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Apply one update from accumulated gradients.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Grads) {
        if self.velocity.len() < store.len() {
            self.velocity.resize(store.len(), None);
        }
        for id in store.ids().collect::<Vec<_>>() {
            let Some(g) = grads.get(id) else { continue };
            let p = store.get_mut(id);
            if self.momentum > 0.0 {
                let v =
                    self.velocity[id.0].get_or_insert_with(|| Matrix::zeros(p.rows(), p.cols()));
                for (vi, &gi) in v.as_mut_slice().iter_mut().zip(g.as_slice()) {
                    *vi = self.momentum * *vi - self.lr * gi;
                }
                p.axpy(1.0, v);
            } else {
                p.axpy(-self.lr, g);
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
    t: i32,
}

impl Adam {
    /// Adam with the canonical hyperparameters except the learning rate.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Apply one update from accumulated gradients.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Grads) {
        self.t += 1;
        if self.m.len() < store.len() {
            self.m.resize(store.len(), None);
            self.v.resize(store.len(), None);
        }
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for id in store.ids().collect::<Vec<_>>() {
            let Some(g) = grads.get(id) else { continue };
            let p = store.get_mut(id);
            let m = self.m[id.0].get_or_insert_with(|| Matrix::zeros(p.rows(), p.cols()));
            let v = self.v[id.0].get_or_insert_with(|| Matrix::zeros(p.rows(), p.cols()));
            for ((pi, (mi, vi)), &gi) in p
                .as_mut_slice()
                .iter_mut()
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice().iter_mut()))
                .zip(g.as_slice())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *pi -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Grads;
    use crate::tape::Tape;
    use linalg::Rng;

    /// Minimize ‖W − target‖² with each optimizer; both must converge.
    fn converges(mut step: impl FnMut(&mut ParamStore, &Grads)) -> f32 {
        let mut rng = Rng::new(1);
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::randn(2, 2, 1.0, &mut rng));
        let target = Matrix::from_vec(2, 2, vec![1.0, -2.0, 0.5, 3.0]);
        for _ in 0..400 {
            let mut tape = Tape::new();
            let p = tape.param(&store, w);
            let t = tape.input(target.clone());
            let diff = tape.sub(p, t);
            let sq = tape.mul(diff, diff);
            let m1 = tape.mean_rows(sq);
            let ones = tape.input(Matrix::full(1, 2, 0.5).transpose());
            let loss = tape.matmul(m1, ones);
            let mut grads = Grads::new();
            tape.backward(loss, &mut grads);
            step(&mut store, &grads);
        }
        store.get(w).sub(&target).frobenius()
    }

    #[test]
    fn sgd_converges() {
        let mut opt = Sgd::new(0.5, 0.0);
        let err = converges(|s, g| opt.step(s, g));
        assert!(err < 0.05, "err {err}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.2, 0.9);
        let err = converges(|s, g| opt.step(s, g));
        assert!(err < 0.05, "err {err}");
    }

    #[test]
    fn adam_converges() {
        let mut opt = Adam::new(0.05);
        let err = converges(|s, g| opt.step(s, g));
        assert!(err < 0.05, "err {err}");
    }

    #[test]
    fn untouched_params_stay_put() {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::full(1, 1, 5.0));
        let b = store.add("b", Matrix::full(1, 1, 7.0));
        let mut grads = Grads::new();
        grads.accumulate(a, &Matrix::full(1, 1, 1.0));
        let mut opt = Adam::new(0.1);
        opt.step(&mut store, &grads);
        assert_ne!(store.get(a)[(0, 0)], 5.0);
        assert_eq!(store.get(b)[(0, 0)], 7.0);
    }
}
