//! Attention mechanisms: multi-head self-attention (transformers) and
//! soft-align decomposable attention (DeepMatcher's comparison layer).

use crate::layers::Linear;
use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, TensorId};
use linalg::{Matrix, Rng};

/// Multi-head self-attention over a `(len × dim)` sequence.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    q: Linear,
    k: Linear,
    v: Linear,
    o: Linear,
    /// Number of heads (must divide `dim`).
    pub heads: usize,
    /// Model width.
    pub dim: usize,
}

impl MultiHeadAttention {
    /// Register projections for `dim`-wide sequences with `heads` heads.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        rng: &mut Rng,
    ) -> Self {
        assert_eq!(dim % heads, 0, "heads must divide dim");
        Self {
            q: Linear::new(store, &format!("{name}.q"), dim, dim, rng),
            k: Linear::new(store, &format!("{name}.k"), dim, dim, rng),
            v: Linear::new(store, &format!("{name}.v"), dim, dim, rng),
            o: Linear::new(store, &format!("{name}.o"), dim, dim, rng),
            heads,
            dim,
        }
    }

    /// Self-attention with an optional additive position bias `(len × len)`
    /// added to every head's scores (the relative-position mechanism the
    /// XLNet-style family uses).
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: TensorId,
        pos_bias: Option<TensorId>,
    ) -> TensorId {
        let q = self.q.forward(tape, store, x);
        let k = self.k.forward(tape, store, x);
        let v = self.v.forward(tape, store, x);
        let head_dim = self.dim / self.heads;
        let scale = 1.0 / (head_dim as f32).sqrt();
        let mut heads_out: Option<TensorId> = None;
        for h in 0..self.heads {
            // slice head columns: transpose → rows → transpose back
            let qh = col_slice(tape, q, h * head_dim, head_dim);
            let kh = col_slice(tape, k, h * head_dim, head_dim);
            let vh = col_slice(tape, v, h * head_dim, head_dim);
            let scores_raw = tape.matmul_transpose_b(qh, kh);
            let mut scores = tape.scale(scores_raw, scale);
            if let Some(bias) = pos_bias {
                scores = tape.add(scores, bias);
            }
            let attn = tape.softmax_rows(scores);
            let ctx = tape.matmul(attn, vh);
            heads_out = Some(match heads_out {
                None => ctx,
                Some(acc) => tape.concat_cols(acc, ctx),
            });
        }
        let merged = heads_out.expect("at least one head");
        self.o.forward(tape, store, merged)
    }
}

/// Column slice helper implemented with transpose + row slice.
fn col_slice(tape: &mut Tape, x: TensorId, start: usize, len: usize) -> TensorId {
    let t = tape.transpose(x);
    let sliced = tape.rows(t, start, len);
    tape.transpose(sliced)
}

/// Decomposable soft-alignment attention between two sequences — the
/// "attention" half of DeepMatcher's Hybrid attribute summarizer. For each
/// token of `a`, a softmax over its dot-product scores against `b` builds
/// an aligned context; the summarizer compares tokens to their contexts.
#[derive(Debug, Clone, Copy)]
pub struct SoftAlign {
    proj: Linear,
}

impl SoftAlign {
    /// Register the score projection.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize, rng: &mut Rng) -> Self {
        Self {
            proj: Linear::new(store, &format!("{name}.proj"), dim, dim, rng),
        }
    }

    /// Align `b` to `a`: returns `(len_a × dim)` contexts, one per token of
    /// `a`, as attention-weighted sums of `b` rows.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        a: TensorId,
        b: TensorId,
    ) -> TensorId {
        let pa = self.proj.forward(tape, store, a);
        let pb = self.proj.forward(tape, store, b);
        let scores = tape.matmul_transpose_b(pa, pb); // (len_a × len_b)
        let attn = tape.softmax_rows(scores);
        tape.matmul(attn, b)
    }
}

/// Learned position-bias table for relative positions in `[-max, max]`,
/// materialized as a `(len × len)` additive score matrix.
#[derive(Debug, Clone, Copy)]
pub struct RelativePositionBias {
    table: ParamId,
    max_distance: usize,
}

impl RelativePositionBias {
    /// Register a `(2·max+1 × 1)` bias table.
    pub fn new(store: &mut ParamStore, name: &str, max_distance: usize) -> Self {
        let table = store.add(
            &format!("{name}.relpos"),
            Matrix::zeros(2 * max_distance + 1, 1),
        );
        Self {
            table,
            max_distance,
        }
    }

    /// Build the `(len × len)` bias matrix for a sequence length.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, len: usize) -> TensorId {
        // gather the relevant relative distances row-by-row, then reshape
        // via transpose tricks: gather returns (len*len × 1)
        let mut idx = Vec::with_capacity(len * len);
        let max = self.max_distance as i64;
        for i in 0..len as i64 {
            for j in 0..len as i64 {
                let d = (j - i).clamp(-max, max) + max;
                idx.push(d as u32);
            }
        }
        let flat = tape.gather(store, self.table, &idx); // (len² × 1)
                                                         // reshape (len² × 1) → (len × len): slice and stack rows
        let mut out: Option<TensorId> = None;
        for i in 0..len {
            let row = tape.rows(flat, i * len, len); // (len × 1)
            let row_t = tape.transpose(row); // (1 × len)
            out = Some(match out {
                None => row_t,
                Some(acc) => tape.concat_rows(acc, row_t),
            });
        }
        out.expect("len > 0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Grads;

    #[test]
    fn mha_shape_preserved() {
        let mut rng = Rng::new(1);
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "a", 8, 2, &mut rng);
        let mut tape = Tape::new();
        let x = tape.input(Matrix::randn(5, 8, 1.0, &mut rng));
        let y = mha.forward(&mut tape, &store, x, None);
        assert_eq!(tape.shape(y), (5, 8));
    }

    #[test]
    #[should_panic(expected = "heads must divide dim")]
    fn mha_rejects_bad_heads() {
        let mut rng = Rng::new(2);
        let mut store = ParamStore::new();
        MultiHeadAttention::new(&mut store, "a", 10, 3, &mut rng);
    }

    #[test]
    fn mha_is_differentiable() {
        let mut rng = Rng::new(3);
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "a", 4, 2, &mut rng);
        let mut tape = Tape::new();
        let x = tape.input(Matrix::randn(3, 4, 1.0, &mut rng));
        let y = mha.forward(&mut tape, &store, x, None);
        let pooled = tape.mean_rows(y);
        let w = tape.input(Matrix::full(4, 1, 1.0));
        let loss = tape.matmul(pooled, w);
        let mut grads = Grads::new();
        tape.backward(loss, &mut grads);
        // all projection weights must receive gradient
        let touched = store.ids().filter(|id| grads.get(*id).is_some()).count();
        assert!(touched >= 8, "{touched} params touched");
    }

    #[test]
    fn soft_align_attends_to_similar_rows() {
        let mut rng = Rng::new(4);
        let mut store = ParamStore::new();
        let align = SoftAlign::new(&mut store, "s", 3, &mut rng);
        // identity-ish: with fresh weights, alignment of a to [a_row; junk]
        // should weight the similar row more than the dissimilar one
        let mut tape = Tape::new();
        let a = tape.input(Matrix::from_vec(1, 3, vec![2.0, 0.0, 0.0]));
        let b = tape.input(Matrix::from_vec(2, 3, vec![2.0, 0.0, 0.0, -2.0, 0.0, 0.0]));
        let ctx = align.forward(&mut tape, &store, a, b);
        assert_eq!(tape.shape(ctx), (1, 3));
        // context is a convex combination of b rows → first component in [-2, 2]
        let v = tape.value(ctx)[(0, 0)];
        assert!((-2.0..=2.0).contains(&v));
    }

    #[test]
    fn relative_bias_matrix_structure() {
        let mut store = ParamStore::new();
        let bias = RelativePositionBias::new(&mut store, "r", 4);
        // give each distance a distinctive value
        for d in 0..9 {
            store.get_mut(bias.table)[(d, 0)] = d as f32;
        }
        let mut tape = Tape::new();
        let m = bias.forward(&mut tape, &store, 3);
        assert_eq!(tape.shape(m), (3, 3));
        let v = tape.value(m);
        // diagonal is distance 0 → table index 4
        assert_eq!(v[(0, 0)], 4.0);
        assert_eq!(v[(1, 1)], 4.0);
        // one step right of diagonal: distance +1 → index 5
        assert_eq!(v[(0, 1)], 5.0);
        // one step left: distance −1 → index 3
        assert_eq!(v[(1, 0)], 3.0);
    }
}
