//! Continuous entity matching on top of the batch AutoML-EM stack.
//!
//! The batch story (em-data → embed → automl → em-core → em-serve)
//! trains a matcher on a frozen snapshot and serves it. This crate makes
//! the snapshot a *moving target* without giving up any of the
//! workspace's determinism or crash-safety contracts:
//!
//! * [`ledger`] — the event-sourced record ledger, the system of record
//!   for every entity mutation. Append-only fingerprinted JSONL with
//!   fsync batch discipline and torn-tail recovery via [`obs::wal`]; a
//!   cold start replays it ([`RecordLedger::open`]).
//! * [`state`] — the derived state: live tables, the incrementally
//!   maintained blocking index ([`em_data::IncrementalBlocker`]), and
//!   the id-keyed embedding-cache invalidation protocol that makes
//!   serving a stale vector impossible.
//! * [`drift`] — candidate-churn + score-distribution-shift monitoring
//!   over a sliding event window.
//! * [`research`] — deadline-bounded, journal-resumable background
//!   re-search on a drifted snapshot, exporting a promotable bundle.
//! * [`continuous`] — the orchestrator tying the above together with
//!   em-serve's zero-drop hot-swap promotion (via callback).
//! * [`gen`] — deterministic drifting event-stream scenarios shared by
//!   the test battery, the CI fixture ledger, and `stream_bench`.

pub mod continuous;
pub mod drift;
pub mod gen;
pub mod ledger;
pub mod research;
pub mod state;

pub use continuous::{ContinuousConfig, ContinuousEm, PromoteFn, PromotionRecord, StreamError};
pub use drift::{DriftConfig, DriftMonitor, DriftReport};
pub use gen::{generate_events, ScenarioConfig};
pub use ledger::{schema_fingerprint, LedgerError, LedgerReplay, RecordEvent, RecordLedger};
pub use research::{derive_drift_spec, run_research, ResearchOutcome};
pub use state::{record_key, ApplyError, StreamState};
