//! The continuous-EM orchestrator: one object that owns the record
//! ledger, the derived [`StreamState`], the drift monitor, and the
//! lifecycle of at most one background re-search at a time.
//!
//! Data path per event: validate against the live state, apply to the
//! derived structures (tables, incremental blocker, cache invalidation),
//! append to the ledger. Durability is batch-scoped — callers invoke
//! [`ContinuousEm::sync`] at their batch boundary, matching the ledger's
//! fsync discipline. At drift-window boundaries the monitor may fire; the
//! orchestrator then launches a deadline-bounded, journal-resumable
//! re-search on a **snapshot spec** in a background thread and, when it
//! completes, promotes the exported bundle through the caller-supplied
//! promotion callback (in production: `em-serve`'s hot-swap reload; in
//! tests: anything that records the handoff).
//!
//! The promotion callback keeps this crate decoupled from the serving
//! stack — em-stream produces bundles and decides *when*; the callback
//! decides *where they go*.

use crate::drift::{DriftConfig, DriftMonitor, DriftReport};
use crate::ledger::{LedgerError, RecordEvent, RecordLedger};
use crate::research::{derive_drift_spec, run_research, ResearchOutcome};
use crate::state::{ApplyError, StreamState};
use em_core::ModelSpec;
use em_data::BlockerConfig;
use embed::cache::EmbeddingCache;
use embed::HashingEmbedder;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why an event could not be ingested. `Apply` rejections leave every
/// structure untouched (the event never reaches the ledger); `Ledger`
/// errors are fatal — the system of record can no longer be trusted.
#[derive(Debug)]
pub enum StreamError {
    /// The event failed validation against the live state.
    Apply(ApplyError),
    /// The ledger append/sync failed.
    Ledger(LedgerError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Apply(e) => write!(f, "event rejected: {e}"),
            StreamError::Ledger(e) => write!(f, "ledger failure: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<ApplyError> for StreamError {
    fn from(e: ApplyError) -> Self {
        StreamError::Apply(e)
    }
}

impl From<LedgerError> for StreamError {
    fn from(e: LedgerError) -> Self {
        StreamError::Ledger(e)
    }
}

/// Static configuration of a [`ContinuousEm`] instance.
#[derive(Debug, Clone)]
pub struct ContinuousConfig {
    /// Directory holding the record ledger, research journals and
    /// exported bundles.
    pub work_dir: PathBuf,
    /// Blocking configuration for the incremental index.
    pub blocker: BlockerConfig,
    /// Drift thresholds and window size.
    pub drift: DriftConfig,
    /// Wall-clock bound on each background re-search.
    pub research_deadline: Duration,
    /// Dimension of the streaming scorer's hashing embedder.
    pub embed_dim: usize,
}

impl ContinuousConfig {
    /// Defaults rooted at `work_dir`.
    pub fn new(work_dir: PathBuf) -> Self {
        Self {
            work_dir,
            blocker: BlockerConfig::default(),
            drift: DriftConfig::default(),
            research_deadline: Duration::from_secs(30),
            embed_dim: 48,
        }
    }

    /// The record ledger's path under the work dir.
    pub fn ledger_path(&self) -> PathBuf {
        self.work_dir.join("records.jsonl")
    }

    /// The trial journal for drift epoch `epoch`.
    pub fn journal_path(&self, epoch: u64) -> PathBuf {
        self.work_dir
            .join(format!("research_epoch{epoch}.journal.jsonl"))
    }

    /// The exported bundle for drift epoch `epoch`.
    pub fn bundle_path(&self, epoch: u64) -> PathBuf {
        self.work_dir.join(format!("bundle_epoch{epoch}.json"))
    }
}

/// One completed promote: a drift epoch answered by a new live model.
#[derive(Debug, Clone)]
pub struct PromotionRecord {
    /// Drift epoch the research answered.
    pub epoch: u64,
    /// Model version reported by the promotion callback (e.g. the
    /// serving host's post-swap `x-model-version`).
    pub version: u64,
    /// Fingerprint digest of the promoted host.
    pub digest: String,
    /// The winning search report.
    pub report: automl::FitReport,
    /// Background research wall-clock, milliseconds.
    pub research_ms: u64,
    /// Promotion (bundle handoff + swap) wall-clock, milliseconds.
    pub promote_ms: u64,
}

/// Callback that takes a bundle path live and returns the new model
/// version. In production this is `em-serve`'s `/admin/reload` (or a
/// direct `Reloader::reload_from_path`).
pub type PromoteFn = Box<dyn Fn(&std::path::Path) -> Result<u64, String> + Send + Sync>;

/// The continuous-EM orchestrator. See the module docs for the data
/// path; all methods take `&mut self` — concurrency lives in the
/// background research thread, never in the ingest path.
pub struct ContinuousEm {
    base_spec: ModelSpec,
    config: ContinuousConfig,
    state: StreamState,
    monitor: DriftMonitor,
    ledger: RecordLedger,
    cache: EmbeddingCache<'static>,
    promote: PromoteFn,
    research: Option<(u64, JoinHandle<Result<ResearchOutcome, String>>)>,
    promotions: Vec<PromotionRecord>,
}

impl ContinuousEm {
    /// Open (or create) the instance rooted at `config.work_dir`,
    /// replaying any existing record ledger — the cold-start path. The
    /// table schema is the one `base_spec`'s dataset profile generates,
    /// so ingested records and re-search snapshots agree by construction.
    pub fn open(
        base_spec: ModelSpec,
        config: ContinuousConfig,
        promote: PromoteFn,
    ) -> Result<Self, StreamError> {
        let schema = base_spec.dataset.profile().domain().schema();
        let (ledger, replayed) = RecordLedger::open(&config.ledger_path(), &schema)?;
        let mut state = StreamState::new(schema, config.blocker.clone());
        for ev in &replayed.events {
            // every ledgered event was validated before append; a
            // rejection here means the ledger no longer matches its own
            // history, which is a refuse-to-start corruption
            state.apply(ev, None).map_err(|e| {
                StreamError::Ledger(LedgerError::Io(format!(
                    "replayed event {}:{} rejected ({e}); ledger is inconsistent",
                    ev.kind(),
                    ev.id()
                )))
            })?;
        }
        let cache = EmbeddingCache::shared(Arc::new(HashingEmbedder::new(config.embed_dim)));
        let monitor = DriftMonitor::new(config.drift.clone());
        Ok(Self {
            base_spec,
            config,
            state,
            monitor,
            ledger,
            cache,
            promote,
            research: None,
            promotions: Vec::new(),
        })
    }

    /// The derived streaming state.
    pub fn state(&self) -> &StreamState {
        &self.state
    }

    /// The streaming scorer's embedding cache (id-keyed; invalidated by
    /// the ingest path on update/delete).
    pub fn cache(&self) -> &EmbeddingCache<'static> {
        &self.cache
    }

    /// The instance configuration.
    pub fn config(&self) -> &ContinuousConfig {
        &self.config
    }

    /// Promotions completed so far, oldest first.
    pub fn promotions(&self) -> &[PromotionRecord] {
        &self.promotions
    }

    /// True while a background re-search is in flight.
    pub fn research_running(&self) -> bool {
        self.research.is_some()
    }

    /// Record a match score for the drift monitor's score-shift signal.
    pub fn note_score(&mut self, score: f64) {
        self.monitor.note_score(score);
    }

    /// Ingest one event: validate + apply to the derived state, append
    /// to the ledger (durable after the next [`sync`](Self::sync)), and
    /// evaluate drift. When drift fires and no research is in flight, a
    /// background re-search launches; the report is returned either way.
    pub fn ingest(&mut self, ev: &RecordEvent) -> Result<Option<DriftReport>, StreamError> {
        self.state.apply(ev, Some(&self.cache))?;
        self.ledger.append(ev)?;
        let report = self.monitor.observe(self.state.blocker());
        if let Some(report) = &report {
            self.maybe_launch(report);
        }
        Ok(report)
    }

    /// Fsync the ledger — the batch durability barrier.
    pub fn sync(&mut self) -> Result<(), StreamError> {
        self.ledger.sync()?;
        Ok(())
    }

    fn maybe_launch(&mut self, report: &DriftReport) {
        if self.research.is_some() {
            // one re-search at a time: the running epoch answers this
            // drift too once it promotes (the monitor re-baselined)
            return;
        }
        let epoch = report.epoch;
        let spec = derive_drift_spec(&self.base_spec, epoch);
        let journal = self.config.journal_path(epoch);
        let bundle = self.config.bundle_path(epoch);
        let deadline = automl::Deadline::within(self.config.research_deadline);
        obs::counter("stream.research.launched").inc();
        obs::emit(
            "stream.research.launch",
            &[
                ("epoch", obs::Value::U64(epoch)),
                ("churn", obs::Value::F64(report.churn)),
                ("score_shift", obs::Value::F64(report.score_shift)),
            ],
        );
        let handle = std::thread::spawn(move || run_research(&spec, &journal, &bundle, deadline));
        self.research = Some((epoch, handle));
    }

    /// Non-blocking: if the background re-search has finished, join it
    /// and promote the bundle. `Ok(None)` while still running (or idle).
    pub fn poll_promotion(&mut self) -> Result<Option<&PromotionRecord>, String> {
        match &self.research {
            Some((_, handle)) if handle.is_finished() => self.finish_research().map(Some),
            _ => Ok(None),
        }
    }

    /// Blocking: wait for the in-flight re-search (if any) and promote.
    pub fn drain(&mut self) -> Result<Option<&PromotionRecord>, String> {
        if self.research.is_none() {
            return Ok(None);
        }
        self.finish_research().map(Some)
    }

    fn finish_research(&mut self) -> Result<&PromotionRecord, String> {
        let (epoch, handle) = self.research.take().expect("research in flight");
        let outcome = handle
            .join()
            .map_err(|_| "research thread panicked".to_owned())
            .and_then(|r| r);
        let outcome = match outcome {
            Ok(mut o) => {
                o.epoch = epoch;
                o
            }
            Err(e) => {
                obs::counter("stream.research.failed").inc();
                return Err(e);
            }
        };
        let started = Instant::now();
        let version = (self.promote)(&outcome.bundle_path).map_err(|e| {
            obs::counter("stream.research.failed").inc();
            format!("promotion of epoch {epoch} failed: {e}")
        })?;
        let promote_ms = started.elapsed().as_millis() as u64;
        obs::counter("stream.promotions").inc();
        obs::emit(
            "stream.promotion",
            &[
                ("epoch", obs::Value::U64(epoch)),
                ("version", obs::Value::U64(version)),
                ("digest", obs::Value::Str(outcome.digest.clone())),
                ("research_ms", obs::Value::U64(outcome.research_ms)),
                ("promote_ms", obs::Value::U64(promote_ms)),
            ],
        );
        self.promotions.push(PromotionRecord {
            epoch,
            version,
            digest: outcome.digest,
            report: outcome.report,
            research_ms: outcome.research_ms,
            promote_ms,
        });
        Ok(self.promotions.last().expect("just pushed"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::Side;

    fn tmp_dir(name: &str) -> PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "em_stream_cont_{}_{}_{name}",
            std::process::id(),
            n
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn no_promote() -> PromoteFn {
        Box::new(|_| Ok(1))
    }

    #[test]
    fn ingest_persists_and_cold_start_replays_to_the_same_digest() {
        let dir = tmp_dir("coldstart");
        let spec = ModelSpec::fixture();
        let config = ContinuousConfig::new(dir.clone());
        let schema = spec.dataset.profile().domain().schema();
        let events = crate::gen::generate_events(
            spec.dataset.profile().domain().as_ref(),
            &crate::gen::ScenarioConfig {
                initial_pairs: 6,
                events: 20,
                drift_after: 1000, // never drift: isolate persistence
                ..Default::default()
            },
        );
        assert!(!events.is_empty() && !schema.is_empty());

        let digest_live = {
            let mut em = ContinuousEm::open(spec.clone(), config.clone(), no_promote()).unwrap();
            for ev in &events {
                em.ingest(ev).unwrap();
            }
            em.sync().unwrap();
            assert!(!em.research_running());
            em.state().digest()
        };
        // a fresh process replays the ledger and lands on the same state
        let em = ContinuousEm::open(spec, config, no_promote()).unwrap();
        assert_eq!(em.state().digest(), digest_live);
        assert_eq!(em.state().applied(), events.len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejected_events_do_not_reach_the_ledger() {
        let dir = tmp_dir("reject");
        let spec = ModelSpec::fixture();
        let config = ContinuousConfig::new(dir.clone());
        let mut em = ContinuousEm::open(spec.clone(), config.clone(), no_promote()).unwrap();
        let bad = RecordEvent::Delete {
            side: Side::Left,
            id: 999,
        };
        assert!(matches!(
            em.ingest(&bad),
            Err(StreamError::Apply(ApplyError::UnknownId(..)))
        ));
        em.sync().unwrap();
        drop(em);
        let em = ContinuousEm::open(spec, config, no_promote()).unwrap();
        assert_eq!(em.state().applied(), 0, "rejected event must not replay");
        std::fs::remove_dir_all(&dir).ok();
    }
}
