//! Drift-triggered background re-search: derive a fresh snapshot spec,
//! run a deadline-bounded, crash-safe `fit_resumable` search, and export
//! the winning bundle for promotion.
//!
//! The search always runs under [`automl::ResumePolicy::Resume`] so a
//! killed research run (process crash, `Fault::Kill` injection) resumes
//! from its trial WAL and produces a **byte-identical** bundle and
//! [`automl::FitReport`] to an uninterrupted run — the streaming crash
//! test asserts exactly that.

use em_core::{load_model, ModelSpec};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// What a completed background re-search produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ResearchOutcome {
    /// Drift epoch this research answered.
    pub epoch: u64,
    /// Fingerprint digest of the exported host (stable across resumes).
    pub digest: String,
    /// Where the promotable bundle was written.
    pub bundle_path: PathBuf,
    /// The winning search report.
    pub report: automl::FitReport,
    /// Wall-clock research time in milliseconds.
    pub research_ms: u64,
}

/// Derive the spec for drift epoch `epoch` from the serving baseline:
/// same recipe (engine, adapter, budget), new data snapshot. Shifting
/// `data_seed` models "re-search on the drifted snapshot" while keeping
/// the run fully deterministic; `engine_seed` is kept so search-space
/// traversal stays comparable across epochs.
pub fn derive_drift_spec(base: &ModelSpec, epoch: u64) -> ModelSpec {
    let mut spec = base.clone();
    spec.data_seed = base.data_seed.wrapping_add(epoch);
    spec
}

/// Run the re-search for `spec` with its trial journal at `journal`,
/// export the winner to `bundle_out`, and return the outcome. Bounded by
/// `deadline`; resumable across crashes via the journal.
pub fn run_research(
    spec: &ModelSpec,
    journal: &Path,
    bundle_out: &Path,
    deadline: automl::Deadline,
) -> Result<ResearchOutcome, String> {
    let _s = obs::span("stream.research");
    let started = Instant::now();
    let policy = automl::ResumePolicy::Resume(journal.to_path_buf());
    let host = spec
        .train_resumable(&policy, deadline)
        .map_err(|e| format!("research training failed: {e}"))?;
    host.export(bundle_out)
        .map_err(|e| format!("bundle export failed: {e}"))?;
    // paranoia worth its cost: a bundle that cannot be loaded back must
    // never be offered for promotion
    load_model(bundle_out).map_err(|e| format!("exported bundle failed readback: {e}"))?;
    let research_ms = started.elapsed().as_millis() as u64;
    obs::counter("stream.research.completed").inc();
    Ok(ResearchOutcome {
        epoch: 0, // stamped by the caller, which knows the drift epoch
        digest: host.fingerprint_digest(),
        bundle_path: bundle_out.to_path_buf(),
        report: host.report().clone(),
        research_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_spec_shifts_only_the_data_seed() {
        let base = ModelSpec::fixture();
        let spec = derive_drift_spec(&base, 3);
        assert_eq!(spec.data_seed, base.data_seed + 3);
        assert_eq!(spec.engine_seed, base.engine_seed);
        assert_eq!(spec.engine, base.engine);
        assert_eq!(spec.budget_hours, base.budget_hours);
        // epoch 0 is the identity
        assert_eq!(derive_drift_spec(&base, 0), base);
    }
}
