//! Drift detection over the event stream: candidate-pair churn plus
//! score-distribution shift, evaluated on a sliding window of events.
//!
//! Both signals are cheap, deterministic functions of state the stream
//! already maintains — no model retraining is needed to *notice* drift:
//!
//! * **Candidate churn** — the symmetric difference between the blocking
//!   index's candidate set now and at the last window boundary, as a
//!   fraction of the larger set. Records drifting to new vocabulary
//!   rewire the candidate graph long before F1 visibly decays.
//! * **Score shift** — total-variation distance between the normalized
//!   histogram of match scores observed in this window and the baseline
//!   window's. A matcher drifting off its training distribution stops
//!   being bimodal-confident; mass migrates toward the middle bins.
//!
//! Crossing either threshold at a window boundary yields a
//! [`DriftReport`], and the caller launches the background re-search
//! (`crate::continuous`). The monitor then re-baselines so the same
//! drift is not reported twice.

use em_data::{CandidateIdPair, IncrementalBlocker};
use std::collections::BTreeSet;

/// Histogram bins for match scores in `[0, 1]`.
const SCORE_BINS: usize = 10;

/// Thresholds and window size for drift detection.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Events per evaluation window.
    pub window_events: usize,
    /// Candidate churn fraction (symmetric difference / larger set) at or
    /// above which drift fires.
    pub churn_threshold: f64,
    /// Total-variation distance between score histograms at or above
    /// which drift fires.
    pub score_shift_threshold: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            window_events: 64,
            churn_threshold: 0.35,
            score_shift_threshold: 0.25,
        }
    }
}

/// One detected drift episode.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// 1-based index of the drift episode (drives snapshot derivation).
    pub epoch: u64,
    /// Candidate churn fraction in the closing window.
    pub churn: f64,
    /// Score-histogram total-variation distance in the closing window.
    pub score_shift: f64,
    /// Events applied when the report fired.
    pub at_event: u64,
}

/// The sliding-window drift monitor.
pub struct DriftMonitor {
    config: DriftConfig,
    baseline_candidates: BTreeSet<CandidateIdPair>,
    baseline_hist: Option<[f64; SCORE_BINS]>,
    window_scores: Vec<f64>,
    window_events: usize,
    total_events: u64,
    epochs: u64,
    primed: bool,
}

impl DriftMonitor {
    /// A monitor with `config`, baselined on an empty state.
    pub fn new(config: DriftConfig) -> Self {
        Self {
            config,
            baseline_candidates: BTreeSet::new(),
            baseline_hist: None,
            window_scores: Vec::new(),
            window_events: 0,
            total_events: 0,
            epochs: 0,
            primed: false,
        }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Drift episodes reported so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Record one match score observed in the current window.
    pub fn note_score(&mut self, score: f64) {
        if score.is_finite() {
            self.window_scores.push(score.clamp(0.0, 1.0));
        }
    }

    /// Record one applied event and, at window boundaries, evaluate both
    /// drift signals against `blocker`'s current candidate set. Returns
    /// a report (and re-baselines) when a threshold is crossed.
    pub fn observe(&mut self, blocker: &IncrementalBlocker) -> Option<DriftReport> {
        self.window_events += 1;
        self.total_events += 1;
        if self.window_events < self.config.window_events {
            return None;
        }
        self.window_events = 0;
        obs::counter("stream.drift.windows").inc();

        let current: BTreeSet<CandidateIdPair> = blocker.candidates().into_iter().collect();
        let sym_diff = current
            .symmetric_difference(&self.baseline_candidates)
            .count();
        let denom = current.len().max(self.baseline_candidates.len()).max(1);
        let churn = sym_diff as f64 / denom as f64;

        let hist = Self::histogram(&self.window_scores);
        let score_shift = match (&self.baseline_hist, &hist) {
            (Some(base), Some(now)) => {
                0.5 * base
                    .iter()
                    .zip(now.iter())
                    .map(|(a, b)| (a - b).abs())
                    .sum::<f64>()
            }
            _ => 0.0,
        };

        obs::gauge("stream.drift.churn").set(churn);
        obs::gauge("stream.drift.score_shift").set(score_shift);

        // the very first window only primes the baselines — there is no
        // previous window for "change since last window" to mean anything
        let fired = self.primed
            && (churn >= self.config.churn_threshold
                || score_shift >= self.config.score_shift_threshold);
        self.primed = true;

        // re-baseline on every window close: drift is measured against
        // the *previous* window, not against t=0 — but keep the score
        // baseline when this window had no scores to compare
        self.baseline_candidates = current;
        if hist.is_some() {
            self.baseline_hist = hist;
        }
        self.window_scores.clear();

        if !fired {
            return None;
        }
        self.epochs += 1;
        obs::counter("stream.drift.triggers").inc();
        obs::emit(
            "stream.drift",
            &[
                ("epoch", obs::Value::U64(self.epochs)),
                ("churn", obs::Value::F64(churn)),
                ("score_shift", obs::Value::F64(score_shift)),
            ],
        );
        Some(DriftReport {
            epoch: self.epochs,
            churn,
            score_shift,
            at_event: self.total_events,
        })
    }

    fn histogram(scores: &[f64]) -> Option<[f64; SCORE_BINS]> {
        if scores.is_empty() {
            return None;
        }
        let mut hist = [0.0f64; SCORE_BINS];
        for &s in scores {
            let bin = ((s * SCORE_BINS as f64) as usize).min(SCORE_BINS - 1);
            hist[bin] += 1.0;
        }
        let n = scores.len() as f64;
        for h in &mut hist {
            *h /= n;
        }
        Some(hist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::{AttrType, Attribute, BlockerConfig, Entity, Schema, Side};

    fn blocker() -> IncrementalBlocker {
        let schema = Schema::new(vec![Attribute::new("name", AttrType::Text)]);
        IncrementalBlocker::new(
            &schema,
            BlockerConfig {
                max_token_frequency: 1.0,
                ..BlockerConfig::default()
            },
        )
    }

    fn ent(name: &str) -> Entity {
        Entity::new(vec![Some(name.to_owned())])
    }

    #[test]
    fn stable_stream_never_fires() {
        let mut b = blocker();
        b.upsert(Side::Left, 1, &ent("alpha beta"));
        b.upsert(Side::Right, 2, &ent("alpha gamma"));
        let mut m = DriftMonitor::new(DriftConfig {
            window_events: 4,
            ..DriftConfig::default()
        });
        for _ in 0..3 {
            // same candidate set, same (empty) score stream, every window
            for _ in 0..4 {
                assert_eq!(m.observe(&b), None);
            }
        }
        assert_eq!(m.epochs(), 0);
    }

    #[test]
    fn candidate_churn_fires_and_rebaselines() {
        let mut b = blocker();
        b.upsert(Side::Left, 1, &ent("alpha"));
        b.upsert(Side::Right, 100, &ent("alpha"));
        let mut m = DriftMonitor::new(DriftConfig {
            window_events: 2,
            churn_threshold: 0.5,
            score_shift_threshold: 2.0, // unreachable: isolate churn
        });
        // first window only primes the baseline on the 1-pair set
        m.observe(&b);
        m.observe(&b);
        // rewire the candidate graph completely
        b.remove(Side::Right, 100);
        b.upsert(Side::Right, 200, &ent("beta"));
        b.upsert(Side::Left, 2, &ent("beta"));
        m.observe(&b);
        let report = m.observe(&b).expect("churn must fire");
        assert!(report.churn >= 0.5, "churn {}", report.churn);
        // …and after re-baselining, the same state is quiet
        m.observe(&b);
        assert_eq!(m.observe(&b), None);
    }

    #[test]
    fn score_distribution_shift_fires() {
        let b = blocker();
        let mut m = DriftMonitor::new(DriftConfig {
            window_events: 4,
            churn_threshold: 2.0, // unreachable: isolate score shift
            score_shift_threshold: 0.5,
        });
        // bimodal-confident baseline window
        for s in [0.05, 0.95, 0.02, 0.98] {
            m.note_score(s);
        }
        for _ in 0..4 {
            assert_eq!(m.observe(&b), None);
        }
        // drifted window: everything lands mid-scale
        for s in [0.45, 0.52, 0.48, 0.55] {
            m.note_score(s);
        }
        for _ in 0..3 {
            assert_eq!(m.observe(&b), None);
        }
        let report = m.observe(&b).expect("score shift must fire");
        assert!(report.score_shift >= 0.5, "shift {}", report.score_shift);
    }
}
