//! Deterministic drifting event-stream scenarios.
//!
//! Shared by the property battery (`tests/streaming.rs`,
//! `tests/property_generators.rs`), the CI fixture ledger, and
//! `stream_bench` — all three need the *same* reproducible stream, and
//! root-level test files are separate binaries, so the generator lives
//! in the library.
//!
//! A scenario plays in two regimes around
//! [`ScenarioConfig::drift_after`]:
//!
//! * **stable** — inserts of matched pairs (a generated entity on the
//!   left, a corrupted duplicate on the right) with light noise, plus
//!   occasional benign updates/deletes. The candidate graph reaches a
//!   steady state.
//! * **drifted** — new inserts come from a shifted vocabulary (every
//!   token prefixed — a new data source with different surface forms)
//!   and an update storm rewrites live right-side records wholesale.
//!   Candidate churn spikes and match scores lose their bimodal shape,
//!   which is exactly what `crate::drift` watches for.

use crate::ledger::RecordEvent;
use em_data::generators::Domain;
use em_data::noise::{corrupt_entity, NoiseConfig};
use em_data::{Entity, Side};
use linalg::Rng;

/// Parameters of a generated scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// RNG seed; the whole stream is a pure function of the config.
    pub seed: u64,
    /// Matched pairs inserted up front (2 events each).
    pub initial_pairs: usize,
    /// Events generated after the initial load.
    pub events: usize,
    /// Post-load event index at which the drifted regime begins.
    pub drift_after: usize,
    /// Corruption level for right-side duplicates (0..1).
    pub noise: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            initial_pairs: 24,
            events: 200,
            drift_after: 100,
            noise: 0.2,
        }
    }
}

/// Prefix every word of every present value with a drift marker,
/// simulating a new upstream source whose surface forms share no tokens
/// with the old vocabulary.
fn shift_vocabulary(entity: &Entity, epoch_tag: &str) -> Entity {
    let vals = entity
        .values()
        .map(|v| {
            v.map(|s| {
                s.split_whitespace()
                    .map(|w| format!("{epoch_tag}{w}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
        })
        .collect();
    Entity::new(vals)
}

/// Generate the scenario's full event stream over `domain`.
///
/// Returned ids are disjoint across sides and dense enough for tests to
/// reason about; every `Update`/`Delete` targets an id that is live at
/// that point in the stream (so replaying through
/// [`crate::state::StreamState::apply`] never rejects an event).
pub fn generate_events(domain: &dyn Domain, config: &ScenarioConfig) -> Vec<RecordEvent> {
    let schema = domain.schema();
    let noise = NoiseConfig::from_level(config.noise);
    let heavy_noise = NoiseConfig::from_level((config.noise * 2.5).min(0.9));
    let mut rng = Rng::new(config.seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let mut events = Vec::new();
    let mut live_left: Vec<u64> = Vec::new();
    let mut live_right: Vec<u64> = Vec::new();
    let mut next_id = 1u64;

    let insert_pair = |events: &mut Vec<RecordEvent>,
                       live_left: &mut Vec<u64>,
                       live_right: &mut Vec<u64>,
                       next_id: &mut u64,
                       rng: &mut Rng,
                       drifted: bool| {
        let base = domain.generate(rng);
        let base = if drifted {
            shift_vocabulary(&base, "zz")
        } else {
            base
        };
        let dup = corrupt_entity(
            &base,
            &schema,
            if drifted { &heavy_noise } else { &noise },
            &[],
            rng,
        );
        let l = *next_id;
        let r = *next_id + 1;
        *next_id += 2;
        live_left.push(l);
        live_right.push(r);
        events.push(RecordEvent::Insert {
            side: Side::Left,
            id: l,
            entity: base,
        });
        events.push(RecordEvent::Insert {
            side: Side::Right,
            id: r,
            entity: dup,
        });
    };

    for _ in 0..config.initial_pairs {
        insert_pair(
            &mut events,
            &mut live_left,
            &mut live_right,
            &mut next_id,
            &mut rng,
            false,
        );
    }

    let mut generated = 0usize;
    while generated < config.events {
        let drifted = generated >= config.drift_after;
        let roll = rng.f64();
        if drifted && roll < 0.45 && !live_right.is_empty() {
            // update storm: rewrite a live right record from the shifted
            // vocabulary — maximal candidate churn per event
            let idx = rng.below(live_right.len());
            let id = live_right[idx];
            let fresh = shift_vocabulary(&domain.generate(&mut rng), "zz");
            events.push(RecordEvent::Update {
                side: Side::Right,
                id,
                entity: fresh,
            });
            generated += 1;
        } else if roll < 0.15 && live_left.len() > 4 {
            let idx = rng.below(live_left.len());
            let id = live_left.swap_remove(idx);
            events.push(RecordEvent::Delete {
                side: Side::Left,
                id,
            });
            generated += 1;
        } else if roll < 0.3 && !live_left.is_empty() {
            let idx = rng.below(live_left.len());
            let id = live_left[idx];
            let base = domain.generate(&mut rng);
            let base = if drifted {
                shift_vocabulary(&base, "zz")
            } else {
                base
            };
            events.push(RecordEvent::Update {
                side: Side::Left,
                id,
                entity: corrupt_entity(&base, &schema, &noise, &[], &mut rng),
            });
            generated += 1;
        } else {
            insert_pair(
                &mut events,
                &mut live_left,
                &mut live_right,
                &mut next_id,
                &mut rng,
                drifted,
            );
            generated += 2;
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::generators::Restaurant;

    #[test]
    fn streams_are_deterministic_and_replayable() {
        let config = ScenarioConfig::default();
        let a = generate_events(&Restaurant, &config);
        let b = generate_events(&Restaurant, &config);
        assert_eq!(a, b, "same config must produce the same stream");
        assert!(a.len() >= config.initial_pairs * 2 + config.events);

        // every mutation targets a then-live id (valid by construction)
        let mut state =
            crate::state::StreamState::new(Restaurant.schema(), em_data::BlockerConfig::default());
        for ev in &a {
            state.apply(ev, None).expect("generated stream is valid");
        }
        assert!(!state.is_empty());
    }

    #[test]
    fn drifted_regime_changes_the_vocabulary() {
        let config = ScenarioConfig {
            events: 60,
            drift_after: 20,
            ..ScenarioConfig::default()
        };
        let events = generate_events(&Restaurant, &config);
        let drifted_inserts = events
            .iter()
            .filter(|e| {
                matches!(e, RecordEvent::Insert { entity, .. } | RecordEvent::Update { entity, .. }
                    if entity.flatten().contains("zz"))
            })
            .count();
        assert!(drifted_inserts > 0, "drift regime must emit shifted tokens");
    }
}
