//! The record ledger: an event-sourced, crash-safe log of every entity
//! mutation the streaming layer has ever accepted.
//!
//! The ledger **is** the system of record — the live tables, the
//! incremental blocking index and the embedding-cache contents are all
//! derived state that a cold start reconstructs by replay
//! ([`RecordLedger::open`]). The file discipline is the workspace WAL
//! idiom (PR 4's search journal, PR 9's swap journal): append-only
//! JSONL, one fingerprinted header line binding the file to a schema,
//! `fsync` at event-batch boundaries, and torn-tail truncation on
//! recovery via the shared [`obs::wal`] scanner.
//!
//! ```json
//! {"v":1,"kind":"record-ledger","schema":"9e3779b97f4a7c15"}
//! {"ev":"insert","side":"right","id":12,"values":["golden dragon",null]}
//! {"ev":"update","side":"right","id":12,"values":["golden dragon cafe",null]}
//! {"ev":"delete","side":"left","id":3}
//! ```
//!
//! Unlike the search journal — whose loss costs only a checkpoint — a
//! ledger write failure is a data-loss event, so every append/sync
//! returns the error to the caller instead of degrading silently.

use em_data::{Entity, Schema, Side};
use obs::json::{self, Json};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Ledger format version written into (and required of) the header.
const LEDGER_VERSION: u64 = 1;

/// One entity mutation, the unit the ledger appends and replays.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordEvent {
    /// A new record becomes live on `side` under the stable id.
    Insert {
        /// Which table.
        side: Side,
        /// Stable record id (unique per side).
        id: u64,
        /// The record's attribute values.
        entity: Entity,
    },
    /// The record's values are replaced wholesale.
    Update {
        /// Which table.
        side: Side,
        /// Stable record id.
        id: u64,
        /// The new attribute values.
        entity: Entity,
    },
    /// The record stops being live.
    Delete {
        /// Which table.
        side: Side,
        /// Stable record id.
        id: u64,
    },
}

impl RecordEvent {
    /// The event's wire name (`"insert"` / `"update"` / `"delete"`).
    pub fn kind(&self) -> &'static str {
        match self {
            RecordEvent::Insert { .. } => "insert",
            RecordEvent::Update { .. } => "update",
            RecordEvent::Delete { .. } => "delete",
        }
    }

    /// Which table the event touches.
    pub fn side(&self) -> Side {
        match self {
            RecordEvent::Insert { side, .. }
            | RecordEvent::Update { side, .. }
            | RecordEvent::Delete { side, .. } => *side,
        }
    }

    /// The stable record id the event touches.
    pub fn id(&self) -> u64 {
        match self {
            RecordEvent::Insert { id, .. }
            | RecordEvent::Update { id, .. }
            | RecordEvent::Delete { id, .. } => *id,
        }
    }

    /// Serialize to one ledger line (no newline).
    pub fn to_line(&self) -> String {
        let mut o = json::Obj::new();
        o.str("ev", self.kind())
            .str("side", self.side().name())
            .u64("id", self.id());
        if let RecordEvent::Insert { entity, .. } | RecordEvent::Update { entity, .. } = self {
            let vals = entity.values().map(|v| match v {
                Some(s) => {
                    let mut out = String::new();
                    json::write_str(&mut out, s);
                    out
                }
                None => "null".to_owned(),
            });
            o.raw("values", &json::array(vals));
        }
        o.finish()
    }

    /// Decode one parsed ledger line; `None` for anything that is not a
    /// record event (including a schema-width mismatch).
    pub fn from_json(v: &Json, width: usize) -> Option<RecordEvent> {
        let side = Side::from_name(v.get("side")?.as_str()?)?;
        let id = v.get("id")?.as_u64()?;
        let entity = || -> Option<Entity> {
            let Json::Arr(items) = v.get("values")? else {
                return None;
            };
            if items.len() != width {
                return None;
            }
            let mut vals = Vec::with_capacity(items.len());
            for item in items {
                vals.push(match item {
                    Json::Null => None,
                    Json::Str(s) => Some(s.clone()),
                    _ => return None,
                });
            }
            Some(Entity::new(vals))
        };
        match v.get("ev")?.as_str()? {
            "insert" => Some(RecordEvent::Insert {
                side,
                id,
                entity: entity()?,
            }),
            "update" => Some(RecordEvent::Update {
                side,
                id,
                entity: entity()?,
            }),
            "delete" => Some(RecordEvent::Delete { side, id }),
            _ => None,
        }
    }
}

/// Fingerprint binding a ledger to one schema: attribute names and types
/// through the shared WAL fingerprint primitive. Replaying a ledger into
/// a differently-shaped table would silently corrupt every derived
/// structure, so [`RecordLedger::open`] refuses on mismatch.
pub fn schema_fingerprint(schema: &Schema) -> String {
    let parts: Vec<String> = schema
        .attributes()
        .iter()
        .map(|a| format!("{}:{:?}", a.name, a.ty))
        .collect();
    let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
    obs::wal::fnv1a_hex(&refs)
}

/// Why a ledger could not be opened or written.
#[derive(Debug)]
pub enum LedgerError {
    /// An I/O operation failed; the ledger must not be trusted further.
    Io(String),
    /// The file's header binds it to a different schema (or is not a
    /// record ledger at all).
    SchemaMismatch {
        /// Fingerprint found in the header.
        found: String,
        /// Fingerprint of the schema this open expected.
        expected: String,
    },
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::Io(e) => write!(f, "ledger I/O error: {e}"),
            LedgerError::SchemaMismatch { found, expected } => write!(
                f,
                "ledger was written for schema {found}, this run expects {expected}; \
                 refusing to mix tables"
            ),
        }
    }
}

impl std::error::Error for LedgerError {}

impl From<std::io::Error> for LedgerError {
    fn from(e: std::io::Error) -> Self {
        LedgerError::Io(e.to_string())
    }
}

/// What [`RecordLedger::open`] found on disk.
pub struct LedgerReplay {
    /// Every good event, in append order.
    pub events: Vec<RecordEvent>,
    /// Bytes of torn tail discarded by recovery (0 on a clean file).
    pub truncated_bytes: u64,
}

/// The append side of the record ledger (plus replay-on-open).
pub struct RecordLedger {
    file: File,
    path: PathBuf,
    pending: usize,
}

impl RecordLedger {
    fn header_line(schema: &Schema) -> String {
        let mut o = json::Obj::new();
        o.u64("v", LEDGER_VERSION)
            .str("kind", "record-ledger")
            .str("schema", &schema_fingerprint(schema));
        o.finish()
    }

    /// Create a fresh ledger at `path` (truncating any existing file),
    /// writing and syncing the schema-fingerprinted header.
    pub fn create(path: &Path, schema: &Schema) -> Result<RecordLedger, LedgerError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut file = File::create(path)?;
        file.write_all(format!("{}\n", Self::header_line(schema)).as_bytes())?;
        file.sync_data()?;
        Ok(RecordLedger {
            file,
            path: path.to_path_buf(),
            pending: 0,
        })
    }

    /// Open the ledger at `path` for append, replaying every good event
    /// (the cold-start path). A missing file is created; a torn tail is
    /// truncated (reported in [`LedgerReplay::truncated_bytes`]); a
    /// header bound to a different schema is refused.
    pub fn open(path: &Path, schema: &Schema) -> Result<(RecordLedger, LedgerReplay), LedgerError> {
        if !path.exists() {
            let ledger = Self::create(path, schema)?;
            return Ok((
                ledger,
                LedgerReplay {
                    events: Vec::new(),
                    truncated_bytes: 0,
                },
            ));
        }
        let replay = Self::replay(path, schema)?;
        let bytes = std::fs::read(path)?;
        let lines = obs::wal::scan_jsonl(&bytes);
        // recompute good_end with record-level semantics (stop at the
        // first structurally-valid-but-foreign line, like the search WAL)
        let mut good_end = 0usize;
        let width = schema.len();
        for (i, line) in lines.iter().enumerate() {
            if i > 0 && RecordEvent::from_json(&line.value, width).is_none() {
                break;
            }
            good_end = line.end;
        }
        let truncated = (bytes.len() - good_end) as u64;
        if truncated > 0 {
            eprintln!(
                "warning: record ledger {} had a torn tail; truncating {truncated} byte(s) \
                 back to the last complete event",
                path.display()
            );
            obs::wal::truncate_to(path, good_end as u64)?;
        }
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        obs::counter("stream.ledger.replays").inc();
        obs::emit(
            "stream.ledger.replay",
            &[
                ("path", obs::Value::Str(path.display().to_string())),
                ("events", obs::Value::U64(replay.events.len() as u64)),
                ("truncated_bytes", obs::Value::U64(truncated)),
            ],
        );
        Ok((
            RecordLedger {
                file,
                path: path.to_path_buf(),
                pending: 0,
            },
            LedgerReplay {
                events: replay.events,
                truncated_bytes: truncated,
            },
        ))
    }

    /// Read-only replay of the ledger at `path`: header verification plus
    /// every good event, without touching the file.
    pub fn replay(path: &Path, schema: &Schema) -> Result<LedgerReplay, LedgerError> {
        let bytes = std::fs::read(path)?;
        let lines = obs::wal::scan_jsonl(&bytes);
        let expected = schema_fingerprint(schema);
        let width = schema.len();
        let mut events = Vec::new();
        let mut good_end = 0usize;
        for (i, line) in lines.iter().enumerate() {
            if i == 0 {
                let h = &line.value;
                let found = h.get("schema").and_then(Json::as_str).unwrap_or("?");
                if h.get("v").and_then(Json::as_u64) != Some(LEDGER_VERSION)
                    || h.get("kind").and_then(Json::as_str) != Some("record-ledger")
                    || found != expected
                {
                    return Err(LedgerError::SchemaMismatch {
                        found: found.to_owned(),
                        expected,
                    });
                }
            } else {
                match RecordEvent::from_json(&line.value, width) {
                    Some(ev) => events.push(ev),
                    None => break, // foreign line: stop, like the search WAL
                }
            }
            good_end = line.end;
        }
        Ok(LedgerReplay {
            events,
            truncated_bytes: (bytes.len() - good_end) as u64,
        })
    }

    /// The ledger's on-disk location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one event (buffered by the OS; not yet durable). Call
    /// [`sync`](Self::sync) at the batch boundary to make it so.
    pub fn append(&mut self, ev: &RecordEvent) -> Result<(), LedgerError> {
        self.file
            .write_all(format!("{}\n", ev.to_line()).as_bytes())?;
        self.pending += 1;
        obs::counter("stream.ledger.appends").inc();
        Ok(())
    }

    /// Fsync every buffered append — the event-batch durability barrier.
    /// A no-op when nothing is pending.
    pub fn sync(&mut self) -> Result<(), LedgerError> {
        if self.pending == 0 {
            return Ok(());
        }
        let _t = obs::ledger::phase("ledger_fsync");
        self.file.sync_data()?;
        self.pending = 0;
        obs::counter("stream.ledger.fsyncs").inc();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::{AttrType, Attribute};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("name", AttrType::Text),
            Attribute::new("city", AttrType::Text),
        ])
    }

    fn tmp(name: &str) -> PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "em_stream_ledger_{}_{}_{name}.jsonl",
            std::process::id(),
            n
        ))
    }

    fn ev_insert(side: Side, id: u64, name: &str) -> RecordEvent {
        RecordEvent::Insert {
            side,
            id,
            entity: Entity::new(vec![Some(name.to_owned()), None]),
        }
    }

    #[test]
    fn events_roundtrip_through_the_wire_codec() {
        let events = [
            ev_insert(Side::Left, 1, "golden dragon"),
            RecordEvent::Update {
                side: Side::Right,
                id: 9,
                entity: Entity::new(vec![Some("a \"quoted\"\nvalue".into()), None]),
            },
            RecordEvent::Delete {
                side: Side::Left,
                id: 1,
            },
        ];
        for ev in &events {
            let v = json::parse(&ev.to_line()).expect("valid json");
            assert_eq!(RecordEvent::from_json(&v, 2).as_ref(), Some(ev), "{ev:?}");
        }
    }

    #[test]
    fn append_sync_replay_roundtrip() {
        let path = tmp("roundtrip");
        let mut ledger = RecordLedger::create(&path, &schema()).unwrap();
        let evs = vec![
            ev_insert(Side::Left, 1, "golden dragon"),
            ev_insert(Side::Right, 2, "golden dragon cafe"),
            RecordEvent::Delete {
                side: Side::Left,
                id: 1,
            },
        ];
        for ev in &evs {
            ledger.append(ev).unwrap();
        }
        ledger.sync().unwrap();
        drop(ledger);
        let replay = RecordLedger::replay(&path, &schema()).unwrap();
        assert_eq!(replay.events, evs);
        assert_eq!(replay.truncated_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_truncates_torn_tail_and_appending_resumes() {
        let path = tmp("torn");
        let mut ledger = RecordLedger::create(&path, &schema()).unwrap();
        ledger.append(&ev_insert(Side::Left, 1, "a")).unwrap();
        ledger.sync().unwrap();
        drop(ledger);
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"{\"ev\":\"insert\",\"side\":\"le").unwrap();
        }
        let (mut ledger, replay) = RecordLedger::open(&path, &schema()).unwrap();
        assert_eq!(replay.events.len(), 1);
        assert!(replay.truncated_bytes > 0);
        ledger.append(&ev_insert(Side::Right, 2, "b")).unwrap();
        ledger.sync().unwrap();
        drop(ledger);
        let replay = RecordLedger::replay(&path, &schema()).unwrap();
        assert_eq!(replay.events.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_refuses_a_ledger_for_another_schema() {
        let path = tmp("schema");
        drop(RecordLedger::create(&path, &schema()).unwrap());
        let other = Schema::new(vec![Attribute::new("title", AttrType::Text)]);
        let err = RecordLedger::open(&path, &other)
            .err()
            .expect("mismatched schema must be refused");
        assert!(matches!(err, LedgerError::SchemaMismatch { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_width_values_stop_the_replay() {
        let path = tmp("width");
        let mut ledger = RecordLedger::create(&path, &schema()).unwrap();
        ledger.append(&ev_insert(Side::Left, 1, "a")).unwrap();
        ledger.sync().unwrap();
        drop(ledger);
        // a structurally valid event whose values don't fit the schema
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(
                b"{\"ev\":\"insert\",\"side\":\"left\",\"id\":2,\"values\":[\"only-one\"]}\n",
            )
            .unwrap();
        }
        let replay = RecordLedger::replay(&path, &schema()).unwrap();
        assert_eq!(replay.events.len(), 1);
        assert!(replay.truncated_bytes > 0);
        std::fs::remove_file(&path).ok();
    }
}
