//! Derived, incrementally-maintained streaming state: the live entity
//! tables, the incremental blocking index, and the embedding-cache
//! invalidation protocol.
//!
//! [`StreamState`] is a pure fold over [`RecordEvent`]s — replaying the
//! same ledger always reconstructs the same state, which is what
//! [`digest`](StreamState::digest) certifies (the replay-from-ledger
//! cold-start test asserts digest equality between the live process and
//! a fresh replay).
//!
//! The cache protocol: record vectors are memoized under the *id-keyed*
//! [`record_key`] (`rec:<side>:<id>`), because the streaming scorer
//! wants "the vector of record 12", not "the vector of whatever text
//! record 12 had when first scored". Id keys are stable across updates,
//! so an `Update`/`Delete` **must** drop the key from the cache
//! ([`embed::cache::EmbeddingCache::invalidate`]) before the next encode — that
//! single call is what makes serving a stale vector impossible.

use crate::ledger::RecordEvent;
use em_data::{CandidateIdPair, Entity, IncrementalBlocker, Schema, Side};
use embed::cache::EmbeddingCache;
use std::collections::BTreeMap;

/// The cache key for a record's vector: stable across value updates,
/// unique per `(side, id)`.
pub fn record_key(side: Side, id: u64) -> String {
    format!("rec:{}:{id}", side.name())
}

/// Why an event was rejected by [`StreamState::apply`]. The state is
/// unchanged in every case; a rejected event must not be appended to the
/// ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyError {
    /// `Insert` for an id that is already live on that side.
    DuplicateId(Side, u64),
    /// `Update`/`Delete` for an id that is not live on that side.
    UnknownId(Side, u64),
    /// The entity's width does not match the schema.
    WidthMismatch {
        /// Values carried by the event.
        got: usize,
        /// Schema width.
        want: usize,
    },
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplyError::DuplicateId(side, id) => {
                write!(f, "insert of already-live record {}:{id}", side.name())
            }
            ApplyError::UnknownId(side, id) => {
                write!(f, "mutation of unknown record {}:{id}", side.name())
            }
            ApplyError::WidthMismatch { got, want } => {
                write!(f, "entity has {got} values, schema has {want}")
            }
        }
    }
}

impl std::error::Error for ApplyError {}

/// Live streaming state derived from the ledger.
pub struct StreamState {
    schema: Schema,
    blocker: IncrementalBlocker,
    left: BTreeMap<u64, Entity>,
    right: BTreeMap<u64, Entity>,
    applied: u64,
}

impl StreamState {
    /// Empty state over `schema`, blocking with `config`.
    pub fn new(schema: Schema, config: em_data::BlockerConfig) -> Self {
        let blocker = IncrementalBlocker::new(&schema, config);
        Self {
            schema,
            blocker,
            left: BTreeMap::new(),
            right: BTreeMap::new(),
            applied: 0,
        }
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The incremental blocking index.
    pub fn blocker(&self) -> &IncrementalBlocker {
        &self.blocker
    }

    /// Events applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Live record count on `side`.
    pub fn len(&self, side: Side) -> usize {
        self.table(side).len()
    }

    /// True when both tables are empty.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty() && self.right.is_empty()
    }

    /// The live entity for `(side, id)`, if any.
    pub fn entity(&self, side: Side, id: u64) -> Option<&Entity> {
        self.table(side).get(&id)
    }

    fn table(&self, side: Side) -> &BTreeMap<u64, Entity> {
        match side {
            Side::Left => &self.left,
            Side::Right => &self.right,
        }
    }

    fn table_mut(&mut self, side: Side) -> &mut BTreeMap<u64, Entity> {
        match side {
            Side::Left => &mut self.left,
            Side::Right => &mut self.right,
        }
    }

    /// Current candidate pairs from the incremental index.
    pub fn candidates(&self) -> Vec<CandidateIdPair> {
        self.blocker.candidates()
    }

    /// Apply one event: validate, update the live table and the blocking
    /// index, and run the cache-invalidation protocol against `cache`
    /// (pass the streaming scorer's cache; `None` when no vectors are
    /// being memoized, e.g. during pure replay before a cache exists).
    pub fn apply(
        &mut self,
        ev: &RecordEvent,
        cache: Option<&EmbeddingCache<'_>>,
    ) -> Result<(), ApplyError> {
        let side = ev.side();
        let id = ev.id();
        match ev {
            RecordEvent::Insert { entity, .. } => {
                self.check_width(entity)?;
                if self.table(side).contains_key(&id) {
                    return Err(ApplyError::DuplicateId(side, id));
                }
                self.table_mut(side).insert(id, entity.clone());
                self.blocker.upsert(side, id, entity);
                obs::counter("stream.events.insert").inc();
            }
            RecordEvent::Update { entity, .. } => {
                self.check_width(entity)?;
                if !self.table(side).contains_key(&id) {
                    return Err(ApplyError::UnknownId(side, id));
                }
                self.table_mut(side).insert(id, entity.clone());
                self.blocker.upsert(side, id, entity);
                // the id-keyed vector is now stale: drop it before anyone
                // can read it
                if let Some(cache) = cache {
                    if cache.invalidate(&record_key(side, id)) {
                        obs::counter("stream.cache.invalidations").inc();
                    }
                }
                obs::counter("stream.events.update").inc();
            }
            RecordEvent::Delete { .. } => {
                if self.table_mut(side).remove(&id).is_none() {
                    return Err(ApplyError::UnknownId(side, id));
                }
                self.blocker.remove(side, id);
                if let Some(cache) = cache {
                    if cache.invalidate(&record_key(side, id)) {
                        obs::counter("stream.cache.invalidations").inc();
                    }
                }
                obs::counter("stream.events.delete").inc();
            }
        }
        self.applied += 1;
        Ok(())
    }

    fn check_width(&self, entity: &Entity) -> Result<(), ApplyError> {
        if entity.width() != self.schema.len() {
            return Err(ApplyError::WidthMismatch {
                got: entity.width(),
                want: self.schema.len(),
            });
        }
        Ok(())
    }

    /// The vector of record `(side, id)` through `cache`, memoized under
    /// [`record_key`]. The text embedded is the record's **current**
    /// flattened value — after an `Update` the invalidation in
    /// [`apply`](Self::apply) guarantees this recomputes. `None` when the
    /// record is not live.
    pub fn encode_record(
        &self,
        side: Side,
        id: u64,
        cache: &EmbeddingCache<'_>,
    ) -> Option<Vec<f32>> {
        let entity = self.entity(side, id)?;
        Some(cache.embed_keyed(&record_key(side, id), &entity.flatten()))
    }

    /// A deterministic digest of the full derived state: schema, live
    /// tables, and the complete blocking index (via its canonical dump).
    /// Two states are bit-identical iff their digests agree.
    pub fn digest(&self) -> String {
        let mut parts: Vec<String> = vec![crate::ledger::schema_fingerprint(&self.schema)];
        for (side, table) in [(Side::Left, &self.left), (Side::Right, &self.right)] {
            for (id, e) in table {
                parts.push(format!("{}:{id}:{}", side.name(), e.flatten()));
            }
        }
        parts.push(self.blocker.canonical_dump());
        let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
        obs::wal::fnv1a_hex(&refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::{AttrType, Attribute, BlockerConfig};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("name", AttrType::Text),
            Attribute::new("city", AttrType::Text),
        ])
    }

    fn state() -> StreamState {
        StreamState::new(
            schema(),
            BlockerConfig {
                max_token_frequency: 1.0,
                ..BlockerConfig::default()
            },
        )
    }

    fn ent(name: &str, city: &str) -> Entity {
        Entity::new(vec![Some(name.to_owned()), Some(city.to_owned())])
    }

    fn ins(side: Side, id: u64, name: &str, city: &str) -> RecordEvent {
        RecordEvent::Insert {
            side,
            id,
            entity: ent(name, city),
        }
    }

    #[test]
    fn apply_validates_ids_and_width() {
        let mut s = state();
        s.apply(&ins(Side::Left, 1, "golden dragon", "boston"), None)
            .unwrap();
        assert_eq!(
            s.apply(&ins(Side::Left, 1, "again", "boston"), None),
            Err(ApplyError::DuplicateId(Side::Left, 1))
        );
        assert_eq!(
            s.apply(
                &RecordEvent::Delete {
                    side: Side::Right,
                    id: 1
                },
                None
            ),
            Err(ApplyError::UnknownId(Side::Right, 1))
        );
        assert_eq!(
            s.apply(
                &RecordEvent::Update {
                    side: Side::Left,
                    id: 1,
                    entity: Entity::new(vec![Some("x".into())])
                },
                None
            ),
            Err(ApplyError::WidthMismatch { got: 1, want: 2 })
        );
        // failed applies must not count
        assert_eq!(s.applied(), 1);
    }

    #[test]
    fn digest_is_replay_invariant_and_order_sensitive() {
        let evs = vec![
            ins(Side::Left, 1, "golden dragon", "boston"),
            ins(Side::Right, 2, "golden dragon cafe", "boston"),
            RecordEvent::Update {
                side: Side::Right,
                id: 2,
                entity: ent("red lantern", "chicago"),
            },
        ];
        let mut a = state();
        let mut b = state();
        for ev in &evs {
            a.apply(ev, None).unwrap();
            b.apply(ev, None).unwrap();
        }
        assert_eq!(a.digest(), b.digest());
        // a third state with the update skipped differs
        let mut c = state();
        c.apply(&evs[0], None).unwrap();
        c.apply(&evs[1], None).unwrap();
        assert_ne!(a.digest(), c.digest());
    }
}
