//! Micro-benchmarks of the hot kernels under every experiment: string
//! similarity, tokenization, embedding forward passes, classical-model
//! fits and the autodiff engine.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use em_core::{tokenizer::tokenize_pair, TokenizerMode};
use em_data::MagellanDataset;
use embed::families::{EmbedderFamily, PretrainConfig, PretrainedTransformer};
use embed::SequenceEmbedder;
use linalg::{Matrix, Rng};
use ml::boosting::{BoostConfig, GradientBoosting};
use ml::forest::{ForestConfig, RandomForest};
use ml::Classifier;
use std::hint::black_box;
use text::similarity::{jaccard, jaro_winkler, levenshtein};

fn bench_micro_similarity(c: &mut Criterion) {
    let a = "deep learning for entity matching a design space exploration";
    let b = "deep learnig of entity matchin design space exploraton acm";
    let ta: Vec<String> = a.split_whitespace().map(str::to_owned).collect();
    let tb: Vec<String> = b.split_whitespace().map(str::to_owned).collect();
    let mut g = c.benchmark_group("micro/similarity");
    g.bench_function("levenshtein_60ch", |bch| {
        bch.iter(|| black_box(levenshtein(black_box(a), black_box(b))))
    });
    g.bench_function("jaro_winkler_60ch", |bch| {
        bch.iter(|| black_box(jaro_winkler(black_box(a), black_box(b))))
    });
    g.bench_function("jaccard_tokens", |bch| {
        bch.iter(|| black_box(jaccard(black_box(&ta), black_box(&tb))))
    });
    g.finish();
}

fn bench_micro_tokenizer(c: &mut Criterion) {
    let dataset = MagellanDataset::SDA.profile().generate_scaled(1, 0.05);
    let pairs = dataset.pairs();
    let mut g = c.benchmark_group("micro/em_tokenizer");
    g.throughput(Throughput::Elements(pairs.len() as u64));
    for mode in [TokenizerMode::AttributeBased, TokenizerMode::Hybrid] {
        g.bench_function(mode.label(), |bch| {
            bch.iter(|| {
                for p in pairs {
                    black_box(tokenize_pair(p, dataset.schema(), mode));
                }
            })
        });
    }
    g.finish();
}

fn bench_micro_embedder(c: &mut Criterion) {
    let embedder = PretrainedTransformer::pretrain(
        EmbedderFamily::DBert,
        &[],
        PretrainConfig {
            corpus_sentences: 200,
            steps: 10,
            ..PretrainConfig::default()
        },
    );
    let text = "sony ab123 wireless noise cancelling headphones sep sony ab123 headphones black";
    c.bench_function("micro/transformer_embed_14tok", |bch| {
        bch.iter(|| black_box(embedder.embed(black_box(text))))
    });
}

fn bench_micro_models(c: &mut Criterion) {
    let mut rng = Rng::new(1);
    let x = Matrix::randn(500, 64, 1.0, &mut rng);
    let y: Vec<f32> = (0..500).map(|i| f32::from(i % 4 == 0)).collect();
    let mut g = c.benchmark_group("micro/model_fit_500x64");
    g.sample_size(10);
    g.bench_function("gbm_50rounds", |bch| {
        bch.iter(|| {
            let mut m = GradientBoosting::new(BoostConfig {
                n_rounds: 50,
                ..BoostConfig::default()
            });
            m.fit(&x, &y);
            black_box(m.predict_proba(&x)[0])
        })
    });
    g.bench_function("random_forest_30trees", |bch| {
        bch.iter(|| {
            let mut m = RandomForest::new(ForestConfig::random_forest(30, 1));
            m.fit(&x, &y);
            black_box(m.predict_proba(&x)[0])
        })
    });
    g.finish();
}

fn bench_micro_matmul(c: &mut Criterion) {
    let mut rng = Rng::new(2);
    let a = Matrix::randn(64, 64, 1.0, &mut rng);
    let b = Matrix::randn(64, 64, 1.0, &mut rng);
    c.bench_function("micro/matmul_64x64", |bch| {
        bch.iter(|| black_box(black_box(&a).matmul(black_box(&b))))
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default();
    targets =
        bench_micro_similarity,
        bench_micro_tokenizer,
        bench_micro_embedder,
        bench_micro_models,
        bench_micro_matmul
}
criterion_main!(micro);
