//! Micro-benchmarks of the hot kernels under every experiment: string
//! similarity, tokenization, embedding forward passes, classical-model
//! fits and the autodiff engine (std-only harness — see
//! [`bench::stopwatch`]).

use bench::stopwatch::bench;
use em_core::{tokenizer::tokenize_pair, TokenizerMode};
use em_data::MagellanDataset;
use embed::families::{EmbedderFamily, PretrainConfig, PretrainedTransformer};
use embed::SequenceEmbedder;
use linalg::{Matrix, Rng};
use ml::boosting::{BoostConfig, GradientBoosting};
use ml::forest::{ForestConfig, RandomForest};
use ml::Classifier;
use std::hint::black_box;
use text::similarity::{jaccard, jaro_winkler, levenshtein};

fn main() {
    println!("== micro benches ==");

    let a = "deep learning for entity matching a design space exploration";
    let b = "deep learnig of entity matchin design space exploraton acm";
    let ta: Vec<String> = a.split_whitespace().map(str::to_owned).collect();
    let tb: Vec<String> = b.split_whitespace().map(str::to_owned).collect();
    bench("micro/similarity/levenshtein_60ch", 200, || {
        black_box(levenshtein(black_box(a), black_box(b)))
    });
    bench("micro/similarity/jaro_winkler_60ch", 200, || {
        black_box(jaro_winkler(black_box(a), black_box(b)))
    });
    bench("micro/similarity/jaccard_tokens", 200, || {
        black_box(jaccard(black_box(&ta), black_box(&tb)))
    });

    let dataset = MagellanDataset::SDA.profile().generate_scaled(1, 0.05);
    let pairs = dataset.pairs();
    for mode in [TokenizerMode::AttributeBased, TokenizerMode::Hybrid] {
        bench(&format!("micro/em_tokenizer/{}", mode.label()), 20, || {
            for p in pairs {
                black_box(tokenize_pair(p, dataset.schema(), mode));
            }
        });
    }

    let embedder = PretrainedTransformer::pretrain(
        EmbedderFamily::DBert,
        &[],
        PretrainConfig {
            corpus_sentences: 200,
            steps: 10,
            ..PretrainConfig::default()
        },
    );
    let text = "sony ab123 wireless noise cancelling headphones sep sony ab123 headphones black";
    bench("micro/transformer_embed_14tok", 100, || {
        black_box(embedder.embed(black_box(text)))
    });

    let mut rng = Rng::new(1);
    let x = Matrix::randn(500, 64, 1.0, &mut rng);
    let y: Vec<f32> = (0..500).map(|i| f32::from(i % 4 == 0)).collect();
    bench("micro/model_fit_500x64/gbm_50rounds", 5, || {
        let mut m = GradientBoosting::new(BoostConfig {
            n_rounds: 50,
            ..BoostConfig::default()
        });
        m.fit(&x, &y).expect("bench fit failed");
        black_box(m.predict_proba(&x)[0])
    });
    bench("micro/model_fit_500x64/random_forest_30trees", 5, || {
        let mut m = RandomForest::new(ForestConfig::random_forest(30, 1));
        m.fit(&x, &y).expect("bench fit failed");
        black_box(m.predict_proba(&x)[0])
    });

    let mut rng = Rng::new(2);
    let ma = Matrix::randn(64, 64, 1.0, &mut rng);
    let mb = Matrix::randn(64, 64, 1.0, &mut rng);
    bench("micro/matmul_64x64", 200, || {
        black_box(black_box(&ma).matmul(black_box(&mb)))
    });
}
