//! Timing benches, one per paper table, at miniature scale (std-only
//! harness — see [`bench::stopwatch`]).
//!
//! These measure the *wall-clock cost* of regenerating each table's
//! pipeline on a small slice of the benchmark, so regressions in any layer
//! (generators, adapters, AutoML search, DeepMatcher training) show up in
//! `cargo bench`. The full-fidelity tables come from the `table1..table5`
//! binaries.

use bench::experiments::{adapter_run, pretrain_embedders, table2_row, table3_rows, Embedders};
use bench::stopwatch::bench;
use em_core::{Combiner, TokenizerMode};
use em_data::{magellan_benchmark, MagellanDataset};
use embed::families::EmbedderFamily;
use std::hint::black_box;

/// Small shared embedder set (pretrained once per bench process, with a
/// reduced step count — bench targets measure pipeline cost, not quality).
fn mini_embedders() -> Embedders {
    let profiles = vec![MagellanDataset::SBR.profile()];
    std::env::set_var("EMBED_BENCH_FAST", "1");
    pretrain_embedders(&profiles, 1)
}

fn main() {
    println!("== table benches (miniature scale) ==");

    bench("table1/generate_all_profiles_scaled", 10, || {
        for p in magellan_benchmark() {
            let d = p.generate_scaled(black_box(7), 0.02);
            black_box(d.len());
        }
    });

    let profile = MagellanDataset::SBR.profile();
    bench("table2/raw_automl_plus_deepmatcher_sbr", 3, || {
        black_box(table2_row(&profile, 0.15, 3))
    });

    let embedders = mini_embedders();
    bench("table3/adapter_grid_one_dataset", 3, || {
        black_box(table3_rows(&profile, &embedders, 0.15, 3, 0.2))
    });

    // Table 4 is an aggregation of Tables 2+3; bench the aggregation input
    bench("table4/raw_plus_grid_one_dataset", 3, || {
        let raw = table2_row(&profile, 0.15, 3);
        let grid = table3_rows(&profile, &embedders, 0.15, 3, 0.2);
        black_box((raw.dm_f1, grid.len()))
    });

    let albert = embedders.get(EmbedderFamily::Albert);
    let dataset = MagellanDataset::SBR.profile().generate_scaled(3, 0.2);
    for hours in [1.0_f64, 6.0] {
        bench(&format!("table5/hybrid_albert_budget_{hours}h"), 3, || {
            black_box(adapter_run(
                &dataset,
                albert,
                TokenizerMode::Hybrid,
                Combiner::Average,
                0,
                hours,
                3,
            ))
        });
    }

    obs::print_summary();
}
