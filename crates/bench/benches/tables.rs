//! Criterion benches, one per paper table, at miniature scale.
//!
//! These measure the *wall-clock cost* of regenerating each table's
//! pipeline on a small slice of the benchmark, so regressions in any layer
//! (generators, adapters, AutoML search, DeepMatcher training) show up in
//! `cargo bench`. The full-fidelity tables come from the `table1..table5`
//! binaries.

use bench::experiments::{adapter_run, pretrain_embedders, table2_row, table3_rows, Embedders};
use criterion::{criterion_group, criterion_main, Criterion};
use em_core::{Combiner, TokenizerMode};
use em_data::{magellan_benchmark, MagellanDataset};
use embed::families::EmbedderFamily;
use std::hint::black_box;

/// Small shared embedder set (pretrained once per bench process, with a
/// reduced step count — bench targets measure pipeline cost, not quality).
fn mini_embedders() -> Embedders {
    let profiles = vec![MagellanDataset::SBR.profile()];
    std::env::set_var("EMBED_BENCH_FAST", "1");
    pretrain_embedders(&profiles, 1)
}

fn bench_table1_datagen(c: &mut Criterion) {
    c.bench_function("table1/generate_all_profiles_scaled", |b| {
        b.iter(|| {
            for p in magellan_benchmark() {
                let d = p.generate_scaled(black_box(7), 0.02);
                black_box(d.len());
            }
        })
    });
}

fn bench_table2_automl_raw(c: &mut Criterion) {
    let profile = MagellanDataset::SBR.profile();
    c.bench_function("table2/raw_automl_plus_deepmatcher_sbr", |b| {
        b.iter(|| black_box(table2_row(&profile, 0.15, 3)))
    });
}

fn bench_table3_adapter_grid(c: &mut Criterion) {
    let embedders = mini_embedders();
    let profile = MagellanDataset::SBR.profile();
    c.bench_function("table3/adapter_grid_one_dataset", |b| {
        b.iter(|| black_box(table3_rows(&profile, &embedders, 0.15, 3, 0.2)))
    });
}

fn bench_table4_delta(c: &mut Criterion) {
    // Table 4 is an aggregation of Tables 2+3; bench the aggregation input
    let embedders = mini_embedders();
    let profile = MagellanDataset::SBR.profile();
    c.bench_function("table4/raw_plus_grid_one_dataset", |b| {
        b.iter(|| {
            let raw = table2_row(&profile, 0.15, 3);
            let grid = table3_rows(&profile, &embedders, 0.15, 3, 0.2);
            black_box((raw.dm_f1, grid.len()))
        })
    });
}

fn bench_table5_budget(c: &mut Criterion) {
    let embedders = mini_embedders();
    let albert = embedders.get(EmbedderFamily::Albert);
    let dataset = MagellanDataset::SBR.profile().generate_scaled(3, 0.2);
    let mut group = c.benchmark_group("table5");
    for hours in [1.0_f64, 6.0] {
        group.bench_function(format!("hybrid_albert_budget_{hours}h"), |b| {
            b.iter(|| {
                black_box(adapter_run(
                    &dataset,
                    albert,
                    TokenizerMode::Hybrid,
                    Combiner::Average,
                    0,
                    hours,
                    3,
                ))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10);
    targets =
        bench_table1_datagen,
        bench_table2_automl_raw,
        bench_table3_adapter_grid,
        bench_table4_delta,
        bench_table5_budget
}
criterion_main!(tables);
