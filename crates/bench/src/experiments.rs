//! Shared experiment runner behind every table binary and timing bench.
//!
//! The expensive artifacts are built once and shared: the five pretrained
//! embedder families (pretrained on the generalist corpus plus a sample of
//! Magellan-style domain text, like real checkpoints' BPE vocabularies
//! cover benchmark text), and each dataset's encodings are reused across
//! the three AutoML systems. Datasets and embedder pretraining fan out
//! across the shared `par` worker pool (set `AUTOML_EM_THREADS` to bound
//! it); results always come back in input order.

use automl::AutoMlSystem;
use deepmatcher::{train_deepmatcher, TrainConfig};
use em_core::{run_pipeline, run_raw, Combiner, EmAdapter, PipelineConfig, TokenizerMode};
use em_data::{DatasetProfile, EmDataset, Split};
use embed::families::{EmbedderFamily, PretrainConfig, PretrainedTransformer};
use linalg::Rng;

/// Systems in the order the paper's tables list them.
pub const SYSTEM_NAMES: [&str; 3] = ["AutoSklearn", "AutoGluon", "H2OAutoML"];

/// Build the system with index `idx` (0 = AutoSklearn, 1 = AutoGluon,
/// 2 = H2OAutoML).
pub fn make_system(idx: usize, seed: u64) -> Box<dyn AutoMlSystem> {
    match idx {
        0 => Box::new(automl::sklearn_like::AutoSklearnStyle::new(seed)),
        1 => Box::new(automl::gluon_like::AutoGluonStyle::new(seed)),
        2 => Box::new(automl::h2o_like::H2oStyle::new(seed)),
        _ => panic!("system index out of range"),
    }
}

/// The five pretrained embedders, in Table 3 column order.
pub struct Embedders {
    /// One frozen encoder per family.
    pub families: Vec<PretrainedTransformer>,
}

impl Embedders {
    /// Embedder of one family.
    pub fn get(&self, family: EmbedderFamily) -> &PretrainedTransformer {
        self.families
            .iter()
            .find(|e| e.family() == family)
            .expect("all families pretrained")
    }
}

/// Sample domain text from each profile so the embedders' subword
/// vocabularies cover benchmark surface forms.
fn domain_text_sample(profiles: &[DatasetProfile], seed: u64) -> Vec<String> {
    let mut out = Vec::new();
    for p in profiles {
        let d = p.generate_scaled(seed ^ 0x7E47, (200.0 / p.size as f64).min(1.0));
        for pair in d.pairs().iter().take(100) {
            out.push(pair.left.flatten());
            out.push(pair.right.flatten());
        }
    }
    out
}

/// Pretrain all five embedder families (in parallel).
pub fn pretrain_embedders(profiles: &[DatasetProfile], seed: u64) -> Embedders {
    let domain_text = domain_text_sample(profiles, seed);
    // benches opt into fast pretraining via EMBED_BENCH_FAST=1
    let fast = std::env::var_os("EMBED_BENCH_FAST").is_some();
    let cfg = PretrainConfig {
        seed,
        steps: if fast {
            40
        } else {
            PretrainConfig::default().steps
        },
        corpus_sentences: if fast {
            300
        } else {
            PretrainConfig::default().corpus_sentences
        },
        ..PretrainConfig::default()
    };
    let families = par::map(&EmbedderFamily::ALL, |&family| {
        PretrainedTransformer::pretrain(family, &domain_text, cfg)
    });
    Embedders { families }
}

/// Effective generation scale: small datasets always run at (near) full
/// size — they are cheap and meaningless below a few hundred pairs — while
/// large ones honour the requested scale.
pub fn effective_scale(profile: &DatasetProfile, scale: f64) -> f64 {
    let min_pairs = 400.0_f64.min(profile.size as f64);
    scale.max(min_pairs / profile.size as f64).min(1.0)
}

/// One dataset's result for Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Dataset code.
    pub code: &'static str,
    /// Per-system `(test F1, training hours)` in [`SYSTEM_NAMES`] order.
    pub systems: [(f64, f64); 3],
    /// DeepMatcher (Hybrid) test F1.
    pub dm_f1: f64,
    /// DeepMatcher training hours (paper units).
    pub dm_hours: f64,
}

/// Run Table 2 for one dataset: raw AutoML (1 h budget) + DeepMatcher.
pub fn table2_row(profile: &DatasetProfile, scale: f64, seed: u64) -> Table2Row {
    let dataset = profile.generate_scaled(seed, effective_scale(profile, scale));
    let cfg = PipelineConfig {
        budget_hours: 1.0,
        seed,
        ..PipelineConfig::default()
    };
    let mut systems = [(0.0, 0.0); 3];
    for (i, slot) in systems.iter_mut().enumerate() {
        let mut sys = make_system(i, seed);
        let r = run_raw(sys.as_mut(), &dataset, cfg).expect("raw AutoML run failed");
        *slot = (r.test_f1, r.hours_used);
    }
    let dm = train_deepmatcher(
        &dataset,
        TrainConfig {
            seed,
            ..TrainConfig::default()
        },
    );
    let dm_f1 = dm.f1_on(dataset.split(Split::Test));
    Table2Row {
        code: profile.code,
        systems,
        dm_f1,
        dm_hours: deepmatcher::train::estimated_hours(profile.size),
    }
}

/// One adapter grid cell result.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Dataset code.
    pub code: &'static str,
    /// Tokenizer mode.
    pub mode: TokenizerMode,
    /// Embedder family.
    pub family: EmbedderFamily,
    /// Test F1 per system ([`SYSTEM_NAMES`] order).
    pub f1: [f64; 3],
}

/// Run the full Table 3 grid for one dataset: encode once per
/// (tokenizer, embedder) and reuse across the three systems.
pub fn table3_rows(
    profile: &DatasetProfile,
    embedders: &Embedders,
    scale: f64,
    seed: u64,
    budget_hours: f64,
) -> Vec<GridCell> {
    let dataset = profile.generate_scaled(seed, effective_scale(profile, scale));
    let cfg = PipelineConfig {
        budget_hours,
        seed,
        ..PipelineConfig::default()
    };
    let mut cells = Vec::new();
    for mode in TokenizerMode::EVALUATED {
        for &family in &EmbedderFamily::ALL {
            let adapter = EmAdapter::new(mode, embedders.get(family), Combiner::Average);
            let train = adapter.encode_split(&dataset, Split::Train);
            let valid = adapter.encode_split(&dataset, Split::Validation);
            let test = adapter.encode_split(&dataset, Split::Test);
            let mut f1 = [0.0; 3];
            for (i, slot) in f1.iter_mut().enumerate() {
                let mut sys = make_system(i, seed);
                let r = em_core::pipeline::run_encoded(
                    sys.as_mut(),
                    &train,
                    &valid,
                    &test,
                    cfg,
                    profile.code,
                )
                .expect("encoded AutoML run failed");
                *slot = r.test_f1;
            }
            cells.push(GridCell {
                code: profile.code,
                mode,
                family,
                f1,
            });
        }
    }
    cells
}

/// Run one specific adapter cell (used by Table 5 and the ablations).
pub fn adapter_run(
    dataset: &EmDataset,
    embedder: &PretrainedTransformer,
    mode: TokenizerMode,
    combiner: Combiner,
    system_idx: usize,
    budget_hours: f64,
    seed: u64,
) -> em_core::PipelineResult {
    let adapter = EmAdapter::new(mode, embedder, combiner);
    let mut sys = make_system(system_idx, seed);
    run_pipeline(
        sys.as_mut(),
        &adapter,
        dataset,
        PipelineConfig {
            budget_hours,
            seed,
            ..PipelineConfig::default()
        },
    )
    .expect("adapter pipeline run failed")
}

/// Run a closure per profile in parallel, preserving profile order.
pub fn per_dataset<T: Send>(
    profiles: &[DatasetProfile],
    f: impl Fn(&DatasetProfile) -> T + Sync,
) -> Vec<T> {
    par::map(profiles, f)
}

/// Deterministic per-dataset sub-seed.
pub fn dataset_seed(master: u64, code: &str) -> u64 {
    let mut rng = Rng::new(master);
    let tag = code
        .bytes()
        .fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64));
    rng.fork(tag).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::MagellanDataset;

    fn tiny_embedders() -> Embedders {
        let profiles = vec![MagellanDataset::SBR.profile()];
        let domain_text = domain_text_sample(&profiles, 1);
        Embedders {
            families: EmbedderFamily::ALL
                .iter()
                .map(|&f| {
                    PretrainedTransformer::pretrain(
                        f,
                        &domain_text,
                        PretrainConfig {
                            corpus_sentences: 100,
                            steps: 10,
                            batch: 2,
                            seed: 1,
                            ..PretrainConfig::default()
                        },
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn table2_row_shape() {
        let p = MagellanDataset::SBR.profile();
        let row = table2_row(&p, 0.5, 3);
        assert_eq!(row.code, "S-BR");
        for (f1, hours) in row.systems {
            assert!((0.0..=100.0).contains(&f1));
            assert!(hours > 0.0);
        }
        assert!((0.0..=100.0).contains(&row.dm_f1));
        assert!(row.dm_hours < 0.5, "S-BR is tiny: {}", row.dm_hours);
    }

    #[test]
    fn grid_covers_modes_and_families() {
        let p = MagellanDataset::SBR.profile();
        let embedders = tiny_embedders();
        let cells = table3_rows(&p, &embedders, 0.25, 5, 0.2);
        assert_eq!(cells.len(), 2 * 5);
        assert!(cells
            .iter()
            .any(|c| c.mode == TokenizerMode::Hybrid && c.family == EmbedderFamily::Albert));
        for c in &cells {
            for f1 in c.f1 {
                assert!((0.0..=100.0).contains(&f1));
            }
        }
    }

    #[test]
    fn per_dataset_preserves_order() {
        let profiles: Vec<_> = em_data::magellan_benchmark().into_iter().take(4).collect();
        let codes = per_dataset(&profiles, |p| p.code);
        assert_eq!(codes, vec!["S-DG", "S-DA", "S-AG", "S-WA"]);
    }

    #[test]
    fn dataset_seed_is_stable_and_distinct() {
        assert_eq!(dataset_seed(1, "S-DG"), dataset_seed(1, "S-DG"));
        assert_ne!(dataset_seed(1, "S-DG"), dataset_seed(1, "S-DA"));
        assert_ne!(dataset_seed(1, "S-DG"), dataset_seed(2, "S-DG"));
    }
}
