//! Quick side-by-side probe: DeepMatcher vs Hybrid+Albert adapter with
//! AutoSklearn, across difficulty variants (calibration tool).
use bench::experiments::{adapter_run, pretrain_embedders};
use deepmatcher::{train_deepmatcher, TrainConfig};
use em_core::{Combiner, TokenizerMode};
use em_data::{DatasetProfile, MagellanDataset, Split};
use embed::families::EmbedderFamily;

fn main() {
    let profiles: Vec<DatasetProfile> = vec![
        MagellanDataset::SWA.profile(),
        MagellanDataset::SAG.profile(),
        MagellanDataset::TAB.profile(),
        MagellanDataset::SDA.profile(),
    ];
    let embedders = pretrain_embedders(&profiles, 42);
    let albert = embedders.get(EmbedderFamily::Albert);
    for base in profiles {
        for diff in [
            base.difficulty,
            base.difficulty * 0.75,
            base.difficulty * 0.55,
        ] {
            let p = DatasetProfile {
                difficulty: diff,
                ..base
            };
            let d = p.generate_scaled(9, 0.12);
            let dm = train_deepmatcher(
                &d,
                TrainConfig {
                    epochs: 10,
                    ..TrainConfig::default()
                },
            );
            let dmf1 = dm.f1_on(d.split(Split::Test));
            let ad = adapter_run(
                &d,
                albert,
                TokenizerMode::Hybrid,
                Combiner::Average,
                0,
                1.0,
                9,
            );
            println!(
                "{} diff {:.2}: DM {:.1}  adapter+ASk {:.1}",
                p.code, diff, dmf1, ad.test_f1
            );
        }
    }
}
