//! Microkernel perf-regression harness: times the linalg hot kernels at
//! the shapes the pipeline actually hits and writes `BENCH_kernels.json`,
//! seeding the benchmark trajectory every future PR is compared against.
//!
//! Kernels covered: blocked GEMM (plus the naive pre-microkernel
//! reference it must beat), both fused-transpose GEMM variants, matvec,
//! dot and cosine. Shapes: the 256³ regression anchor, batch×768
//! embedding projections, attention-head score/context products and a
//! tree-booster feature block.
//!
//! Methodology: fixed seeds, per-entry warmup, then `--iters k` timed
//! samples (each a fixed number of kernel calls); the reported
//! nanoseconds-per-iteration is the **median** sample, so a stray
//! scheduler hiccup cannot move the trajectory. Every sample also lands
//! in an `obs` histogram (`kernel_bench.<entry>.ms`) so bench runs share
//! the stack's observability surface.
//!
//! ```text
//! kernel_bench [--out <dir>] [--iters <k>] [--threads <list>] [--check]
//!              [--diff <baseline.json>] [--max-regress <pct>]
//! ```
//!
//! `--threads 1,2,4` (the default for full runs) benches the GEMM family
//! once per worker count; entry names carry the count (`gemm_256x256x256_t4`).
//! The naive reference and the single-threaded vector kernels are recorded
//! on the first pass only.
//!
//! `--check` runs a seconds-long smoke pass on small shapes — t1 and t2,
//! GEMMs and vector kernels — re-parses the JSON it wrote and asserts
//! every recorded number is finite — the CI `bench-smoke` job gate.
//!
//! `--diff <baseline.json>` compares the fresh run against a previously
//! committed `BENCH_kernels.json`: every same-name entry whose
//! `ns_per_iter` grew past `baseline × (1 + max_regress/100)` (default
//! 50%) is a regression, and the process exits non-zero listing them.
//! Entries only present on one side are reported but never fail the
//! gate (shape sets are allowed to evolve).

use linalg::{Matrix, Rng};
use std::time::Instant;

struct Entry {
    name: String,
    kernel: &'static str,
    shape: Vec<usize>,
    threads: usize,
    flops_per_iter: f64,
    ns_per_iter: f64,
    gflops: f64,
}

/// Time `f` (`calls` invocations per sample, `iters` samples, one warmup
/// sample) and return the median nanoseconds per invocation.
fn time_median(name: &str, iters: usize, calls: usize, mut f: impl FnMut()) -> f64 {
    let hist = obs::histogram(
        &format!("kernel_bench.{name}.ms"),
        &[0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0],
    );
    for _ in 0..calls {
        f(); // warmup sample, untimed
    }
    let mut samples_ns: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..calls {
                std::hint::black_box(&mut f)();
            }
            let ns = t0.elapsed().as_secs_f64() * 1e9 / calls as f64;
            hist.observe(ns / 1e6);
            ns
        })
        .collect();
    samples_ns.sort_by(|a, b| linalg::stats::nan_worst_cmp(*a, *b));
    samples_ns[samples_ns.len() / 2]
}

/// Scale per-sample call counts so every sample covers enough work to
/// dwarf clock granularity and scheduler hiccups — a floor of 4 calls
/// keeps even the largest GEMM shapes from degenerating into
/// single-call samples, whose medians wander by 2× on a shared vCPU.
fn calls_for(flops: f64) -> usize {
    ((2e8 / flops.max(1.0)) as usize).clamp(4, 4096)
}

#[allow(clippy::too_many_arguments)]
fn bench_entry(
    entries: &mut Vec<Entry>,
    name: &str,
    kernel: &'static str,
    shape: &[usize],
    threads: usize,
    iters: usize,
    flops_per_iter: f64,
    f: impl FnMut(),
) {
    let calls = calls_for(flops_per_iter);
    let ns = time_median(name, iters, calls, f);
    let gflops = flops_per_iter / ns;
    println!("{name:<34} threads={threads}  {ns:>12.0} ns/iter  {gflops:>8.2} GFLOP/s");
    entries.push(Entry {
        name: name.to_owned(),
        kernel,
        shape: shape.to_vec(),
        threads,
        flops_per_iter,
        ns_per_iter: ns,
        gflops,
    });
}

/// GEMM-family benches at one thread count. `m×k · k×n` counts
/// `2·m·k·n` flops (multiply + add). The naive pre-microkernel reference
/// is sequential by design, so it is only recorded on the t1 pass
/// (`with_reference`).
fn bench_gemms(
    entries: &mut Vec<Entry>,
    shapes: &[(usize, usize, usize)],
    iters: usize,
    with_reference: bool,
) {
    let threads = par::threads();
    for &(m, k, n) in shapes {
        let mut rng = Rng::new(0xBE9C);
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        let bt = b.transpose(); // n×k operand for the fused-Bᵀ kernel
        let flops = 2.0 * (m * k * n) as f64;
        let shape = [m, k, n];
        let name = |kernel: &str| format!("{kernel}_{m}x{k}x{n}_t{threads}");
        bench_entry(
            entries,
            &name("gemm"),
            "matmul",
            &shape,
            threads,
            iters,
            flops,
            || {
                std::hint::black_box(a.matmul(&b));
            },
        );
        if with_reference {
            bench_entry(
                entries,
                &name("gemm_reference"),
                "matmul_reference",
                &shape,
                threads,
                iters,
                flops,
                || {
                    std::hint::black_box(a.matmul_reference(&b));
                },
            );
        }
        bench_entry(
            entries,
            &name("gemm_tb"),
            "matmul_transpose_b",
            &shape,
            threads,
            iters,
            flops,
            || {
                std::hint::black_box(a.matmul_transpose_b(&bt));
            },
        );
        bench_entry(
            entries,
            &name("gemm_ta"),
            "matmul_transpose_a",
            &shape,
            threads,
            iters,
            flops,
            || {
                std::hint::black_box(a.transpose().matmul_transpose_a(&b));
            },
        );
    }
}

/// Single-threaded vector kernels (dot / cosine / matvec / matvec_t).
/// Names carry the `_t1` suffix like the GEMM rows so one naming scheme
/// covers the whole artifact.
fn bench_vector_kernels(entries: &mut Vec<Entry>, dim: usize, rows: usize, iters: usize) {
    let mut rng = Rng::new(0xD07);
    let x: Vec<f32> = (0..dim).map(|_| rng.normal()).collect();
    let y: Vec<f32> = (0..dim).map(|_| rng.normal()).collect();
    let m = Matrix::randn(rows, dim, 1.0, &mut rng);
    let v: Vec<f32> = (0..dim).map(|_| rng.normal()).collect();
    let vr: Vec<f32> = (0..rows).map(|_| rng.normal()).collect();
    bench_entry(
        entries,
        &format!("dot_{dim}_t1"),
        "vector::dot",
        &[dim],
        1,
        iters,
        2.0 * dim as f64,
        || {
            std::hint::black_box(linalg::vector::dot(&x, &y));
        },
    );
    bench_entry(
        entries,
        &format!("cosine_{dim}_t1"),
        "vector::cosine",
        &[dim],
        1,
        iters,
        6.0 * dim as f64,
        || {
            std::hint::black_box(linalg::vector::cosine(&x, &y));
        },
    );
    bench_entry(
        entries,
        &format!("matvec_{rows}x{dim}_t1"),
        "matvec",
        &[rows, dim],
        1,
        iters,
        2.0 * (rows * dim) as f64,
        || {
            std::hint::black_box(m.matvec(&v));
        },
    );
    bench_entry(
        entries,
        &format!("matvec_t_{rows}x{dim}_t1"),
        "matvec_t",
        &[rows, dim],
        1,
        iters,
        2.0 * (rows * dim) as f64,
        || {
            std::hint::black_box(m.matvec_t(&vr));
        },
    );
}

fn write_json(entries: &[Entry], iters: usize, out_dir: &str) -> std::path::PathBuf {
    let items = entries.iter().map(|e| {
        let mut o = obs::json::Obj::new();
        o.str("name", &e.name)
            .str("kernel", e.kernel)
            .raw(
                "shape",
                &obs::json::array(e.shape.iter().map(|d| d.to_string())),
            )
            .u64("threads", e.threads as u64)
            .f64("flops_per_iter", e.flops_per_iter)
            .f64("ns_per_iter", e.ns_per_iter)
            .f64("gflops", e.gflops);
        o.finish()
    });
    let mut root = obs::json::Obj::new();
    root.str("run", "kernel_bench")
        .u64("iters", iters as u64)
        .raw("entries", &obs::json::array(items));
    let json = root.finish();
    std::fs::create_dir_all(out_dir).expect("create output dir");
    let path = std::path::Path::new(out_dir).join("BENCH_kernels.json");
    std::fs::write(&path, &json).expect("write BENCH_kernels.json");
    path
}

/// Re-read the written file and assert it parses and every recorded
/// number is finite — the `--check` gate.
fn verify_artifact(path: &std::path::Path) {
    let text = std::fs::read_to_string(path).expect("read back artifact");
    let root = obs::json::parse(&text).expect("artifact must parse as JSON");
    let entries = match root.get("entries") {
        Some(obs::json::Json::Arr(items)) => items.clone(),
        other => panic!("entries array missing: {other:?}"),
    };
    assert!(!entries.is_empty(), "artifact has no entries");
    for e in &entries {
        let name = e
            .get("name")
            .and_then(|j| j.as_str())
            .expect("entry.name")
            .to_owned();
        for field in ["flops_per_iter", "ns_per_iter", "gflops"] {
            let v = e
                .get(field)
                .and_then(|j| j.as_f64())
                .unwrap_or_else(|| panic!("{name}.{field} missing or null"));
            assert!(v.is_finite() && v > 0.0, "{name}.{field} = {v}");
        }
    }
    println!("verified {} entries, all finite", entries.len());
}

/// Parse a `BENCH_kernels.json` into `name -> ns_per_iter`.
fn load_baseline(path: &str) -> std::collections::BTreeMap<String, f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let root = obs::json::parse(&text)
        .unwrap_or_else(|e| panic!("baseline {path} is not valid JSON: {e:?}"));
    let mut out = std::collections::BTreeMap::new();
    if let Some(obs::json::Json::Arr(items)) = root.get("entries") {
        for e in items {
            if let (Some(name), Some(ns)) = (
                e.get("name").and_then(|j| j.as_str()),
                e.get("ns_per_iter").and_then(|j| j.as_f64()),
            ) {
                out.insert(name.to_owned(), ns);
            }
        }
    }
    out
}

/// Gate the fresh entries against a committed baseline; returns the
/// number of regressions past the tolerance band.
fn diff_against_baseline(entries: &[Entry], baseline_path: &str, max_regress_pct: f64) -> usize {
    let baseline = load_baseline(baseline_path);
    let mut regressions = 0;
    println!("\ndiff vs {baseline_path} (tolerance +{max_regress_pct}%):");
    for e in entries {
        match baseline.get(&e.name) {
            Some(&base_ns) if base_ns > 0.0 => {
                let allowed = base_ns * (1.0 + max_regress_pct / 100.0);
                let delta_pct = (e.ns_per_iter - base_ns) / base_ns * 100.0;
                if e.ns_per_iter > allowed {
                    regressions += 1;
                    println!(
                        "  REGRESSED {:<34} {:>12.0} -> {:>12.0} ns/iter ({delta_pct:+.1}%)",
                        e.name, base_ns, e.ns_per_iter
                    );
                } else {
                    println!("  ok        {:<34} ({delta_pct:+.1}%)", e.name);
                }
            }
            _ => println!("  new       {:<34} (no baseline entry)", e.name),
        }
    }
    for name in baseline.keys() {
        if !entries.iter().any(|e| &e.name == name) {
            println!("  missing   {name:<34} (baseline only, not rerun)");
        }
    }
    regressions
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut out_dir = "results".to_owned();
    let mut iters = 9usize;
    let mut check = false;
    let mut threads_override: Option<Vec<usize>> = None;
    let mut diff_baseline: Option<String> = None;
    let mut max_regress = 50.0f64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_dir = args.get(i + 1).expect("--out needs a directory").clone();
                i += 2;
            }
            "--iters" => {
                iters = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .expect("--iters needs a positive integer");
                i += 2;
            }
            "--threads" => {
                let list: Vec<usize> = args
                    .get(i + 1)
                    .map(|v| {
                        v.split(',')
                            .map(|t| {
                                t.trim()
                                    .parse()
                                    .expect("--threads needs positive integers (e.g. 1,2,4)")
                            })
                            .collect()
                    })
                    .expect("--threads needs a thread-count list (e.g. 1,2,4)");
                assert!(
                    !list.is_empty() && list.iter().all(|&t| t > 0),
                    "--threads needs positive integers (e.g. 1,2,4)"
                );
                threads_override = Some(list);
                i += 2;
            }
            "--check" => {
                check = true;
                i += 1;
            }
            "--diff" => {
                diff_baseline = Some(
                    args.get(i + 1)
                        .expect("--diff needs a baseline BENCH_kernels.json path")
                        .clone(),
                );
                i += 2;
            }
            "--max-regress" => {
                max_regress = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .expect("--max-regress needs a percentage");
                assert!(
                    max_regress.is_finite() && max_regress >= 0.0,
                    "--max-regress must be a non-negative percentage"
                );
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(iters > 0, "--iters must be positive");

    let mut entries = Vec::new();
    if check {
        // smoke shapes: seconds, not minutes, but still through every
        // kernel — including one multithreaded GEMM pass and the vector
        // kernels, so the CI --diff gate covers the whole entry set
        iters = iters.min(3);
        let counts = threads_override.unwrap_or_else(|| vec![1, 2]);
        let smoke = [(32, 32, 32), (17, 13, 9)];
        for (pass, &t) in counts.iter().enumerate() {
            par::set_threads(t);
            bench_gemms(&mut entries, &smoke, iters, pass == 0);
            if pass == 0 {
                bench_vector_kernels(&mut entries, 64, 32, iters);
            }
            par::reset_threads();
        }
    } else {
        // shapes: the 256³ regression anchor, the batch×768 embedding
        // projection, attention-head score shapes and a tree-booster
        // feature block. One pass per requested worker count (default
        // t1/t2/t4); the naive reference and the single-threaded vector
        // kernels ride on the first pass only.
        let shapes = [
            (256, 256, 256),
            (64, 768, 768),
            (128, 64, 128),
            (2048, 32, 8),
        ];
        let counts = threads_override.unwrap_or_else(|| vec![1, 2, 4]);
        for (pass, &t) in counts.iter().enumerate() {
            par::set_threads(t);
            bench_gemms(&mut entries, &shapes, iters, pass == 0 && t == 1);
            if pass == 0 {
                bench_vector_kernels(&mut entries, 768, 768, iters);
            }
            par::reset_threads();
        }
    }

    let path = write_json(&entries, iters, &out_dir);
    println!("wrote {}", path.display());
    if check {
        verify_artifact(&path);
        println!("kernel_bench --check OK");
    }
    if let Some(baseline) = diff_baseline {
        let regressions = diff_against_baseline(&entries, &baseline, max_regress);
        if regressions > 0 {
            eprintln!("kernel_bench --diff: {regressions} kernel(s) regressed");
            std::process::exit(1);
        }
        println!("kernel_bench --diff OK");
    }
}
