//! Parallelism probe: the determinism-contract demo for the `par` pool.
//!
//! Runs the **same Table-2-sized engine fit twice** — once on 1 worker
//! thread, once on 4 — and verifies the two runs are *byte-identical*:
//! same [`FitReport`] (F1, threshold, budget charges, full leaderboard)
//! and same prediction vector. Threads may only change wall-clock time.
//!
//! The manifest (written to `--out`, default `results/`) records:
//!
//! * `wall_secs_t1` / `wall_secs_t4` / `wall_speedup` — measured
//!   wall-clock. On a machine with ≥ 4 cores this shows the ≥ 2x speedup;
//!   on fewer cores it is bounded by the hardware (`cores` is recorded so
//!   the number can be judged in context).
//! * `scheduled_parallelism_t4` — worker busy-time divided by wall-clock
//!   during the 4-thread fit: how many workers the pool actually kept
//!   loaded. This is the hardware-independent half of the claim — it must
//!   be ≥ 2 for the probe to pass, whatever the core count.
//! * `identical_reports` / `identical_predictions` — the determinism
//!   contract, asserted as well as recorded.

use automl::halving::SuccessiveHalving;
use automl::{AutoMlSystem, Budget, FitReport};
use bench::Cli;
use linalg::{Matrix, Rng};
use ml::dataset::TabularData;
use std::time::Instant;

/// Synthetic two-blob match/non-match data at Table-2 scale (the Magellan
/// structured datasets run a few hundred to a few thousand pairs).
fn blob_data(n: usize, seed: u64) -> TabularData {
    let mut rng = Rng::new(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let pos = rng.chance(0.25);
        let c = if pos { 1.1f32 } else { -1.1 };
        let row: Vec<f32> = (0..12)
            .map(|j| {
                if j % 3 == 0 {
                    c + rng.normal()
                } else {
                    rng.normal()
                }
            })
            .collect();
        rows.push(row);
        y.push(if pos { 1.0 } else { 0.0 });
    }
    TabularData::new(Matrix::from_rows(&rows), y)
}

/// One engine fit at a fixed worker count. Returns the report, the
/// prediction vector and `(wall seconds, worker busy seconds)`.
fn run_fit(
    threads: usize,
    seed: u64,
    train: &TabularData,
    valid: &TabularData,
) -> (FitReport, Vec<f32>, f64, f64) {
    par::set_threads(threads);
    let busy0 = obs::counter("par.busy_us").get();
    let t0 = Instant::now();
    let mut sys = SuccessiveHalving::new(seed);
    let mut budget = Budget::hours(24.0).expect("valid probe budget");
    let report = sys
        .fit(train, valid, &mut budget)
        .expect("probe fit failed");
    let wall = t0.elapsed().as_secs_f64();
    let busy = (obs::counter("par.busy_us").get() - busy0) as f64 / 1e6;
    let probs = sys.predict_proba(&valid.x);
    par::reset_threads();
    (report, probs, wall, busy)
}

fn main() {
    let cli = Cli::parse();
    let out_dir = cli.out.clone().unwrap_or_else(|| "results".to_owned());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let train = blob_data(6000, cli.seed ^ 0x9A);
    let valid = blob_data(1500, cli.seed ^ 0x9B);

    let (report1, probs1, wall1, _) = run_fit(1, cli.seed, &train, &valid);
    let (report4, probs4, wall4, busy4) = run_fit(4, cli.seed, &train, &valid);

    let identical_reports = report1 == report4;
    let identical_predictions = probs1 == probs4;
    let wall_speedup = wall1 / wall4;
    let scheduled = busy4 / wall4;

    println!(
        "par_probe — SuccessiveHalving fit, {} train pairs",
        train.len()
    );
    println!("  threads=1: {wall1:>7.2}s  val F1 {:.2}", report1.val_f1);
    println!("  threads=4: {wall4:>7.2}s  val F1 {:.2}", report4.val_f1);
    println!("  wall-clock speedup        {wall_speedup:.2}x  ({cores} core(s) available)");
    println!("  scheduled parallelism     {scheduled:.2} workers busy");
    println!("  identical reports         {identical_reports}");
    println!("  identical predictions     {identical_predictions}");
    if cores < 4 {
        println!(
            "  note: wall-clock speedup is bounded by the {cores} available \
             core(s); scheduled parallelism shows the speedup realized once \
             >= 4 cores exist"
        );
    }

    assert!(identical_reports, "FitReport changed with the thread count");
    assert!(
        identical_predictions,
        "predictions changed with the thread count"
    );
    assert!(
        scheduled >= 2.0,
        "pool kept only {scheduled:.2} workers busy on 4 threads"
    );
    if cores >= 4 {
        assert!(
            wall_speedup >= 2.0,
            "expected >= 2x wall-clock speedup on {cores} cores, got {wall_speedup:.2}x"
        );
    }

    let mut manifest = obs::Manifest::new("par_probe");
    manifest
        .config("seed", obs::Value::U64(cli.seed))
        .config("train_pairs", obs::Value::U64(train.len() as u64))
        .config("cores", obs::Value::U64(cores as u64))
        .config("wall_secs_t1", obs::Value::F64(wall1))
        .config("wall_secs_t4", obs::Value::F64(wall4))
        .config("wall_speedup", obs::Value::F64(wall_speedup))
        .config("scheduled_parallelism_t4", obs::Value::F64(scheduled))
        .config("val_f1", obs::Value::F64(report1.val_f1))
        .config(
            "leaderboard_len",
            obs::Value::U64(report1.leaderboard.len() as u64),
        )
        .config("identical_reports", obs::Value::Bool(identical_reports))
        .config(
            "identical_predictions",
            obs::Value::Bool(identical_predictions),
        );
    match manifest.write_to(&out_dir) {
        Ok(path) => println!("(wrote {})", path.display()),
        Err(e) => eprintln!("warning: could not write manifest: {e}"),
    }
}
