//! Regenerates **Table 3 (a, b, c)**: F1 of the EM adapter for every
//! combination of tokenizer (Attr / Hybrid), embedder family (Bert, DBert,
//! Albert, Roberta, XLNET) and AutoML system — one sub-table per system,
//! exactly as the paper lays them out.

use bench::experiments::{
    dataset_seed, per_dataset, pretrain_embedders, table3_rows, SYSTEM_NAMES,
};
use bench::report::{emit, f1, finish_run, Table};
use bench::Cli;
use em_core::TokenizerMode;
use embed::families::EmbedderFamily;

fn main() {
    let cli = Cli::parse();
    let profiles = cli.profiles();
    eprintln!("pretraining the 5 embedder families…");
    let embedders = pretrain_embedders(&profiles, cli.seed);
    eprintln!("running the adapter grid…");
    let all_cells = per_dataset(&profiles, |p| {
        table3_rows(
            p,
            &embedders,
            cli.scale,
            dataset_seed(cli.seed, p.code),
            1.0,
        )
    });

    for (sys_idx, sys_name) in SYSTEM_NAMES.iter().enumerate() {
        let mut header: Vec<String> = vec!["Dataset".into()];
        for mode in TokenizerMode::EVALUATED {
            for fam in EmbedderFamily::ALL {
                header.push(format!("{}:{}", mode.label(), fam.label()));
            }
        }
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = Table::new(
            &format!(
                "Table 3{} - EM-Adapter with {sys_name}",
                ["a", "b", "c"][sys_idx]
            ),
            &header_refs,
        );
        for (p, cells) in profiles.iter().zip(&all_cells) {
            let mut row = vec![p.code.to_owned()];
            for mode in TokenizerMode::EVALUATED {
                for fam in EmbedderFamily::ALL {
                    let cell = cells
                        .iter()
                        .find(|c| c.mode == mode && c.family == fam)
                        .expect("grid complete");
                    row.push(f1(cell.f1[sys_idx]));
                }
            }
            table.row(row);
        }
        emit(&table, cli.out.as_deref());
    }

    // summary: which embedder wins most often (paper: Albert on 7-8/12)
    for (sys_idx, sys_name) in SYSTEM_NAMES.iter().enumerate() {
        let mut wins = [0usize; 5];
        for cells in &all_cells {
            let best = cells
                .iter()
                .max_by(|a, b| linalg::stats::nan_worst_cmp(a.f1[sys_idx], b.f1[sys_idx]))
                .expect("at least one embedder family per dataset");
            let fam_idx = EmbedderFamily::ALL
                .iter()
                .position(|&f| f == best.family)
                .unwrap();
            wins[fam_idx] += 1;
        }
        let winners: Vec<String> = EmbedderFamily::ALL
            .iter()
            .zip(wins)
            .map(|(f, w)| format!("{}:{w}", f.label()))
            .collect();
        println!("{sys_name}: best-embedder counts — {}", winners.join(" "));
    }
    finish_run("table3", &cli);
}
