//! Regenerates **Table 1**: the Magellan benchmark inventory — dataset
//! type, size and match percentage — and verifies the generated datasets
//! actually hit those numbers.

use bench::report::{emit, finish_run, Table};
use bench::Cli;
use em_data::Split;

fn main() {
    let cli = Cli::parse();
    let mut table = Table::new(
        "Table 1 - Magellan Benchmark",
        &[
            "Dataset",
            "Type",
            "Datasets",
            "Size",
            "% Match",
            "gen size",
            "gen % match",
            "train/valid/test",
        ],
    );
    for p in cli.profiles() {
        let d = p.generate_scaled(
            bench::experiments::dataset_seed(cli.seed, p.code),
            bench::experiments::effective_scale(&p, cli.scale),
        );
        table.row(vec![
            p.code.to_owned(),
            p.kind.to_string(),
            p.source.to_owned(),
            p.size.to_string(),
            format!("{:.2}", p.match_pct),
            d.len().to_string(),
            format!("{:.2}", d.match_ratio() * 100.0),
            format!(
                "{}/{}/{}",
                d.split(Split::Train).len(),
                d.split(Split::Validation).len(),
                d.split(Split::Test).len()
            ),
        ]);
    }
    emit(&table, cli.out.as_deref());
    println!(
        "(scale {} — paper columns 'Size'/'% Match' are the Table 1 targets,\n the gen columns are what the synthetic generator produced)",
        cli.scale
    );
    finish_run("table1", &cli);
}
