//! Regenerates **Table 4**: the impact of the EM adapter — for each
//! dataset and AutoML system, the F1 without any adapter (the Table 2 raw
//! path), the average F1 of the attribute-based adapters and of the hybrid
//! adapters (across the five embedder families), and the Δ between the
//! adapter average and the raw baseline.
//!
//! Because Table 4 already computes the full adapter grid, this binary
//! also emits the **Table 3 a/b/c** sub-tables — running `table4` alone
//! regenerates both artifacts in one pass (the standalone `table3` binary
//! remains for grid-only runs).

use bench::experiments::{
    dataset_seed, per_dataset, pretrain_embedders, table2_row, table3_rows, SYSTEM_NAMES,
};
use bench::report::{emit, f1, finish_run, Table};
use bench::Cli;
use em_core::TokenizerMode;
use embed::families::EmbedderFamily;

fn main() {
    let cli = Cli::parse();
    let profiles = cli.profiles();
    eprintln!("pretraining the 5 embedder families…");
    let embedders = pretrain_embedders(&profiles, cli.seed);
    eprintln!("running raw baselines and adapter grids…");
    let results = per_dataset(&profiles, |p| {
        let seed = dataset_seed(cli.seed, p.code);
        let raw = table2_row(p, cli.scale, seed);
        let grid = table3_rows(p, &embedders, cli.scale, seed, 1.0);
        (raw, grid)
    });

    // --- Table 3 sub-tables (the grid is already computed) ---------------
    for (sys_idx, sys_name) in SYSTEM_NAMES.iter().enumerate() {
        let mut header: Vec<String> = vec!["Dataset".into()];
        for mode in TokenizerMode::EVALUATED {
            for fam in EmbedderFamily::ALL {
                header.push(format!("{}:{}", mode.label(), fam.label()));
            }
        }
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t3 = Table::new(
            &format!(
                "Table 3{} - EM-Adapter with {sys_name}",
                ["a", "b", "c"][sys_idx]
            ),
            &header_refs,
        );
        for (p, (_, grid)) in profiles.iter().zip(&results) {
            let mut row = vec![p.code.to_owned()];
            for mode in TokenizerMode::EVALUATED {
                for fam in EmbedderFamily::ALL {
                    let cell = grid
                        .iter()
                        .find(|c| c.mode == mode && c.family == fam)
                        .expect("grid complete");
                    row.push(f1(cell.f1[sys_idx]));
                }
            }
            t3.row(row);
        }
        emit(&t3, cli.out.as_deref());
    }

    // --- Table 4 ------------------------------------------------------------
    let mut header: Vec<String> = vec!["Dataset".into()];
    for sys in SYSTEM_NAMES {
        header.push(format!("{sys}:None"));
        header.push(format!("{sys}:Attr"));
        header.push(format!("{sys}:Hybrid"));
        header.push(format!("{sys}:Delta"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Table 4 - Impact of EM-Adapter on AutoML performance",
        &header_refs,
    );

    let mut delta_sums = [0.0f64; 3];
    for (p, (raw, grid)) in profiles.iter().zip(&results) {
        let mut row = vec![p.code.to_owned()];
        for (sys_idx, delta_sum) in delta_sums.iter_mut().enumerate() {
            let none = raw.systems[sys_idx].0;
            let avg_of = |mode: TokenizerMode| {
                let vals: Vec<f64> = grid
                    .iter()
                    .filter(|c| c.mode == mode)
                    .map(|c| c.f1[sys_idx])
                    .collect();
                linalg::stats::mean(&vals)
            };
            let attr = avg_of(TokenizerMode::AttributeBased);
            let hybrid = avg_of(TokenizerMode::Hybrid);
            let delta = (attr + hybrid) / 2.0 - none;
            *delta_sum += delta;
            row.push(f1(none));
            row.push(f1(attr));
            row.push(f1(hybrid));
            row.push(format!("{delta:+.2}"));
        }
        table.row(row);
    }
    emit(&table, cli.out.as_deref());
    let n = profiles.len().max(1) as f64;
    println!("Average adapter Δ per system (paper: +24.96 / +28.02 / +23.60):");
    for (name, d) in SYSTEM_NAMES.iter().zip(delta_sums) {
        println!("  {name:12} {:+.2}", d / n);
    }
    finish_run("table4", &cli);
}
