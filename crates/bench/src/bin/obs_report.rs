//! Run observatory CLI: render where a run's budget went, gate A/B
//! regressions, and measure the tracing overhead contract.
//!
//! ```text
//! obs_report <run_dir>                  render the report for one run
//! obs_report --diff <A> <B>             compare two runs' phase shares;
//!           [--max-regress <pct>]       exit 1 when any phase's share of
//!                                       its scope grew past the band
//!                                       (default 25%, + 0.5pp slack)
//! obs_report --bench [--out <dir>]      run one fixed-seed search twice
//!           [--seed <n>]                (trace off, then on), assert the
//!                                       FitReport is byte-identical,
//!                                       write BENCH_obs.json with the
//!                                       phase breakdown + overhead
//! ```
//!
//! A "run directory" is a table binary's `--out` directory: the
//! `<run>_manifest.json` (span tree + cost ledger) plus, when traced,
//! `trace.json` / `trace.folded`.

use automl::{AutoMlSystem, Budget, Deadline, ResumePolicy};
use bench::obsreport::{diff_runs, load_run, phase_shares, render_report};
use em_core::{Combiner, EmAdapter, TokenizerMode};
use em_data::{MagellanDataset, Split};
use embed::families::{EmbedderFamily, PretrainConfig, PretrainedTransformer};
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

fn report_mode(dir: &str) -> ExitCode {
    match load_run(Path::new(dir)) {
        Ok(data) => {
            print!("{}", render_report(&data));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs_report: {e}");
            ExitCode::FAILURE
        }
    }
}

fn diff_mode(a: &str, b: &str, max_regress_pct: f64) -> ExitCode {
    let (base, cand) = match (load_run(Path::new(a)), load_run(Path::new(b))) {
        (Ok(base), Ok(cand)) => (base, cand),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("obs_report: {e}");
            return ExitCode::FAILURE;
        }
    };
    let regs = diff_runs(&base, &cand, max_regress_pct);
    if regs.is_empty() {
        println!(
            "obs_report --diff OK: no phase share grew past {max_regress_pct}% \
             (baseline `{}` vs candidate `{}`)",
            base.run, cand.run
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "obs_report --diff: {} phase regression(s) past {max_regress_pct}%:",
            regs.len()
        );
        for r in &regs {
            eprintln!("  {r}");
        }
        ExitCode::FAILURE
    }
}

/// One fixed-seed encode+search, fresh adapter cache and fresh journal
/// each call so the two measured runs do identical work. Returns the
/// debug rendering of the [`automl::FitReport`] (the byte-identity
/// fingerprint) and the wall seconds.
fn bench_run_once(
    embedder: &PretrainedTransformer,
    dataset: &em_data::EmDataset,
    seed: u64,
    journal: &Path,
) -> (String, f64) {
    let _ = std::fs::remove_file(journal);
    let adapter = EmAdapter::new(TokenizerMode::Hybrid, embedder, Combiner::Average);
    let started = Instant::now();
    let train = adapter.encode_split(dataset, Split::Train);
    let valid = adapter.encode_split(dataset, Split::Validation);
    let mut sys = automl::sklearn_like::AutoSklearnStyle::new(seed);
    let mut budget = Budget::hours(0.3).expect("static budget");
    let report = sys
        .fit_resumable(
            &train,
            &valid,
            &mut budget,
            &ResumePolicy::Resume(journal.to_path_buf()),
            Deadline::none(),
        )
        .expect("bench search failed");
    (format!("{report:?}"), started.elapsed().as_secs_f64())
}

fn bench_mode(out_dir: &str, seed: u64) -> ExitCode {
    // one small pretrained embedder + dataset, shared by all three runs
    let profile = MagellanDataset::SBR.profile();
    let dataset = profile.generate_scaled(seed, 1.0);
    let domain_text: Vec<String> = dataset
        .pairs()
        .iter()
        .take(200)
        .flat_map(|p| [p.left.flatten(), p.right.flatten()])
        .collect();
    let embedder = PretrainedTransformer::pretrain(
        EmbedderFamily::Albert,
        &domain_text,
        PretrainConfig {
            seed,
            steps: 20,
            corpus_sentences: 200,
            ..PretrainConfig::default()
        },
    );
    let journal = std::env::temp_dir().join(format!("obs_report_bench_{seed}.jsonl"));

    // warmup run (untimed: page faults, allocator growth)
    obs::reset();
    obs::trace::set_enabled(false);
    let _ = bench_run_once(&embedder, &dataset, seed, &journal);

    // measured run, tracing off — its ledger is the committed breakdown
    obs::reset();
    let (fp_off, wall_off) = bench_run_once(&embedder, &dataset, seed, &journal);
    let ledger = obs::ledger_snapshot();

    // measured run, tracing on
    obs::reset();
    obs::trace::set_enabled(true);
    let (fp_on, wall_on) = bench_run_once(&embedder, &dataset, seed, &journal);
    obs::trace::set_enabled(false);
    let _ = std::fs::remove_file(&journal);

    assert_eq!(
        fp_off, fp_on,
        "FitReport must be byte-identical with tracing on and off"
    );
    let overhead_pct = (wall_on - wall_off) / wall_off * 100.0;
    println!(
        "trace off {wall_off:.3}s, trace on {wall_on:.3}s, overhead {overhead_pct:+.2}% \
         (FitReport byte-identical)"
    );

    // persist trace files + the benchmark artifact
    std::fs::create_dir_all(out_dir).expect("create output dir");
    match obs::write_trace_files(out_dir) {
        Ok((json, folded)) => println!("wrote {} and {}", json.display(), folded.display()),
        Err(e) => eprintln!("warning: could not write trace files: {e}"),
    }
    let rows: Vec<bench::obsreport::LedgerRow> = ledger
        .iter()
        .map(|e| bench::obsreport::LedgerRow {
            scope: e.scope.clone(),
            phase: e.phase.to_owned(),
            ns: e.ns,
            count: e.count,
        })
        .collect();
    let items = phase_shares(&rows).into_iter().map(|s| {
        let mut o = obs::json::Obj::new();
        o.str("scope", &s.scope)
            .str("phase", &s.phase)
            .u64("ns", s.ns)
            .f64("share_pct", s.share_pct);
        o.finish()
    });
    let mut root = obs::json::Obj::new();
    root.str("run", "obs_bench")
        .u64("seed", seed)
        .f64("wall_off_s", wall_off)
        .f64("wall_on_s", wall_on)
        .f64("trace_overhead_pct", overhead_pct)
        .bool("report_identical", true)
        .raw("phases", &obs::json::array(items));
    let path = Path::new(out_dir).join("BENCH_obs.json");
    std::fs::write(&path, root.finish()).expect("write BENCH_obs.json");
    println!("wrote {}", path.display());
    if overhead_pct >= 5.0 {
        eprintln!("warning: tracing overhead {overhead_pct:.2}% is above the 5% contract");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let mut run_dir: Option<String> = None;
    let mut diff: Option<(String, String)> = None;
    let mut max_regress = 25.0f64;
    let mut bench = false;
    let mut out_dir = "results".to_owned();
    let mut seed = 42u64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--diff" => {
                let a = args.get(i + 1).expect("--diff needs two run dirs").clone();
                let b = args.get(i + 2).expect("--diff needs two run dirs").clone();
                diff = Some((a, b));
                i += 3;
            }
            "--max-regress" => {
                max_regress = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .expect("--max-regress needs a percentage");
                assert!(
                    max_regress.is_finite() && max_regress >= 0.0,
                    "--max-regress must be a non-negative percentage"
                );
                i += 2;
            }
            "--bench" => {
                bench = true;
                i += 1;
            }
            "--out" => {
                out_dir = args.get(i + 1).expect("--out needs a directory").clone();
                i += 2;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
                i += 2;
            }
            other if !other.starts_with('-') && run_dir.is_none() => {
                run_dir = Some(other.to_owned());
                i += 1;
            }
            other => panic!(
                "unknown argument {other} \
                 (try <run_dir> | --diff A B [--max-regress pct] | --bench [--out dir] [--seed n])"
            ),
        }
    }
    if bench {
        bench_mode(&out_dir, seed)
    } else if let Some((a, b)) = diff {
        diff_mode(&a, &b, max_regress)
    } else if let Some(dir) = run_dir {
        report_mode(&dir)
    } else {
        eprintln!(
            "usage: obs_report <run_dir> | --diff <A> <B> [--max-regress <pct>] \
             | --bench [--out <dir>] [--seed <n>]"
        );
        ExitCode::FAILURE
    }
}
