//! Regenerates **Table 2**: effectiveness of raw AutoML systems (1-hour
//! budget, word2vec preprocessing, no EM adapter) against DeepMatcher
//! (Hybrid) on all 12 datasets — F1 and training time per system.

use bench::experiments::{dataset_seed, per_dataset, table2_row, SYSTEM_NAMES};
use bench::report::{emit, f1, finish_run, hours, Table};
use bench::Cli;

fn main() {
    let cli = Cli::parse();
    let profiles = cli.profiles();
    let rows = per_dataset(&profiles, |p| {
        table2_row(p, cli.scale, dataset_seed(cli.seed, p.code))
    });

    let mut table = Table::new(
        "Table 2 - Effectiveness of AutoML systems in EM tasks",
        &[
            "Dataset",
            "AutoSklearn F1",
            "(h)",
            "AutoGluon F1",
            "(h)",
            "H2OAutoML F1",
            "(h)",
            "DeepMatcher F1",
            "(h)",
        ],
    );
    let mut avgs = [0.0f64; 4];
    for row in &rows {
        table.row(vec![
            row.code.to_owned(),
            f1(row.systems[0].0),
            hours(row.systems[0].1),
            f1(row.systems[1].0),
            hours(row.systems[1].1),
            f1(row.systems[2].0),
            hours(row.systems[2].1),
            f1(row.dm_f1),
            hours(row.dm_hours),
        ]);
        for (avg, sys) in avgs.iter_mut().zip(&row.systems) {
            *avg += sys.0;
        }
        avgs[3] += row.dm_f1;
    }
    let n = rows.len().max(1) as f64;
    emit(&table, cli.out.as_deref());
    println!("Average F1 — raw AutoML vs DeepMatcher (paper: ~49-52 vs 80.4):");
    for (i, name) in SYSTEM_NAMES.iter().enumerate() {
        println!("  {name:12} {:.2}", avgs[i] / n);
    }
    println!("  {:12} {:.2}", "DeepMatcher", avgs[3] / n);
    finish_run("table2", &cli);
}
