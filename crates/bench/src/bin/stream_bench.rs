//! Benchmark + CI smoke gate for the continuous-EM streaming layer
//! (`em-stream`): replay-from-ledger cold start, live ingest throughput,
//! embedding-cache invalidation cost, and a drift-triggered background
//! re-search promoted through `em-serve`'s hot-swap under client load.
//!
//! The run is anchored on a **committed fixture ledger**
//! (`tests/fixtures/stream_ledger.jsonl`): phase 1 replays it cold and
//! proves the derived-state digest is reproducible across two
//! independent replays; phase 4 replays it again, then injects a
//! drifting live stream on top until the drift monitor fires, the
//! background re-search finishes and the bundle is promoted — while
//! keep-alive clients hammer `/match` with the same
//! exactly-one-correct-response accounting as `serve_bench` (every 200
//! is bit-identical to the offline predict of the model named by its
//! `x-model-version`; version rollbacks and non-200s count as bad).
//!
//! Results land in `BENCH_stream.json` with one row per phase: ingest
//! throughput (events/s, replay and live), invalidation cost (ns/op
//! cached vs invalidate+recompute) and promotion latency (research_ms +
//! promote_ms).
//!
//! ```text
//! stream_bench [--out <dir>] [--fixture <path>] [--events <n>] [--check]
//!              [--write-fixture]
//! ```
//!
//! `--write-fixture` regenerates the fixture ledger from the canonical
//! scenario (a pure function of its config — the file is committable)
//! and exits. `--check` re-parses the JSON it wrote and exits non-zero
//! on any drop, mismatch, missed promotion or non-finite number — the
//! CI `stream-smoke` job gate.

use em_core::model::{load_model, ModelSpec};
use em_data::{BlockerConfig, RecordPair, Schema, Side, Split};
use em_serve::{serve, ServeConfig};
use em_stream::{
    generate_events, ContinuousConfig, ContinuousEm, DriftConfig, RecordEvent, RecordLedger,
    ScenarioConfig, StreamState,
};
use embed::cache::EmbeddingCache;
use embed::HashingEmbedder;
use obs::json::{self, Json};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Per-client observation log: (bad-response count, then for every good
/// response its request index, `x-model-version`, and score bits).
type ClientObs = Vec<(usize, Vec<(usize, u64, u32)>)>;

/// The canonical fixture scenario: a stable (never-drifting) history
/// whose replay is the cold-start phase. Changing this invalidates the
/// committed `tests/fixtures/stream_ledger.jsonl` — regenerate it with
/// `--write-fixture`.
const FIXTURE_SCENARIO: ScenarioConfig = ScenarioConfig {
    seed: 2026,
    initial_pairs: 16,
    events: 120,
    drift_after: usize::MAX,
    noise: 0.2,
};

/// Id offset for live events injected on top of the replayed fixture,
/// keeping the two id spaces disjoint.
const LIVE_ID_BASE: u64 = 1_000_000;

struct Args {
    out: String,
    fixture: String,
    events: usize,
    check: bool,
    write_fixture: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        out: "results".to_owned(),
        fixture: "tests/fixtures/stream_ledger.jsonl".to_owned(),
        events: 2_000,
        check: false,
        write_fixture: false,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        let value = |i: usize| argv.get(i + 1).cloned().unwrap_or_default();
        match argv[i].as_str() {
            "--out" => {
                a.out = value(i);
                i += 2;
            }
            "--fixture" => {
                a.fixture = value(i);
                i += 2;
            }
            "--events" => {
                a.events = value(i).parse().expect("--events needs an integer");
                i += 2;
            }
            "--check" => {
                a.check = true;
                a.events = a.events.min(1_000);
                i += 1;
            }
            "--write-fixture" => {
                a.write_fixture = true;
                i += 1;
            }
            other => panic!("unknown flag {other}"),
        }
    }
    a
}

fn base_spec() -> ModelSpec {
    // small scale + tiny budget: the promotion phase retrains live
    ModelSpec {
        scale: 0.3,
        budget_hours: 0.1,
        ..ModelSpec::fixture()
    }
}

fn fixture_schema() -> Schema {
    base_spec().dataset.profile().domain().schema()
}

fn fixture_events() -> Vec<RecordEvent> {
    let domain = base_spec().dataset.profile().domain();
    generate_events(domain.as_ref(), &FIXTURE_SCENARIO)
}

/// `--write-fixture`: (re)generate the committed fixture ledger.
fn write_fixture(path: &Path) {
    let schema = fixture_schema();
    let events = fixture_events();
    let mut ledger = RecordLedger::create(path, &schema).expect("create fixture ledger");
    for ev in &events {
        ledger.append(ev).expect("append");
    }
    ledger.sync().expect("sync");
    println!(
        "wrote {} ({} events, schema {})",
        path.display(),
        events.len(),
        em_stream::schema_fingerprint(&schema)
    );
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stream_bench_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create work dir");
    dir
}

// ------------------------------------------------------------- HTTP client

fn read_one_response(stream: &mut TcpStream) -> String {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
            let need: usize = head
                .lines()
                .find_map(|l| {
                    let (k, v) = l.split_once(':')?;
                    k.eq_ignore_ascii_case("content-length")
                        .then(|| v.trim().parse().ok())?
                })
                .unwrap_or(0);
            if buf.len() >= head_end + 4 + need {
                return String::from_utf8_lossy(&buf[..head_end + 4 + need]).to_string();
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return String::from_utf8_lossy(&buf).to_string(),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read failed: {e}"),
        }
    }
}

fn roundtrip(addr: SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw).expect("write");
    read_one_response(&mut stream)
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

fn header_of(response: &str, name: &str) -> Option<String> {
    let head = response.split("\r\n\r\n").next()?;
    head.lines().skip(1).find_map(|l| {
        let (k, v) = l.split_once(':')?;
        k.trim()
            .eq_ignore_ascii_case(name)
            .then(|| v.trim().to_string())
    })
}

fn post(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn pair_body(schema: &Schema, pair: &RecordPair) -> String {
    let entity = |e: &em_data::Entity| {
        let mut o = json::Obj::new();
        for (i, attr) in schema.attributes().iter().enumerate() {
            if let Some(v) = e.value(i) {
                o.str(&attr.name, v);
            }
        }
        o.finish()
    };
    let mut o = json::Obj::new();
    o.raw("left", &entity(&pair.left))
        .raw("right", &entity(&pair.right));
    o.finish()
}

// ------------------------------------------------------------------ phases

/// Phase 1: replay the committed fixture ledger cold, twice, and time
/// the fold. The two digests must agree — replay is a pure function.
fn phase_replay(fixture: &Path) -> String {
    let schema = fixture_schema();
    let replay_once = || {
        let started = Instant::now();
        let replay = RecordLedger::replay(fixture, &schema).expect("replay fixture ledger");
        let mut state = StreamState::new(schema.clone(), BlockerConfig::default());
        for ev in &replay.events {
            state.apply(ev, None).expect("fixture event rejected");
        }
        (replay, state, started.elapsed())
    };
    let (replay, state, elapsed) = replay_once();
    let (_, state2, _) = replay_once();
    assert_eq!(
        state.digest(),
        state2.digest(),
        "two replays of the same ledger diverged"
    );
    let events = replay.events.len();
    let secs = elapsed.as_secs_f64().max(1e-9);
    println!(
        "replay: {events} events in {:.2} ms ({:.0} events/s), digest {}",
        secs * 1e3,
        events as f64 / secs,
        state.digest()
    );
    let mut o = json::Obj::new();
    o.str("phase", "replay_cold_start")
        .u64("events", events as u64)
        .f64("ms", secs * 1e3)
        .f64("events_per_sec", events as f64 / secs)
        .u64("truncated_bytes", replay.truncated_bytes)
        .str("digest", &state.digest())
        .u64("candidates", state.blocker().candidate_count() as u64);
    o.finish()
}

/// Phase 2: live ingest throughput through the full `ContinuousEm` path
/// (validate + apply + ledger append, fsync every 64 events).
fn phase_ingest(events: usize) -> String {
    let dir = tmp_dir("ingest");
    let spec = base_spec();
    let domain = spec.dataset.profile().domain();
    let stream = generate_events(
        domain.as_ref(),
        &ScenarioConfig {
            seed: 7,
            initial_pairs: 16,
            events,
            drift_after: usize::MAX, // throughput of the stable regime
            noise: 0.2,
        },
    );
    let mut em = ContinuousEm::open(
        spec,
        ContinuousConfig {
            drift: DriftConfig {
                window_events: usize::MAX, // never evaluate: pure ingest
                ..DriftConfig::default()
            },
            ..ContinuousConfig::new(dir.clone())
        },
        Box::new(|_| Ok(0)),
    )
    .expect("open ingest instance");
    let started = Instant::now();
    let mut fsyncs = 0u64;
    for (i, ev) in stream.iter().enumerate() {
        em.ingest(ev).expect("ingest");
        if i % 64 == 63 {
            em.sync().expect("sync");
            fsyncs += 1;
        }
    }
    em.sync().expect("sync");
    fsyncs += 1;
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    let n = stream.len();
    println!(
        "ingest: {n} events in {:.2} ms ({:.0} events/s, {fsyncs} fsyncs)",
        secs * 1e3,
        n as f64 / secs
    );
    std::fs::remove_dir_all(&dir).ok();
    let mut o = json::Obj::new();
    o.str("phase", "live_ingest")
        .u64("events", n as u64)
        .f64("ms", secs * 1e3)
        .f64("events_per_sec", n as f64 / secs)
        .u64("fsyncs", fsyncs);
    o.finish()
}

/// Phase 3: the cost the cache-invalidation protocol actually trades
/// on — a warm id-keyed encode vs an update (invalidate) followed by
/// the forced recompute.
fn phase_invalidation() -> String {
    let schema = fixture_schema();
    let domain = base_spec().dataset.profile().domain();
    let embedder = HashingEmbedder::new(48);
    let cache = EmbeddingCache::new(&embedder);
    let mut state = StreamState::new(schema, BlockerConfig::default());
    let mut rng = linalg::Rng::new(9);
    let n_records = 64usize;
    let mut entities = Vec::with_capacity(n_records);
    for id in 0..n_records as u64 {
        let e = domain.generate(&mut rng);
        state
            .apply(
                &RecordEvent::Insert {
                    side: Side::Left,
                    id,
                    entity: e.clone(),
                },
                Some(&cache),
            )
            .expect("insert");
        entities.push(e);
        // warm the id-keyed entry
        state.encode_record(Side::Left, id, &cache).expect("encode");
    }

    let warm_iters = 4_000usize;
    let started = Instant::now();
    for i in 0..warm_iters {
        let id = (i % n_records) as u64;
        std::hint::black_box(state.encode_record(Side::Left, id, &cache));
    }
    let cached_ns = started.elapsed().as_nanos() as f64 / warm_iters as f64;

    let cycle_iters = 1_000usize;
    let before = cache.invalidations();
    let started = Instant::now();
    for i in 0..cycle_iters {
        let id = (i % n_records) as u64;
        // swap in another record's values: a real content change
        let entity = entities[(i + 1) % n_records].clone();
        state
            .apply(
                &RecordEvent::Update {
                    side: Side::Left,
                    id,
                    entity,
                },
                Some(&cache),
            )
            .expect("update");
        std::hint::black_box(state.encode_record(Side::Left, id, &cache));
    }
    let cycle_ns = started.elapsed().as_nanos() as f64 / cycle_iters as f64;
    let invalidations = cache.invalidations() - before;
    assert_eq!(
        invalidations, cycle_iters,
        "every warm update must be accounted as exactly one invalidation"
    );
    println!(
        "invalidation: cached encode {cached_ns:.0} ns/op, \
         invalidate+recompute {cycle_ns:.0} ns/op ({invalidations} invalidations)"
    );
    let mut o = json::Obj::new();
    o.str("phase", "cache_invalidation")
        .u64("records", n_records as u64)
        .f64("cached_encode_ns", cached_ns)
        .f64("invalidate_recompute_ns", cycle_ns)
        .u64("invalidations", invalidations as u64);
    o.finish()
}

/// Phase 4: the continuous loop end to end — replay the fixture, inject
/// a drifting live stream, let the drift monitor launch the background
/// re-search, promote through `/admin/reload` under client load, and
/// account every response.
fn phase_promotion(fixture: &Path) -> String {
    let dir = tmp_dir("promotion");
    let spec = base_spec();
    // the serving host: trained live (the paper-hours budget is
    // simulated, so this is sub-second wall-clock)
    let host = std::sync::Arc::new(spec.train().expect("fixture training failed"));
    let schema = host.schema().clone();
    let pairs: Vec<RecordPair> = host.dataset().split(Split::Test)[..4].to_vec();
    let offline_a: Vec<u32> = host
        .match_proba(&pairs)
        .iter()
        .map(|p| p.to_bits())
        .collect();

    let handle = serve(
        std::sync::Arc::clone(&host),
        &ServeConfig {
            addr: "127.0.0.1:0".into(),
            linger_us: 500,
            ..ServeConfig::default()
        },
    )
    .expect("bind failed");
    let addr = handle.addr();

    let promote: em_stream::PromoteFn = Box::new(move |bundle: &Path| {
        let body = format!("{{\"path\":\"{}\"}}", bundle.display());
        let rsp = roundtrip(addr, &post("/admin/reload", &body));
        if !rsp.starts_with("HTTP/1.1 200") {
            return Err(format!("reload rejected: {rsp}"));
        }
        json::parse(body_of(&rsp))
            .ok()
            .and_then(|v| v.get("version")?.as_u64())
            .ok_or_else(|| "reload response had no version".to_owned())
    });

    // cold-start on a copy of the committed fixture, then drift on top
    std::fs::copy(fixture, dir.join("records.jsonl")).expect("stage fixture ledger");
    let mut em = ContinuousEm::open(
        spec.clone(),
        ContinuousConfig {
            drift: DriftConfig {
                window_events: 96,
                // candidate churn is dominated by the stream's organic
                // growth on top of the replayed fixture (every window
                // inserts fresh pairs), so the bench drives promotion off
                // the score-shift signal alone
                churn_threshold: 2.0,
                score_shift_threshold: 0.3,
            },
            research_deadline: Duration::from_secs(60),
            ..ContinuousConfig::new(dir.clone())
        },
        promote,
    )
    .expect("open continuous instance");
    let replayed = em.state().applied();
    assert!(replayed > 0, "fixture replay applied no events");

    // live events ride on a disjoint id space above the fixture's
    let mut live = generate_events(
        spec.dataset.profile().domain().as_ref(),
        &ScenarioConfig {
            seed: 17,
            initial_pairs: 24,
            events: 500,
            drift_after: 96,
            noise: 0.2,
        },
    );
    for ev in &mut live {
        match ev {
            RecordEvent::Insert { id, .. }
            | RecordEvent::Update { id, .. }
            | RecordEvent::Delete { id, .. } => *id += LIVE_ID_BASE,
        }
    }

    let stop = std::sync::atomic::AtomicBool::new(false);
    let (drift_fired, record, client_obs) = std::thread::scope(|s| {
        let clients: Vec<_> = (0..2)
            .map(|c: usize| {
                let stop = &stop;
                let schema = &schema;
                let pairs = &pairs;
                s.spawn(move || {
                    let mut seen: Vec<(usize, u64, u32)> = Vec::new();
                    let mut bad = 0usize;
                    let mut last_version = 0u64;
                    let mut stream = TcpStream::connect(addr).expect("client connect");
                    let mut i = c;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let idx = i % pairs.len();
                        i += 1;
                        stream
                            .write_all(&post("/match", &pair_body(schema, &pairs[idx])))
                            .expect("client write");
                        let rsp = read_one_response(&mut stream);
                        if !rsp.starts_with("HTTP/1.1 200") {
                            bad += 1;
                            continue;
                        }
                        let version = header_of(&rsp, "x-model-version")
                            .and_then(|v| v.parse::<u64>().ok())
                            .unwrap_or(0);
                        if version < last_version {
                            bad += 1; // rollback = drop-equivalent defect
                        }
                        last_version = version;
                        let bits = json::parse(body_of(&rsp))
                            .ok()
                            .and_then(|v| v.get("p_match").and_then(Json::as_f64))
                            .map(|p| (p as f32).to_bits())
                            .unwrap_or(0);
                        seen.push((idx, version, bits));
                    }
                    (bad, seen)
                })
            })
            .collect();

        let mut drift_fired = 0usize;
        for (i, ev) in live.iter().enumerate() {
            // the streaming scorer: every right-side record is scored
            // against its generated left partner through the live model,
            // feeding the monitor's score-shift signal — drifted
            // vocabulary visibly reshapes this distribution
            if let RecordEvent::Insert {
                side: Side::Right,
                id,
                entity,
            }
            | RecordEvent::Update {
                side: Side::Right,
                id,
                entity,
            } = ev
            {
                if let Some(left) = em.state().entity(Side::Left, id - 1) {
                    let pair = RecordPair {
                        left: left.clone(),
                        right: entity.clone(),
                        label: false,
                    };
                    let p = host.match_proba(std::slice::from_ref(&pair))[0];
                    em.note_score(f64::from(p));
                }
            }
            if em.ingest(ev).expect("ingest").is_some() {
                drift_fired += 1;
            }
            if i % 32 == 31 {
                em.sync().expect("sync");
            }
        }
        em.sync().expect("sync");
        // join the research before asserting anything: a panic inside the
        // scope would leave the clients spinning forever
        let record = if drift_fired > 0 {
            em.drain().expect("research/promotion failed").cloned()
        } else {
            None
        };
        // keep load on the promoted model briefly, then stop
        std::thread::sleep(Duration::from_millis(50));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let obs: ClientObs = clients
            .into_iter()
            .map(|c| c.join().expect("client"))
            .collect();
        (drift_fired, record, obs)
    });

    assert!(
        drift_fired > 0,
        "the drifting stream never tripped the monitor"
    );
    let record = record.expect("drift fired but no research was launched");
    assert_eq!(record.version, 2, "promotion must advance the version");
    assert_eq!(handle.model_version(), 2);

    // exactly-one-correct-response accounting, per version
    let host_b =
        load_model(&em.config().bundle_path(record.epoch)).expect("promoted bundle must load back");
    let offline_b: Vec<u32> = host_b
        .match_proba(&pairs)
        .iter()
        .map(|p| p.to_bits())
        .collect();
    let mut requests = 0u64;
    let mut v2_requests = 0u64;
    let mut bad_total = 0u64;
    let mut mismatches = 0u64;
    for (bad, seen) in &client_obs {
        bad_total += *bad as u64;
        for (idx, version, bits) in seen {
            let want = match version {
                1 => offline_a[*idx],
                2 => offline_b[*idx],
                _ => {
                    mismatches += 1;
                    continue;
                }
            };
            if *bits != want {
                mismatches += 1;
            }
            requests += 1;
            if *version == 2 {
                v2_requests += 1;
            }
        }
    }
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    println!(
        "promotion: drift fired {drift_fired}x, research {} ms, promote {} ms, \
         {requests} requests ({v2_requests} on v2), {bad_total} bad, {mismatches} mismatches",
        record.research_ms, record.promote_ms
    );
    let mut o = json::Obj::new();
    o.str("phase", "drift_promotion")
        .u64("replayed_events", replayed)
        .u64("live_events", live.len() as u64)
        .u64("drift_fired", drift_fired as u64)
        .u64("epoch", record.epoch)
        .u64("version", record.version)
        .str("digest", &record.digest)
        .f64("val_f1", record.report.val_f1)
        .u64("research_ms", record.research_ms)
        .u64("promote_ms", record.promote_ms)
        .u64("requests", requests)
        .u64("v2_requests", v2_requests)
        .u64("bad", bad_total)
        .u64("mismatches", mismatches);
    o.finish()
}

// ------------------------------------------------------------------ report

fn write_report(out: &Path, rows: &[String]) -> PathBuf {
    std::fs::create_dir_all(out).expect("create out dir");
    let mut o = json::Obj::new();
    o.str("bench", "stream")
        .raw("rows", &json::array(rows.iter().cloned()));
    let path = out.join("BENCH_stream.json");
    std::fs::write(&path, format!("{}\n", o.finish())).expect("write report");
    path
}

/// `--check`: re-parse the report and fail on any violated invariant.
fn check_report(path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let root = json::parse(&text).map_err(|_| "report is not valid json".to_owned())?;
    let rows: Vec<&Json> = match root.get("rows") {
        Some(Json::Arr(items)) => items.iter().collect(),
        _ => return Err("report has no rows".into()),
    };
    let f = |row: &Json, k: &str| -> Result<f64, String> {
        row.get(k)
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite())
            .ok_or_else(|| format!("missing/non-finite {k}"))
    };
    let mut seen = Vec::new();
    for row in rows {
        let phase = row
            .get("phase")
            .and_then(Json::as_str)
            .ok_or("row without phase")?
            .to_owned();
        match phase.as_str() {
            "replay_cold_start" | "live_ingest" => {
                if f(row, "events")? <= 0.0 || f(row, "events_per_sec")? <= 0.0 {
                    return Err(format!("{phase}: no throughput recorded"));
                }
            }
            "cache_invalidation" => {
                if f(row, "cached_encode_ns")? <= 0.0 || f(row, "invalidate_recompute_ns")? <= 0.0 {
                    return Err(format!("{phase}: no cost recorded"));
                }
            }
            "drift_promotion" => {
                if f(row, "drift_fired")? < 1.0 {
                    return Err("drift never fired".into());
                }
                if f(row, "version")? != 2.0 {
                    return Err("promotion did not advance the version".into());
                }
                if f(row, "requests")? <= 0.0 {
                    return Err("no client traffic observed".into());
                }
                if f(row, "v2_requests")? <= 0.0 {
                    return Err("no traffic on the promoted model".into());
                }
                if f(row, "bad")? != 0.0 || f(row, "mismatches")? != 0.0 {
                    return Err("dropped or non-bit-identical responses".into());
                }
            }
            other => return Err(format!("unknown phase {other}")),
        }
        seen.push(phase);
    }
    for want in [
        "replay_cold_start",
        "live_ingest",
        "cache_invalidation",
        "drift_promotion",
    ] {
        if !seen.iter().any(|p| p == want) {
            return Err(format!("phase {want} missing from report"));
        }
    }
    Ok(())
}

fn main() {
    let args = parse_args();
    let fixture = PathBuf::from(&args.fixture);
    if args.write_fixture {
        write_fixture(&fixture);
        return;
    }
    assert!(
        fixture.exists(),
        "fixture ledger {} not found — run `stream_bench --write-fixture` \
         (from the repo root) to regenerate it",
        fixture.display()
    );

    let rows = vec![
        phase_replay(&fixture),
        phase_ingest(args.events),
        phase_invalidation(),
        phase_promotion(&fixture),
    ];
    let path = write_report(Path::new(&args.out), &rows);
    println!("wrote {}", path.display());

    if args.check {
        match check_report(&path) {
            Ok(()) => println!("stream-smoke: all invariants hold"),
            Err(e) => {
                eprintln!("stream-smoke FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}
