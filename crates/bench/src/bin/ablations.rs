//! Ablation benches for the design choices DESIGN.md calls out — beyond
//! the paper's tables:
//!
//! * **combiner** — average (paper) vs max vs average⧺spread, and the
//!   concat-last-4-layers embedding variant the paper cites from Devlin
//!   et al. (§4);
//! * **unstructured tokenizer** — described in §4 but not evaluated there;
//! * **oversampling** — the class-imbalance augmentation the paper lists
//!   as future work (§6.1);
//! * **local embeddings** — the paper's §6.2 future work: word vectors
//!   trained on the target dataset itself (Cappuzzo et al.) in place of
//!   the pretrained transformer.
//!
//! Runs on a subset of datasets (one easy, one hard, one dirty) with the
//! AutoSklearn-style system.

use bench::experiments::{adapter_run, dataset_seed, pretrain_embedders};
use bench::report::{emit, f1, finish_run, Table};
use bench::Cli;
use em_core::{run_pipeline, Combiner, EmAdapter, PipelineConfig, TokenizerMode};
use em_data::MagellanDataset;
use embed::families::EmbedderFamily;
use embed::{LocalEmbedder, SequenceEmbedder};

/// Wrapper exposing the concat-last-4 embedding as a `SequenceEmbedder`.
struct ConcatLast4<'a>(&'a embed::PretrainedTransformer);

impl SequenceEmbedder for ConcatLast4<'_> {
    fn dim(&self) -> usize {
        self.0.embed_concat_last4("x").len()
    }

    fn embed(&self, textv: &str) -> Vec<f32> {
        self.0.embed_concat_last4(textv)
    }

    fn name(&self) -> String {
        format!("{}+cat4", self.0.family().label())
    }
}

fn main() {
    let cli = Cli::parse();
    let subset = [
        MagellanDataset::SDA,
        MagellanDataset::SWA,
        MagellanDataset::DIA,
    ];
    let profiles: Vec<_> = subset.iter().map(|d| d.profile()).collect();
    eprintln!("pretraining embedders…");
    let embedders = pretrain_embedders(&profiles, cli.seed);
    let albert = embedders.get(EmbedderFamily::Albert);

    // --- combiner ablation -------------------------------------------------
    let mut combiner_table = Table::new(
        "Ablation - combiner variants (Hybrid tokenizer, Albert, AutoSklearn)",
        &[
            "Dataset",
            "avg (paper)",
            "max",
            "avg+spread",
            "concat-last4",
        ],
    );
    for p in &profiles {
        let seed = dataset_seed(cli.seed, p.code);
        let dataset = p.generate_scaled(seed, bench::experiments::effective_scale(p, cli.scale));
        let mut cells = Vec::new();
        for combiner in [Combiner::Average, Combiner::Max, Combiner::AverageAndSpread] {
            cells.push(
                adapter_run(
                    &dataset,
                    albert,
                    TokenizerMode::Hybrid,
                    combiner,
                    0,
                    1.0,
                    seed,
                )
                .test_f1,
            );
        }
        // concat-last-4 embedder variant with the standard average combiner
        let cat4 = ConcatLast4(albert);
        let adapter = EmAdapter::new(TokenizerMode::Hybrid, &cat4, Combiner::Average);
        let mut sys = bench::experiments::make_system(0, seed);
        let r = run_pipeline(
            sys.as_mut(),
            &adapter,
            &dataset,
            PipelineConfig {
                budget_hours: 1.0,
                seed,
                ..PipelineConfig::default()
            },
        )
        .expect("pipeline run failed");
        cells.push(r.test_f1);
        combiner_table.row(vec![
            p.code.to_owned(),
            f1(cells[0]),
            f1(cells[1]),
            f1(cells[2]),
            f1(cells[3]),
        ]);
    }
    emit(&combiner_table, cli.out.as_deref());

    // --- tokenizer ablation (adds the unstructured mode) --------------------
    let mut tok_table = Table::new(
        "Ablation - tokenizer modes (Albert, AutoSklearn)",
        &["Dataset", "Unstructured", "Attr", "Hybrid (paper best)"],
    );
    for p in &profiles {
        let seed = dataset_seed(cli.seed, p.code);
        let dataset = p.generate_scaled(seed, bench::experiments::effective_scale(p, cli.scale));
        let mut row = vec![p.code.to_owned()];
        for mode in [
            TokenizerMode::Unstructured,
            TokenizerMode::AttributeBased,
            TokenizerMode::Hybrid,
        ] {
            let r = adapter_run(&dataset, albert, mode, Combiner::Average, 0, 1.0, seed);
            row.push(f1(r.test_f1));
        }
        tok_table.row(row);
    }
    emit(&tok_table, cli.out.as_deref());

    // --- oversampling (the paper's §6 future work) ---------------------------
    let mut os_table = Table::new(
        "Ablation - minority oversampling (Hybrid+Albert, AutoSklearn)",
        &["Dataset", "no augmentation (paper)", "oversampled"],
    );
    for p in &profiles {
        let seed = dataset_seed(cli.seed, p.code);
        let dataset = p.generate_scaled(seed, bench::experiments::effective_scale(p, cli.scale));
        let adapter = EmAdapter::new(TokenizerMode::Hybrid, albert, Combiner::Average);
        let mut plain_sys = bench::experiments::make_system(0, seed);
        let plain = run_pipeline(
            plain_sys.as_mut(),
            &adapter,
            &dataset,
            PipelineConfig {
                budget_hours: 1.0,
                seed,
                ..PipelineConfig::default()
            },
        )
        .expect("pipeline run failed");
        let adapter2 = EmAdapter::new(TokenizerMode::Hybrid, albert, Combiner::Average);
        let mut os_sys = bench::experiments::make_system(0, seed);
        let oversampled = run_pipeline(
            os_sys.as_mut(),
            &adapter2,
            &dataset,
            PipelineConfig {
                budget_hours: 1.0,
                oversample: true,
                seed,
            },
        )
        .expect("pipeline run failed");
        os_table.row(vec![
            p.code.to_owned(),
            f1(plain.test_f1),
            f1(oversampled.test_f1),
        ]);
    }
    emit(&os_table, cli.out.as_deref());

    // --- local embeddings (the paper's §6.2 future work) --------------------
    let mut local_table = Table::new(
        "Ablation - pretrained transformer vs dataset-local embeddings (Hybrid, AutoSklearn)",
        &["Dataset", "Albert (pretrained)", "local w2v"],
    );
    for p in &profiles {
        let seed = dataset_seed(cli.seed, p.code);
        let dataset = p.generate_scaled(seed, bench::experiments::effective_scale(p, cli.scale));
        let pretrained = adapter_run(
            &dataset,
            albert,
            TokenizerMode::Hybrid,
            Combiner::Average,
            0,
            1.0,
            seed,
        );
        let texts: Vec<String> = dataset
            .pairs()
            .iter()
            .flat_map(|pair| [pair.left.flatten(), pair.right.flatten()])
            .collect();
        let local = LocalEmbedder::train(&texts, 32, seed);
        let adapter = EmAdapter::new(TokenizerMode::Hybrid, &local, Combiner::Average);
        let mut sys = bench::experiments::make_system(0, seed);
        let local_run = run_pipeline(
            sys.as_mut(),
            &adapter,
            &dataset,
            PipelineConfig {
                budget_hours: 1.0,
                seed,
                ..PipelineConfig::default()
            },
        )
        .expect("pipeline run failed");
        local_table.row(vec![
            p.code.to_owned(),
            f1(pretrained.test_f1),
            f1(local_run.test_f1),
        ]);
    }
    emit(&local_table, cli.out.as_deref());
    finish_run("ablations", &cli);
}
