//! Load generator for `em-serve`: trains the fixture model, starts the
//! server on an ephemeral port, drives it with keep-alive client
//! threads and writes `BENCH_serve.json` with sustained QPS and exact
//! (not bucketed) p50/p90/p99 latency.
//!
//! Every response is also checked for **bit-identity** against the
//! offline `match_proba` of the same pair — the load test doubles as a
//! serving-correctness gate, so a "fast" result can never hide a wrong
//! one. The JSON float round-trip is exact by the `obs::json`
//! shortest-roundtrip contract (f32 → f64 → text → f64 → f32).
//!
//! ```text
//! serve_bench [--secs <s>] [--conns <n>] [--scale <f>] [--seed <n>]
//!             [--out <dir>] [--check]
//! ```
//!
//! `--check` runs a sub-second smoke pass, re-parses the JSON it wrote
//! and exits non-zero on any error, mismatch or non-finite number — the
//! CI `serve-smoke` job gate.

use em_core::model::{ModelHost, ModelSpec};
use em_data::{RecordPair, Schema, Split};
use obs::json::{self, Json};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    secs: f64,
    conns: usize,
    scale: f64,
    seed: u64,
    out: String,
    check: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        secs: 3.0,
        conns: 4,
        scale: 0.4,
        seed: 11,
        out: "results".to_owned(),
        check: false,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        let value = |i: usize| argv.get(i + 1).cloned().unwrap_or_default();
        match argv[i].as_str() {
            "--secs" => {
                a.secs = value(i).parse().expect("--secs needs a number");
                i += 2;
            }
            "--conns" => {
                a.conns = value(i).parse().expect("--conns needs an integer");
                i += 2;
            }
            "--scale" => {
                a.scale = value(i).parse().expect("--scale needs a number");
                i += 2;
            }
            "--seed" => {
                a.seed = value(i).parse().expect("--seed needs an integer");
                i += 2;
            }
            "--out" => {
                a.out = value(i);
                i += 2;
            }
            "--check" => {
                a.check = true;
                a.secs = a.secs.min(0.6);
                a.conns = a.conns.min(2);
                i += 1;
            }
            other => panic!("unknown flag {other}"),
        }
    }
    a
}

fn entity_json(schema: &Schema, entity: &em_data::Entity) -> String {
    let mut o = json::Obj::new();
    for (i, attr) in schema.attributes().iter().enumerate() {
        if let Some(v) = entity.value(i) {
            o.str(&attr.name, v);
        }
    }
    o.finish()
}

fn match_body(schema: &Schema, pair: &RecordPair) -> String {
    let mut o = json::Obj::new();
    o.raw("left", &entity_json(schema, &pair.left))
        .raw("right", &entity_json(schema, &pair.right));
    o.finish()
}

/// Read one HTTP response off a keep-alive stream; returns the body.
fn read_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Result<String, String> {
    let mut chunk = [0u8; 8192];
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
            let content_length: usize = head
                .lines()
                .find_map(|l| {
                    let (k, v) = l.split_once(':')?;
                    k.eq_ignore_ascii_case("content-length")
                        .then(|| v.trim().parse().ok())?
                })
                .ok_or("response without content-length")?;
            let body_start = head_end + 4;
            if buf.len() >= body_start + content_length {
                if !head.starts_with("HTTP/1.1 200") {
                    return Err(format!("non-200: {}", head.lines().next().unwrap_or("")));
                }
                let body = String::from_utf8_lossy(&buf[body_start..body_start + content_length])
                    .to_string();
                buf.drain(..body_start + content_length);
                return Ok(body);
            }
        }
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-response".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

struct ClientStats {
    latencies_us: Vec<u64>,
    errors: usize,
    mismatches: usize,
}

fn drive_client(
    addr: std::net::SocketAddr,
    host: &ModelHost,
    reference: &[f32],
    offset: usize,
    stop: &AtomicBool,
) -> ClientStats {
    let mut stats = ClientStats {
        latencies_us: Vec::new(),
        errors: 0,
        mismatches: 0,
    };
    let pairs = host.dataset().split(Split::Test);
    let schema = host.dataset().schema();
    let mut stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => {
            stats.errors += 1;
            return stats;
        }
    };
    let _ = stream.set_nodelay(true);
    let mut rx = Vec::new();
    let mut i = offset;
    while !stop.load(Ordering::Relaxed) {
        let idx = i % pairs.len();
        i += 1;
        let body = match_body(schema, &pairs[idx]);
        let req = format!(
            "POST /match HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        let t0 = Instant::now();
        if stream.write_all(req.as_bytes()).is_err() {
            stats.errors += 1;
            break;
        }
        match read_response(&mut stream, &mut rx) {
            Ok(rsp_body) => {
                stats.latencies_us.push(t0.elapsed().as_micros() as u64);
                let served = json::parse(&rsp_body)
                    .ok()
                    .and_then(|v| v.get("p_match").and_then(Json::as_f64));
                match served {
                    Some(p) if (p as f32).to_bits() == reference[idx].to_bits() => {}
                    _ => stats.mismatches += 1,
                }
            }
            Err(_) => {
                stats.errors += 1;
                break;
            }
        }
    }
    stats
}

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64 * q).ceil() as usize).max(1) - 1;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

fn main() {
    let args = parse_args();
    let spec = ModelSpec {
        scale: args.scale,
        data_seed: args.seed,
        ..ModelSpec::fixture()
    };
    eprintln!(
        "serve_bench: training fixture winner ({} scale {}) ...",
        spec.dataset.code(),
        spec.scale
    );
    let host = Arc::new(spec.train().expect("fixture training failed"));
    let warmed = host.warm_cache();
    let reference = host.match_proba(host.dataset().split(Split::Test));
    eprintln!(
        "serve_bench: {} ({} val F1 {:.4}), cache warm ({warmed} new), {} test pairs",
        host.report().system,
        host.spec().dataset.code(),
        host.report().val_f1,
        reference.len()
    );

    let config = em_serve::ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..em_serve::ServeConfig::from_env()
    };
    let handle = em_serve::serve(Arc::clone(&host), &config).expect("server failed to start");
    let addr = handle.addr();
    eprintln!(
        "serve_bench: serving on http://{addr}, driving {} conns for {:.1}s",
        args.conns, args.secs
    );

    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let stats: Vec<ClientStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.conns.max(1))
            .map(|c| {
                let host = &host;
                let reference = &reference;
                let stop = &stop;
                s.spawn(move || drive_client(addr, host, reference, c * 17, stop))
            })
            .collect();
        std::thread::sleep(Duration::from_secs_f64(args.secs));
        stop.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let drained = handle.shutdown();

    let mut latencies: Vec<u64> = stats
        .iter()
        .flat_map(|s| s.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();
    let errors: usize = stats.iter().map(|s| s.errors).sum();
    let mismatches: usize = stats.iter().map(|s| s.mismatches).sum();
    let requests = latencies.len();
    let qps = requests as f64 / elapsed;
    let mean_us = if requests == 0 {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / requests as f64
    };
    let (p50, p90, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.90),
        percentile(&latencies, 0.99),
    );

    let mut lat = json::Obj::new();
    lat.u64("p50", p50)
        .u64("p90", p90)
        .u64("p99", p99)
        .f64("mean", mean_us);
    let mut o = json::Obj::new();
    o.str("run", "serve_bench")
        .str("dataset", host.spec().dataset.code())
        .str("system", host.report().system)
        .f64("scale", args.scale)
        .u64("seed", args.seed)
        .u64("conns", args.conns as u64)
        .f64("secs", elapsed)
        .u64("requests", requests as u64)
        .f64("qps", qps)
        .raw("latency_us", &lat.finish())
        .u64("errors", errors as u64)
        .u64("mismatches", mismatches as u64)
        .bool("drained", drained);
    let report = o.finish();

    std::fs::create_dir_all(&args.out).expect("cannot create --out dir");
    let path = std::path::Path::new(&args.out).join("BENCH_serve.json");
    std::fs::write(&path, format!("{report}\n")).expect("cannot write BENCH_serve.json");

    println!("## serve_bench\n");
    println!("| metric | value |");
    println!("|---|---|");
    println!("| requests | {requests} |");
    println!("| sustained QPS | {qps:.0} |");
    println!("| p50 latency | {:.2} ms |", p50 as f64 / 1000.0);
    println!("| p90 latency | {:.2} ms |", p90 as f64 / 1000.0);
    println!("| p99 latency | {:.2} ms |", p99 as f64 / 1000.0);
    println!("| bit-identity mismatches | {mismatches} |");
    println!("| transport errors | {errors} |");
    println!("| drained cleanly | {drained} |");
    println!("\nwrote {}", path.display());

    if args.check {
        let text = std::fs::read_to_string(&path).expect("re-read failed");
        let v = json::parse(&text).expect("BENCH_serve.json is not valid JSON");
        let requests = v.get("requests").and_then(Json::as_u64).unwrap_or(0);
        let qps = v.get("qps").and_then(Json::as_f64).unwrap_or(f64::NAN);
        let ok = requests > 0
            && qps.is_finite()
            && mismatches == 0
            && errors == 0
            && drained
            && v.get("latency_us")
                .and_then(|l| l.get("p99"))
                .and_then(Json::as_u64)
                .is_some();
        if !ok {
            eprintln!("serve_bench --check FAILED: requests={requests} qps={qps} mismatches={mismatches} errors={errors} drained={drained}");
            std::process::exit(1);
        }
        println!("serve_bench --check OK");
    }
}
