//! Load generator for `em-serve`: trains the fixture model, starts the
//! server on an ephemeral port, drives it with keep-alive client
//! threads and writes `BENCH_serve.json` with sustained QPS and exact
//! (not bucketed) p50/p90/p99 latency.
//!
//! Every response is also checked for **bit-identity** against the
//! offline `match_proba` of the same pair — the load test doubles as a
//! serving-correctness gate, so a "fast" result can never hide a wrong
//! one. The JSON float round-trip is exact by the `obs::json`
//! shortest-roundtrip contract (f32 → f64 → text → f64 → f32).
//!
//! The default run also performs a **hot-swap under load**: mid-run it
//! trains a second model (same schema, different engine seed), exports
//! it and `POST /admin/reload`s it into the live server. Clients verify
//! each response against the model version named in its
//! `x-model-version` header, so the swap phase proves zero requests are
//! dropped or cross-version mixed; `BENCH_serve.json` gains per-version
//! latency rows and a `swap` record.
//!
//! `--chaos` replaces the swap phase with a fixed serve-fault plan
//! (worker panics, slow embeds, a slow-loris writer and torn client
//! writes — the `AUTOML_EM_FAULTS` serve grammar) and asserts the
//! serving invariant: *every accepted request gets exactly one
//! correct-or-typed-error response, and post-fault 200s stay
//! bit-identical to offline predict*. The verdict is written to
//! `CHAOS_serve.json` and any violation exits non-zero — the CI
//! `chaos-smoke` gate.
//!
//! ```text
//! serve_bench [--secs <s>] [--conns <n>] [--scale <f>] [--seed <n>]
//!             [--out <dir>] [--check] [--chaos]
//! ```
//!
//! `--check` runs a sub-second smoke pass, re-parses the JSON it wrote
//! and exits non-zero on any error, mismatch or non-finite number — the
//! CI `serve-smoke` job gate.

use em_core::model::{ModelHost, ModelSpec};
use em_data::{RecordPair, Schema, Split};
use obs::json::{self, Json};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The fixed chaos plan the CI `chaos-smoke` job runs: two worker
/// panics, a 5 ms slow-embed on every batch, a slow-loris writer
/// stalling 250 ms mid-request and torn half-requests. Parsed through
/// the real `AUTOML_EM_FAULTS` grammar so the smoke job also exercises
/// the parser.
const CHAOS_PLAN: &str =
    "panic@batcher:2,panic@batcher:5,slow@embed:5,torn@client,loris@client:250";

struct Args {
    secs: f64,
    conns: usize,
    scale: f64,
    seed: u64,
    out: String,
    check: bool,
    chaos: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        secs: 3.0,
        conns: 4,
        scale: 0.4,
        seed: 11,
        out: "results".to_owned(),
        check: false,
        chaos: false,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        let value = |i: usize| argv.get(i + 1).cloned().unwrap_or_default();
        match argv[i].as_str() {
            "--secs" => {
                a.secs = value(i).parse().expect("--secs needs a number");
                i += 2;
            }
            "--conns" => {
                a.conns = value(i).parse().expect("--conns needs an integer");
                i += 2;
            }
            "--scale" => {
                a.scale = value(i).parse().expect("--scale needs a number");
                i += 2;
            }
            "--seed" => {
                a.seed = value(i).parse().expect("--seed needs an integer");
                i += 2;
            }
            "--out" => {
                a.out = value(i);
                i += 2;
            }
            "--check" => {
                a.check = true;
                a.secs = a.secs.min(0.6);
                a.conns = a.conns.min(2);
                i += 1;
            }
            "--chaos" => {
                a.chaos = true;
                i += 1;
            }
            other => panic!("unknown flag {other}"),
        }
    }
    a
}

fn entity_json(schema: &Schema, entity: &em_data::Entity) -> String {
    let mut o = json::Obj::new();
    for (i, attr) in schema.attributes().iter().enumerate() {
        if let Some(v) = entity.value(i) {
            o.str(&attr.name, v);
        }
    }
    o.finish()
}

fn match_body(schema: &Schema, pair: &RecordPair) -> String {
    let mut o = json::Obj::new();
    o.raw("left", &entity_json(schema, &pair.left))
        .raw("right", &entity_json(schema, &pair.right));
    o.finish()
}

/// One fully parsed HTTP response off a keep-alive stream.
struct Rsp {
    status: u16,
    /// `x-model-version` header, when present.
    version: Option<u64>,
    /// Whether a `retry-after` header was present (typed shedding).
    retry_after: bool,
    body: String,
}

fn read_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Result<Rsp, String> {
    let mut chunk = [0u8; 8192];
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
            let content_length: usize = head
                .lines()
                .find_map(|l| {
                    let (k, v) = l.split_once(':')?;
                    k.eq_ignore_ascii_case("content-length")
                        .then(|| v.trim().parse().ok())?
                })
                .ok_or("response without content-length")?;
            let body_start = head_end + 4;
            if buf.len() >= body_start + content_length {
                let status: u16 = head
                    .split_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or("unparseable status line")?;
                let header = |name: &str| {
                    head.lines().skip(1).find_map(|l| {
                        let (k, v) = l.split_once(':')?;
                        k.trim()
                            .eq_ignore_ascii_case(name)
                            .then(|| v.trim().to_string())
                    })
                };
                let version = header("x-model-version").and_then(|v| v.parse().ok());
                let retry_after = header("retry-after").is_some();
                let body = String::from_utf8_lossy(&buf[body_start..body_start + content_length])
                    .to_string();
                buf.drain(..body_start + content_length);
                return Ok(Rsp {
                    status,
                    version,
                    retry_after,
                    body,
                });
            }
        }
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-response".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn error_code(body: &str) -> Option<String> {
    json::parse(body)
        .ok()?
        .get("error")?
        .get("code")
        .and_then(Json::as_str)
        .map(str::to_owned)
}

#[derive(Default)]
struct ClientStats {
    /// (latency µs, model version) per 200 response.
    latencies_us: Vec<(u64, u64)>,
    /// Typed worker failures (`500 worker_panic` / `500 predict_error`).
    typed_500: usize,
    /// Typed load shedding (`429`/`503` with `retry-after`).
    shed: usize,
    /// Responses that fit no typed contract — chaos violations.
    untyped: usize,
    /// Requests whose response never arrived inside the deadline.
    hangs: usize,
    /// Transport-level failures (connect/write/read errors).
    errors: usize,
    /// 200s whose bits disagree with offline predict for their version.
    mismatches: usize,
}

fn drive_client(
    addr: std::net::SocketAddr,
    host: &ModelHost,
    references: &[Vec<f32>; 2],
    offset: usize,
    stop: &AtomicBool,
) -> ClientStats {
    let mut stats = ClientStats::default();
    let pairs = host.dataset().split(Split::Test);
    let schema = host.dataset().schema();
    let mut stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => {
            stats.errors += 1;
            return stats;
        }
    };
    let _ = stream.set_nodelay(true);
    // a response that takes >10s is a hang, which the chaos contract
    // forbids: every accepted request gets exactly one response
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut rx = Vec::new();
    let mut i = offset;
    while !stop.load(Ordering::Relaxed) {
        let idx = i % pairs.len();
        i += 1;
        let body = match_body(schema, &pairs[idx]);
        let req = format!(
            "POST /match HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        let t0 = Instant::now();
        if stream.write_all(req.as_bytes()).is_err() {
            stats.errors += 1;
            break;
        }
        match read_response(&mut stream, &mut rx) {
            Ok(rsp) => match rsp.status {
                200 => {
                    stats
                        .latencies_us
                        .push((t0.elapsed().as_micros() as u64, rsp.version.unwrap_or(0)));
                    let served = json::parse(&rsp.body)
                        .ok()
                        .and_then(|v| v.get("p_match").and_then(Json::as_f64));
                    let want = match rsp.version {
                        Some(1) => references[0].get(idx).map(|p| p.to_bits()),
                        Some(2) => references[1].get(idx).map(|p| p.to_bits()),
                        _ => None,
                    };
                    match (served, want) {
                        (Some(p), Some(bits)) if (p as f32).to_bits() == bits => {}
                        _ => stats.mismatches += 1,
                    }
                }
                500 => match error_code(&rsp.body).as_deref() {
                    Some("worker_panic" | "predict_error") => stats.typed_500 += 1,
                    _ => stats.untyped += 1,
                },
                429 | 503 if rsp.retry_after => stats.shed += 1,
                _ => stats.untyped += 1,
            },
            Err(e) => {
                if e.contains("timed out") || e.contains("WouldBlock") {
                    stats.hangs += 1;
                } else {
                    stats.errors += 1;
                }
                break;
            }
        }
    }
    stats
}

/// A slow-loris writer: sends the request head, stalls mid-body for
/// `stall_ms`, then completes the request. Returns whether the server
/// still answered it correctly (it must — a slow writer may hold one
/// connection, never break the protocol).
fn slow_loris_client(
    addr: std::net::SocketAddr,
    schema: &Schema,
    pair: &RecordPair,
    reference_bits: u32,
    stall_ms: u64,
) -> bool {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return false;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let body = match_body(schema, pair);
    let req = format!(
        "POST /match HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    let bytes = req.as_bytes();
    let cut = bytes.len() / 2;
    // drip the first half a few bytes at a time, stall, then finish
    let step = (cut / 8).max(1);
    for part in bytes[..cut].chunks(step) {
        if stream.write_all(part).is_err() {
            return false;
        }
        let _ = stream.flush();
        std::thread::sleep(Duration::from_millis(stall_ms / 16));
    }
    std::thread::sleep(Duration::from_millis(stall_ms / 2));
    if stream.write_all(&bytes[cut..]).is_err() {
        return false;
    }
    let mut rx = Vec::new();
    match read_response(&mut stream, &mut rx) {
        Ok(rsp) if rsp.status == 200 => json::parse(&rsp.body)
            .ok()
            .and_then(|v| v.get("p_match").and_then(Json::as_f64))
            .is_some_and(|p| (p as f32).to_bits() == reference_bits),
        _ => false,
    }
}

/// A torn client: writes half a request and hangs up. The server must
/// tear the connection down silently and stay healthy.
fn torn_client(addr: std::net::SocketAddr, schema: &Schema, pair: &RecordPair) {
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let body = match_body(schema, pair);
        let req = format!(
            "POST /match HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        let _ = stream.write_all(&req.as_bytes()[..req.len() / 2]);
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }
}

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64 * q).ceil() as usize).max(1) - 1;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

fn latency_obj(latencies: &mut [u64]) -> (String, u64, u64, u64, f64) {
    latencies.sort_unstable();
    let n = latencies.len();
    let mean = if n == 0 {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / n as f64
    };
    let (p50, p90, p99) = (
        percentile(latencies, 0.50),
        percentile(latencies, 0.90),
        percentile(latencies, 0.99),
    );
    let mut o = json::Obj::new();
    o.u64("p50", p50)
        .u64("p90", p90)
        .u64("p99", p99)
        .f64("mean", mean);
    (o.finish(), p50, p90, p99, mean)
}

fn main() {
    let args = parse_args();
    let spec = ModelSpec {
        scale: args.scale,
        data_seed: args.seed,
        ..ModelSpec::fixture()
    };
    eprintln!(
        "serve_bench: training fixture winner ({} scale {}) ...",
        spec.dataset.code(),
        spec.scale
    );
    let host = Arc::new(spec.train().expect("fixture training failed"));
    let warmed = host.warm_cache();
    let reference = host.match_proba(host.dataset().split(Split::Test));
    eprintln!(
        "serve_bench: {} ({} val F1 {:.4}), cache warm ({warmed} new), {} test pairs",
        host.report().system,
        host.spec().dataset.code(),
        host.report().val_f1,
        reference.len()
    );

    // the swap target: same recipe, different engine seed — identical
    // schema (hot-swap compatible), honestly different search outcome
    let (swap_bundle, reference_b) = if args.chaos {
        (None, Vec::new())
    } else {
        eprintln!("serve_bench: training swap target (engine seed bump) ...");
        let host_b = ModelSpec {
            engine_seed: spec.engine_seed + 1,
            ..spec
        }
        .train()
        .expect("swap-target training failed");
        let reference_b = host_b.match_proba(host.dataset().split(Split::Test));
        let dir = std::env::temp_dir().join("serve_bench_swap");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let bundle = dir.join("swap_model.json");
        host_b.export(&bundle).expect("swap bundle export failed");
        (Some(bundle), reference_b)
    };
    let references = [reference.clone(), reference_b];

    let chaos_plan = args.chaos.then(|| {
        automl::fault::FaultPlan::parse(CHAOS_PLAN)
            .expect("chaos plan must parse")
            .serve()
            .clone()
    });
    let config = em_serve::ServeConfig {
        addr: "127.0.0.1:0".into(),
        faults: chaos_plan.clone().unwrap_or_default(),
        ..em_serve::ServeConfig::from_env()
    };
    if args.chaos {
        automl::fault::silence_injected_panic_output();
        eprintln!("serve_bench: CHAOS MODE, fault plan: {CHAOS_PLAN}");
    }
    let handle = em_serve::serve(Arc::clone(&host), &config).expect("server failed to start");
    let addr = handle.addr();
    eprintln!(
        "serve_bench: serving on http://{addr}, driving {} conns for {:.1}s",
        args.conns, args.secs
    );

    let stop = AtomicBool::new(false);
    let schema = host.dataset().schema();
    let pairs = host.dataset().split(Split::Test);
    let mut swap_report: Option<(u64, u64, u64, String)> = None; // from, to, load_ms, digest
    let mut loris_ok = true;
    let mut torn_sent = 0usize;
    let t0 = Instant::now();
    let stats: Vec<ClientStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.conns.max(1))
            .map(|c| {
                let host = &host;
                let references = &references;
                let stop = &stop;
                s.spawn(move || drive_client(addr, host, references, c * 17, stop))
            })
            .collect();
        if let Some(plan) = &chaos_plan {
            // chaos side-channel clients ride alongside the load
            if plan.torn_client() {
                for i in 0..3 {
                    torn_client(addr, schema, &pairs[i % pairs.len()]);
                    torn_sent += 1;
                }
            }
            let loris = plan.loris_client_ms().map(|stall| {
                s.spawn(move || {
                    slow_loris_client(addr, schema, &pairs[0], reference[0].to_bits(), stall)
                })
            });
            std::thread::sleep(Duration::from_secs_f64(args.secs));
            if let Some(l) = loris {
                loris_ok = l.join().expect("loris thread panicked");
            }
        } else if let Some(bundle) = &swap_bundle {
            // hot-swap mid-run: reload on a dedicated admin connection
            std::thread::sleep(Duration::from_secs_f64(args.secs * 0.4));
            let body = format!("{{\"path\":\"{}\"}}", bundle.display());
            let req = format!(
                "POST /admin/reload HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            );
            let mut admin = TcpStream::connect(addr).expect("admin connect");
            admin.write_all(req.as_bytes()).expect("admin write");
            let mut rx = Vec::new();
            let rsp = read_response(&mut admin, &mut rx).expect("reload response");
            assert_eq!(rsp.status, 200, "reload failed: {}", rsp.body);
            let v = json::parse(&rsp.body).expect("reload body");
            swap_report = Some((
                v.get("previous_version")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                v.get("version").and_then(Json::as_u64).unwrap_or(0),
                v.get("load_ms").and_then(Json::as_u64).unwrap_or(0),
                v.get("digest")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_owned(),
            ));
            std::thread::sleep(Duration::from_secs_f64(args.secs * 0.6));
        } else {
            std::thread::sleep(Duration::from_secs_f64(args.secs));
        }
        stop.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();

    // post-fault health: the server must still answer correctly
    let healthy_after = {
        let mut ok = false;
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
            let body = match_body(schema, &pairs[0]);
            let req = format!(
                "POST /match HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            );
            let mut rx = Vec::new();
            if stream.write_all(req.as_bytes()).is_ok() {
                if let Ok(rsp) = read_response(&mut stream, &mut rx) {
                    let want = match rsp.version {
                        Some(2) => references[1].first().map(|p| p.to_bits()),
                        _ => references[0].first().map(|p| p.to_bits()),
                    };
                    ok = rsp.status == 200
                        && json::parse(&rsp.body)
                            .ok()
                            .and_then(|v| v.get("p_match").and_then(Json::as_f64))
                            .map(|p| (p as f32).to_bits())
                            == want;
                }
            }
        }
        ok
    };
    let drained = handle.shutdown();

    let mut all: Vec<u64> = Vec::new();
    let mut v1: Vec<u64> = Vec::new();
    let mut v2: Vec<u64> = Vec::new();
    for s in &stats {
        for &(lat, ver) in &s.latencies_us {
            all.push(lat);
            match ver {
                1 => v1.push(lat),
                2 => v2.push(lat),
                _ => {}
            }
        }
    }
    let errors: usize = stats.iter().map(|s| s.errors).sum();
    let mismatches: usize = stats.iter().map(|s| s.mismatches).sum();
    let typed_500: usize = stats.iter().map(|s| s.typed_500).sum();
    let shed: usize = stats.iter().map(|s| s.shed).sum();
    let untyped: usize = stats.iter().map(|s| s.untyped).sum();
    let hangs: usize = stats.iter().map(|s| s.hangs).sum();
    let requests = all.len();
    let qps = requests as f64 / elapsed;
    let (lat_all, p50, p90, p99, mean_us) = latency_obj(&mut all);
    let (lat_v1, ..) = latency_obj(&mut v1);
    let (lat_v2, ..) = latency_obj(&mut v2);

    let mut o = json::Obj::new();
    o.str(
        "run",
        if args.chaos {
            "serve_bench_chaos"
        } else {
            "serve_bench"
        },
    )
    .str("dataset", host.spec().dataset.code())
    .str("system", host.report().system)
    .f64("scale", args.scale)
    .u64("seed", args.seed)
    .u64("conns", args.conns as u64)
    .f64("secs", elapsed)
    .u64("requests", requests as u64)
    .f64("qps", qps)
    .raw("latency_us", &lat_all)
    .u64("errors", errors as u64)
    .u64("mismatches", mismatches as u64)
    .u64("typed_500", typed_500 as u64)
    .u64("shed", shed as u64)
    .u64("untyped", untyped as u64)
    .u64("hangs", hangs as u64)
    .bool("drained", drained)
    .bool("healthy_after", healthy_after);
    if let Some((from, to, load_ms, digest)) = &swap_report {
        let mut sw = json::Obj::new();
        sw.bool("performed", true)
            .u64("from_version", *from)
            .u64("to_version", *to)
            .u64("load_ms", *load_ms)
            .str("digest", digest)
            .u64("requests_v1", v1.len() as u64)
            .u64("requests_v2", v2.len() as u64)
            .raw("latency_us_v1", &lat_v1)
            .raw("latency_us_v2", &lat_v2);
        o.raw("swap", &sw.finish());
    }
    if args.chaos {
        let mut ch = json::Obj::new();
        ch.str("plan", CHAOS_PLAN)
            .bool("loris_answered_correctly", loris_ok)
            .u64("torn_sent", torn_sent as u64);
        o.raw("chaos", &ch.finish());
    }
    let report = o.finish();

    std::fs::create_dir_all(&args.out).expect("cannot create --out dir");
    let file = if args.chaos {
        "CHAOS_serve.json"
    } else {
        "BENCH_serve.json"
    };
    let path = std::path::Path::new(&args.out).join(file);
    std::fs::write(&path, format!("{report}\n")).expect("cannot write report");

    println!(
        "## serve_bench{}\n",
        if args.chaos { " (chaos)" } else { "" }
    );
    println!("| metric | value |");
    println!("|---|---|");
    println!("| requests | {requests} |");
    println!("| sustained QPS | {qps:.0} |");
    println!("| p50 latency | {:.2} ms |", p50 as f64 / 1000.0);
    println!("| p90 latency | {:.2} ms |", p90 as f64 / 1000.0);
    println!("| p99 latency | {:.2} ms |", p99 as f64 / 1000.0);
    println!("| mean latency | {:.2} ms |", mean_us / 1000.0);
    println!("| bit-identity mismatches | {mismatches} |");
    println!("| typed 500s | {typed_500} |");
    println!("| shed (429/503 + retry-after) | {shed} |");
    println!("| untyped responses | {untyped} |");
    println!("| hung requests | {hangs} |");
    println!("| transport errors | {errors} |");
    println!("| healthy after | {healthy_after} |");
    println!("| drained cleanly | {drained} |");
    if let Some((from, to, load_ms, _)) = &swap_report {
        println!(
            "| hot-swap | v{from} → v{to} ({load_ms} ms load, {} v1 / {} v2 requests) |",
            v1.len(),
            v2.len()
        );
    }
    println!("\nwrote {}", path.display());

    if args.chaos {
        // the chaos verdict: exactly-one-response, correct-or-typed,
        // bit-identical 200s, loris answered, healthy and drained
        let ok = requests > 0
            && mismatches == 0
            && untyped == 0
            && hangs == 0
            && errors == 0
            && typed_500 > 0 // the injected panics must have surfaced as typed 500s
            && loris_ok
            && healthy_after
            && drained;
        if !ok {
            eprintln!(
                "serve_bench --chaos FAILED: requests={requests} mismatches={mismatches} \
                 untyped={untyped} hangs={hangs} errors={errors} typed_500={typed_500} \
                 loris_ok={loris_ok} healthy_after={healthy_after} drained={drained}"
            );
            std::process::exit(1);
        }
        println!("serve_bench --chaos OK: every request got exactly one correct-or-typed response");
        return;
    }

    if args.check {
        let text = std::fs::read_to_string(&path).expect("re-read failed");
        let v = json::parse(&text).expect("BENCH_serve.json is not valid JSON");
        let requests = v.get("requests").and_then(Json::as_u64).unwrap_or(0);
        let qps = v.get("qps").and_then(Json::as_f64).unwrap_or(f64::NAN);
        let swap_ok = v
            .get("swap")
            .map(|sw| {
                sw.get("to_version").and_then(Json::as_u64) == Some(2)
                    && sw.get("requests_v2").and_then(Json::as_u64).unwrap_or(0) > 0
            })
            .unwrap_or(false);
        let ok = requests > 0
            && qps.is_finite()
            && mismatches == 0
            && errors == 0
            && untyped == 0
            && hangs == 0
            && swap_ok
            && drained
            && v.get("latency_us")
                .and_then(|l| l.get("p99"))
                .and_then(Json::as_u64)
                .is_some();
        if !ok {
            eprintln!("serve_bench --check FAILED: requests={requests} qps={qps} mismatches={mismatches} errors={errors} untyped={untyped} hangs={hangs} swap_ok={swap_ok} drained={drained}");
            std::process::exit(1);
        }
        println!("serve_bench --check OK");
    }
}
