//! Regenerates **Table 5**: the best adapter configuration found in
//! Table 3 — the **Hybrid tokenizer with the Albert embedder** — pipelined
//! with the three AutoML systems under 1-hour and 6-hour budgets, compared
//! against DeepMatcher (Hybrid). Δ columns report the offset between the
//! best adapted system and DeepMatcher, per budget.
//!
//! This is the binary the crash-safety layer is aimed at: pass
//! `--journal-dir <dir>` to checkpoint every search cell to a WAL named
//! `<code>_<system>_<budget>h.jsonl` — SIGKILL the process at any point
//! and rerun the same command to resume — and `--deadline-secs <s>` to
//! cap each search's wall clock (expired searches report best-so-far).

use bench::experiments::{
    dataset_seed, make_system, per_dataset, pretrain_embedders, SYSTEM_NAMES,
};
use bench::report::{emit, f1, finish_run, hours, Table};
use bench::Cli;
use deepmatcher::{train_deepmatcher, TrainConfig};
use em_core::{run_encoded_resumable, Combiner, EmAdapter, PipelineConfig, TokenizerMode};
use em_data::Split;
use embed::families::EmbedderFamily;

fn main() {
    let cli = Cli::parse();
    let profiles = cli.profiles();
    eprintln!("pretraining the 5 embedder families…");
    let embedders = pretrain_embedders(&profiles, cli.seed);
    let albert = embedders.get(EmbedderFamily::Albert);

    eprintln!("running budgeted comparisons…");
    struct Row {
        code: &'static str,
        dm_f1: f64,
        dm_hours: f64,
        one: [f64; 3],
        six: [f64; 3],
    }
    let rows = per_dataset(&profiles, |p| {
        let seed = dataset_seed(cli.seed, p.code);
        let dataset = p.generate_scaled(seed, bench::experiments::effective_scale(p, cli.scale));
        let dm = train_deepmatcher(
            &dataset,
            TrainConfig {
                seed,
                ..TrainConfig::default()
            },
        );
        let dm_f1 = dm.f1_on(dataset.split(Split::Test));
        // encode once, reuse for every (system × budget) combination
        let adapter = EmAdapter::new(TokenizerMode::Hybrid, albert, Combiner::Average);
        let train = adapter.encode_split(&dataset, Split::Train);
        let valid = adapter.encode_split(&dataset, Split::Validation);
        let test = adapter.encode_split(&dataset, Split::Test);
        let mut one = [0.0; 3];
        let mut six = [0.0; 3];
        for (i, sys_name) in SYSTEM_NAMES.iter().enumerate() {
            for (slot, hours) in [(&mut one, 1.0), (&mut six, 6.0)] {
                let mut sys = make_system(i, seed);
                let cfg = PipelineConfig {
                    budget_hours: hours,
                    seed,
                    ..PipelineConfig::default()
                };
                // one WAL per (dataset × system × budget) cell: a killed
                // run resumes exactly the cells it hadn't finished
                let policy = cli.resume_policy(&format!("{}_{sys_name}_{hours}h", p.code));
                slot[i] = run_encoded_resumable(
                    sys.as_mut(),
                    &train,
                    &valid,
                    &test,
                    cfg,
                    p.code,
                    &policy,
                    cli.deadline(),
                )
                .expect("encoded run failed")
                .test_f1;
            }
        }
        Row {
            code: p.code,
            dm_f1,
            dm_hours: deepmatcher::train::estimated_hours(p.size),
            one,
            six,
        }
    });

    let mut table = Table::new(
        "Table 5 - EM-Adapter plus AutoML vs DeepMatcher",
        &[
            "Dataset", "DM F1", "DM (h)", "1h ASk", "1h AGl", "1h H2O", "1h Delta", "6h ASk",
            "6h AGl", "6h H2O", "6h Delta",
        ],
    );
    let (mut cmp1, mut cmp6) = (0usize, 0usize);
    for r in &rows {
        let best1 = r.one.iter().cloned().fold(f64::MIN, f64::max);
        let best6 = r.six.iter().cloned().fold(f64::MIN, f64::max);
        if best1 >= r.dm_f1 - 2.0 {
            cmp1 += 1;
        }
        if best6 >= r.dm_f1 - 2.0 {
            cmp6 += 1;
        }
        table.row(vec![
            r.code.to_owned(),
            f1(r.dm_f1),
            hours(r.dm_hours),
            f1(r.one[0]),
            f1(r.one[1]),
            f1(r.one[2]),
            format!("{:+.2}", best1 - r.dm_f1),
            f1(r.six[0]),
            f1(r.six[1]),
            f1(r.six[2]),
            format!("{:+.2}", best6 - r.dm_f1),
        ]);
    }
    emit(&table, cli.out.as_deref());
    let n = rows.len();
    println!(
        "Within 2% of (or above) DeepMatcher: {cmp1}/{n} at 1h, {cmp6}/{n} at 6h \
         (paper: 9/12 and 11/12)"
    );
    finish_run("table5", &cli);
}
