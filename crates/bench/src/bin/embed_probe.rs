//! Feature-quality probe: GBM directly on adapter encodings (bypasses the
//! AutoML search for fast iteration on the embedder).
use em_core::{Combiner, EmAdapter, TokenizerMode};
use em_data::{MagellanDataset, Split};
use embed::families::{EmbedderFamily, PretrainConfig, PretrainedTransformer};
use ml::boosting::{BoostConfig, GradientBoosting};
use ml::metrics::{best_f1_threshold, f1_at_threshold};
use ml::Classifier;

fn main() {
    for (id, scale) in [
        (MagellanDataset::SDA, 0.12),
        (MagellanDataset::SWA, 0.12),
        (MagellanDataset::SFZ, 1.0),
        (MagellanDataset::DDA, 0.12),
    ] {
        let d = id.profile().generate_scaled(9, scale);
        let domain: Vec<String> = d
            .pairs()
            .iter()
            .take(150)
            .flat_map(|p| [p.left.flatten(), p.right.flatten()])
            .collect();
        let emb = PretrainedTransformer::pretrain(
            EmbedderFamily::Albert,
            &domain,
            PretrainConfig {
                steps: 600,
                seed: 1,
                ..PretrainConfig::default()
            },
        );
        for mode in [TokenizerMode::AttributeBased, TokenizerMode::Hybrid] {
            let adapter = EmAdapter::new(mode, &emb, Combiner::Average);
            let tr = adapter.encode_split(&d, Split::Train);
            let va = adapter.encode_split(&d, Split::Validation);
            let te = adapter.encode_split(&d, Split::Test);
            let mut m = GradientBoosting::new(BoostConfig {
                n_rounds: 150,
                ..Default::default()
            });
            m.fit(&tr.x, &tr.y).expect("probe fit failed");
            let (thr, vf1) = best_f1_threshold(&m.predict_proba(&va.x), &va.labels_bool());
            let tf1 = f1_at_threshold(&m.predict_proba(&te.x), &te.labels_bool(), thr);
            println!(
                "{} {:8}: val {:.1} test {:.1}",
                d.name(),
                mode.label(),
                vf1,
                tf1
            );
        }
    }
}
