//! Minimal std-only bench harness used by `cargo bench` targets.
//!
//! Crates.io is unreachable from the build environment, so the bench
//! targets cannot use Criterion; this module provides the small slice of
//! it the tables need — named timings with warmup, min/mean/max over a
//! fixed iteration count — and records each timing as an `obs` histogram
//! so bench runs share the same observability surface as the binaries.

use std::time::Instant;

/// Time `f` for `iters` iterations (after one untimed warmup call) and
/// print a `name  min/mean/max` line. Returns the last result so callers
/// can keep the computation observable.
pub fn bench<T>(name: &str, iters: usize, mut f: impl FnMut() -> T) -> T {
    assert!(iters > 0, "bench needs at least one iteration");
    let mut last = f(); // warmup, untimed
    let hist = obs::histogram(
        &format!("bench.{name}.ms"),
        &[0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0],
    );
    let mut times_ms = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        last = std::hint::black_box(f());
        let ms = t0.elapsed().as_secs_f64() * 1000.0;
        hist.observe(ms);
        times_ms.push(ms);
    }
    let min = times_ms.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times_ms.iter().cloned().fold(0.0f64, f64::max);
    let mean = times_ms.iter().sum::<f64>() / times_ms.len() as f64;
    println!(
        "{name:<44} {iters:>3} iters  min {min:>10.3}ms  mean {mean:>10.3}ms  max {max:>10.3}ms"
    );
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_returns_last_value() {
        let mut n = 0u64;
        let out = bench("t.sw.counter", 3, || {
            n += 1;
            n
        });
        // 1 warmup + 3 timed calls
        assert_eq!(out, 4);
        assert_eq!(obs::histogram("bench.t.sw.counter.ms", &[]).count(), 3);
    }
}
