//! # bench — the experiment harness that regenerates the paper's tables
//!
//! One binary per table (`table1` … `table5`, plus `ablations`), all built
//! on the shared runner in [`experiments`]:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — benchmark inventory (type, size, % match) |
//! | `table2` | Table 2 — raw AutoML vs DeepMatcher (F1 + training hours) |
//! | `table3` | Table 3a/b/c — adapter grid: tokenizer × embedder × system |
//! | `table4` | Table 4 — adapter impact (no-adapter vs attr vs hybrid, Δ) |
//! | `table5` | Table 5 — Hybrid+Albert adapter at 1 h / 6 h vs DeepMatcher |
//! | `ablations` | combiner / unstructured-tokenizer / oversampling extras |
//!
//! All binaries accept `--scale <f>` (fraction of each dataset's Table 1
//! size; default keeps runtimes in minutes — pass `--scale 1.0` for the
//! full benchmark), `--seed <n>` and `--out <dir>` (TSV output next to the
//! printed markdown). `table5` additionally accepts `--journal-dir <dir>`
//! (checkpoint every search to a per-cell WAL and resume from it on
//! restart — kill the process at any point and rerun the same command)
//! and `--deadline-secs <s>` (a wall-clock ceiling per search; expired
//! searches return best-so-far).

pub mod experiments;
pub mod obsreport;
pub mod report;
pub mod stopwatch;

/// Shared CLI options for the table binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Dataset scale in `(0, 1]`.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Output directory for TSV artifacts (created if missing).
    pub out: Option<String>,
    /// Optional filter: only run datasets whose code contains this string.
    pub only: Option<String>,
    /// Directory for crash-safe search journals (`None` = no journaling).
    /// Rerunning the same command with the same directory resumes
    /// interrupted searches from their WALs.
    pub journal_dir: Option<String>,
    /// Wall-clock ceiling per AutoML search, in seconds (`None` = no
    /// deadline). Expired searches return their best-so-far report.
    pub deadline_secs: Option<f64>,
}

impl Default for Cli {
    fn default() -> Self {
        Self {
            scale: 0.06,
            seed: 42,
            out: Some("results".to_owned()),
            only: None,
            journal_dir: None,
            deadline_secs: None,
        }
    }
}

impl Cli {
    /// Parse `--scale`, `--seed`, `--out`, `--only`, `--journal-dir` and
    /// `--deadline-secs` from `std::env::args`.
    pub fn parse() -> Cli {
        let mut cli = Cli::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    cli.scale = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .expect("--scale needs a number in (0, 1]");
                    i += 2;
                }
                "--seed" => {
                    cli.seed = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                    i += 2;
                }
                "--out" => {
                    cli.out = Some(args.get(i + 1).expect("--out needs a path").clone());
                    i += 2;
                }
                "--no-out" => {
                    cli.out = None;
                    i += 1;
                }
                "--only" => {
                    cli.only = Some(args.get(i + 1).expect("--only needs a code").clone());
                    i += 2;
                }
                "--journal-dir" => {
                    cli.journal_dir =
                        Some(args.get(i + 1).expect("--journal-dir needs a path").clone());
                    i += 2;
                }
                "--deadline-secs" => {
                    let secs: f64 = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .expect("--deadline-secs needs a number of seconds");
                    assert!(
                        secs.is_finite() && secs > 0.0,
                        "--deadline-secs must be positive"
                    );
                    cli.deadline_secs = Some(secs);
                    i += 2;
                }
                other => panic!(
                    "unknown argument: {other} \
                     (try --scale/--seed/--out/--only/--journal-dir/--deadline-secs)"
                ),
            }
        }
        assert!(
            cli.scale > 0.0 && cli.scale <= 1.0,
            "--scale must be in (0, 1]"
        );
        cli
    }

    /// The [`automl::ResumePolicy`] for one search cell: a per-cell WAL
    /// named `<cell>.jsonl` under `--journal-dir` (resumed when the file
    /// already exists), or [`automl::ResumePolicy::Fresh`] when no journal
    /// directory was given.
    pub fn resume_policy(&self, cell: &str) -> automl::ResumePolicy {
        match &self.journal_dir {
            Some(dir) => automl::ResumePolicy::Resume(
                std::path::Path::new(dir).join(format!("{cell}.jsonl")),
            ),
            None => automl::ResumePolicy::Fresh,
        }
    }

    /// A fresh wall-clock [`automl::Deadline`] from `--deadline-secs`.
    /// The clock starts at the call, so call this once per search, right
    /// before the search starts.
    pub fn deadline(&self) -> automl::Deadline {
        match self.deadline_secs {
            Some(s) => automl::Deadline::within(std::time::Duration::from_secs_f64(s)),
            None => automl::Deadline::none(),
        }
    }

    /// The dataset profiles selected by `--only` (all 12 by default).
    pub fn profiles(&self) -> Vec<em_data::DatasetProfile> {
        em_data::magellan_benchmark()
            .into_iter()
            .filter(|p| {
                self.only
                    .as_ref()
                    .is_none_or(|f| p.code.to_lowercase().contains(&f.to_lowercase()))
            })
            .collect()
    }
}
