//! Run-observatory ingestion and reporting behind the `obs_report` binary.
//!
//! A "run directory" is whatever a table binary left behind under
//! `--out`: a `<run>_manifest.json` (metrics + span tree + cost ledger)
//! and, when the run was traced (`AUTOML_EM_TRACE=1`), the Perfetto
//! `trace.json` / flamegraph `trace.folded` pair. This module loads that
//! directory into a [`RunData`], renders the human report (hottest spans,
//! per-scope phase breakdowns, per-thread utilization) and implements the
//! A/B regression gate used by CI.
//!
//! The gate compares **phase shares** (each phase's fraction of its
//! scope's booked nanoseconds), not raw nanoseconds: shares are invariant
//! to machine speed, so a baseline recorded on one box is comparable to a
//! candidate run on another. A phase regresses when its share grows past
//! `baseline × (1 + max_regress/100) + 0.5pp`; phases below 1% of their
//! scope are ignored as noise.

use std::path::Path;

/// One `(scope, phase)` cost-ledger row as read from a manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerRow {
    /// Attribution scope (`"run"`, an engine name, `"par"`).
    pub scope: String,
    /// Phase name (`tokenize`, `gemm`, `fit_epoch`, …).
    pub phase: String,
    /// Total booked nanoseconds.
    pub ns: u64,
    /// Booking count.
    pub count: u64,
}

/// One span subtree flattened to a `parent;child` path with its total
/// wall time — the unit the "hottest spans" table ranks.
#[derive(Debug, Clone)]
pub struct HotSpan {
    /// Semicolon-joined path from the root span.
    pub path: String,
    /// Total wall milliseconds across merged instances.
    pub wall_ms: f64,
    /// Merged instance count.
    pub count: u64,
}

/// Per-thread utilization recovered from `trace.json`.
#[derive(Debug, Clone)]
pub struct ThreadUtil {
    /// Small stable thread id assigned by the trace collector.
    pub tid: u64,
    /// Microseconds covered by top-level (depth-0) spans on this thread.
    pub busy_us: f64,
    /// Events recorded on this thread.
    pub events: u64,
}

/// Per-engine aggregate over the `trial` events of a run's JSONL stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialAgg {
    /// Engine name as emitted ("AutoSklearn", …).
    pub engine: String,
    /// Trials observed (quarantined failures included).
    pub trials: u64,
    /// Trials that carried an `error` field.
    pub failed: u64,
    /// Total guarded-evaluation wall milliseconds.
    pub wall_ms: f64,
}

/// Everything `obs_report` knows about one run directory.
#[derive(Debug, Clone, Default)]
pub struct RunData {
    /// Run name from the manifest (`"table5"`, …).
    pub run: String,
    /// Cost-ledger rows, `(scope, phase)`-sorted.
    pub ledger: Vec<LedgerRow>,
    /// Flattened span paths.
    pub spans: Vec<HotSpan>,
    /// Per-thread utilization (empty when the run was not traced).
    pub threads: Vec<ThreadUtil>,
    /// Trace timeline extent in microseconds (0 when untraced).
    pub trace_span_us: f64,
    /// Per-engine trial aggregates from any `*.jsonl` event stream in
    /// the directory (empty when the run streamed no events).
    pub trials: Vec<TrialAgg>,
}

/// One phase's share of its scope.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseShare {
    /// Attribution scope.
    pub scope: String,
    /// Phase name.
    pub phase: String,
    /// Booked nanoseconds.
    pub ns: u64,
    /// Booking count carried over from the ledger row.
    pub count: u64,
    /// Percentage of the scope's total booked nanoseconds.
    pub share_pct: f64,
}

/// Phases below this share of their scope are ignored by the diff gate.
pub const MIN_GATED_SHARE_PCT: f64 = 1.0;

/// Absolute slack (percentage points) added on top of the relative
/// tolerance, so near-zero baselines cannot trip the gate on noise.
pub const SHARE_SLACK_PP: f64 = 0.5;

fn arr(j: &obs::json::Json) -> &[obs::json::Json] {
    match j {
        obs::json::Json::Arr(items) => items,
        _ => &[],
    }
}

/// Find the manifest in `dir`: a file named `*_manifest.json`
/// (alphabetically first when several runs share the directory).
fn manifest_path(dir: &Path) -> Result<std::path::PathBuf, String> {
    let mut candidates: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with("_manifest.json"))
        })
        .collect();
    candidates.sort();
    candidates
        .into_iter()
        .next()
        .ok_or_else(|| format!("no *_manifest.json under {}", dir.display()))
}

fn flatten_spans(prefix: &str, node: &obs::json::Json, out: &mut Vec<HotSpan>) {
    let name = node.get("name").and_then(|j| j.as_str()).unwrap_or("?");
    let path = if prefix.is_empty() {
        name.to_owned()
    } else {
        format!("{prefix};{name}")
    };
    out.push(HotSpan {
        path: path.clone(),
        wall_ms: node.get("wall_ms").and_then(|j| j.as_f64()).unwrap_or(0.0),
        count: node.get("count").and_then(|j| j.as_u64()).unwrap_or(0),
    });
    if let Some(children) = node.get("children") {
        for child in arr(children) {
            flatten_spans(&path, child, out);
        }
    }
}

/// Recover per-thread busy time from Chrome trace events: for each tid,
/// sum the durations of **depth-0** `B`/`E` pairs (nested spans are
/// already covered by their root). Returns `(threads, timeline_us)`.
fn thread_util(trace: &obs::json::Json) -> (Vec<ThreadUtil>, f64) {
    use std::collections::BTreeMap;
    struct Acc {
        depth: u64,
        open_ts: f64,
        busy_us: f64,
        events: u64,
    }
    let mut per: BTreeMap<u64, Acc> = BTreeMap::new();
    let (mut t_min, mut t_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let events = trace.get("traceEvents").map(arr).unwrap_or(&[]);
    for ev in events {
        let tid = ev.get("tid").and_then(|j| j.as_u64()).unwrap_or(0);
        let ts = ev.get("ts").and_then(|j| j.as_f64()).unwrap_or(0.0);
        let ph = ev.get("ph").and_then(|j| j.as_str()).unwrap_or("");
        t_min = t_min.min(ts);
        t_max = t_max.max(ts);
        let acc = per.entry(tid).or_insert(Acc {
            depth: 0,
            open_ts: 0.0,
            busy_us: 0.0,
            events: 0,
        });
        acc.events += 1;
        match ph {
            "B" => {
                if acc.depth == 0 {
                    acc.open_ts = ts;
                }
                acc.depth += 1;
            }
            "E" => {
                acc.depth = acc.depth.saturating_sub(1);
                if acc.depth == 0 {
                    acc.busy_us += ts - acc.open_ts;
                }
            }
            _ => {}
        }
    }
    let threads = per
        .into_iter()
        .map(|(tid, a)| ThreadUtil {
            tid,
            busy_us: a.busy_us,
            events: a.events,
        })
        .collect();
    let span_us = if t_max > t_min { t_max - t_min } else { 0.0 };
    (threads, span_us)
}

/// Aggregate `trial` events from every `*.jsonl` file in the run
/// directory (the `AUTOML_EM_TRACE` stream, when it was pointed there).
/// Lines of other shapes — `pipeline` events, journal WAL records
/// (`planned`/`done`/`failed`) — are skipped by the `ev == "trial"`
/// filter; unparseable lines are skipped too (a live stream may end in
/// a torn line).
fn trial_aggregates(dir: &Path) -> Result<Vec<TrialAgg>, String> {
    use std::collections::BTreeMap;
    let mut per: BTreeMap<String, TrialAgg> = BTreeMap::new();
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    paths.sort();
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        for line in text.lines() {
            let Ok(ev) = obs::json::parse(line) else {
                continue;
            };
            if ev.get("ev").and_then(|j| j.as_str()) != Some("trial") {
                continue;
            }
            let Some(engine) = ev.get("engine").and_then(|j| j.as_str()) else {
                continue;
            };
            let agg = per.entry(engine.to_owned()).or_insert(TrialAgg {
                engine: engine.to_owned(),
                trials: 0,
                failed: 0,
                wall_ms: 0.0,
            });
            agg.trials += 1;
            if ev.get("error").is_some() {
                agg.failed += 1;
            }
            agg.wall_ms += ev.get("wall_ms").and_then(|j| j.as_f64()).unwrap_or(0.0);
        }
    }
    Ok(per.into_values().collect())
}

/// Load a run directory into a [`RunData`].
pub fn load_run(dir: &Path) -> Result<RunData, String> {
    let mpath = manifest_path(dir)?;
    let text = std::fs::read_to_string(&mpath)
        .map_err(|e| format!("cannot read {}: {e}", mpath.display()))?;
    let root = obs::json::parse(&text)
        .map_err(|e| format!("{} is not valid JSON: {e:?}", mpath.display()))?;
    let mut data = RunData {
        run: root
            .get("run")
            .and_then(|j| j.as_str())
            .unwrap_or("?")
            .to_owned(),
        ..RunData::default()
    };
    if let Some(rows) = root.get("ledger") {
        for row in arr(rows) {
            data.ledger.push(LedgerRow {
                scope: row
                    .get("scope")
                    .and_then(|j| j.as_str())
                    .unwrap_or("run")
                    .to_owned(),
                phase: row
                    .get("phase")
                    .and_then(|j| j.as_str())
                    .unwrap_or("?")
                    .to_owned(),
                ns: row.get("ns").and_then(|j| j.as_u64()).unwrap_or(0),
                count: row.get("count").and_then(|j| j.as_u64()).unwrap_or(0),
            });
        }
    }
    if let Some(spans) = root.get("spans") {
        for span in arr(spans) {
            flatten_spans("", span, &mut data.spans);
        }
    }
    data.trials = trial_aggregates(dir)?;
    let tpath = dir.join("trace.json");
    if tpath.exists() {
        let ttext = std::fs::read_to_string(&tpath)
            .map_err(|e| format!("cannot read {}: {e}", tpath.display()))?;
        let trace = obs::json::parse(&ttext)
            .map_err(|e| format!("{} is not valid JSON: {e:?}", tpath.display()))?;
        let (threads, span_us) = thread_util(&trace);
        data.threads = threads;
        data.trace_span_us = span_us;
    }
    Ok(data)
}

/// Per-scope phase shares of a ledger, `(scope, phase)`-sorted. The
/// `par` bookkeeping rows (`busy`/`idle`/`steal`) keep their scope but
/// are shared against the `par` total only, like every other scope.
pub fn phase_shares(ledger: &[LedgerRow]) -> Vec<PhaseShare> {
    use std::collections::BTreeMap;
    let mut scope_total: BTreeMap<&str, u64> = BTreeMap::new();
    for row in ledger {
        *scope_total.entry(&row.scope).or_insert(0) += row.ns;
    }
    let mut out: Vec<PhaseShare> = ledger
        .iter()
        .map(|row| {
            let total = scope_total.get(row.scope.as_str()).copied().unwrap_or(0);
            PhaseShare {
                scope: row.scope.clone(),
                phase: row.phase.clone(),
                ns: row.ns,
                count: row.count,
                share_pct: if total > 0 {
                    row.ns as f64 / total as f64 * 100.0
                } else {
                    0.0
                },
            }
        })
        .collect();
    out.sort_by(|a, b| (&a.scope, &a.phase).cmp(&(&b.scope, &b.phase)));
    out
}

/// One detected regression from [`diff_runs`].
#[derive(Debug, Clone)]
pub struct Regression {
    /// Attribution scope.
    pub scope: String,
    /// Phase whose share grew.
    pub phase: String,
    /// Baseline share (percent of scope).
    pub base_pct: f64,
    /// Candidate share (percent of scope).
    pub cand_pct: f64,
    /// The share the gate would still have accepted.
    pub allowed_pct: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {}: {:.1}% -> {:.1}% (allowed {:.1}%)",
            self.scope, self.phase, self.base_pct, self.cand_pct, self.allowed_pct
        )
    }
}

/// Compare candidate `cand` against `base`: a phase regresses when its
/// share of its scope grows past `base × (1 + max_regress_pct/100)`
/// plus [`SHARE_SLACK_PP`] percentage points. Phases under
/// [`MIN_GATED_SHARE_PCT`] in **both** runs are skipped; phases only
/// present in the candidate are gated against a zero baseline (slack
/// still applies).
pub fn diff_runs(base: &RunData, cand: &RunData, max_regress_pct: f64) -> Vec<Regression> {
    use std::collections::BTreeMap;
    let base_shares: BTreeMap<(String, String), f64> = phase_shares(&base.ledger)
        .into_iter()
        .map(|s| ((s.scope, s.phase), s.share_pct))
        .collect();
    let mut out = Vec::new();
    for s in phase_shares(&cand.ledger) {
        let key = (s.scope.clone(), s.phase.clone());
        let base_pct = base_shares.get(&key).copied().unwrap_or(0.0);
        if base_pct < MIN_GATED_SHARE_PCT && s.share_pct < MIN_GATED_SHARE_PCT {
            continue;
        }
        let allowed = base_pct * (1.0 + max_regress_pct / 100.0) + SHARE_SLACK_PP;
        if s.share_pct > allowed {
            out.push(Regression {
                scope: s.scope,
                phase: s.phase,
                base_pct,
                cand_pct: s.share_pct,
                allowed_pct: allowed,
            });
        }
    }
    out
}

fn fmt_ns(ns: u64) -> String {
    let ms = ns as f64 / 1e6;
    if ms >= 1000.0 {
        format!("{:.2}s", ms / 1e3)
    } else if ms >= 1.0 {
        format!("{ms:.1}ms")
    } else {
        format!("{:.0}us", ns as f64 / 1e3)
    }
}

/// Render the human report for one run.
pub fn render_report(data: &RunData) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== obs_report: run `{}` ==", data.run);

    // hottest spans by total wall time
    let mut spans = data.spans.clone();
    spans.sort_by(|a, b| {
        b.wall_ms
            .partial_cmp(&a.wall_ms)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    if !spans.is_empty() {
        let _ = writeln!(out, "\nhottest spans (total wall):");
        for s in spans.iter().take(12) {
            let _ = writeln!(out, "  {:>10.1}ms  x{:<6} {}", s.wall_ms, s.count, s.path);
        }
    }

    // per-scope phase breakdown
    let shares = phase_shares(&data.ledger);
    if !shares.is_empty() {
        let _ = writeln!(out, "\nphase breakdown (share of scope):");
        let mut last_scope = String::new();
        for s in &shares {
            if s.scope != last_scope {
                let _ = writeln!(out, "  [{}]", s.scope);
                last_scope = s.scope.clone();
            }
            let _ = writeln!(
                out,
                "    {:<16} {:>9}  {:>5.1}%  x{}",
                s.phase,
                fmt_ns(s.ns),
                s.share_pct,
                s.count
            );
        }
    }

    // per-engine trial telemetry from the events stream
    if !data.trials.is_empty() {
        let _ = writeln!(out, "\ntrials (from events JSONL):");
        for t in &data.trials {
            let _ = writeln!(
                out,
                "  {:<14} {:>4} trials ({} failed)  {:>9.1}ms guarded wall",
                t.engine, t.trials, t.failed, t.wall_ms
            );
        }
    }

    // per-thread utilization from the trace
    if data.threads.is_empty() {
        let _ = writeln!(
            out,
            "\n(no trace.json — rerun with AUTOML_EM_TRACE=1 for per-thread utilization)"
        );
    } else {
        let _ = writeln!(
            out,
            "\nper-thread utilization (timeline {:.1}ms):",
            data.trace_span_us / 1e3
        );
        for t in &data.threads {
            let pct = if data.trace_span_us > 0.0 {
                t.busy_us / data.trace_span_us * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  tid {:>3}  busy {:>10.1}ms  {:>5.1}%  {} events",
                t.tid,
                t.busy_us / 1e3,
                pct,
                t.events
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(scope: &str, phase: &str, ns: u64) -> LedgerRow {
        LedgerRow {
            scope: scope.into(),
            phase: phase.into(),
            ns,
            count: 1,
        }
    }

    #[test]
    fn shares_are_per_scope() {
        let shares = phase_shares(&[
            row("run", "tokenize", 750),
            row("run", "embed", 250),
            row("par", "busy", 90),
            row("par", "idle", 10),
        ]);
        let get = |scope: &str, phase: &str| {
            shares
                .iter()
                .find(|s| s.scope == scope && s.phase == phase)
                .unwrap()
                .share_pct
        };
        assert!((get("run", "tokenize") - 75.0).abs() < 1e-9);
        assert!((get("run", "embed") - 25.0).abs() < 1e-9);
        assert!((get("par", "busy") - 90.0).abs() < 1e-9);
    }

    #[test]
    fn diff_flags_only_real_regressions() {
        let base = RunData {
            ledger: vec![row("eng", "trial", 800), row("eng", "gemm", 200)],
            ..RunData::default()
        };
        // identical candidate: clean
        assert!(diff_runs(&base, &base, 25.0).is_empty());
        // gemm share doubles (20% -> 40%): flagged at 25% tolerance
        let slow = RunData {
            ledger: vec![row("eng", "trial", 1200), row("eng", "gemm", 800)],
            ..RunData::default()
        };
        let regs = diff_runs(&base, &slow, 25.0);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].phase, "gemm");
        assert!(regs[0].cand_pct > regs[0].allowed_pct);
        // small drift inside the tolerance band: clean
        let drift = RunData {
            ledger: vec![row("eng", "trial", 790), row("eng", "gemm", 210)],
            ..RunData::default()
        };
        assert!(diff_runs(&base, &drift, 25.0).is_empty());
    }

    #[test]
    fn diff_ignores_sub_percent_noise_phases() {
        let base = RunData {
            ledger: vec![
                row("run", "fit_epoch", 10_000),
                row("run", "journal_fsync", 5),
            ],
            ..RunData::default()
        };
        let cand = RunData {
            // fsync triples but stays under 1% of the scope: not gated
            ledger: vec![
                row("run", "fit_epoch", 10_000),
                row("run", "journal_fsync", 15),
            ],
            ..RunData::default()
        };
        assert!(diff_runs(&base, &cand, 10.0).is_empty());
    }

    #[test]
    fn diff_gates_phases_new_in_candidate() {
        let base = RunData {
            ledger: vec![row("run", "fit_epoch", 1000)],
            ..RunData::default()
        };
        let cand = RunData {
            ledger: vec![row("run", "fit_epoch", 1000), row("run", "gemm", 1000)],
            ..RunData::default()
        };
        let regs = diff_runs(&base, &cand, 25.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].phase, "gemm");
        assert_eq!(regs[0].base_pct, 0.0);
    }

    #[test]
    fn report_renders_all_sections() {
        let data = RunData {
            run: "t_obsreport".into(),
            ledger: vec![
                row("run", "tokenize", 2_000_000),
                row("run", "embed", 6_000_000),
            ],
            spans: vec![HotSpan {
                path: "pipeline.run;pipeline.fit".into(),
                wall_ms: 12.5,
                count: 3,
            }],
            threads: vec![ThreadUtil {
                tid: 1,
                busy_us: 800.0,
                events: 42,
            }],
            trace_span_us: 1000.0,
            trials: vec![TrialAgg {
                engine: "AutoSklearn".into(),
                trials: 9,
                failed: 2,
                wall_ms: 41.5,
            }],
        };
        let text = render_report(&data);
        assert!(text.contains("run `t_obsreport`"));
        assert!(text.contains("pipeline.run;pipeline.fit"));
        assert!(text.contains("tokenize"));
        assert!(text.contains("75.0%"), "{text}");
        assert!(text.contains("80.0%"), "{text}"); // thread utilization
        assert!(text.contains("9 trials (2 failed)"), "{text}");
    }

    #[test]
    fn load_run_roundtrips_a_manifest_and_trace() {
        let dir = std::env::temp_dir().join("bench_obsreport_load_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("demo_manifest.json"),
            r#"{"run":"demo","config":{},"metrics":{},
                "spans":[{"name":"a","wall_ms":5.0,"units":0,"count":1,
                          "children":[{"name":"b","wall_ms":2.0,"units":0,"count":4}]}],
                "ledger":[{"scope":"run","phase":"gemm","ns":1500,"count":2}]}"#,
        )
        .unwrap();
        std::fs::write(
            dir.join("trace.json"),
            r#"{"traceEvents":[
                {"name":"a","ph":"B","ts":0.0,"pid":1,"tid":1},
                {"name":"a","ph":"E","ts":50.0,"pid":1,"tid":1},
                {"name":"x","ph":"B","ts":10.0,"pid":1,"tid":2},
                {"name":"x","ph":"E","ts":100.0,"pid":1,"tid":2}],
                "displayTimeUnit":"ms"}"#,
        )
        .unwrap();
        std::fs::write(
            dir.join("events.jsonl"),
            concat!(
                r#"{"ev":"trial","engine":"AutoSklearn","trial":0,"wall_ms":3.5}"#,
                "\n",
                r#"{"ev":"trial","engine":"AutoSklearn","trial":1,"wall_ms":1.5,"error":"boom"}"#,
                "\n",
                r#"{"ev":"planned","trial":0,"model":"gbm"}"#, // WAL shape: skipped
                "\n",
                r#"{"ev":"trial","torn"#, // torn tail line: skipped
            ),
        )
        .unwrap();
        let data = load_run(&dir).unwrap();
        assert_eq!(data.run, "demo");
        assert_eq!(
            data.trials,
            vec![TrialAgg {
                engine: "AutoSklearn".into(),
                trials: 2,
                failed: 1,
                wall_ms: 5.0,
            }]
        );
        assert_eq!(data.ledger.len(), 1);
        assert_eq!(data.ledger[0].phase, "gemm");
        assert_eq!(data.ledger[0].ns, 1500);
        assert_eq!(data.ledger[0].count, 2);
        assert_eq!(data.spans.len(), 2);
        assert_eq!(data.spans[1].path, "a;b");
        assert_eq!(data.threads.len(), 2);
        assert!((data.threads[0].busy_us - 50.0).abs() < 1e-9);
        assert!((data.trace_span_us - 100.0).abs() < 1e-9);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
