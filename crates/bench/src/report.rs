//! Markdown / TSV rendering of experiment results.

use std::fs;
use std::io::Write;
use std::path::Path;

/// A simple table: header + rows of equally long string cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title (printed above, used as the TSV filename stem).
    pub title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; must match the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as aligned GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:>w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Render as TSV (header + rows).
    pub fn to_tsv(&self) -> String {
        let mut out = self.header.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Write the TSV into `dir/<slug(title)>.tsv`.
    pub fn write_tsv(&self, dir: &str) -> std::io::Result<std::path::PathBuf> {
        fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .to_lowercase()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let path = Path::new(dir).join(format!("{slug}.tsv"));
        let mut f = fs::File::create(&path)?;
        f.write_all(self.to_tsv().as_bytes())?;
        Ok(path)
    }
}

/// Format an F1 cell (paper style: 2 decimals).
pub fn f1(v: f64) -> String {
    format!("{v:.2}")
}

/// Format an hours cell.
pub fn hours(v: f64) -> String {
    format!("{v:.2}")
}

/// Print the table and optionally persist the TSV.
pub fn emit(table: &Table, out_dir: Option<&str>) {
    println!("{}", table.to_markdown());
    if let Some(dir) = out_dir {
        match table.write_tsv(dir) {
            Ok(path) => println!("(wrote {})\n", path.display()),
            Err(e) => eprintln!("warning: could not write TSV: {e}"),
        }
    }
}

/// End-of-run bookkeeping shared by every table binary: print the obs
/// summary (span tree + metrics + cost ledger) to stderr and, when an
/// output directory is configured, write `<dir>/<run>_manifest.json`
/// capturing the run identity (seed, scale, dataset filter), metrics
/// snapshot, span tree and ledger next to the TSV artifacts. When the
/// run was traced (`AUTOML_EM_TRACE=1`) the Perfetto `trace.json` and
/// flamegraph `trace.folded` land in the same directory.
pub fn finish_run(run: &str, cli: &crate::Cli) {
    obs::print_summary();
    if let Some(dir) = cli.out.as_deref() {
        let mut manifest = obs::Manifest::new(run);
        manifest
            .config("seed", obs::Value::U64(cli.seed))
            .config("scale", obs::Value::F64(cli.scale));
        if let Some(only) = &cli.only {
            manifest.config("only", obs::Value::Str(only.clone()));
        }
        if let Some(journal_dir) = &cli.journal_dir {
            manifest.config("journal_dir", obs::Value::Str(journal_dir.clone()));
        }
        if let Some(secs) = cli.deadline_secs {
            manifest.config("deadline_secs", obs::Value::F64(secs));
        }
        match manifest.write_to(dir) {
            Ok(path) => eprintln!("(wrote {})", path.display()),
            Err(e) => eprintln!("warning: could not write manifest: {e}"),
        }
        if obs::trace_collecting() {
            match obs::write_trace_files(dir) {
                Ok((json, folded)) => {
                    eprintln!("(wrote {} and {})", json.display(), folded.display());
                }
                Err(e) => eprintln!("warning: could not write trace files: {e}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_alignment_and_shape() {
        let mut t = Table::new("Demo", &["name", "f1"]);
        t.row(vec!["S-DG".into(), f1(94.7)]);
        t.row(vec!["longer-name".into(), f1(5.0)]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| longer-name |"));
        let lines: Vec<&str> = md.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(lines.len(), 4); // header + sep + 2 rows
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width), "ragged table");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn tsv_roundtrip() {
        let mut t = Table::new("Tsv Test", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_tsv(), "a\tb\n1\t2\n");
        let dir = std::env::temp_dir().join("bench_report_test");
        let path = t.write_tsv(dir.to_str().unwrap()).unwrap();
        assert!(path.to_string_lossy().ends_with("tsv_test.tsv"));
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.starts_with("a\tb"));
    }
}
