//! Word-level tokenization.

use crate::normalize::normalize;

/// Split an already-normalized string on whitespace.
pub fn whitespace(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_owned).collect()
}

/// Normalize then split: the standard word tokenizer of the stack.
pub fn words(s: &str) -> Vec<String> {
    whitespace(&normalize(s))
}

/// Character q-grams of a token (padded with `#`), the classic record-linkage
/// representation for typo-tolerant set similarity.
pub fn qgrams(token: &str, q: usize) -> Vec<String> {
    assert!(q >= 1, "qgrams: q must be >= 1");
    let padded: Vec<char> = std::iter::repeat_n('#', q - 1)
        .chain(token.chars())
        .chain(std::iter::repeat_n('#', q - 1))
        .collect();
    if padded.len() < q {
        return Vec::new();
    }
    padded.windows(q).map(|w| w.iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_pipeline() {
        assert_eq!(words("Hello, World!"), vec!["hello", "world"]);
        assert!(words("   ").is_empty());
    }

    #[test]
    fn qgram_padding() {
        let grams = qgrams("ab", 3);
        assert_eq!(grams, vec!["##a", "#ab", "ab#", "b##"]);
        assert_eq!(qgrams("a", 1), vec!["a"]);
    }

    #[test]
    fn qgram_count_law() {
        // with (q-1) padding each side, an n-char token yields n + q - 1 grams
        for q in 1..=4usize {
            for token in ["x", "abc", "abcdef"] {
                let n = token.chars().count();
                assert_eq!(qgrams(token, q).len(), n + q - 1);
            }
        }
    }
}
