//! # text — tokenization and string-similarity substrate
//!
//! Everything in the EM stack that touches raw strings lives here:
//!
//! * [`normalize`] — canonical lower-casing / punctuation stripping applied
//!   before any tokenization, mirroring the preprocessing every EM system in
//!   the paper's benchmark applies to Magellan records.
//! * [`tokenize`] — whitespace/word tokenization.
//! * [`subword`] — a greedy longest-match WordPiece-style subword tokenizer
//!   plus the frequency-based vocabulary learner the transformer embedders
//!   are built on (pretrained LMs consume subwords, not words).
//! * [`vocab`] — integer vocabularies with special tokens.
//! * [`similarity`] — classic string similarity measures (Levenshtein,
//!   Jaccard, Jaro–Winkler, overlap, Monge–Elkan, cosine over token counts).
//!   These power the raw-feature baseline and several tests.

pub mod normalize;
pub mod similarity;
pub mod subword;
pub mod tfidf;
pub mod tokenize;
pub mod vocab;

pub use subword::{SubwordTokenizer, SubwordVocabBuilder};
pub use vocab::Vocab;
