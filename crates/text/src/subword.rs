//! WordPiece-style subword tokenization.
//!
//! The transformer families in `embed` consume **subword** sequences: rare
//! words decompose into frequent fragments, so lexically similar values
//! ("panasonic" / "panasonik") share most of their pieces — exactly the
//! property that makes frozen transformer embeddings useful for EM.
//!
//! [`SubwordVocabBuilder`] learns a vocabulary from a corpus with a
//! frequency-driven procedure (whole words above a threshold, then frequent
//! prefixes/suffixes/infixes, then single characters as a fallback), and
//! [`SubwordTokenizer`] applies greedy longest-match segmentation, the same
//! inference algorithm real WordPiece uses.

use crate::tokenize::words;
use crate::vocab::Vocab;
use std::collections::HashMap;

/// Marker prefix for non-initial word pieces (`##ing`), as in WordPiece.
pub const CONTINUATION: &str = "##";

/// Learns a subword vocabulary from token frequencies.
#[derive(Debug, Default)]
pub struct SubwordVocabBuilder {
    word_counts: HashMap<String, u64>,
}

impl SubwordVocabBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count every word of a raw (unnormalized) text.
    pub fn feed_text(&mut self, text: &str) {
        for w in words(text) {
            *self.word_counts.entry(w).or_insert(0) += 1;
        }
    }

    /// Count an already-tokenized word.
    pub fn feed_word(&mut self, word: &str) {
        *self.word_counts.entry(word.to_owned()).or_insert(0) += 1;
    }

    /// Build a vocabulary with at most `max_size` entries (including the
    /// special tokens and the single-character fallback pieces).
    ///
    /// Selection order mirrors WordPiece training's outcome without its
    /// expensive likelihood loop:
    /// 1. all single characters seen (guarantees full coverage),
    /// 2. whole words by descending frequency,
    /// 3. word prefixes and `##`-continuations by descending frequency,
    ///    until the budget is exhausted.
    pub fn build(&self, max_size: usize) -> Vocab {
        let mut vocab = Vocab::new();

        // 1. single-character coverage
        let mut chars: HashMap<char, u64> = HashMap::new();
        for (w, &c) in &self.word_counts {
            for ch in w.chars() {
                *chars.entry(ch).or_insert(0) += c;
            }
        }
        let mut char_list: Vec<(char, u64)> = chars.into_iter().collect();
        char_list.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for (ch, _) in &char_list {
            if vocab.len() >= max_size {
                return vocab;
            }
            vocab.add(&ch.to_string());
            vocab.add(&format!("{CONTINUATION}{ch}"));
        }

        // 2. whole words
        let mut word_list: Vec<(&String, u64)> =
            self.word_counts.iter().map(|(w, &c)| (w, c)).collect();
        word_list.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        for (w, _) in word_list.iter().take((max_size * 3) / 4) {
            if vocab.len() >= max_size {
                return vocab;
            }
            vocab.add(w);
        }

        // 3. frequent fragments (prefixes and continuations up to 6 chars)
        let mut frag_counts: HashMap<String, u64> = HashMap::new();
        for (w, &c) in &self.word_counts {
            let chars: Vec<char> = w.chars().collect();
            let n = chars.len();
            for len in 2..=6.min(n.saturating_sub(1)) {
                let prefix: String = chars[..len].iter().collect();
                *frag_counts.entry(prefix).or_insert(0) += c;
                let suffix: String = chars[n - len..].iter().collect();
                *frag_counts
                    .entry(format!("{CONTINUATION}{suffix}"))
                    .or_insert(0) += c;
            }
        }
        let mut frags: Vec<(String, u64)> = frag_counts.into_iter().collect();
        frags.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for (f, _) in frags {
            if vocab.len() >= max_size {
                break;
            }
            vocab.add(&f);
        }
        vocab
    }
}

/// Greedy longest-match subword segmenter over a fixed vocabulary.
#[derive(Debug, Clone)]
pub struct SubwordTokenizer {
    vocab: Vocab,
    max_piece_len: usize,
}

impl SubwordTokenizer {
    /// Wrap a vocabulary produced by [`SubwordVocabBuilder::build`].
    pub fn new(vocab: Vocab) -> Self {
        Self {
            vocab,
            max_piece_len: 24,
        }
    }

    /// The wrapped vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Segment one (already normalized) word into pieces. A word whose
    /// characters are not all covered degrades to `[UNK]` pieces per
    /// unmatched character rather than dropping the word.
    pub fn pieces(&self, word: &str) -> Vec<String> {
        let chars: Vec<char> = word.chars().collect();
        if chars.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut start = 0;
        while start < chars.len() {
            let mut end = chars.len().min(start + self.max_piece_len);
            let mut found = None;
            while end > start {
                let piece: String = chars[start..end].iter().collect();
                let candidate = if start == 0 {
                    piece
                } else {
                    format!("{CONTINUATION}{piece}")
                };
                if self.vocab.get(&candidate).is_some() {
                    found = Some((candidate, end));
                    break;
                }
                end -= 1;
            }
            match found {
                Some((piece, next)) => {
                    out.push(piece);
                    start = next;
                }
                None => {
                    out.push("[UNK]".to_owned());
                    start += 1;
                }
            }
        }
        out
    }

    /// Tokenize raw text: normalize → words → pieces, flattened.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        for w in words(text) {
            out.extend(self.pieces(&w));
        }
        out
    }

    /// Tokenize and encode to ids in one step.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        self.tokenize(text)
            .iter()
            .map(|t| self.vocab.id(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_tok(corpus: &[&str], size: usize) -> SubwordTokenizer {
        let mut b = SubwordVocabBuilder::new();
        for t in corpus {
            b.feed_text(t);
        }
        SubwordTokenizer::new(b.build(size))
    }

    #[test]
    fn known_word_is_single_piece() {
        let tok = build_tok(&["apple banana apple apple banana"], 200);
        assert_eq!(tok.pieces("apple"), vec!["apple"]);
    }

    #[test]
    fn unknown_word_decomposes() {
        let tok = build_tok(&["playing played player play"], 400);
        let pieces = tok.pieces("playable");
        assert!(pieces.len() >= 2, "{pieces:?}");
        // first piece has no continuation marker, later pieces do (or UNK)
        assert!(!pieces[0].starts_with(CONTINUATION));
        for p in &pieces[1..] {
            assert!(p.starts_with(CONTINUATION) || p == "[UNK]", "{p}");
        }
    }

    #[test]
    fn coverage_never_empty_for_seen_chars() {
        let tok = build_tok(&["abcdefghij"], 500);
        // every word made of seen characters segments without UNK
        let pieces = tok.pieces("cafebead");
        assert!(pieces.iter().all(|p| p != "[UNK]"), "{pieces:?}");
    }

    #[test]
    fn unseen_char_becomes_unk() {
        let tok = build_tok(&["abc"], 100);
        let pieces = tok.pieces("azb");
        assert!(pieces.contains(&"[UNK]".to_owned()), "{pieces:?}");
    }

    #[test]
    fn typo_decomposes_into_long_prefix_fragment() {
        let tok = build_tok(
            &["panasonic sony samsung panasonic panasonic camera camera lens"],
            300,
        );
        // a corrupted variant should reuse a long prefix fragment of the
        // frequent word rather than shattering into characters
        let b = tok.pieces("panasonid");
        assert!(
            "panasonic".starts_with(&b[0]) && b[0].chars().count() >= 4,
            "pieces: {b:?}"
        );
    }

    #[test]
    fn tokenize_flattens_and_normalizes() {
        let tok = build_tok(&["red shoes blue shoes"], 200);
        let toks = tok.tokenize("Red SHOES!");
        assert_eq!(toks, vec!["red", "shoes"]);
    }

    #[test]
    fn encode_matches_vocab_ids() {
        let tok = build_tok(&["x y z"], 100);
        let ids = tok.encode("x q");
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0], tok.vocab().id("x"));
    }

    #[test]
    fn vocab_size_budget_respected() {
        let mut b = SubwordVocabBuilder::new();
        for i in 0..500 {
            b.feed_word(&format!("word{i}"));
        }
        let v = b.build(64);
        assert!(v.len() <= 64, "vocab size {}", v.len());
    }
}
