//! TF-IDF weighting and weighted token similarity.
//!
//! The raw-feature baseline and the blocking diagnostics benefit from
//! frequency-aware comparisons: shared *rare* tokens ("xk450") are far
//! stronger match evidence than shared frequent ones ("the", "series").
//! [`TfIdf`] learns corpus statistics; [`TfIdf::cosine`] is the classic
//! weighted cosine, and [`TfIdf::soft_jaccard`] a weighted overlap.

use std::collections::HashMap;

/// Corpus token statistics for TF-IDF weighting.
#[derive(Debug, Clone, Default)]
pub struct TfIdf {
    doc_freq: HashMap<String, u32>,
    n_docs: u32,
}

impl TfIdf {
    /// Empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one document's distinct tokens.
    pub fn add_document(&mut self, tokens: &[String]) {
        self.n_docs += 1;
        let mut seen: Vec<&String> = tokens.iter().collect();
        seen.sort();
        seen.dedup();
        for t in seen {
            *self.doc_freq.entry(t.clone()).or_insert(0) += 1;
        }
    }

    /// Fit from an iterator of documents.
    pub fn fit<'a>(docs: impl IntoIterator<Item = &'a [String]>) -> Self {
        let mut model = Self::new();
        for d in docs {
            model.add_document(d);
        }
        model
    }

    /// Number of documents seen.
    pub fn n_docs(&self) -> u32 {
        self.n_docs
    }

    /// Smoothed inverse document frequency of a token; unseen tokens get
    /// the maximum weight.
    pub fn idf(&self, token: &str) -> f64 {
        let df = self.doc_freq.get(token).copied().unwrap_or(0) as f64;
        ((self.n_docs as f64 + 1.0) / (df + 1.0)).ln() + 1.0
    }

    fn weights<'a>(&self, tokens: &'a [String]) -> HashMap<&'a str, f64> {
        let mut tf: HashMap<&str, f64> = HashMap::new();
        for t in tokens {
            *tf.entry(t).or_insert(0.0) += 1.0;
        }
        for (t, w) in tf.iter_mut() {
            *w *= self.idf(t);
        }
        tf
    }

    /// TF-IDF-weighted cosine similarity of two token lists, in `[0, 1]`.
    pub fn cosine(&self, a: &[String], b: &[String]) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        let wa = self.weights(a);
        let wb = self.weights(b);
        let dot: f64 = wa
            .iter()
            .filter_map(|(t, &x)| wb.get(t).map(|&y| x * y))
            .sum();
        let na: f64 = wa.values().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = wb.values().map(|x| x * x).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        (dot / (na * nb)).clamp(0.0, 1.0)
    }

    /// IDF-weighted Jaccard: shared weight over total weight.
    pub fn soft_jaccard(&self, a: &[String], b: &[String]) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        let wa = self.weights(a);
        let wb = self.weights(b);
        let mut inter = 0.0;
        let mut union = 0.0;
        let mut keys: Vec<&str> = wa.keys().chain(wb.keys()).copied().collect();
        keys.sort_unstable();
        keys.dedup();
        for k in keys {
            let x = wa.get(k).copied().unwrap_or(0.0);
            let y = wb.get(k).copied().unwrap_or(0.0);
            inter += x.min(y);
            union += x.max(y);
        }
        if union == 0.0 {
            0.0
        } else {
            inter / union
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    fn corpus_model() -> TfIdf {
        let docs: Vec<Vec<String>> = vec![
            toks("the sony camera"),
            toks("the canon camera"),
            toks("the nikon camera"),
            toks("the xk450 special"),
        ];
        TfIdf::fit(docs.iter().map(Vec::as_slice))
    }

    #[test]
    fn rare_tokens_weigh_more() {
        let m = corpus_model();
        assert!(m.idf("xk450") > m.idf("camera"));
        assert!(m.idf("camera") > m.idf("the"));
        // unseen token gets the max weight
        assert!(m.idf("zzz") >= m.idf("xk450"));
    }

    #[test]
    fn weighted_cosine_prefers_rare_overlap() {
        let m = corpus_model();
        // sharing the rare token beats sharing the common pair
        let rare = m.cosine(&toks("xk450 lens"), &toks("xk450 body"));
        let common = m.cosine(&toks("the camera lens"), &toks("the camera body"));
        assert!(rare > common, "rare {rare} vs common {common}");
    }

    #[test]
    fn identity_and_disjoint() {
        let m = corpus_model();
        let a = toks("sony xk450 camera");
        assert!((m.cosine(&a, &a) - 1.0).abs() < 1e-12);
        assert_eq!(m.cosine(&a, &toks("unrelated words")), 0.0);
        assert!((m.soft_jaccard(&a, &a) - 1.0).abs() < 1e-12);
        assert_eq!(m.soft_jaccard(&toks(""), &toks("")), 1.0);
    }

    #[test]
    fn soft_jaccard_between_zero_and_one() {
        let m = corpus_model();
        let v = m.soft_jaccard(&toks("the sony camera"), &toks("the canon camera"));
        assert!((0.0..=1.0).contains(&v));
        assert!(v > 0.0 && v < 1.0);
    }
}
