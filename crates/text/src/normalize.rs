//! String normalization.
//!
//! All EM records pass through [`normalize`] before tokenization so that
//! superficial differences (case, punctuation, repeated whitespace) never
//! reach a model. This mirrors the canonical Magellan/DeepMatcher pipeline.

/// Lowercase, map punctuation to spaces, collapse whitespace runs.
///
/// Digits and alphabetic characters are preserved; everything else becomes a
/// separator. `"MacBook-Pro 13''"` → `"macbook pro 13"`.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for ch in s.chars() {
        let mapped = if ch.is_alphanumeric() {
            Some(ch.to_lowercase().next().unwrap_or(ch))
        } else if ch.is_whitespace() || ch.is_ascii_punctuation() {
            None
        } else {
            // keep other unicode (accented letters already matched above)
            None
        };
        match mapped {
            Some(c) => {
                out.push(c);
                last_space = false;
            }
            None => {
                if !last_space {
                    out.push(' ');
                    last_space = true;
                }
            }
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// True when the (already normalized) string parses as a number.
pub fn is_numeric(s: &str) -> bool {
    !s.is_empty() && s.parse::<f64>().is_ok()
}

/// Try to parse a normalized field as a number; `None` on failure or empty.
pub fn parse_numeric(s: &str) -> Option<f64> {
    let t = s.trim();
    if t.is_empty() {
        None
    } else {
        t.parse::<f64>().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_strips() {
        assert_eq!(normalize("MacBook-Pro 13''"), "macbook pro 13");
        assert_eq!(normalize("  A   B\tC  "), "a b c");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("!!!"), "");
    }

    #[test]
    fn keeps_digits() {
        assert_eq!(normalize("USB 3.0 (Type-C)"), "usb 3 0 type c");
    }

    #[test]
    fn numeric_detection() {
        assert!(is_numeric("3.14"));
        assert!(is_numeric("42"));
        assert!(!is_numeric("3.0ghz"));
        assert!(!is_numeric(""));
        assert_eq!(parse_numeric(" 7.5 "), Some(7.5));
        assert_eq!(parse_numeric("n/a"), None);
    }
}
