//! Classic string-similarity measures.
//!
//! These implement the similarity functions a Magellan-style feature
//! generator computes per attribute pair. In the reproduction they feed the
//! raw-AutoML baseline path (Table 2) for numeric/categorical features and
//! several property-based tests; they are also reused by the dataset
//! generators to validate that corrupted duplicates stay lexically close.
//!
//! All similarities return values in `[0, 1]`, 1 meaning identical.

use std::collections::HashMap;

/// Levenshtein edit distance (unit costs).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // single-row DP
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized Levenshtein similarity: `1 - dist / max_len`.
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaccard similarity over token multiset *supports* (set semantics).
pub fn jaccard<T: std::hash::Hash + Eq>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: std::collections::HashSet<&T> = a.iter().collect();
    let sb: std::collections::HashSet<&T> = b.iter().collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

/// Overlap coefficient: `|A ∩ B| / min(|A|, |B|)`.
pub fn overlap<T: std::hash::Hash + Eq>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let sa: std::collections::HashSet<&T> = a.iter().collect();
    let sb: std::collections::HashSet<&T> = b.iter().collect();
    let inter = sa.intersection(&sb).count();
    inter as f64 / sa.len().min(sb.len()) as f64
}

/// Cosine similarity over token count vectors.
pub fn cosine_tokens(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut ca: HashMap<&str, f64> = HashMap::new();
    let mut cb: HashMap<&str, f64> = HashMap::new();
    for t in a {
        *ca.entry(t).or_insert(0.0) += 1.0;
    }
    for t in b {
        *cb.entry(t).or_insert(0.0) += 1.0;
    }
    let dot: f64 = ca
        .iter()
        .filter_map(|(t, &x)| cb.get(t).map(|&y| x * y))
        .sum();
    let na: f64 = ca.values().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = cb.values().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

/// Jaro similarity.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_matched = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches += 1;
                a_matched.push(i);
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // transpositions: compare matched sequences in order
    let b_matched: Vec<char> = b_used
        .iter()
        .enumerate()
        .filter(|(_, &u)| u)
        .map(|(j, _)| b[j])
        .collect();
    let transpositions = a_matched
        .iter()
        .zip(&b_matched)
        .filter(|(&ai, &bc)| a[ai] != bc)
        .count() as f64
        / 2.0;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions) / m) / 3.0
}

/// Jaro–Winkler similarity (prefix scale 0.1, max prefix 4).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    (j + prefix * 0.1 * (1.0 - j)).min(1.0)
}

/// Monge–Elkan similarity: for each token of `a`, the best Jaro–Winkler
/// match in `b`, averaged. Asymmetric by definition; we symmetrize by
/// averaging both directions.
pub fn monge_elkan(a: &[String], b: &[String]) -> f64 {
    fn directed(a: &[String], b: &[String]) -> f64 {
        if a.is_empty() {
            return if b.is_empty() { 1.0 } else { 0.0 };
        }
        if b.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for ta in a {
            let best = b
                .iter()
                .map(|tb| jaro_winkler(ta, tb))
                .fold(0.0f64, f64::max);
            total += best;
        }
        total / a.len() as f64
    }
    (directed(a, b) + directed(b, a)) / 2.0
}

/// Relative numeric similarity: `1 - |a-b| / max(|a|, |b|)`, clamped to 0.
pub fn numeric_sim(a: f64, b: f64) -> f64 {
    if a == b {
        return 1.0;
    }
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        return 1.0;
    }
    (1.0 - (a - b).abs() / denom).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn levenshtein_known() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_sim_bounds() {
        assert_eq!(levenshtein_sim("", ""), 1.0);
        assert_eq!(levenshtein_sim("abc", "abc"), 1.0);
        assert_eq!(levenshtein_sim("abc", "xyz"), 0.0);
        let s = levenshtein_sim("apple", "aple");
        assert!(s > 0.7 && s < 1.0);
    }

    #[test]
    fn jaccard_cases() {
        assert_eq!(jaccard::<String>(&[], &[]), 1.0);
        assert_eq!(jaccard(&toks("a b c"), &toks("a b c")), 1.0);
        assert_eq!(jaccard(&toks("a b"), &toks("c d")), 0.0);
        assert!((jaccard(&toks("a b c"), &toks("b c d")) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_cases() {
        assert_eq!(overlap(&toks("a b"), &toks("a b c d")), 1.0);
        assert_eq!(overlap(&toks("a"), &toks("b")), 0.0);
        assert_eq!(overlap::<String>(&[], &toks("a")), 0.0);
    }

    #[test]
    fn cosine_tokens_cases() {
        assert!((cosine_tokens(&toks("a a b"), &toks("a a b")) - 1.0).abs() < 1e-12);
        assert_eq!(cosine_tokens(&toks("a"), &toks("b")), 0.0);
        let sim = cosine_tokens(&toks("red shoes"), &toks("red boots"));
        assert!(sim > 0.0 && sim < 1.0);
    }

    #[test]
    fn jaro_winkler_known() {
        assert!((jaro("martha", "marhta") - 0.944444).abs() < 1e-4);
        assert!((jaro_winkler("martha", "marhta") - 0.961111).abs() < 1e-4);
        assert_eq!(jaro_winkler("abc", "abc"), 1.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
    }

    #[test]
    fn jaro_winkler_prefix_boost() {
        // same jaro, but shared prefix boosts winkler
        let plain = jaro("prefixa", "prefixb");
        let jw = jaro_winkler("prefixa", "prefixb");
        assert!(jw > plain);
    }

    #[test]
    fn monge_elkan_behaviour() {
        let a = toks("john smith");
        let b = toks("jon smyth");
        let sim = monge_elkan(&a, &b);
        assert!(sim > 0.7, "{sim}");
        assert_eq!(monge_elkan(&a, &a), 1.0);
        assert_eq!(monge_elkan(&[], &[]), 1.0);
        assert_eq!(monge_elkan(&a, &[]), 0.0);
    }

    #[test]
    fn numeric_sim_cases() {
        assert_eq!(numeric_sim(5.0, 5.0), 1.0);
        assert_eq!(numeric_sim(0.0, 0.0), 1.0);
        assert!((numeric_sim(10.0, 9.0) - 0.9).abs() < 1e-12);
        assert_eq!(numeric_sim(1.0, -100.0), 0.0);
    }

    #[test]
    fn all_sims_bounded() {
        let pairs = [("hello", "world"), ("abc", ""), ("aa", "aaa"), ("x", "x")];
        for (a, b) in pairs {
            for v in [
                levenshtein_sim(a, b),
                jaro(a, b),
                jaro_winkler(a, b),
                jaccard(&toks(a), &toks(b)),
            ] {
                assert!((0.0..=1.0).contains(&v), "{a} vs {b}: {v}");
            }
        }
    }
}
