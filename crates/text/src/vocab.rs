//! Integer vocabularies with special tokens.
//!
//! Both the word2vec embedder and the transformer families map tokens to
//! dense ids through a [`Vocab`]. Ids are stable for a given insertion order,
//! and the first ids are always the special tokens, in the order of
//! [`Vocab::SPECIALS`].

use std::collections::HashMap;

/// A bidirectional token ↔ id map.
#[derive(Debug, Clone)]
pub struct Vocab {
    token_to_id: HashMap<String, u32>,
    id_to_token: Vec<String>,
}

impl Vocab {
    /// Special tokens present in every vocabulary, at fixed ids:
    /// `[PAD]`=0, `[UNK]`=1, `[CLS]`=2, `[SEP]`=3, `[MASK]`=4.
    pub const SPECIALS: [&'static str; 5] = ["[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]"];

    /// Id of the padding token.
    pub const PAD: u32 = 0;
    /// Id of the unknown token.
    pub const UNK: u32 = 1;
    /// Id of the sequence-start token.
    pub const CLS: u32 = 2;
    /// Id of the separator token.
    pub const SEP: u32 = 3;
    /// Id of the mask token (used by the MLM pretraining objective).
    pub const MASK: u32 = 4;

    /// New vocabulary containing only the special tokens.
    pub fn new() -> Self {
        let mut v = Vocab {
            token_to_id: HashMap::new(),
            id_to_token: Vec::new(),
        };
        for s in Self::SPECIALS {
            v.add(s);
        }
        v
    }

    /// Insert a token if absent; returns its id either way.
    pub fn add(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.token_to_id.get(token) {
            return id;
        }
        let id = self.id_to_token.len() as u32;
        self.token_to_id.insert(token.to_owned(), id);
        self.id_to_token.push(token.to_owned());
        id
    }

    /// Id of `token`, or `UNK` when absent.
    pub fn id(&self, token: &str) -> u32 {
        self.token_to_id.get(token).copied().unwrap_or(Self::UNK)
    }

    /// Id of `token` only if present.
    pub fn get(&self, token: &str) -> Option<u32> {
        self.token_to_id.get(token).copied()
    }

    /// Token string for `id`; `"[UNK]"` for out-of-range ids.
    pub fn token(&self, id: u32) -> &str {
        self.id_to_token
            .get(id as usize)
            .map(String::as_str)
            .unwrap_or("[UNK]")
    }

    /// Number of tokens, including specials.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// Always false: a vocabulary at least contains the special tokens.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.is_empty()
    }

    /// True when `token` is one of the special tokens.
    pub fn is_special(token: &str) -> bool {
        Self::SPECIALS.contains(&token)
    }

    /// Encode a token sequence to ids (absent tokens become `UNK`).
    pub fn encode(&self, tokens: &[String]) -> Vec<u32> {
        tokens.iter().map(|t| self.id(t)).collect()
    }

    /// Decode ids back to token strings.
    pub fn decode(&self, ids: &[u32]) -> Vec<String> {
        ids.iter().map(|&i| self.token(i).to_owned()).collect()
    }

    /// Iterate `(token, id)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> {
        self.id_to_token
            .iter()
            .enumerate()
            .map(|(i, t)| (t.as_str(), i as u32))
    }
}

impl Default for Vocab {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_have_fixed_ids() {
        let v = Vocab::new();
        assert_eq!(v.id("[PAD]"), Vocab::PAD);
        assert_eq!(v.id("[UNK]"), Vocab::UNK);
        assert_eq!(v.id("[CLS]"), Vocab::CLS);
        assert_eq!(v.id("[SEP]"), Vocab::SEP);
        assert_eq!(v.id("[MASK]"), Vocab::MASK);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn add_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.add("apple");
        let b = v.add("apple");
        assert_eq!(a, b);
        assert_eq!(v.len(), 6);
    }

    #[test]
    fn unknown_maps_to_unk() {
        let v = Vocab::new();
        assert_eq!(v.id("nonexistent"), Vocab::UNK);
        assert_eq!(v.token(9999), "[UNK]");
    }

    #[test]
    fn roundtrip() {
        let mut v = Vocab::new();
        v.add("red");
        v.add("blue");
        let toks = vec!["red".to_owned(), "blue".to_owned(), "red".to_owned()];
        let ids = v.encode(&toks);
        assert_eq!(v.decode(&ids), toks);
    }
}
