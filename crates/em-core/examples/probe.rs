use em_core::baseline::RawFeaturizer;
use em_data::{MagellanDataset, Split};
use ml::boosting::{BoostConfig, GradientBoosting};
use ml::metrics::{best_f1_threshold, f1_at_threshold};
use ml::preprocess::StandardScaler;
use ml::Classifier;

fn main() {
    for scale in [1.0f64] {
        for id in [MagellanDataset::SDA, MagellanDataset::SFZ] {
            let s = scale.max(400.0 / id.profile().size as f64).min(1.0);
            let d = id.profile().generate_scaled(9, s);
            let f = RawFeaturizer::fit(&d, 1);
            let tr = f.encode_split(&d, Split::Train);
            let va = f.encode_split(&d, Split::Validation);
            let te = f.encode_split(&d, Split::Test);
            let sc = StandardScaler::fit(&tr.x);
            let (trx, vax, tex) = (
                sc.transform(&tr.x),
                sc.transform(&va.x),
                sc.transform(&te.x),
            );
            let mut m = GradientBoosting::new(BoostConfig {
                n_rounds: 200,
                max_depth: 7,
                ..Default::default()
            });
            m.fit(&trx, &tr.y).expect("probe fit failed");
            let (thr, _) = best_f1_threshold(&m.predict_proba(&vax), &va.labels_bool());
            let tf1 = f1_at_threshold(&m.predict_proba(&tex), &te.labels_bool(), thr);
            println!(
                "{} scale {:.2} (n={}): raw gbm test {:.1}",
                d.name(),
                s,
                d.len(),
                tf1
            );
        }
    }
}
