//! Calibration diagnostic: best-case F1 with explicit similarity features,
//! per Magellan profile. Used to tune profile difficulties so the
//! achievable-F1 ordering matches the paper's DeepMatcher column.
use em_data::{magellan_benchmark, Split};
use ml::boosting::{BoostConfig, GradientBoosting};
use ml::metrics::{best_f1_threshold, f1_at_threshold};
use ml::Classifier;
use text::similarity::*;

fn feats(p: &em_data::RecordPair, w: usize) -> Vec<f32> {
    let mut out = Vec::new();
    for i in 0..w {
        let l: Vec<String> = p
            .left
            .value_or_empty(i)
            .split_whitespace()
            .map(|s| s.to_lowercase())
            .collect();
        let r: Vec<String> = p
            .right
            .value_or_empty(i)
            .split_whitespace()
            .map(|s| s.to_lowercase())
            .collect();
        out.push(jaccard(&l, &r) as f32);
        out.push(monge_elkan(&l, &r) as f32);
        out.push(levenshtein_sim(&l.join(" "), &r.join(" ")) as f32);
    }
    // whole-record features: dirt-robust, like the hybrid tokenizer's view
    let lf: Vec<String> = p
        .left
        .flatten()
        .to_lowercase()
        .split_whitespace()
        .map(str::to_owned)
        .collect();
    let rf: Vec<String> = p
        .right
        .flatten()
        .to_lowercase()
        .split_whitespace()
        .map(str::to_owned)
        .collect();
    out.push(jaccard(&lf, &rf) as f32);
    out.push(overlap(&lf, &rf) as f32);
    out.push(cosine_tokens(&lf, &rf) as f32);
    out
}

fn main() {
    let paper = [
        94.7, 98.4, 69.3, 66.9, 72.7, 88.0, 100.0, 62.8, 74.5, 98.1, 93.8, 46.0,
    ];
    for (k, p) in magellan_benchmark().iter().enumerate() {
        let scale = (1500.0 / p.size as f64).min(1.0);
        let mut f1s = Vec::new();
        for seed in [11u64, 22, 33] {
            let d = p.generate_scaled(seed, scale);
            let w = d.schema().len();
            let enc = |split| {
                let ps = d.split(split);
                let x = linalg::Matrix::from_rows(
                    &ps.iter().map(|pp| feats(pp, w)).collect::<Vec<_>>(),
                );
                let y: Vec<f32> = ps
                    .iter()
                    .map(|pp| if pp.label { 1.0 } else { 0.0 })
                    .collect();
                (x, y)
            };
            let (xt, yt) = enc(Split::Train);
            let (xv, yv) = enc(Split::Validation);
            let (xs, ys) = enc(Split::Test);
            let mut gbm = GradientBoosting::new(BoostConfig {
                n_rounds: 80,
                ..Default::default()
            });
            gbm.fit(&xt, &yt).expect("calibration fit failed");
            let vb: Vec<bool> = yv.iter().map(|&v| v >= 0.5).collect();
            let (thr, _) = best_f1_threshold(&gbm.predict_proba(&xv), &vb);
            let tb: Vec<bool> = ys.iter().map(|&v| v >= 0.5).collect();
            let tf1 = f1_at_threshold(&gbm.predict_proba(&xs), &tb, thr);
            f1s.push(tf1);
        }
        println!(
            "{:5}  ceiling {:5.1}   paper-DM {:5.1}",
            p.code,
            linalg::stats::mean(&f1s),
            paper[k]
        );
    }
}
