//! The EM adapter's *Combiner* stage (§4): summarize the embeddings of all
//! sequences generated from one dataset entry into a single vector.

/// Combination strategies. The paper's standard is [`Combiner::Average`];
/// the others are reproduction ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Combiner {
    /// Elementwise average of the sequence embeddings (the paper's choice).
    Average,
    /// Elementwise maximum.
    Max,
    /// Average ⧺ elementwise absolute deviation from the average — keeps a
    /// dispersion signal the plain average discards (2× width).
    AverageAndSpread,
}

impl Combiner {
    /// Label used in ablation reports.
    pub fn label(self) -> &'static str {
        match self {
            Combiner::Average => "avg",
            Combiner::Max => "max",
            Combiner::AverageAndSpread => "avg+spread",
        }
    }

    /// Output width given the embedder width.
    pub fn out_dim(self, embed_dim: usize) -> usize {
        match self {
            Combiner::Average | Combiner::Max => embed_dim,
            Combiner::AverageAndSpread => 2 * embed_dim,
        }
    }

    /// Combine one entry's sequence embeddings (non-empty, equal length).
    pub fn combine(self, embeddings: &[Vec<f32>]) -> Vec<f32> {
        assert!(!embeddings.is_empty(), "no embeddings to combine");
        let dim = embeddings[0].len();
        debug_assert!(embeddings.iter().all(|e| e.len() == dim));
        match self {
            Combiner::Average => linalg::vector::average(embeddings),
            Combiner::Max => {
                let mut out = vec![f32::NEG_INFINITY; dim];
                for e in embeddings {
                    for (o, &v) in out.iter_mut().zip(e) {
                        *o = o.max(v);
                    }
                }
                out
            }
            Combiner::AverageAndSpread => {
                let avg = linalg::vector::average(embeddings);
                let mut spread = vec![0.0f32; dim];
                for e in embeddings {
                    for ((s, &v), &a) in spread.iter_mut().zip(e).zip(&avg) {
                        *s += (v - a).abs();
                    }
                }
                linalg::vector::scale(&mut spread, 1.0 / embeddings.len() as f32);
                let mut out = avg;
                out.extend(spread);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_combiner() {
        let e = vec![vec![1.0, 2.0], vec![3.0, 6.0]];
        assert_eq!(Combiner::Average.combine(&e), vec![2.0, 4.0]);
        assert_eq!(Combiner::Average.out_dim(2), 2);
    }

    #[test]
    fn max_combiner() {
        let e = vec![vec![1.0, 5.0], vec![3.0, -6.0]];
        assert_eq!(Combiner::Max.combine(&e), vec![3.0, 5.0]);
    }

    #[test]
    fn spread_combiner_dims_and_values() {
        let e = vec![vec![1.0, 0.0], vec![3.0, 0.0]];
        let out = Combiner::AverageAndSpread.combine(&e);
        assert_eq!(out.len(), 4);
        assert_eq!(out, vec![2.0, 0.0, 1.0, 0.0]);
        assert_eq!(Combiner::AverageAndSpread.out_dim(2), 4);
    }

    #[test]
    fn single_sequence_passthrough() {
        let e = vec![vec![7.0, -1.0]];
        assert_eq!(Combiner::Average.combine(&e), vec![7.0, -1.0]);
        assert_eq!(Combiner::Max.combine(&e), vec![7.0, -1.0]);
    }
}
