//! # em-core — the EM adapter and the adapter ⊕ AutoML pipeline
//!
//! This crate is the paper's primary contribution (§3–§4): the **EM
//! adapter**, a preprocessing component that turns entity-pair records into
//! dense numeric vectors so that generic AutoML systems become effective on
//! entity matching. It has the paper's three-stage functional architecture:
//!
//! 1. **Tokenizer** ([`tokenizer`]) — turns a record pair into one or more
//!    *token sequences*: `Unstructured` (everything concatenated, schema
//!    lost), `AttributeBased` (one sequence per attribute, values of the
//!    same attribute coupled) or `Hybrid` (incremental concatenations
//!    ending with the full pair) — §4's three modes.
//! 2. **Embedder** — any frozen [`embed::SequenceEmbedder`] (the five
//!    transformer families, or word2vec).
//! 3. **Combiner** ([`combiner`]) — summarizes the per-sequence embeddings
//!    into a single vector; the paper's standard is the average.
//!
//! [`adapter::EmAdapter`] wires the three together and encodes whole
//! datasets into [`ml::dataset::TabularData`]; [`pipeline`] runs an adapter
//! with any [`automl::AutoMlSystem`] under a budget and reports test F1 —
//! the measurement every table of the paper is made of. [`baseline`]
//! implements the *no-adapter* path of Table 2 (word2vec-per-column
//! features, the paper's §5.1 preprocessing for AutoSklearn).

#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod adapter;
pub mod baseline;
pub mod combiner;
pub mod model;
pub mod pipeline;
pub mod tokenizer;

pub use adapter::EmAdapter;
pub use automl::{Deadline, ResumePolicy, TrialError};
pub use combiner::Combiner;
pub use model::{load_model, EmbedderSpec, EngineKind, ModelError, ModelHost, ModelSpec};
pub use pipeline::{
    run_encoded, run_encoded_resumable, run_pipeline, run_pipeline_resumable, run_raw,
    PipelineConfig, PipelineResult,
};
pub use tokenizer::TokenizerMode;
