//! End-to-end pipelines: encode a dataset (through an adapter or the raw
//! baseline), run an AutoML system under a budget, report test F1 — the
//! measurement each table cell of the paper represents.

use crate::adapter::EmAdapter;
use crate::baseline::RawFeaturizer;
use automl::{AutoMlSystem, Budget, Deadline, ResumePolicy, TrialError};
use em_data::{EmDataset, Split};
use linalg::Rng;
use ml::dataset::TabularData;
use ml::metrics::f1_score;
use ml::preprocess::StandardScaler;

/// Pipeline knobs.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Training budget in paper-hours.
    pub budget_hours: f64,
    /// Oversample the minority class of the training split (the paper's
    /// §6 future-work augmentation; off by default to match the tables).
    pub oversample: bool,
    /// Seed for augmentation.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            budget_hours: 1.0,
            oversample: false,
            seed: 0,
        }
    }
}

/// Result of one (dataset × featurization × system) run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Name of the AutoML system that ran ("AutoSklearn", …).
    pub system: &'static str,
    /// Dataset code the run was measured on ("S-BR", …).
    pub dataset: String,
    /// Seed the run was configured with.
    pub seed: u64,
    /// F1 (percentage points) on the held-out test split.
    pub test_f1: f64,
    /// F1 on the validation split (selection metric).
    pub val_f1: f64,
    /// Paper-hours of budget consumed.
    pub hours_used: f64,
    /// Models evaluated during the search (quarantined failures included).
    pub models_evaluated: usize,
    /// Trials that failed and were quarantined on the leaderboard.
    pub models_failed: usize,
    /// Embedding-cache hit rate over the encode stage (`None` on paths
    /// that never touch the embedding cache, e.g. the raw baseline).
    pub cache_hit_rate: Option<f64>,
    /// Path of the search journal the run checkpointed to / resumed
    /// from (`None` when the run was not crash-safe).
    pub journal: Option<String>,
}

/// Run an already-encoded train/valid/test triple through a system.
/// `dataset` is the dataset code carried into the result and trace.
///
/// Individual candidate failures are quarantined inside the system's
/// search (see [`automl::AutoMlSystem::fit`]); `Err` means the run itself
/// produced no predictor — an invalid budget, every trial failing, or a
/// budget too small for a single fit.
pub fn run_encoded(
    system: &mut dyn AutoMlSystem,
    train: &TabularData,
    valid: &TabularData,
    test: &TabularData,
    config: PipelineConfig,
    dataset: &str,
) -> Result<PipelineResult, TrialError> {
    run_encoded_resumable(
        system,
        train,
        valid,
        test,
        config,
        dataset,
        &ResumePolicy::Fresh,
        Deadline::none(),
    )
}

/// Crash-safe variant of [`run_encoded`]: the search is journaled per
/// `policy` (see [`automl::journal`]) and bounded by the wall-clock
/// `deadline`. With [`ResumePolicy::Resume`] an interrupted run picks up
/// where its journal left off and produces the same result the
/// uninterrupted run would have.
#[allow(clippy::too_many_arguments)] // mirrors run_encoded + the two crash-safety knobs
pub fn run_encoded_resumable(
    system: &mut dyn AutoMlSystem,
    train: &TabularData,
    valid: &TabularData,
    test: &TabularData,
    config: PipelineConfig,
    dataset: &str,
    policy: &ResumePolicy,
    deadline: Deadline,
) -> Result<PipelineResult, TrialError> {
    let span = obs::span("pipeline.run");
    // scale features on train statistics (AutoML tools all do this
    // internally for scale-sensitive members like kNN and linear models)
    let (mut train, valid, test) = {
        let _s = obs::span("pipeline.scale");
        let scaler = StandardScaler::fit(&train.x);
        (
            TabularData::new(scaler.transform(&train.x), train.y.clone()),
            TabularData::new(scaler.transform(&valid.x), valid.y.clone()),
            TabularData::new(scaler.transform(&test.x), test.y.clone()),
        )
    };
    if config.oversample {
        let _s = obs::span("pipeline.oversample");
        let mut rng = Rng::new(config.seed ^ 0x05A);
        train = train.oversample_minority(&mut rng);
    }
    let mut budget = Budget::hours(config.budget_hours)?;
    let report = {
        let _s = obs::span("pipeline.fit"); // engine spans nest under this
        system.fit_resumable(&train, &valid, &mut budget, policy, deadline)?
    };
    let preds = {
        let _s = obs::span("pipeline.predict");
        let _t = obs::ledger::phase("predict");
        system.predict(&test.x)
    };
    let test_f1 = f1_score(&preds, &test.labels_bool());
    span.add_units(report.units_used);
    obs::emit(
        "pipeline",
        &[
            ("system", obs::Value::Str(report.system.to_owned())),
            ("dataset", obs::Value::Str(dataset.to_owned())),
            ("seed", obs::Value::U64(config.seed)),
            ("test_f1", obs::Value::F64(test_f1)),
            ("val_f1", obs::Value::F64(report.val_f1)),
            ("hours_used", obs::Value::F64(report.hours_used)),
            (
                "models_evaluated",
                obs::Value::U64(report.leaderboard.len() as u64),
            ),
            (
                "models_failed",
                obs::Value::U64(report.leaderboard.n_failed() as u64),
            ),
        ],
    );
    Ok(PipelineResult {
        system: report.system,
        dataset: dataset.to_owned(),
        seed: config.seed,
        test_f1,
        val_f1: report.val_f1,
        hours_used: report.hours_used,
        models_evaluated: report.leaderboard.len(),
        models_failed: report.leaderboard.n_failed(),
        cache_hit_rate: None,
        journal: policy.journal_path().map(|p| p.display().to_string()),
    })
}

/// Adapter ⊕ AutoML: the paper's proposed pipeline (§5.2, §5.3).
pub fn run_pipeline(
    system: &mut dyn AutoMlSystem,
    adapter: &EmAdapter<'_>,
    dataset: &EmDataset,
    config: PipelineConfig,
) -> Result<PipelineResult, TrialError> {
    run_pipeline_resumable(
        system,
        adapter,
        dataset,
        config,
        &ResumePolicy::Fresh,
        Deadline::none(),
    )
}

/// Crash-safe variant of [`run_pipeline`]: encoding is recomputed (it is
/// deterministic and cheap relative to the search), the AutoML search is
/// journaled per `policy` and bounded by `deadline`.
pub fn run_pipeline_resumable(
    system: &mut dyn AutoMlSystem,
    adapter: &EmAdapter<'_>,
    dataset: &EmDataset,
    config: PipelineConfig,
    policy: &ResumePolicy,
    deadline: Deadline,
) -> Result<PipelineResult, TrialError> {
    let (train, valid, test) = {
        let _s = obs::span("pipeline.encode");
        (
            adapter.encode_split(dataset, Split::Train),
            adapter.encode_split(dataset, Split::Validation),
            adapter.encode_split(dataset, Split::Test),
        )
    };
    let mut result = run_encoded_resumable(
        system,
        &train,
        &valid,
        &test,
        config,
        dataset.name(),
        policy,
        deadline,
    )?;
    result.cache_hit_rate = adapter.cache_hit_rate();
    if let Some(rate) = result.cache_hit_rate {
        obs::gauge("embed.cache.hit_rate").set(rate);
    }
    Ok(result)
}

/// Raw AutoML without the adapter: the Table 2 baseline path.
pub fn run_raw(
    system: &mut dyn AutoMlSystem,
    dataset: &EmDataset,
    config: PipelineConfig,
) -> Result<PipelineResult, TrialError> {
    let featurizer = RawFeaturizer::fit(dataset, config.seed);
    let (train, valid, test) = {
        let _s = obs::span("pipeline.encode_raw");
        (
            featurizer.encode_split(dataset, Split::Train),
            featurizer.encode_split(dataset, Split::Validation),
            featurizer.encode_split(dataset, Split::Test),
        )
    };
    run_encoded(system, &train, &valid, &test, config, dataset.name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::EmAdapter;
    use crate::combiner::Combiner;
    use crate::tokenizer::TokenizerMode;
    use automl::sklearn_like::AutoSklearnStyle;
    use em_data::MagellanDataset;
    use embed::SequenceEmbedder;

    /// Test stand-in for a contextual embedder: hashes each side of the
    /// coupled sequence separately and emits (sum ⧺ |difference|) halves —
    /// a crude version of the relational signal a pretrained transformer
    /// provides contextually.
    struct HashEmbedder;

    fn hash_bow(textv: &str, dim: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; dim];
        for tok in textv.split_whitespace() {
            let h = linalg::SplitMix64::mix(
                tok.bytes()
                    .fold(0u64, |a, b| a.wrapping_mul(131).wrapping_add(b as u64)),
            );
            out[(h % dim as u64) as usize] += 1.0;
        }
        linalg::vector::normalize(&mut out);
        out
    }

    impl SequenceEmbedder for HashEmbedder {
        fn dim(&self) -> usize {
            48
        }

        fn embed(&self, textv: &str) -> Vec<f32> {
            let (l, r) = textv.split_once(" sep ").unwrap_or((textv, ""));
            let hl = hash_bow(l, 24);
            let hr = hash_bow(r, 24);
            let mut out = linalg::vector::add(&hl, &hr);
            out.extend(linalg::vector::abs_diff(&hl, &hr));
            out
        }

        fn name(&self) -> String {
            "hash".into()
        }
    }

    #[test]
    fn adapter_pipeline_beats_raw_baseline_on_sbr() {
        // the core claim of the paper, smoke-tested on the smallest dataset.
        // Discrete search trajectories make a single generation seed
        // brittle (a different warm start can flip a borderline cell), so
        // the claim must hold on the best of two seeds and the adapter
        // gets a one-point tolerance against the raw baseline. On failure
        // the recent trial trace is printed for diagnosis.
        let cfg = PipelineConfig {
            budget_hours: 0.4,
            ..PipelineConfig::default()
        };
        let emb = HashEmbedder;
        let mut failures = Vec::new();
        for seed in [11u64, 17] {
            let d = MagellanDataset::SBR.profile().generate(seed);
            let adapter = EmAdapter::new(TokenizerMode::Hybrid, &emb, Combiner::Average);
            let mut sys1 = AutoSklearnStyle::new(1);
            let adapted = run_pipeline(&mut sys1, &adapter, &d, cfg).unwrap();
            let mut sys2 = AutoSklearnStyle::new(1);
            let raw = run_raw(&mut sys2, &d, cfg).unwrap();
            if adapted.test_f1 >= raw.test_f1 - 1.0
                && adapted.test_f1 > 40.0
                && adapted.models_evaluated > 0
            {
                assert_eq!(adapted.system, "AutoSklearn");
                assert_eq!(adapted.dataset, "S-BR");
                assert!(
                    adapted.cache_hit_rate.is_some(),
                    "adapter path must report cache stats"
                );
                return;
            }
            failures.push((seed, adapted.test_f1, raw.test_f1));
        }
        eprintln!("recent AutoSklearn trials:");
        for t in obs::recent_trials(Some("AutoSklearn")) {
            eprintln!(
                "  trial {:>2} {:<40} val_f1 {:>6.2} best {:>6.2} cost {:.2}",
                t.trial, t.model, t.val_f1, t.best_so_far, t.cost_units
            );
        }
        panic!("adapter never beat raw baseline: {failures:?}");
    }

    #[test]
    fn oversampling_toggle_runs() {
        let d = MagellanDataset::SBR.profile().generate(12);
        let emb = HashEmbedder;
        let adapter = EmAdapter::new(TokenizerMode::AttributeBased, &emb, Combiner::Average);
        let mut sys = AutoSklearnStyle::new(2);
        let r = run_pipeline(
            &mut sys,
            &adapter,
            &d,
            PipelineConfig {
                budget_hours: 0.2,
                oversample: true,
                seed: 5,
            },
        )
        .unwrap();
        assert!(r.test_f1.is_finite());
        assert!(r.hours_used > 0.0);
        assert_eq!(r.system, "AutoSklearn");
        assert_eq!(r.dataset, "S-BR");
        assert_eq!(r.seed, 5);
    }
}
