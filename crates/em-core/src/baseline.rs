//! The *no-adapter* baseline path of Table 2.
//!
//! Generic AutoML tools consume EM records as plain tabular rows. Numeric
//! columns pass through; text/categorical columns are embedded with the
//! word2vec treatment the paper applied for AutoSklearn ("the average
//! Word2Vec embedding for each token of non-numeric attributes has been
//! computed and concatenated", §5.1). Crucially the two entities of a pair
//! are featurized **independently and concatenated** — no pairing
//! knowledge — which is exactly why raw AutoML struggles on EM.

use em_data::{AttrType, EmDataset, RecordPair, Split};
use embed::word2vec::{W2vConfig, Word2Vec};
use linalg::Matrix;
use ml::dataset::TabularData;
use text::tokenize::words;

/// Word2vec width per text column (kept small: the concatenation spans
/// `2 × n_attrs` columns).
const COLUMN_DIM: usize = 16;

/// Hashed token-presence buckets per record side. Real tabular AutoML
/// tools expand text columns into hashed n-gram features; deep tree
/// ensembles can then learn conjunctions like "both sides hit bucket 17",
/// which is how they extract *some* matching signal from independently
/// featurized sides (and why the paper's raw numbers are respectable on
/// the easy datasets while collapsing on the hard ones).
const HASH_DIM: usize = 24;

fn token_bucket(token: &str) -> usize {
    let h = linalg::SplitMix64::mix(
        token
            .bytes()
            .fold(0u64, |a, b| a.wrapping_mul(131).wrapping_add(b as u64)),
    );
    (h % HASH_DIM as u64) as usize
}

/// The featurizer of the raw baseline: per-column word2vec + raw numerics.
pub struct RawFeaturizer {
    w2v: Word2Vec,
}

impl RawFeaturizer {
    /// Train the column word2vec on the *training split* text of `dataset`.
    pub fn fit(dataset: &EmDataset, seed: u64) -> Self {
        let mut sentences: Vec<Vec<String>> = Vec::new();
        for pair in dataset.split(Split::Train) {
            for entity in [&pair.left, &pair.right] {
                for v in entity.values().flatten() {
                    let toks = words(v);
                    if !toks.is_empty() {
                        sentences.push(toks);
                    }
                }
            }
        }
        let w2v = Word2Vec::train(
            &sentences,
            W2vConfig {
                dim: COLUMN_DIM,
                epochs: 2,
                seed,
                ..W2vConfig::default()
            },
        );
        Self { w2v }
    }

    /// Feature width for a dataset schema.
    pub fn out_dim(&self, dataset: &EmDataset) -> usize {
        let mut dim = HASH_DIM; // record-level hashed token presence
        for attr in dataset.schema().attributes() {
            dim += match attr.ty {
                AttrType::Numeric => 2, // value + missing flag
                _ => COLUMN_DIM,
            };
        }
        dim * 2 // both sides concatenated
    }

    /// Featurize one pair: left columns then right columns.
    pub fn encode_pair(&self, pair: &RecordPair, dataset: &EmDataset) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.out_dim(dataset));
        for entity in [&pair.left, &pair.right] {
            // record-level hashed token presence
            let mut buckets = [0.0f32; HASH_DIM];
            for w in words(&entity.flatten()) {
                buckets[token_bucket(&w)] = 1.0;
            }
            out.extend_from_slice(&buckets);
            for (i, attr) in dataset.schema().attributes().iter().enumerate() {
                match attr.ty {
                    AttrType::Numeric => {
                        let parsed = entity.value(i).and_then(text::normalize::parse_numeric);
                        match parsed {
                            Some(v) => {
                                out.push(v as f32);
                                out.push(0.0);
                            }
                            None => {
                                out.push(0.0);
                                out.push(1.0);
                            }
                        }
                    }
                    _ => {
                        let toks = words(entity.value_or_empty(i));
                        out.extend(self.w2v.average(&toks));
                    }
                }
            }
        }
        out
    }

    /// Encode one split.
    pub fn encode_split(&self, dataset: &EmDataset, split: Split) -> TabularData {
        let pairs = dataset.split(split);
        let mut rows = Vec::with_capacity(pairs.len());
        let mut y = Vec::with_capacity(pairs.len());
        for pair in pairs {
            rows.push(self.encode_pair(pair, dataset));
            y.push(if pair.label { 1.0 } else { 0.0 });
        }
        TabularData::new(Matrix::from_rows(&rows), y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::MagellanDataset;

    #[test]
    fn featurizer_shapes() {
        let d = MagellanDataset::SBR.profile().generate(1);
        let f = RawFeaturizer::fit(&d, 7);
        let data = f.encode_split(&d, Split::Validation);
        assert_eq!(data.len(), d.split(Split::Validation).len());
        assert_eq!(data.n_features(), f.out_dim(&d));
        assert!(data.x.all_finite());
    }

    #[test]
    fn numeric_columns_pass_through() {
        let d = MagellanDataset::SBR.profile().generate(2);
        // beer schema: abv is numeric and last
        let f = RawFeaturizer::fit(&d, 1);
        let pair = &d.pairs()[0];
        let feats = f.encode_pair(pair, &d);
        // left side: hash block, then 2 text cols + 1 categorical, then abv
        let left_numeric_pos = HASH_DIM + 3 * COLUMN_DIM;
        if let Some(abv) = pair.left.value(3).and_then(text::normalize::parse_numeric) {
            assert!((feats[left_numeric_pos] - abv as f32).abs() < 1e-5);
            assert_eq!(feats[left_numeric_pos + 1], 0.0);
        } else {
            assert_eq!(feats[left_numeric_pos + 1], 1.0);
        }
    }

    #[test]
    fn sides_are_independent() {
        // swapping right-entity text must not change the left half
        let d = MagellanDataset::SFZ.profile().generate(3);
        let f = RawFeaturizer::fit(&d, 2);
        let a = &d.pairs()[0];
        let b = em_data::RecordPair::new(a.left.clone(), d.pairs()[1].right.clone(), false);
        let fa = f.encode_pair(a, &d);
        let fb = f.encode_pair(&b, &d);
        let half = fa.len() / 2;
        assert_eq!(fa[..half], fb[..half]);
        assert_ne!(fa[half..], fb[half..]);
    }
}
