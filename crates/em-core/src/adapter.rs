//! The EM adapter: Tokenizer → Embedder → Combiner (§4), plus dataset-level
//! encoding into feature matrices.

use crate::combiner::Combiner;
use crate::tokenizer::{tokenize_pair, TokenizerMode};
use em_data::{EmDataset, RecordPair, Schema, Split};
use embed::cache::EmbeddingCache;
use embed::SequenceEmbedder;
use linalg::Matrix;
use ml::dataset::TabularData;

/// An EM adapter configured with one tokenizer mode, one frozen embedder
/// and one combiner.
pub struct EmAdapter<'a> {
    mode: TokenizerMode,
    cache: EmbeddingCache<'a>,
    combiner: Combiner,
    name: String,
}

impl<'a> EmAdapter<'a> {
    /// Build an adapter over a borrowed embedder.
    pub fn new(
        mode: TokenizerMode,
        embedder: &'a dyn SequenceEmbedder,
        combiner: Combiner,
    ) -> Self {
        let name = format!("{}-{}", mode.label(), embedder.name());
        Self {
            mode,
            cache: EmbeddingCache::new(embedder),
            combiner,
            name,
        }
    }

    /// Build an adapter that *owns* its embedder via `Arc`, for
    /// long-running holders (a serving process, [`crate::model::ModelHost`])
    /// where no enclosing scope can outlive the adapter. Feature values
    /// are identical to a [`new`](Self::new)-built adapter over the same
    /// embedder.
    pub fn shared(
        mode: TokenizerMode,
        embedder: std::sync::Arc<dyn SequenceEmbedder + Send>,
        combiner: Combiner,
    ) -> EmAdapter<'static> {
        let name = format!("{}-{}", mode.label(), embedder.name());
        EmAdapter {
            mode,
            cache: EmbeddingCache::shared(embedder),
            combiner,
            name,
        }
    }

    /// Pre-embed the token sequences of `pairs` into the cache (see
    /// [`embed::cache::EmbeddingCache::warm`]); entries stay pinned for
    /// the adapter's lifetime. Returns the number of distinct sequences
    /// newly cached. A serving process calls this with the training pairs
    /// at startup so first-request latency doesn't pay the embedder cost
    /// for every attribute value the corpus already contains.
    pub fn warm(&self, pairs: &[RecordPair], schema: &Schema) -> usize {
        let mut sequences: Vec<String> = Vec::new();
        for pair in pairs {
            sequences.extend(tokenize_pair(pair, schema, self.mode));
        }
        self.cache.warm(&sequences)
    }

    /// Adapter description ("Hybrid-Albert").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tokenizer mode.
    pub fn mode(&self) -> TokenizerMode {
        self.mode
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.combiner.out_dim(self.cache.dim())
    }

    /// Encode one record pair into a single feature vector.
    pub fn encode_pair(&self, pair: &RecordPair, schema: &Schema) -> Vec<f32> {
        let sequences = tokenize_pair(pair, schema, self.mode);
        let embeddings: Vec<Vec<f32>> = sequences.iter().map(|s| self.cache.embed(s)).collect();
        self.combiner.combine(&embeddings)
    }

    /// Encode a batch of unlabeled record pairs into a feature matrix —
    /// the serving microbatch path. Tokenization stays on the calling
    /// thread and embedding fans out through
    /// [`EmbeddingCache::embed_batch`], exactly like
    /// [`encode_split`](Self::encode_split); row `i` is bit-identical to
    /// `encode_pair(&pairs[i], schema)`, whatever the batch size or
    /// worker count.
    pub fn encode_pairs(&self, pairs: &[RecordPair], schema: &Schema) -> Matrix {
        let mut sequences: Vec<String> = Vec::new();
        let mut ranges = Vec::with_capacity(pairs.len());
        {
            let _t = obs::ledger::phase("tokenize");
            for pair in pairs {
                let start = sequences.len();
                sequences.extend(tokenize_pair(pair, schema, self.mode));
                ranges.push(start..sequences.len());
            }
        }
        let embeddings = {
            let _t = obs::ledger::phase("embed");
            self.cache.embed_batch(&sequences)
        };
        let rows: Vec<Vec<f32>> = ranges
            .into_iter()
            .map(|r| self.combiner.combine(&embeddings[r]))
            .collect();
        Matrix::from_rows(&rows)
    }

    /// Encode one split of a dataset into features + labels.
    ///
    /// Tokenization (cheap, order-sensitive bookkeeping) stays on the
    /// calling thread; the embedding of the flattened sequence list — the
    /// expensive phase — fans out across the `par` pool through
    /// [`EmbeddingCache::embed_batch`]. Row order and every feature value
    /// match a sequential [`encode_pair`](Self::encode_pair) loop exactly.
    pub fn encode_split(&self, dataset: &EmDataset, split: Split) -> TabularData {
        let pairs = dataset.split(split);
        // phase 1: tokenize every pair, remembering each pair's slice of
        // the flat sequence list
        let mut sequences: Vec<String> = Vec::new();
        let mut ranges = Vec::with_capacity(pairs.len());
        let mut y = Vec::with_capacity(pairs.len());
        {
            let _t = obs::ledger::phase("tokenize");
            for pair in pairs {
                let start = sequences.len();
                sequences.extend(tokenize_pair(pair, dataset.schema(), self.mode));
                ranges.push(start..sequences.len());
                y.push(if pair.label { 1.0 } else { 0.0 });
            }
        }
        // phase 2: embed the flat list in parallel (cache-memoized)
        let embeddings = {
            let _t = obs::ledger::phase("embed");
            self.cache.embed_batch(&sequences)
        };
        // phase 3: combine per pair, in pair order
        let rows: Vec<Vec<f32>> = ranges
            .into_iter()
            .map(|r| self.combiner.combine(&embeddings[r]))
            .collect();
        TabularData::new(Matrix::from_rows(&rows), y)
    }

    /// Embedding-cache statistics `(hits, misses)` — shows how much work
    /// value repetition saves on real datasets.
    pub fn cache_stats(&self) -> (usize, usize) {
        self.cache.stats()
    }

    /// Embedding-cache hit rate (`None` before any encoding happened).
    pub fn cache_hit_rate(&self) -> Option<f64> {
        self.cache.hit_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::MagellanDataset;

    /// A cheap deterministic embedder for adapter-level tests: hashed
    /// bag-of-words, so similar strings share coordinates.
    pub struct HashEmbedder {
        pub dim: usize,
    }

    impl SequenceEmbedder for HashEmbedder {
        fn dim(&self) -> usize {
            self.dim
        }

        fn embed(&self, textv: &str) -> Vec<f32> {
            let mut out = vec![0.0f32; self.dim];
            for tok in textv.split_whitespace() {
                let h = linalg::SplitMix64::mix(
                    tok.bytes()
                        .fold(0u64, |a, b| a.wrapping_mul(131).wrapping_add(b as u64)),
                );
                out[(h % self.dim as u64) as usize] += 1.0;
            }
            linalg::vector::normalize(&mut out);
            out
        }

        fn name(&self) -> String {
            "hash".into()
        }
    }

    #[test]
    fn encode_split_shapes_and_labels() {
        let d = MagellanDataset::SBR.profile().generate(1);
        let emb = HashEmbedder { dim: 32 };
        let adapter = EmAdapter::new(TokenizerMode::Hybrid, &emb, Combiner::Average);
        let data = adapter.encode_split(&d, Split::Train);
        assert_eq!(data.len(), d.split(Split::Train).len());
        assert_eq!(data.n_features(), 32);
        assert!((data.positive_ratio() - d.match_ratio()).abs() < 0.05);
        assert!(data.x.all_finite());
    }

    #[test]
    fn adapter_name_composition() {
        let emb = HashEmbedder { dim: 8 };
        let a = EmAdapter::new(TokenizerMode::AttributeBased, &emb, Combiner::Average);
        assert_eq!(a.name(), "Attr-hash");
        assert_eq!(a.out_dim(), 8);
        let b = EmAdapter::new(TokenizerMode::Hybrid, &emb, Combiner::AverageAndSpread);
        assert_eq!(b.out_dim(), 16);
    }

    #[test]
    fn shared_adapter_and_batch_encode_match_per_pair_encode() {
        let d = MagellanDataset::SBR.profile().generate_scaled(4, 0.5);
        let adapter = EmAdapter::shared(
            TokenizerMode::Hybrid,
            std::sync::Arc::new(HashEmbedder { dim: 32 }),
            Combiner::Average,
        );
        let pairs = d.split(Split::Train);
        let warmed = adapter.warm(pairs, d.schema());
        assert!(warmed > 0);
        let m = adapter.encode_pairs(pairs, d.schema());
        assert_eq!(m.rows(), pairs.len());
        for (i, pair) in pairs.iter().enumerate() {
            let single = adapter.encode_pair(pair, d.schema());
            assert_eq!(m.row(i), &single[..], "row {i} differs");
        }
        // warm() covered every sequence, so batch encoding was all hits
        let (hits, misses) = adapter.cache_stats();
        assert!(hits > 0 && misses == 0, "hits {hits}, misses {misses}");
    }

    #[test]
    fn cache_is_exercised_by_repeated_values() {
        let d = MagellanDataset::SFZ.profile().generate_scaled(2, 0.3);
        let emb = HashEmbedder { dim: 16 };
        let adapter = EmAdapter::new(TokenizerMode::AttributeBased, &emb, Combiner::Average);
        let _ = adapter.encode_split(&d, Split::Train);
        let (hits, misses) = adapter.cache_stats();
        assert!(hits > 0, "hits {hits}, misses {misses}");
    }

    #[test]
    fn matching_pairs_encode_distinguishably() {
        // with a similarity-preserving embedder and the hybrid tokenizer,
        // match rows should be linearly separable to a useful degree —
        // check that mean cosine between match encodings and the match
        // centroid exceeds that of non-matches
        let d = MagellanDataset::SDA.profile().generate_scaled(3, 0.04);
        let emb = HashEmbedder { dim: 64 };
        let adapter = EmAdapter::new(TokenizerMode::Hybrid, &emb, Combiner::Average);
        let data = adapter.encode_split(&d, Split::Train);
        // crude check: a nearest-centroid rule beats chance
        let mut pos_centroid = vec![0.0f32; 64];
        let mut neg_centroid = vec![0.0f32; 64];
        let (mut np, mut nn) = (0, 0);
        for i in 0..data.len() {
            if data.y[i] >= 0.5 {
                linalg::vector::axpy(1.0, data.x.row(i), &mut pos_centroid);
                np += 1;
            } else {
                linalg::vector::axpy(1.0, data.x.row(i), &mut neg_centroid);
                nn += 1;
            }
        }
        linalg::vector::scale(&mut pos_centroid, 1.0 / np as f32);
        linalg::vector::scale(&mut neg_centroid, 1.0 / nn as f32);
        let mut correct = 0;
        for i in 0..data.len() {
            let dp = linalg::vector::sq_dist(data.x.row(i), &pos_centroid);
            let dn = linalg::vector::sq_dist(data.x.row(i), &neg_centroid);
            let pred = dp < dn;
            if pred == (data.y[i] >= 0.5) {
                correct += 1;
            }
        }
        let acc = correct as f64 / data.len() as f64;
        assert!(acc > 0.6, "nearest-centroid accuracy {acc}");
    }
}
