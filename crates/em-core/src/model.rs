//! Winner export/load: turn a finished AutoML search into a deployable,
//! verifiable model bundle.
//!
//! Everything in this stack is deterministic by contract — datasets are
//! generated from seeds, embedders are frozen, engines replay
//! byte-identically at any thread count (see `tests/determinism.rs` and
//! the PR 4 journal machinery). A "trained model" is therefore fully
//! described by its **recipe** ([`ModelSpec`]) plus a **fingerprint** of
//! the search outcome: exporting writes both as a small JSON file, and
//! loading re-runs the recipe and *verifies* the refit against the
//! recorded fingerprint bit-for-bit ([`ModelError::FingerprintMismatch`]
//! when the environment drifted). This trades startup compute for a
//! bundle that can never go stale or desynchronize from the code — the
//! same trade the search journal makes for crash recovery.
//!
//! [`ModelHost`] is the loaded artifact a serving process keeps hot: the
//! EM adapter (with its sharded embedding cache), the train-fitted
//! feature scaler and the fitted engine, behind one thread-safe
//! [`match_proba`](ModelHost::match_proba) entry point whose outputs are
//! bit-identical to the offline `predict` path on the same pairs.

use crate::adapter::EmAdapter;
use crate::combiner::Combiner;
use crate::tokenizer::{tokenize_pair, TokenizerMode};
use automl::{
    gluon_like::AutoGluonStyle, h2o_like::H2oStyle, halving::SuccessiveHalving,
    sklearn_like::AutoSklearnStyle, AutoMlSystem, Budget, FitReport, TrialError,
};
use em_data::{EmDataset, MagellanDataset, RecordPair, Schema, Split};
use embed::{HashingEmbedder, LocalEmbedder, SequenceEmbedder};
use ml::dataset::TabularData;
use ml::preprocess::StandardScaler;
use obs::json::{self, Json};
use std::path::Path;
use std::sync::Arc;

/// Which frozen embedder a recipe uses. Only embedders that can be
/// rebuilt deterministically from the recipe itself are expressible here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EmbedderSpec {
    /// [`embed::HashingEmbedder`] — training-free, instant; the fixture
    /// and smoke-test embedder.
    Hashing {
        /// Output width (even).
        dim: usize,
    },
    /// [`embed::LocalEmbedder`] — word2vec trained on the tokenized
    /// train split of the recipe's own dataset (the paper's §6(2) local
    /// embedding), then frozen.
    LocalW2v {
        /// Word-vector width.
        dim: usize,
        /// Training seed.
        seed: u64,
    },
}

/// Which AutoML engine a recipe runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// [`automl::sklearn_like::AutoSklearnStyle`].
    AutoSklearn,
    /// [`automl::gluon_like::AutoGluonStyle`].
    AutoGluon,
    /// [`automl::h2o_like::H2oStyle`].
    H2o,
    /// [`automl::halving::SuccessiveHalving`].
    Halving,
}

impl EngineKind {
    /// The engine's system name as it appears in reports ("AutoSklearn", …).
    pub fn system_name(self) -> &'static str {
        match self {
            EngineKind::AutoSklearn => "AutoSklearn",
            EngineKind::AutoGluon => "AutoGluon",
            EngineKind::H2o => "H2OAutoML",
            EngineKind::Halving => "SuccessiveHalving",
        }
    }

    /// Inverse of [`system_name`](Self::system_name).
    pub fn from_system_name(name: &str) -> Option<EngineKind> {
        [
            EngineKind::AutoSklearn,
            EngineKind::AutoGluon,
            EngineKind::H2o,
            EngineKind::Halving,
        ]
        .into_iter()
        .find(|k| k.system_name() == name)
    }

    fn build(self, seed: u64) -> Box<dyn AutoMlSystem + Send + Sync> {
        match self {
            EngineKind::AutoSklearn => Box::new(AutoSklearnStyle::new(seed)),
            EngineKind::AutoGluon => Box::new(AutoGluonStyle::new(seed)),
            EngineKind::H2o => Box::new(H2oStyle::new(seed)),
            EngineKind::Halving => Box::new(SuccessiveHalving::new(seed)),
        }
    }
}

/// The full training recipe of a deployable model: dataset, adapter
/// configuration, engine and budget. Two runs of the same spec produce
/// bit-identical models at any `par` thread count (the workspace
/// determinism contract), which is what makes [`export`](ModelHost::export)
/// / [`load_model`] sound.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Which Magellan benchmark dataset to train on.
    pub dataset: MagellanDataset,
    /// Dataset scale in `(0, 1]` (fraction of the Table 1 size).
    pub scale: f64,
    /// Generation seed for the dataset.
    pub data_seed: u64,
    /// Tokenizer mode of the EM adapter.
    pub mode: TokenizerMode,
    /// Embedder recipe.
    pub embedder: EmbedderSpec,
    /// Combiner stage of the EM adapter.
    pub combiner: Combiner,
    /// AutoML engine to search with.
    pub engine: EngineKind,
    /// Engine seed.
    pub engine_seed: u64,
    /// Search budget in paper-hours.
    pub budget_hours: f64,
}

impl ModelSpec {
    /// A small, fast fixture recipe (hashed embedder, S-BR at low scale,
    /// sub-minute search): what CI smoke jobs, doctests and the
    /// `serve_bench` default use.
    pub fn fixture() -> ModelSpec {
        ModelSpec {
            dataset: MagellanDataset::SBR,
            scale: 0.4,
            data_seed: 11,
            mode: TokenizerMode::Hybrid,
            embedder: EmbedderSpec::Hashing { dim: 48 },
            combiner: Combiner::Average,
            engine: EngineKind::AutoSklearn,
            engine_seed: 1,
            budget_hours: 0.2,
        }
    }

    fn build_embedder(&self, dataset: &EmDataset) -> Arc<dyn SequenceEmbedder + Send> {
        match self.embedder {
            EmbedderSpec::Hashing { dim } => Arc::new(HashingEmbedder::new(dim)),
            EmbedderSpec::LocalW2v { dim, seed } => {
                // train on the tokenized train split — deterministic given
                // (dataset, mode), so the recipe fully determines the model
                let mut texts: Vec<String> = Vec::new();
                for pair in dataset.split(Split::Train) {
                    texts.extend(tokenize_pair(pair, dataset.schema(), self.mode));
                }
                Arc::new(LocalEmbedder::train(&texts, dim, seed))
            }
        }
    }

    /// Run the recipe: generate the dataset, build the embedder, encode
    /// the splits, fit the scaler and search with the engine — the exact
    /// operation sequence of [`crate::pipeline::run_encoded`], so the
    /// resulting host predicts bit-identically to the offline pipeline.
    pub fn train(&self) -> Result<ModelHost, ModelError> {
        self.train_resumable(&automl::ResumePolicy::Fresh, automl::Deadline::none())
    }

    /// [`train`](Self::train) with crash-safety and a wall-clock bound
    /// threaded through to the engine's `fit_resumable`: the search
    /// journals every trial under `policy` (so a killed training run
    /// resumes from its WAL with a byte-identical [`FitReport`]) and
    /// stops planning new trials once `deadline` fires. This is the entry
    /// point the streaming layer's drift-triggered background re-search
    /// uses.
    pub fn train_resumable(
        &self,
        policy: &automl::ResumePolicy,
        deadline: automl::Deadline,
    ) -> Result<ModelHost, ModelError> {
        let _s = obs::span("model.train");
        let dataset = self
            .dataset
            .profile()
            .generate_scaled(self.data_seed, self.scale);
        let embedder = self.build_embedder(&dataset);
        let adapter = EmAdapter::shared(self.mode, embedder, self.combiner);
        let (train, valid) = {
            let _s = obs::span("model.encode");
            (
                adapter.encode_split(&dataset, Split::Train),
                adapter.encode_split(&dataset, Split::Validation),
            )
        };
        // mirror pipeline::run_encoded: scale on train statistics
        let scaler = StandardScaler::fit(&train.x);
        let train = TabularData::new(scaler.transform(&train.x), train.y.clone());
        let valid = TabularData::new(scaler.transform(&valid.x), valid.y.clone());
        let mut budget = Budget::hours(self.budget_hours)?;
        let mut system = self.engine.build(self.engine_seed);
        let report = {
            let _s = obs::span("model.fit");
            system.fit_resumable(&train, &valid, &mut budget, policy, deadline)?
        };
        Ok(ModelHost {
            spec: self.clone(),
            dataset,
            adapter,
            scaler,
            system,
            report,
        })
    }

    fn to_json(&self) -> String {
        let mut e = json::Obj::new();
        match self.embedder {
            EmbedderSpec::Hashing { dim } => {
                e.str("type", "hashing").u64("dim", dim as u64);
            }
            EmbedderSpec::LocalW2v { dim, seed } => {
                e.str("type", "local-w2v")
                    .u64("dim", dim as u64)
                    .u64("seed", seed);
            }
        }
        let mut o = json::Obj::new();
        o.str("dataset", self.dataset.code())
            .f64("scale", self.scale)
            .u64("data_seed", self.data_seed)
            .str("tokenizer", self.mode.label())
            .raw("embedder", &e.finish())
            .str("combiner", self.combiner.label())
            .str("engine", self.engine.system_name())
            .u64("engine_seed", self.engine_seed)
            .f64("budget_hours", self.budget_hours);
        o.finish()
    }

    fn from_json(v: &Json) -> Result<ModelSpec, ModelError> {
        let field = |k: &str| {
            v.get(k)
                .ok_or_else(|| ModelError::Malformed(format!("spec is missing '{k}'")))
        };
        let dataset_code = field("dataset")?
            .as_str()
            .ok_or_else(|| ModelError::Malformed("'dataset' must be a string".into()))?;
        let dataset = MagellanDataset::from_code(dataset_code)
            .ok_or_else(|| ModelError::Malformed(format!("unknown dataset '{dataset_code}'")))?;
        let mode_label = field("tokenizer")?.as_str().unwrap_or_default();
        let mode = [
            TokenizerMode::Unstructured,
            TokenizerMode::AttributeBased,
            TokenizerMode::Hybrid,
        ]
        .into_iter()
        .find(|m| m.label().eq_ignore_ascii_case(mode_label))
        .ok_or_else(|| ModelError::Malformed(format!("unknown tokenizer '{mode_label}'")))?;
        let comb_label = field("combiner")?.as_str().unwrap_or_default();
        let combiner = [Combiner::Average, Combiner::Max, Combiner::AverageAndSpread]
            .into_iter()
            .find(|c| c.label().eq_ignore_ascii_case(comb_label))
            .ok_or_else(|| ModelError::Malformed(format!("unknown combiner '{comb_label}'")))?;
        let engine_name = field("engine")?.as_str().unwrap_or_default();
        let engine = EngineKind::from_system_name(engine_name)
            .ok_or_else(|| ModelError::Malformed(format!("unknown engine '{engine_name}'")))?;
        let emb = field("embedder")?;
        let dim = emb.get("dim").and_then(Json::as_u64).unwrap_or(0) as usize;
        let embedder = match emb.get("type").and_then(Json::as_str) {
            Some("hashing") => EmbedderSpec::Hashing { dim },
            Some("local-w2v") => EmbedderSpec::LocalW2v {
                dim,
                seed: emb.get("seed").and_then(Json::as_u64).unwrap_or(0),
            },
            other => {
                return Err(ModelError::Malformed(format!(
                    "unknown embedder type {other:?}"
                )))
            }
        };
        Ok(ModelSpec {
            dataset,
            scale: field("scale")?.as_f64().unwrap_or(1.0),
            data_seed: field("data_seed")?.as_u64().unwrap_or(0),
            mode,
            embedder,
            combiner,
            engine,
            engine_seed: field("engine_seed")?.as_u64().unwrap_or(0),
            budget_hours: field("budget_hours")?.as_f64().unwrap_or(0.0),
        })
    }
}

/// Why a model bundle could not be produced or loaded.
#[derive(Debug)]
pub enum ModelError {
    /// Reading or writing the bundle file failed.
    Io(std::io::Error),
    /// The bundle file is not valid JSON or misses required fields.
    Malformed(String),
    /// The recipe re-ran but its outcome disagrees with the recorded
    /// fingerprint: the code, kernel path or environment changed since
    /// export. The payload names the first differing field.
    FingerprintMismatch(String),
    /// The training run itself failed.
    Train(TrialError),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Io(e) => write!(f, "model bundle I/O error: {e}"),
            ModelError::Malformed(m) => write!(f, "malformed model bundle: {m}"),
            ModelError::FingerprintMismatch(m) => {
                write!(f, "model fingerprint mismatch after refit: {m}")
            }
            ModelError::Train(e) => write!(f, "model training failed: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<std::io::Error> for ModelError {
    fn from(e: std::io::Error) -> Self {
        ModelError::Io(e)
    }
}

impl From<TrialError> for ModelError {
    fn from(e: TrialError) -> Self {
        ModelError::Train(e)
    }
}

/// A loaded, ready-to-serve model: adapter (with hot embedding cache),
/// train-fitted scaler and fitted AutoML engine. All methods take
/// `&self` and the type is `Send + Sync`, so one host serves concurrent
/// requests by shared reference.
pub struct ModelHost {
    spec: ModelSpec,
    dataset: EmDataset,
    adapter: EmAdapter<'static>,
    scaler: StandardScaler,
    system: Box<dyn AutoMlSystem + Send + Sync>,
    report: FitReport,
}

impl ModelHost {
    /// The recipe this host was built from.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The generated dataset the recipe names (its test split is what
    /// load generators and bit-identity checks draw pairs from).
    pub fn dataset(&self) -> &EmDataset {
        &self.dataset
    }

    /// The schema served entities must follow.
    pub fn schema(&self) -> &Schema {
        self.dataset.schema()
    }

    /// The search report of the winning fit.
    pub fn report(&self) -> &FitReport {
        &self.report
    }

    /// The validation-tuned decision threshold.
    pub fn threshold(&self) -> f32 {
        self.system.threshold()
    }

    /// Match probability per pair — the serving hot path. Encoding,
    /// scaling and prediction are all row-independent, so any batch
    /// partition of the same pairs produces bit-identical probabilities,
    /// and each equals the offline `predict` on the same encoded rows.
    pub fn match_proba(&self, pairs: &[RecordPair]) -> Vec<f32> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let x = self.adapter.encode_pairs(pairs, self.dataset.schema());
        let xs = self.scaler.transform(&x);
        let _t = obs::ledger::phase("serve_predict");
        self.system.predict_proba(&xs)
    }

    /// Pre-embed the training corpus into the adapter's cache (entries
    /// stay pinned — the cache never evicts). Returns the number of
    /// distinct sequences cached. Serving processes call this at startup.
    pub fn warm_cache(&self) -> usize {
        self.adapter
            .warm(self.dataset.split(Split::Train), self.dataset.schema())
    }

    /// Embedding-cache `(hits, misses)` since startup / the last warm.
    pub fn cache_stats(&self) -> (usize, usize) {
        self.adapter.cache_stats()
    }

    /// A short FNV-1a hex digest of the outcome fingerprint — a compact,
    /// human-comparable identity for "which exact model is this". Two
    /// hosts share a digest iff their system, val-F1 bits, threshold
    /// bits, budget spend and best-model name all agree; `em-serve` logs
    /// it in swap-journal records and `/healthz` so operators can tell
    /// model versions apart without diffing bundles.
    pub fn fingerprint_digest(&self) -> String {
        let json = self.fingerprint_json();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in json.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        format!("{h:016x}")
    }

    /// Whether `other` can replace this host behind a live server
    /// without breaking in-flight request parsing: hot-swap requires an
    /// identical entity schema (same attribute names and types), because
    /// connection threads decode request bodies against the schema
    /// before the batcher decides which model version scores them.
    pub fn swap_compatible(&self, other: &ModelHost) -> bool {
        self.schema() == other.schema()
    }

    fn fingerprint_json(&self) -> String {
        let best = self.report.leaderboard.best();
        let mut o = json::Obj::new();
        o.str("system", self.report.system)
            .u64("val_f1_bits", self.report.val_f1.to_bits())
            .u64("threshold_bits", self.threshold().to_bits() as u64)
            .u64("units_used_bits", self.report.units_used.to_bits())
            .u64("n_trials", self.report.leaderboard.len() as u64)
            .str("best_model", best.map(|b| b.model.as_str()).unwrap_or(""));
        o.finish()
    }

    /// Write the recipe + outcome fingerprint as a JSON bundle at `path`.
    pub fn export(&self, path: &Path) -> Result<(), ModelError> {
        let mut o = json::Obj::new();
        o.str("kind", "automl-em-model")
            .u64("version", 1)
            .raw("spec", &self.spec.to_json())
            .raw("fingerprint", &self.fingerprint_json());
        let mut text = o.finish();
        text.push('\n');
        std::fs::write(path, text)?;
        Ok(())
    }

    fn verify(&self, fp: &Json) -> Result<(), ModelError> {
        let mismatch = |field: &str, want: String, got: String| {
            Err(ModelError::FingerprintMismatch(format!(
                "{field}: recorded {want}, refit produced {got}"
            )))
        };
        if let Some(sys) = fp.get("system").and_then(Json::as_str) {
            if sys != self.report.system {
                return mismatch("system", sys.into(), self.report.system.into());
            }
        }
        for (field, got) in [
            ("val_f1_bits", self.report.val_f1.to_bits()),
            ("threshold_bits", self.threshold().to_bits() as u64),
            ("units_used_bits", self.report.units_used.to_bits()),
            ("n_trials", self.report.leaderboard.len() as u64),
        ] {
            if let Some(want) = fp.get(field).and_then(Json::as_u64) {
                if want != got {
                    return mismatch(field, want.to_string(), got.to_string());
                }
            }
        }
        if let Some(best) = fp.get("best_model").and_then(Json::as_str) {
            let got = self
                .report
                .leaderboard
                .best()
                .map(|b| b.model.as_str())
                .unwrap_or("");
            if best != got {
                return mismatch("best_model", best.into(), got.into());
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for ModelHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelHost")
            .field("spec", &self.spec)
            .field("system", &self.report.system)
            .field("val_f1", &self.report.val_f1)
            .field("threshold", &self.threshold())
            .finish()
    }
}

/// Load a bundle written by [`ModelHost::export`]: parse the recipe,
/// re-run it deterministically and verify the refit outcome against the
/// recorded fingerprint bit-for-bit. An `Ok` host is therefore *provably*
/// the exported model, not merely a model of the same shape.
pub fn load_model(path: &Path) -> Result<ModelHost, ModelError> {
    let _s = obs::span("model.load");
    let text = std::fs::read_to_string(path)?;
    let v = json::parse(&text).map_err(|e| ModelError::Malformed(e.to_string()))?;
    match v.get("kind").and_then(Json::as_str) {
        Some("automl-em-model") => {}
        other => {
            return Err(ModelError::Malformed(format!(
                "not a model bundle (kind {other:?})"
            )))
        }
    }
    let spec = ModelSpec::from_json(
        v.get("spec")
            .ok_or_else(|| ModelError::Malformed("missing 'spec'".into()))?,
    )?;
    let host = spec.train()?;
    if let Some(fp) = v.get("fingerprint") {
        host.verify(fp)?;
    }
    obs::emit(
        "model.loaded",
        &[
            ("dataset", obs::Value::Str(spec.dataset.code().into())),
            ("system", obs::Value::Str(host.report.system.into())),
            ("val_f1", obs::Value::F64(host.report.val_f1)),
        ],
    );
    Ok(host)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ModelSpec {
        ModelSpec {
            scale: 0.25,
            budget_hours: 0.1,
            ..ModelSpec::fixture()
        }
    }

    #[test]
    fn spec_json_round_trips() {
        let spec = ModelSpec {
            embedder: EmbedderSpec::LocalW2v { dim: 12, seed: 9 },
            engine: EngineKind::Halving,
            ..tiny_spec()
        };
        let v = json::parse(&spec.to_json()).unwrap();
        assert_eq!(ModelSpec::from_json(&v).unwrap(), spec);
    }

    #[test]
    fn export_load_verifies_and_serves_identical_probs() {
        let dir = std::env::temp_dir().join("automl_em_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("winner.json");
        let spec = tiny_spec();
        let host = spec.train().unwrap();
        host.export(&path).unwrap();
        let loaded = load_model(&path).unwrap();
        let pairs = host.dataset().split(Split::Test);
        let a = host.match_proba(pairs);
        let b = loaded.match_proba(pairs);
        assert_eq!(
            a.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|p| p.to_bits()).collect::<Vec<_>>()
        );
        assert!(a.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn tampered_fingerprint_is_rejected() {
        let dir = std::env::temp_dir().join("automl_em_model_test_tamper");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("winner.json");
        let host = tiny_spec().train().unwrap();
        host.export(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replace("\"n_trials\":", "\"n_trials\":9");
        assert_ne!(text, tampered);
        std::fs::write(&path, tampered).unwrap();
        match load_model(&path) {
            Err(ModelError::FingerprintMismatch(m)) => {
                assert!(m.contains("n_trials"), "{m}");
            }
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
    }

    #[test]
    fn garbage_bundle_is_malformed() {
        let dir = std::env::temp_dir().join("automl_em_model_test_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{\"kind\":\"something-else\"}").unwrap();
        assert!(matches!(load_model(&path), Err(ModelError::Malformed(_))));
        std::fs::write(&path, "not json at all").unwrap();
        assert!(matches!(load_model(&path), Err(ModelError::Malformed(_))));
    }

    #[test]
    fn fingerprint_digest_distinguishes_models_and_swap_compat_tracks_schema() {
        let a = tiny_spec().train().unwrap();
        let b = ModelSpec {
            engine_seed: 2,
            ..tiny_spec()
        }
        .train()
        .unwrap();
        assert_eq!(a.fingerprint_digest().len(), 16);
        assert_eq!(
            a.fingerprint_digest(),
            tiny_spec().train().unwrap().fingerprint_digest(),
            "same recipe, same digest"
        );
        // same dataset → same schema → hot-swappable, even across engines
        assert!(a.swap_compatible(&b));
        let other_ds = ModelSpec {
            dataset: MagellanDataset::SDA,
            budget_hours: 0.5,
            ..tiny_spec()
        }
        .train()
        .unwrap();
        assert!(!a.swap_compatible(&other_ds));
    }

    #[test]
    fn warm_cache_pins_training_corpus() {
        let host = tiny_spec().train().unwrap();
        // training already encoded the train split, so the cache holds the
        // full corpus and warm adds nothing new — but it resets the stats
        let warmed = host.warm_cache();
        assert_eq!(warmed, 0);
        // every training sequence is cached: re-encoding train is all hits
        let _ = host.match_proba(host.dataset().split(Split::Train));
        let (hits, misses) = host.cache_stats();
        assert!(hits > 0, "hits {hits} misses {misses}");
        assert_eq!(misses, 0, "train split should be fully warmed");
    }
}
