//! The EM adapter's *Tokenizer* stage (§4).
//!
//! Transforms an entity pair `(e₁, e₂)` described by attributes
//! `a₁₁ … a₁M, a₂₁ … a₂M` into one or more token sequences (here:
//! normalized text strings handed to the embedder):
//!
//! * **Unstructured** — all fields of both entities concatenated into one
//!   sentence; any reference to the schema is lost.
//! * **AttributeBased** — one sequence per attribute, coupling the values
//!   the two entities take on that attribute; the record is broken into M
//!   sub-pairs.
//! * **Hybrid** — incremental concatenations: the i-th sequence holds the
//!   values of the first i attributes of both entities, the last sequence
//!   compares the entire original pair.

use em_data::{RecordPair, Schema};
use text::normalize::normalize;

/// The three tokenization modes of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenizerMode {
    /// One schema-free sequence.
    Unstructured,
    /// One sequence per attribute.
    AttributeBased,
    /// Incremental prefixes of the attribute list (evaluated in the paper
    /// together with `AttributeBased`).
    Hybrid,
}

impl TokenizerMode {
    /// The two modes the paper's tables evaluate.
    pub const EVALUATED: [TokenizerMode; 2] =
        [TokenizerMode::AttributeBased, TokenizerMode::Hybrid];

    /// Table label ("Attr" / "Hybrid" / "Unstructured").
    pub fn label(self) -> &'static str {
        match self {
            TokenizerMode::Unstructured => "Unstructured",
            TokenizerMode::AttributeBased => "Attr",
            TokenizerMode::Hybrid => "Hybrid",
        }
    }

    /// Number of sequences this mode produces for a `width`-attribute pair.
    pub fn n_sequences(self, width: usize) -> usize {
        match self {
            TokenizerMode::Unstructured => 1,
            TokenizerMode::AttributeBased | TokenizerMode::Hybrid => width.max(1),
        }
    }
}

/// Per-side word budget of a coupled sequence: keeps the full pair inside
/// the embedders' context window so the right side is never truncated away.
const SIDE_WORDS: usize = 22;

fn truncate_words(s: &str, max_words: usize) -> String {
    let mut out = String::new();
    for (i, w) in s.split_whitespace().enumerate() {
        if i >= max_words {
            break;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(w);
    }
    out
}

/// Couple the values of attribute prefix `[0, upto)` of both entities into
/// one normalized sequence. Missing values contribute nothing; the sides
/// are separated so the embedder sees the pairing structure.
fn couple(pair: &RecordPair, upto: usize, from: usize) -> String {
    let mut left = String::new();
    let mut right = String::new();
    for i in from..upto {
        if let Some(v) = pair.left.value(i) {
            if !left.is_empty() {
                left.push(' ');
            }
            left.push_str(v);
        }
        if let Some(v) = pair.right.value(i) {
            if !right.is_empty() {
                right.push(' ');
            }
            right.push_str(v);
        }
    }
    let left = truncate_words(&normalize(&left), SIDE_WORDS);
    let right = truncate_words(&normalize(&right), SIDE_WORDS);
    format!("{left} sep {right}").trim().to_owned()
}

/// Apply a tokenization mode to one record pair.
pub fn tokenize_pair(pair: &RecordPair, schema: &Schema, mode: TokenizerMode) -> Vec<String> {
    let width = schema.len().min(pair.width()).max(1);
    match mode {
        TokenizerMode::Unstructured => {
            vec![normalize(&format!(
                "{} {}",
                pair.left.flatten(),
                pair.right.flatten()
            ))]
        }
        TokenizerMode::AttributeBased => (0..width).map(|i| couple(pair, i + 1, i)).collect(),
        TokenizerMode::Hybrid => (1..=width).map(|i| couple(pair, i, 0)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::{AttrType, Attribute, Entity};

    fn pair() -> (RecordPair, Schema) {
        let schema = Schema::new(vec![
            Attribute::new("title", AttrType::Text),
            Attribute::new("brand", AttrType::Categorical),
            Attribute::new("price", AttrType::Numeric),
        ]);
        let left = Entity::new(vec![
            Some("Alpha Laptop".into()),
            Some("Acme".into()),
            Some("999".into()),
        ]);
        let right = Entity::new(vec![
            Some("alpha laptop 15".into()),
            None,
            Some("989".into()),
        ]);
        (RecordPair::new(left, right, true), schema)
    }

    #[test]
    fn unstructured_single_sequence_loses_schema() {
        let (p, s) = pair();
        let seqs = tokenize_pair(&p, &s, TokenizerMode::Unstructured);
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0], "alpha laptop acme 999 alpha laptop 15 989");
    }

    #[test]
    fn attribute_based_couples_per_attribute() {
        let (p, s) = pair();
        let seqs = tokenize_pair(&p, &s, TokenizerMode::AttributeBased);
        assert_eq!(seqs.len(), 3);
        assert_eq!(seqs[0], "alpha laptop sep alpha laptop 15");
        // missing right brand: only left side + separator
        assert_eq!(seqs[1], "acme sep");
        assert_eq!(seqs[2], "999 sep 989");
    }

    #[test]
    fn hybrid_is_incremental_and_ends_with_full_pair() {
        let (p, s) = pair();
        let seqs = tokenize_pair(&p, &s, TokenizerMode::Hybrid);
        assert_eq!(seqs.len(), 3);
        // first sequence equals the attribute-based first sequence
        assert_eq!(seqs[0], "alpha laptop sep alpha laptop 15");
        // each sequence extends the previous one's left part
        assert!(seqs[1].starts_with("alpha laptop acme"));
        // last sequence holds everything
        assert_eq!(seqs[2], "alpha laptop acme 999 sep alpha laptop 15 989");
    }

    #[test]
    fn sequence_counts_match_mode() {
        let (p, s) = pair();
        for mode in [
            TokenizerMode::Unstructured,
            TokenizerMode::AttributeBased,
            TokenizerMode::Hybrid,
        ] {
            assert_eq!(
                tokenize_pair(&p, &s, mode).len(),
                mode.n_sequences(s.len()),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn all_missing_pair_still_produces_sequences() {
        let schema = Schema::new(vec![Attribute::new("a", AttrType::Text)]);
        let p = RecordPair::new(Entity::empty(1), Entity::empty(1), false);
        for mode in [
            TokenizerMode::Unstructured,
            TokenizerMode::AttributeBased,
            TokenizerMode::Hybrid,
        ] {
            let seqs = tokenize_pair(&p, &schema, mode);
            assert_eq!(seqs.len(), 1, "{mode:?}");
        }
    }
}
