//! # par — std-only work-stealing fork/join parallelism
//!
//! Every parallel path in the stack — row-tiled `linalg` matmul, the
//! AutoML engines' batched candidate fits, the embedding cache's batch
//! encode — funnels through this crate, so the whole workspace has exactly
//! one threading model to reason about:
//!
//! * **Scoped workers, no persistent pool.** Each [`map_indexed`] call
//!   spawns its workers with [`std::thread::scope`], so closures may borrow
//!   from the caller's stack and no `unsafe` lifetime erasure is needed.
//!   Spawn cost is a few tens of microseconds, which callers amortize by
//!   only parallelizing coarse work (a model fit, a row tile of a large
//!   matmul, a batch of embeddings).
//! * **Work stealing.** Input indices are block-distributed over
//!   per-worker deques; a worker that drains its own queue pops from the
//!   *back* of a victim's queue. Heterogeneous task costs (a GBM fit next
//!   to a naive-Bayes fit) therefore balance automatically.
//! * **Deterministic ordered results.** `map_indexed(n, f)` always returns
//!   `[f(0), f(1), …, f(n-1)]` in index order, regardless of which worker
//!   ran which index and in what order. Combined with per-index
//!   deterministic closures (each task derives its own RNG from its index)
//!   this gives the stack's core contract: **results are byte-identical
//!   for every thread count**; threads only change wall-clock time.
//! * **No nested oversubscription.** A `map_indexed` call issued from
//!   inside a worker runs sequentially on that worker, so an engine
//!   parallelizing over candidate fits does not multiply with a matmul
//!   parallelizing over row tiles.
//!
//! The worker count is resolved per call: a process-wide programmatic
//! override ([`set_threads`]) wins, then the `AUTOML_EM_THREADS`
//! environment variable, then [`std::thread::available_parallelism`].
//!
//! **Panic policy.** A panic inside a `map_indexed` closure unwinds its
//! worker; the parent joins every worker (stolen tasks still complete)
//! and then re-raises the first panic via `resume_unwind`, so a panic is
//! never silently swallowed — but it *does* abort the whole scope.
//! Callers that must survive panicking tasks (the AutoML trial path)
//! wrap the fallible region in [`catch_panic`], which converts the
//! unwind into a `Result::Err` carrying the panic message *inside* the
//! task, so the scope completes and every other task's result is kept.
//!
//! Per-call observability lands in the global `obs` registry:
//! `par.tasks` / `par.steals` / `par.scopes` counters, the `par.busy_us`
//! cumulative worker busy-time counter and the `par.threads` gauge.
//! Worker busy/idle wall-time and steal counts are also booked to the
//! `obs` cost ledger under the `par` scope, so end-of-run summaries show
//! how well the pool was utilized alongside where the budget went.
//!
//! ```
//! let squares = par::map_indexed(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![warn(missing_docs)]

mod breaker;
mod cancel;
mod drain;
mod pool;

pub use breaker::{Backoff, BreakerState, CircuitBreaker};
pub use cancel::{cancel_requested, with_cancel, CancelToken, Deadline};
pub use drain::{Gate, Permit};
pub use pool::{catch_panic, map, map_indexed, reset_threads, scope, set_threads, threads};
