//! Restart hygiene for supervised workers: exponential [`Backoff`] with
//! deterministic jitter, and a [`CircuitBreaker`] that converts "the
//! worker keeps dying" into fast typed refusals instead of a crash loop.
//!
//! Both primitives are deliberately clock-driven rather than
//! event-driven: the breaker's Open → HalfOpen transition happens lazily
//! when somebody asks ([`CircuitBreaker::allow`]), so there is no timer
//! thread to supervise. `em-serve` wires one breaker per server between
//! its batch-worker supervisor (which records restarts as failures) and
//! its admission path (which turns an open breaker into `503` +
//! `Retry-After`); the backoff paces the supervisor's restart attempts so
//! a persistently-panicking worker cannot spin a core.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Exponential backoff with deterministic jitter.
///
/// Delay for attempt `k` is `base · 2^k`, capped at `cap`, plus a jitter
/// in `[0, delay/2)` drawn from a seeded xorshift — deterministic given
/// the seed, so restart schedules in tests and chaos runs are
/// reproducible (the workspace determinism contract extends to fault
/// handling).
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// A backoff starting at `base`, doubling per attempt, never
    /// exceeding `cap` (pre-jitter). `seed` drives the jitter stream.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Self {
            base,
            cap,
            attempt: 0,
            // xorshift must not start at 0; fold the seed through a
            // splitmix-style scramble so seed 0 is fine too
            rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// The delay to sleep before the next restart attempt; each call
    /// advances the attempt counter.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(16);
        self.attempt = self.attempt.saturating_add(1);
        let raw = self
            .base
            .saturating_mul(1u32.checked_shl(exp).unwrap_or(u32::MAX));
        let capped = raw.min(self.cap);
        // jitter in [0, capped/2): spreads simultaneous restarts apart
        let j = self.next_u64();
        let half = capped.as_nanos() as u64 / 2;
        let jitter = if half == 0 { 0 } else { j % half };
        capped + Duration::from_nanos(jitter)
    }

    /// Reset to the first attempt (call after a healthy stretch).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Attempts made since construction or the last [`reset`](Self::reset).
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Where the breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: work is admitted, failures are being counted.
    Closed,
    /// Tripped: work is refused until the cooldown passes.
    Open,
    /// Cooldown expired: one trial period — a success closes the
    /// breaker, a failure re-opens it immediately.
    HalfOpen,
}

struct BreakerInner {
    /// Failure timestamps inside the sliding window (Closed state only).
    failures: Vec<Instant>,
    state: BreakerState,
    /// When the breaker tripped (valid in Open).
    opened_at: Option<Instant>,
}

/// A sliding-window circuit breaker: `max_failures` failures within
/// `window` trip it open for `cooldown`, after which it half-opens and a
/// single success closes it again. Clones share state.
///
/// ```
/// use std::time::Duration;
/// let b = par::CircuitBreaker::new(2, Duration::from_secs(10), Duration::from_millis(50));
/// assert!(b.allow());
/// b.record_failure();
/// b.record_failure(); // trips
/// assert!(!b.allow());
/// std::thread::sleep(Duration::from_millis(60));
/// assert!(b.allow()); // half-open trial
/// b.record_success();
/// assert_eq!(b.state(), par::BreakerState::Closed);
/// ```
#[derive(Clone)]
pub struct CircuitBreaker {
    inner: Arc<Mutex<BreakerInner>>,
    max_failures: usize,
    window: Duration,
    cooldown: Duration,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `max_failures` failures within
    /// `window`, staying open for `cooldown` before half-opening.
    pub fn new(max_failures: usize, window: Duration, cooldown: Duration) -> Self {
        Self {
            inner: Arc::new(Mutex::new(BreakerInner {
                failures: Vec::new(),
                state: BreakerState::Closed,
                opened_at: None,
            })),
            max_failures: max_failures.max(1),
            window,
            cooldown,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Advance Open → HalfOpen if the cooldown has passed. Called from
    /// every public entry point so state is always fresh when observed.
    fn tick(&self, inner: &mut BreakerInner) {
        if inner.state == BreakerState::Open {
            let expired = inner
                .opened_at
                .map(|t| t.elapsed() >= self.cooldown)
                .unwrap_or(true);
            if expired {
                inner.state = BreakerState::HalfOpen;
            }
        }
    }

    /// Whether new work should be admitted right now. `Closed` and
    /// `HalfOpen` admit; `Open` refuses.
    pub fn allow(&self) -> bool {
        let mut inner = self.lock();
        self.tick(&mut inner);
        inner.state != BreakerState::Open
    }

    /// The current state (after lazily applying the cooldown transition).
    pub fn state(&self) -> BreakerState {
        let mut inner = self.lock();
        self.tick(&mut inner);
        inner.state
    }

    /// Record one failure. Returns `true` when this failure tripped the
    /// breaker open (either from Closed by filling the window, or from
    /// HalfOpen where any failure re-opens).
    pub fn record_failure(&self) -> bool {
        let mut inner = self.lock();
        self.tick(&mut inner);
        match inner.state {
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Open;
                inner.opened_at = Some(Instant::now());
                true
            }
            BreakerState::Closed => {
                let now = Instant::now();
                inner
                    .failures
                    .retain(|t| now.duration_since(*t) < self.window);
                inner.failures.push(now);
                if inner.failures.len() >= self.max_failures {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(now);
                    inner.failures.clear();
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record one success: closes a half-open breaker (and forgets the
    /// failure window). A success in the Closed state deliberately does
    /// **not** clear the window — failures are forgiven only by aging
    /// out, so a failure storm with occasional successes slipping
    /// through still trips. No-op while Open.
    pub fn record_success(&self) {
        let mut inner = self.lock();
        self.tick(&mut inner);
        if inner.state == BreakerState::HalfOpen {
            inner.state = BreakerState::Closed;
            inner.failures.clear();
        }
    }

    /// How long until an open breaker half-opens — the `Retry-After`
    /// hint. Zero when not open.
    pub fn retry_after(&self) -> Duration {
        let mut inner = self.lock();
        self.tick(&mut inner);
        match (inner.state, inner.opened_at) {
            (BreakerState::Open, Some(t)) => self.cooldown.saturating_sub(t.elapsed()),
            _ => Duration::ZERO,
        }
    }
}

impl std::fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitBreaker")
            .field("state", &self.state())
            .field("max_failures", &self.max_failures)
            .field("window", &self.window)
            .field("cooldown", &self.cooldown)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_caps_and_jitters_deterministically() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(80);
        let mut a = Backoff::new(base, cap, 42);
        let mut b = Backoff::new(base, cap, 42);
        let da: Vec<Duration> = (0..6).map(|_| a.next_delay()).collect();
        let db: Vec<Duration> = (0..6).map(|_| b.next_delay()).collect();
        assert_eq!(da, db, "same seed, same schedule");
        // pre-jitter floors: 10, 20, 40, 80, 80, 80; jitter < 50% on top
        for (i, (floor_ms, d)) in [10u64, 20, 40, 80, 80, 80].iter().zip(&da).enumerate() {
            let floor = Duration::from_millis(*floor_ms);
            assert!(*d >= floor, "attempt {i}: {d:?} < {floor:?}");
            assert!(
                *d < floor + floor / 2 + Duration::from_nanos(1),
                "attempt {i}"
            );
        }
        let mut c = Backoff::new(base, cap, 43);
        assert_ne!(
            (0..6).map(|_| c.next_delay()).collect::<Vec<_>>(),
            da,
            "different seed, different jitter"
        );
        a.reset();
        assert_eq!(a.attempts(), 0);
        assert!(a.next_delay() < Duration::from_millis(16));
    }

    #[test]
    fn breaker_trips_after_threshold_in_window() {
        let b = CircuitBreaker::new(3, Duration::from_secs(60), Duration::from_secs(60));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.allow(), "still closed below threshold");
        assert!(b.record_failure(), "third failure trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
        assert!(b.retry_after() > Duration::ZERO);
    }

    #[test]
    fn breaker_half_opens_after_cooldown_and_closes_on_success() {
        let b = CircuitBreaker::new(1, Duration::from_secs(60), Duration::from_millis(30));
        assert!(b.record_failure());
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow(), "half-open admits a trial");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.retry_after(), Duration::ZERO);
    }

    #[test]
    fn half_open_failure_reopens_immediately() {
        let b = CircuitBreaker::new(1, Duration::from_secs(60), Duration::from_millis(20));
        b.record_failure();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.record_failure(), "half-open failure re-trips");
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn closed_state_success_does_not_forgive_failures() {
        // forgiveness is by window aging only: a failure storm with the
        // odd success slipping through must still trip
        let b = CircuitBreaker::new(2, Duration::from_secs(60), Duration::from_secs(60));
        b.record_failure();
        b.record_success();
        assert!(b.record_failure(), "second failure in window still trips");
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn old_failures_age_out_of_the_window() {
        let b = CircuitBreaker::new(2, Duration::from_millis(25), Duration::from_secs(60));
        b.record_failure();
        std::thread::sleep(Duration::from_millis(35));
        assert!(!b.record_failure(), "first failure aged out");
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn clones_share_state() {
        let b = CircuitBreaker::new(1, Duration::from_secs(60), Duration::from_secs(60));
        let c = b.clone();
        b.record_failure();
        assert!(!c.allow());
    }
}
