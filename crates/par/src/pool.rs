//! The work-stealing scope machinery behind [`map_indexed`].
//!
//! One [`map_indexed`] call = one `std::thread::scope` with `min(threads(),
//! n)` workers. Indices are block-distributed into per-worker deques;
//! workers pop their own queue from the front and steal from the back of a
//! victim's queue once theirs drains. Each worker accumulates `(index,
//! value)` pairs privately and the parent thread reassembles them into
//! input order, so scheduling never leaks into results.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Programmatic worker-count override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True on threads spawned by a `par` scope — nested calls on such a
    /// thread run sequentially instead of spawning a second tier of
    /// workers.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Override the worker count for every subsequent parallel call in this
/// process (tests and probes use this to compare thread counts without
/// re-exec'ing). Panics if `n` is zero; clear with [`reset_threads`].
pub fn set_threads(n: usize) {
    assert!(n >= 1, "par::set_threads needs at least one thread");
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// Clear a [`set_threads`] override, returning control to the
/// `AUTOML_EM_THREADS` environment variable / hardware default.
pub fn reset_threads() {
    OVERRIDE.store(0, Ordering::Relaxed);
}

/// The worker count parallel calls will use right now: the
/// [`set_threads`] override if present, else `AUTOML_EM_THREADS` (parsed,
/// ignored unless ≥ 1), else [`std::thread::available_parallelism`].
pub fn threads() -> usize {
    let n = OVERRIDE.load(Ordering::Relaxed);
    if n >= 1 {
        return n;
    }
    if let Ok(s) = std::env::var("AUTOML_EM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Apply `f` to every index in `0..n` and return the results **in index
/// order**, splitting the work across [`threads`] scoped workers with
/// work stealing. Falls back to a plain sequential loop when one worker
/// (or one task) is all there is, or when called from inside another
/// `par` worker — so the output is identical for every thread count and
/// nesting never oversubscribes.
pub fn map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads().min(n);
    if workers <= 1 || IN_WORKER.with(Cell::get) {
        return (0..n).map(f).collect();
    }
    run_scope(n, workers, &f)
}

/// [`map_indexed`] over the elements of a slice: returns
/// `[f(&items[0]), …]` in input order.
pub fn map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    map_indexed(items.len(), |i| f(&items[i]))
}

/// Run `f`, converting a panic into `Err` with the panic message.
///
/// This is the **trial boundary** the AutoML engines wrap around model
/// code before handing it to [`map_indexed`]: a panicking candidate fit
/// becomes an ordinary failed result on the worker instead of unwinding
/// through the pool (where it would abort the whole scope via
/// [`map_indexed`]'s propagation policy — see the crate docs). Counted in
/// the `par.caught_panics` metric.
pub fn catch_panic<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    // AssertUnwindSafe: callers only observe state through the returned
    // Result; a poisoned half-written value is dropped with the payload.
    match std::panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => {
            obs::counter("par.caught_panics").inc();
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_owned()
            };
            Err(msg)
        }
    }
}

/// A fork/join scope for heterogeneous task sets that don't fit the
/// `map` shape (e.g. "encode these three splits concurrently"). Thin
/// wrapper over [`std::thread::scope`] that also counts the scope in the
/// `par.scopes` metric; spawned threads are plain scoped threads and are
/// *not* subject to the [`threads`] cap.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
{
    obs::counter("par.scopes").inc();
    std::thread::scope(f)
}

/// One work-stealing scope: seed the queues, run the workers, reassemble
/// results in index order.
fn run_scope<T, F>(n: usize, workers: usize, f: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    // block distribution keeps initial locality (adjacent rows / trials
    // start on the same worker); stealing fixes any imbalance later.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w * n / workers..(w + 1) * n / workers).collect()))
        .collect();
    obs::counter("par.scopes").inc();
    obs::gauge("par.threads").set(workers as f64);

    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let (mut tasks, mut steals, mut busy_us) = (0u64, 0u64, 0u64);
    let scope_started = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queues = &queues;
                s.spawn(move || worker_loop(w, queues, f))
            })
            .collect();
        for h in handles {
            let (pairs, st, busy) = match h.join() {
                Ok(out) => out,
                Err(panic) => std::panic::resume_unwind(panic),
            };
            tasks += pairs.len() as u64;
            steals += st;
            busy_us += busy;
            for (i, v) in pairs {
                slots[i] = Some(v);
            }
        }
    });
    obs::counter("par.tasks").add(tasks);
    obs::counter("par.steals").add(steals);
    obs::counter("par.busy_us").add(busy_us);
    // cost-ledger accounting under the pool's own scope: busy is the sum
    // of worker-thread lifetimes, idle is the wall the scope kept workers
    // reserved beyond that (threads that drained their queues early while
    // stragglers kept working), steal is an occurrence count. Workers
    // exit when all queues drain, so idle captures end-of-scope skew.
    let scope_ns = scope_started.elapsed().as_nanos() as u64;
    let busy_ns = busy_us * 1_000;
    let idle_ns = (scope_ns * workers as u64).saturating_sub(busy_ns);
    obs::ledger::add_scoped("par", "busy", busy_ns, tasks);
    obs::ledger::add_scoped("par", "idle", idle_ns, workers as u64);
    if steals > 0 {
        obs::ledger::add_scoped("par", "steal", 0, steals);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index was executed exactly once"))
        .collect()
}

/// Body of worker `w`: drain own queue from the front, then steal from
/// the back of the nearest non-empty victim; exit when every queue is
/// empty (no tasks are ever added after seeding, so empty-everywhere
/// means done). Returns the `(index, value)` pairs it computed plus its
/// steal count and busy time in microseconds.
fn worker_loop<T, F>(
    w: usize,
    queues: &[Mutex<VecDeque<usize>>],
    f: &F,
) -> (Vec<(usize, T)>, u64, u64)
where
    F: Fn(usize) -> T,
{
    IN_WORKER.with(|flag| flag.set(true));
    let started = Instant::now();
    let mut out = Vec::new();
    let mut steals = 0u64;
    loop {
        let mut next = queues[w].lock().expect("par worker queue").pop_front();
        if next.is_none() {
            for offset in 1..queues.len() {
                let victim = (w + offset) % queues.len();
                if let Some(i) = queues[victim].lock().expect("par victim queue").pop_back() {
                    steals += 1;
                    next = Some(i);
                    break;
                }
            }
        }
        match next {
            Some(i) => out.push((i, f(i))),
            None => break,
        }
    }
    (out, steals, started.elapsed().as_micros() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex as StdMutex;

    /// Tests in this module flip the global thread override, so they
    /// serialize on one lock.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: StdMutex<()> = StdMutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn ledger_books_busy_and_idle_under_par_scope() {
        let _g = guard();
        set_threads(4);
        let _ = map_indexed(64, |i| {
            std::thread::sleep(std::time::Duration::from_micros(50));
            i * 2
        });
        reset_threads();
        let snap = obs::ledger::ledger_snapshot();
        let busy = snap
            .iter()
            .find(|e| e.scope == "par" && e.phase == "busy")
            .expect("busy booked");
        assert!(busy.ns > 0 && busy.count >= 64);
        assert!(snap.iter().any(|e| e.scope == "par" && e.phase == "idle"));
    }

    #[test]
    fn results_are_in_input_order() {
        let _g = guard();
        set_threads(4);
        let out = map_indexed(257, |i| i * 3);
        reset_threads();
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        let _g = guard();
        let run = |threads: usize| {
            set_threads(threads);
            let out = map_indexed(100, |i| {
                // per-index deterministic pseudo-work
                let mut x = i as u64 + 1;
                for _ in 0..50 {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                }
                x
            });
            reset_threads();
            out
        };
        assert_eq!(run(1), run(4));
        assert_eq!(run(4), run(7));
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let _g = guard();
        set_threads(8);
        let calls: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
        let _ = map_indexed(500, |i| calls[i].fetch_add(1, Ordering::Relaxed));
        reset_threads();
        assert!(calls.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let _g = guard();
        set_threads(4);
        let empty: Vec<usize> = map_indexed(0, |i| i);
        assert!(empty.is_empty());
        assert_eq!(map_indexed(1, |i| i + 9), vec![9]);
        reset_threads();
    }

    #[test]
    fn map_over_slice_borrows_items() {
        let _g = guard();
        set_threads(3);
        let words = ["a", "bb", "ccc", "dddd"];
        let lens = map(&words, |w| w.len());
        reset_threads();
        assert_eq!(lens, vec![1, 2, 3, 4]);
    }

    #[test]
    fn nested_calls_run_sequentially_not_exponentially() {
        let _g = guard();
        set_threads(4);
        // outer parallel, inner must fall back to sequential on the worker
        let out = map_indexed(8, |i| map_indexed(8, move |j| i * 8 + j).len());
        reset_threads();
        assert_eq!(out, vec![8; 8]);
    }

    #[test]
    fn steal_counter_is_monotone_and_tasks_counted() {
        let _g = guard();
        let tasks_before = obs::counter("par.tasks").get();
        let steals_before = obs::counter("par.steals").get();
        set_threads(4);
        // skewed workload: the first block is much heavier, so idle
        // workers have something to steal
        let _ = map_indexed(64, |i| {
            let spins = if i < 16 { 40_000 } else { 10 };
            let mut x = i as u64;
            for _ in 0..spins {
                x = x.wrapping_mul(31).wrapping_add(7);
            }
            x
        });
        reset_threads();
        assert!(obs::counter("par.tasks").get() >= tasks_before + 64);
        assert!(obs::counter("par.steals").get() >= steals_before);
    }

    #[test]
    #[should_panic(expected = "task 3 exploded")]
    fn worker_panics_propagate_to_caller() {
        let _g = guard();
        set_threads(2);
        let result = std::panic::catch_unwind(|| {
            map_indexed(8, |i| {
                assert!(i != 3, "task 3 exploded");
                i
            })
        });
        reset_threads();
        match result {
            Ok(_) => panic!("panic did not propagate"),
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    #[test]
    fn catch_panic_returns_payload_message() {
        assert_eq!(catch_panic(|| 42).unwrap(), 42);
        let err = catch_panic(|| panic!("boom {}", 7)).unwrap_err();
        assert!(err.contains("boom 7"), "{err}");
        // &'static str payloads are captured too
        let err = catch_panic(|| std::panic::panic_any("static payload")).unwrap_err();
        assert_eq!(err, "static payload");
        // non-string payloads degrade gracefully
        let err = catch_panic(|| std::panic::panic_any(3usize)).unwrap_err();
        assert!(err.contains("non-string"));
    }

    #[test]
    fn catch_panic_inside_workers_keeps_scope_alive() {
        let _g = guard();
        set_threads(4);
        let out = map_indexed(16, |i| {
            catch_panic(move || {
                assert!(i != 5, "task {i} exploded");
                i * 2
            })
        });
        reset_threads();
        assert_eq!(out.len(), 16);
        for (i, r) in out.iter().enumerate() {
            if i == 5 {
                assert!(r.as_ref().unwrap_err().contains("task 5 exploded"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * 2);
            }
        }
    }

    #[test]
    fn scope_runs_heterogeneous_tasks() {
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        scope(|s| {
            s.spawn(|| a.store(1, Ordering::Relaxed));
            s.spawn(|| b.store(2, Ordering::Relaxed));
        });
        assert_eq!(a.load(Ordering::Relaxed), 1);
        assert_eq!(b.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn override_beats_env_and_reset_restores() {
        let _g = guard();
        set_threads(3);
        assert_eq!(threads(), 3);
        reset_threads();
        assert!(threads() >= 1);
    }
}
