//! Cooperative cancellation: wall-clock deadlines and cancel tokens.
//!
//! The AutoML engines run under a *budget* measured in deterministic
//! paper-hours, but a production deployment also needs a *wall-clock*
//! ceiling: Table 5 gives each system a fixed real-time allowance and
//! expects the best-so-far model back when time is up. Cancellation here
//! is strictly cooperative — nothing is ever killed:
//!
//! * A [`Deadline`] is an optional instant in wall-clock time. Engines
//!   check it between planning batches / rungs / roster members and stop
//!   planning new trials once it has passed.
//! * A [`CancelToken`] is the cheap, clonable flag handed *into* running
//!   trials. Long fit loops (boosting rounds, forest trees, linear-model
//!   epochs) poll [`cancel_requested`] and bail out early, so a slow or
//!   hung trial is abandoned within one round rather than overrunning the
//!   deadline indefinitely.
//! * [`with_cancel`] installs a token into a thread-local for the scope of
//!   one closure, which is how the trial boundary exposes the token to
//!   model code without threading a parameter through every `fit`
//!   signature. The installation is panic-safe (restored via a drop
//!   guard) and nests (the previous token is restored on exit).
//!
//! With no token installed — every pre-existing call path —
//! [`cancel_requested`] is a thread-local read returning `false`, so
//! deadline-free runs are byte-identical to what they were before this
//! module existed.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An optional wall-clock cutoff for a search.
///
/// `Deadline::none()` never expires and is the default everywhere, so the
/// deterministic budgeted runs of the paper tables are unaffected unless a
/// caller opts in with [`Deadline::within`] / [`Deadline::at`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// A deadline that never expires.
    pub fn none() -> Self {
        Deadline(None)
    }

    /// Expire `d` from now.
    pub fn within(d: Duration) -> Self {
        Deadline(Some(Instant::now() + d))
    }

    /// Expire at an absolute instant.
    pub fn at(t: Instant) -> Self {
        Deadline(Some(t))
    }

    /// Whether a cutoff is set at all.
    pub fn is_bounded(&self) -> bool {
        self.0.is_some()
    }

    /// Whether the cutoff has passed. Always `false` for [`Deadline::none`].
    pub fn expired(&self) -> bool {
        match self.0 {
            Some(t) => Instant::now() >= t,
            None => false,
        }
    }

    /// Time left before the cutoff (`None` when unbounded; zero once past).
    pub fn remaining(&self) -> Option<Duration> {
        self.0.map(|t| t.saturating_duration_since(Instant::now()))
    }

    /// A token that reports cancelled once this deadline has passed.
    pub fn token(&self) -> CancelToken {
        CancelToken(Arc::new(TokenInner {
            cancelled: AtomicBool::new(false),
            deadline: self.0,
        }))
    }
}

struct TokenInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// Clonable cooperative-cancellation flag.
///
/// Reports cancelled when either [`CancelToken::cancel`] has been called
/// or the deadline it was built from ([`Deadline::token`]) has passed.
/// Cloning is an `Arc` bump; all clones observe the same state.
#[derive(Clone)]
pub struct CancelToken(Arc<TokenInner>);

impl CancelToken {
    /// A token that never reports cancelled unless [`cancel`] is called.
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn unbounded() -> Self {
        Deadline::none().token()
    }

    /// Latch the token into the cancelled state.
    pub fn cancel(&self) {
        self.0.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested (explicitly or by the
    /// token's deadline passing).
    pub fn is_cancelled(&self) -> bool {
        if self.0.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match self.0.deadline {
            Some(t) if Instant::now() >= t => {
                // Latch so later polls skip the clock read.
                self.0.cancelled.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.0.cancelled.load(Ordering::Relaxed))
            .field("deadline", &self.0.deadline)
            .finish()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Restores the previously installed token on drop, even across a panic.
struct Restore(Option<CancelToken>);

impl Drop for Restore {
    fn drop(&mut self) {
        let prev = self.0.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Run `f` with `token` installed as the current thread's cancellation
/// token, visible to [`cancel_requested`]. Nested calls shadow the outer
/// token for their scope; the previous token is restored on exit (panic
/// included).
pub fn with_cancel<T>(token: &CancelToken, f: impl FnOnce() -> T) -> T {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(token.clone()));
    let _restore = Restore(prev);
    f()
}

/// Whether the current thread's installed token (if any) has been
/// cancelled. With no token installed this is `false`, so code that polls
/// it is a no-op on every deadline-free path.
pub fn cancel_requested() -> bool {
    CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .map(CancelToken::is_cancelled)
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_deadline_never_expires() {
        let d = Deadline::none();
        assert!(!d.is_bounded());
        assert!(!d.expired());
        assert!(d.remaining().is_none());
        assert!(!d.token().is_cancelled());
    }

    #[test]
    fn past_deadline_expires_and_cancels_token() {
        let d = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(d.is_bounded());
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        assert!(d.token().is_cancelled());
    }

    #[test]
    fn explicit_cancel_latches_across_clones() {
        let t = CancelToken::unbounded();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn with_cancel_installs_and_restores() {
        assert!(!cancel_requested());
        let t = CancelToken::unbounded();
        t.cancel();
        with_cancel(&t, || {
            assert!(cancel_requested());
            // nested scope shadows the cancelled token
            let quiet = CancelToken::unbounded();
            with_cancel(&quiet, || assert!(!cancel_requested()));
            assert!(cancel_requested());
        });
        assert!(!cancel_requested());
    }

    #[test]
    fn with_cancel_restores_after_panic() {
        let t = CancelToken::unbounded();
        t.cancel();
        let caught = std::panic::catch_unwind(|| {
            with_cancel(&t, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert!(!cancel_requested());
    }

    #[test]
    fn tokens_are_visible_across_par_workers_when_installed_per_task() {
        let t = CancelToken::unbounded();
        t.cancel();
        let seen = crate::map_indexed(8, |_| with_cancel(&t, cancel_requested));
        assert!(seen.iter().all(|&s| s));
    }
}
