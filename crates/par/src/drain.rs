//! Drain-aware shutdown: a gate that tracks in-flight work and lets a
//! server stop *admitting* new work while every unit already admitted
//! runs to completion.
//!
//! This is the shutdown half of cooperative cancellation ([`crate::cancel`]):
//! a [`CancelToken`] tells long loops to *stop early*, a [`Gate`] tells a
//! request boundary to *stop accepting* — and lets the owner wait until
//! the work that made it through the gate has drained. `em-serve` uses one
//! gate per server: connection handlers and queued match requests enter
//! the gate, shutdown closes it (new requests get a typed 503), and the
//! drain wait returns once the last admitted request has been answered.
//!
//! ```
//! use std::time::Duration;
//! let gate = par::Gate::new();
//! let permit = gate.enter().expect("gate open");
//! gate.close();                       // stop admitting…
//! assert!(gate.enter().is_none());    // …new work is refused
//! assert_eq!(gate.in_flight(), 1);
//! drop(permit);                       // …but admitted work finishes
//! assert!(gate.drain(Duration::from_secs(1)));
//! ```

use crate::cancel::CancelToken;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct GateInner {
    closed: AtomicBool,
    in_flight: Mutex<usize>,
    drained: Condvar,
    token: CancelToken,
}

/// A clonable admission gate with drain-on-close semantics.
///
/// * [`enter`](Gate::enter) hands out a [`Permit`] while the gate is open
///   and refuses (`None`) once it is closed — the caller turns that into
///   its "shutting down" response.
/// * [`close`](Gate::close) latches the gate shut and cancels the gate's
///   [`CancelToken`], so cooperative loops deep inside admitted work (a
///   model fit polling [`crate::cancel_requested`]) can also wind down.
/// * [`drain`](Gate::drain) blocks until every outstanding permit has
///   been dropped (or the timeout passes).
///
/// Clones share state: closing one clone closes them all.
#[derive(Clone)]
pub struct Gate(Arc<GateInner>);

impl Default for Gate {
    fn default() -> Self {
        Self::new()
    }
}

impl Gate {
    /// A fresh, open gate with zero in-flight permits.
    pub fn new() -> Self {
        Gate(Arc::new(GateInner {
            closed: AtomicBool::new(false),
            in_flight: Mutex::new(0),
            drained: Condvar::new(),
            token: CancelToken::unbounded(),
        }))
    }

    /// Admit one unit of work. Returns `None` once the gate is closed;
    /// otherwise the returned [`Permit`] counts as in-flight until dropped.
    pub fn enter(&self) -> Option<Permit> {
        // The count is incremented under the lock *before* re-checking
        // `closed`, so a concurrent `close(); drain()` either sees this
        // permit in the count or this call sees the closed flag — never
        // neither.
        let mut n = self.0.in_flight.lock().unwrap_or_else(|p| p.into_inner());
        if self.0.closed.load(Ordering::Acquire) {
            return None;
        }
        *n += 1;
        drop(n);
        Some(Permit(self.0.clone()))
    }

    /// Latch the gate shut: subsequent [`enter`](Gate::enter) calls return
    /// `None` and the gate's [`token`](Gate::token) reports cancelled.
    /// Already-issued permits are unaffected. Idempotent.
    pub fn close(&self) {
        // Take the lock so `close` serializes against in-progress `enter`
        // calls (see the comment there), then latch.
        let _n = self.0.in_flight.lock().unwrap_or_else(|p| p.into_inner());
        self.0.closed.store(true, Ordering::Release);
        self.0.token.cancel();
    }

    /// Whether [`close`](Gate::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.0.closed.load(Ordering::Acquire)
    }

    /// Number of permits currently outstanding.
    pub fn in_flight(&self) -> usize {
        *self.0.in_flight.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Block until every outstanding permit is dropped, or `timeout`
    /// passes. Returns `true` when fully drained. Usually called after
    /// [`close`](Gate::close); calling it on an open gate just waits for a
    /// momentarily idle instant.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut n = self.0.in_flight.lock().unwrap_or_else(|p| p.into_inner());
        while *n > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            let (guard, _) = self
                .0
                .drained
                .wait_timeout(n, left)
                .unwrap_or_else(|p| p.into_inner());
            n = guard;
        }
        true
    }

    /// A clone of the gate's cancellation token: cancelled by
    /// [`close`](Gate::close), for handing into cooperative loops (e.g.
    /// via [`crate::with_cancel`]).
    pub fn token(&self) -> CancelToken {
        self.0.token.clone()
    }
}

impl std::fmt::Debug for Gate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gate")
            .field("closed", &self.is_closed())
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

/// An in-flight marker issued by [`Gate::enter`]; dropping it releases the
/// slot and wakes any [`Gate::drain`] waiter.
pub struct Permit(Arc<GateInner>);

impl Drop for Permit {
    fn drop(&mut self) {
        let mut n = self.0.in_flight.lock().unwrap_or_else(|p| p.into_inner());
        *n = n.saturating_sub(1);
        if *n == 0 {
            self.0.drained.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn enter_close_refuse() {
        let g = Gate::new();
        assert!(!g.is_closed());
        let p = g.enter().expect("open");
        assert_eq!(g.in_flight(), 1);
        g.close();
        assert!(g.is_closed());
        assert!(g.enter().is_none());
        assert!(g.token().is_cancelled());
        // still one permit out
        assert!(!g.drain(Duration::from_millis(10)));
        drop(p);
        assert!(g.drain(Duration::from_millis(100)));
        assert_eq!(g.in_flight(), 0);
    }

    #[test]
    fn close_is_idempotent_and_shared_across_clones() {
        let g = Gate::new();
        let g2 = g.clone();
        g.close();
        g.close();
        assert!(g2.is_closed());
        assert!(g2.enter().is_none());
    }

    #[test]
    fn drain_waits_for_concurrent_permits() {
        let g = Gate::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let g = g.clone();
                s.spawn(move || {
                    let _p = g.enter().expect("open");
                    std::thread::sleep(Duration::from_millis(20));
                });
            }
            // give the workers a moment to enter, then close + drain
            std::thread::sleep(Duration::from_millis(5));
            g.close();
            assert!(g.drain(Duration::from_secs(5)));
            assert_eq!(g.in_flight(), 0);
        });
    }

    #[test]
    fn drain_on_idle_open_gate_returns_immediately() {
        let g = Gate::new();
        assert!(g.drain(Duration::ZERO));
    }
}
