//! The EM dataset container and its train/validation/test split.

use crate::record::RecordPair;
use crate::schema::{DatasetKind, Schema};
use linalg::Rng;

/// A named split of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    /// 60% — used to fit models.
    Train,
    /// 20% — used for model selection inside AutoML systems.
    Validation,
    /// 20% — used only for the final F1 reported in the tables.
    Test,
}

/// A complete EM dataset: schema, labeled record pairs, and the index
/// boundaries of its 60/20/20 split.
#[derive(Debug, Clone)]
pub struct EmDataset {
    name: String,
    kind: DatasetKind,
    schema: Schema,
    pairs: Vec<RecordPair>,
    train_end: usize,
    valid_end: usize,
}

impl EmDataset {
    /// Build a dataset and create a **stratified, shuffled 60/20/20 split**
    /// (the proportions used by the paper's benchmark). Stratification keeps
    /// the match percentage equal across splits, which matters for the tiny
    /// datasets (S-BR has 450 pairs).
    pub fn with_split(
        name: &str,
        kind: DatasetKind,
        schema: Schema,
        mut pairs: Vec<RecordPair>,
        rng: &mut Rng,
    ) -> Self {
        // stratified shuffle: shuffle positives and negatives separately,
        // then interleave deterministically by global ratio
        rng.shuffle(&mut pairs);
        let (pos, neg): (Vec<_>, Vec<_>) = pairs.into_iter().partition(|p| p.label);
        let total = pos.len() + neg.len();
        let mut ordered = Vec::with_capacity(total);
        let (mut pi, mut ni) = (0usize, 0usize);
        for k in 0..total {
            // largest-remainder interleaving keeps each prefix's class ratio
            // close to the global one
            let want_pos = ((k + 1) * pos.len()) / total;
            if pi < want_pos.min(pos.len()) || ni >= neg.len() {
                ordered.push(pos[pi].clone());
                pi += 1;
            } else {
                ordered.push(neg[ni].clone());
                ni += 1;
            }
        }
        let train_end = (total * 60) / 100;
        let valid_end = train_end + (total * 20) / 100;
        Self {
            name: name.to_owned(),
            kind,
            schema,
            pairs: ordered,
            train_end,
            valid_end,
        }
    }

    /// Dataset name (e.g. `"S-DG"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dataset kind (structured / textual / dirty).
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// The shared schema of both pair sides.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All pairs in split order (train, then validation, then test).
    pub fn pairs(&self) -> &[RecordPair] {
        &self.pairs
    }

    /// Total number of record pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the dataset holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The record pairs of one split.
    pub fn split(&self, split: Split) -> &[RecordPair] {
        match split {
            Split::Train => &self.pairs[..self.train_end],
            Split::Validation => &self.pairs[self.train_end..self.valid_end],
            Split::Test => &self.pairs[self.valid_end..],
        }
    }

    /// Labels of one split.
    pub fn labels(&self, split: Split) -> Vec<bool> {
        self.split(split).iter().map(|p| p.label).collect()
    }

    /// Fraction of matching pairs over the whole dataset, in `[0, 1]`.
    pub fn match_ratio(&self) -> f64 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        self.pairs.iter().filter(|p| p.label).count() as f64 / self.pairs.len() as f64
    }

    /// A copy containing only the first `n` pairs of each split, preserving
    /// split proportions — used by tests and fast examples.
    pub fn subsample(&self, n_train: usize, n_valid: usize, n_test: usize) -> EmDataset {
        let mut pairs = Vec::new();
        pairs.extend_from_slice(&self.split(Split::Train)[..n_train.min(self.train_end)]);
        let valid = self.split(Split::Validation);
        pairs.extend_from_slice(&valid[..n_valid.min(valid.len())]);
        let test = self.split(Split::Test);
        pairs.extend_from_slice(&test[..n_test.min(test.len())]);
        let train_end = n_train.min(self.train_end);
        let valid_end = train_end + n_valid.min(valid.len());
        EmDataset {
            name: self.name.clone(),
            kind: self.kind,
            schema: self.schema.clone(),
            pairs,
            train_end,
            valid_end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Entity;
    use crate::schema::{AttrType, Attribute};

    fn toy_dataset(n: usize, pos_ratio: f64, seed: u64) -> EmDataset {
        let schema = Schema::new(vec![Attribute::new("name", AttrType::Text)]);
        let pairs: Vec<RecordPair> = (0..n)
            .map(|i| {
                let label = (i as f64) < pos_ratio * n as f64;
                RecordPair::new(
                    Entity::new(vec![Some(format!("e{i}"))]),
                    Entity::new(vec![Some(format!("e{i}b"))]),
                    label,
                )
            })
            .collect();
        let mut rng = Rng::new(seed);
        EmDataset::with_split("toy", DatasetKind::Structured, schema, pairs, &mut rng)
    }

    #[test]
    fn split_proportions() {
        let d = toy_dataset(1000, 0.2, 1);
        assert_eq!(d.split(Split::Train).len(), 600);
        assert_eq!(d.split(Split::Validation).len(), 200);
        assert_eq!(d.split(Split::Test).len(), 200);
        assert_eq!(d.len(), 1000);
    }

    #[test]
    fn split_is_stratified() {
        let d = toy_dataset(1000, 0.2, 2);
        for split in [Split::Train, Split::Validation, Split::Test] {
            let labels = d.labels(split);
            let ratio = labels.iter().filter(|&&l| l).count() as f64 / labels.len() as f64;
            assert!((ratio - 0.2).abs() < 0.03, "{split:?}: {ratio}");
        }
    }

    #[test]
    fn splits_partition_dataset() {
        let d = toy_dataset(100, 0.3, 3);
        let total = d.split(Split::Train).len()
            + d.split(Split::Validation).len()
            + d.split(Split::Test).len();
        assert_eq!(total, d.len());
    }

    #[test]
    fn match_ratio_reported() {
        let d = toy_dataset(500, 0.1, 4);
        assert!((d.match_ratio() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = toy_dataset(200, 0.25, 7);
        let b = toy_dataset(200, 0.25, 7);
        assert_eq!(a.pairs(), b.pairs());
    }

    #[test]
    fn subsample_keeps_structure() {
        let d = toy_dataset(1000, 0.2, 5);
        let s = d.subsample(60, 20, 20);
        assert_eq!(s.split(Split::Train).len(), 60);
        assert_eq!(s.split(Split::Validation).len(), 20);
        assert_eq!(s.split(Split::Test).len(), 20);
    }
}
