//! # em-data — Entity Matching dataset substrate
//!
//! The paper evaluates on the 12 Magellan benchmark datasets (Table 1). The
//! real datasets are scraped CSVs distributed with DeepMatcher; this crate
//! replaces them with **deterministic synthetic generators** that reproduce
//! each dataset's published profile:
//!
//! * the record-pair count and match percentage of Table 1,
//! * the schema family (bibliographic, product, beer, music, restaurant,
//!   long-text) of the original source pair,
//! * the dataset *type* — `Structured`, `Textual`, `Dirty` — including the
//!   Magellan construction of the dirty variants (attribute values moved
//!   into the wrong column),
//! * the qualitative difficulty ordering (e.g. Walmart-Amazon and Abt-Buy
//!   are hard, DBLP-ACM and Fodors-Zagats are nearly saturated), via a
//!   per-profile noise intensity.
//!
//! Matching pairs are corrupted duplicates of one generated entity;
//! non-matching pairs are produced the way Magellan candidate sets are —
//! by *blocking*, i.e. sampling pairs of distinct entities that still share
//! tokens, so negatives are hard and the class ratio matches Table 1.
//!
//! Layout: [`schema`] and [`record`] define the data model, [`dataset`]
//! the split container, [`generators`] the per-domain entity factories,
//! [`noise`] the corruption operators, [`magellan`] the 12 profiles, and
//! [`csv`] a tiny load/store format so examples can persist datasets.

pub mod blocking;
pub mod csv;
pub mod dataset;
pub mod generators;
pub mod magellan;
pub mod noise;
pub mod record;
pub mod schema;

pub use blocking::{
    token_blocking, BlockerConfig, BlockingResult, CandidateIdPair, CandidatePair,
    IncrementalBlocker, Side,
};
pub use dataset::{EmDataset, Split};
pub use magellan::{magellan_benchmark, DatasetProfile, MagellanDataset};
pub use record::{Entity, RecordPair};
pub use schema::{AttrType, Attribute, DatasetKind, Schema};
