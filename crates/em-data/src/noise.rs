//! Corruption operators used to derive the "other source's" description of
//! an entity, and to create the *dirty* dataset variants.
//!
//! The intensity of each operator is governed by a single [`NoiseConfig`]
//! whose `level` knob is what the Magellan profiles tune per dataset: the
//! near-saturated datasets (DBLP-ACM, Fodors-Zagats) use low levels, the
//! hard ones (Walmart-Amazon, Abt-Buy) high levels.

use crate::record::Entity;
use crate::schema::{AttrType, Schema};
use linalg::Rng;

/// Per-operator probabilities for corrupting one attribute value.
#[derive(Debug, Clone, Copy)]
pub struct NoiseConfig {
    /// Probability of a character-level typo per token.
    pub typo: f64,
    /// Probability of dropping each token.
    pub token_drop: f64,
    /// Probability of abbreviating each token to its first letters.
    pub abbreviate: f64,
    /// Probability of nulling out a whole attribute value.
    pub missing: f64,
    /// Probability of appending extra source-specific tokens.
    pub extra_tokens: f64,
    /// Relative jitter applied to numeric attributes.
    pub numeric_jitter: f64,
    /// Probability that a token is replaced by a synonym-style variant
    /// (simulated by a deterministic re-spelling).
    pub respell: f64,
}

impl NoiseConfig {
    /// Scale a base configuration by a difficulty `level` in `[0, 1]`.
    ///
    /// `level = 0` produces nearly verbatim duplicates; `level = 1` the
    /// heaviest corruption used by the hardest Magellan profiles.
    pub fn from_level(level: f64) -> Self {
        let level = level.clamp(0.0, 1.0);
        Self {
            typo: 0.02 + 0.13 * level,
            token_drop: 0.02 + 0.28 * level,
            abbreviate: 0.01 + 0.14 * level,
            missing: 0.01 + 0.19 * level,
            extra_tokens: 0.05 + 0.35 * level,
            numeric_jitter: 0.005 + 0.12 * level,
            respell: 0.01 + 0.14 * level,
        }
    }
}

/// Apply one random character-level typo to a token: swap, delete, replace
/// or duplicate a character. Tokens of length < 2 are returned unchanged.
pub fn typo(token: &str, rng: &mut Rng) -> String {
    let chars: Vec<char> = token.chars().collect();
    if chars.len() < 2 {
        return token.to_owned();
    }
    let mut out = chars.clone();
    match rng.below(4) {
        0 => {
            // adjacent swap
            let i = rng.below(out.len() - 1);
            out.swap(i, i + 1);
        }
        1 => {
            // delete
            let i = rng.below(out.len());
            out.remove(i);
        }
        2 => {
            // replace with a nearby letter
            let i = rng.below(out.len());
            let c = out[i];
            out[i] = if c.is_ascii_alphabetic() {
                let base = if c.is_ascii_uppercase() { b'A' } else { b'a' };
                let off = (c as u8 - base + 1 + rng.below(24) as u8) % 26;
                (base + off) as char
            } else {
                'x'
            };
        }
        _ => {
            // duplicate
            let i = rng.below(out.len());
            let c = out[i];
            out.insert(i, c);
        }
    }
    out.into_iter().collect()
}

/// Abbreviate a token: keep the first 1–3 characters (simulating
/// "proceedings" → "proc", "international" → "intl"-style differences).
pub fn abbreviate(token: &str, rng: &mut Rng) -> String {
    let chars: Vec<char> = token.chars().collect();
    if chars.len() <= 3 {
        return token.to_owned();
    }
    let keep = 1 + rng.below(3);
    chars[..keep].iter().collect()
}

/// Deterministic re-spelling of a token (vowel dropping), simulating
/// source-specific naming conventions ("center" / "centre" class of
/// variation).
pub fn respell(token: &str) -> String {
    if token.chars().count() <= 3 {
        return token.to_owned();
    }
    let mut out = String::with_capacity(token.len());
    let chars: Vec<char> = token.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        // drop internal vowels, keep first/last characters
        if i > 0 && i + 1 < chars.len() && matches!(c, 'a' | 'e' | 'i' | 'o' | 'u') {
            continue;
        }
        out.push(c);
    }
    if out.len() < 2 {
        token.to_owned()
    } else {
        out
    }
}

/// Corrupt a single text value token-by-token according to `cfg`.
pub fn corrupt_text(value: &str, cfg: &NoiseConfig, extra_pool: &[&str], rng: &mut Rng) -> String {
    let mut tokens: Vec<String> = Vec::new();
    for tok in value.split_whitespace() {
        if rng.chance(cfg.token_drop) {
            continue;
        }
        let mut t = tok.to_owned();
        if rng.chance(cfg.respell) {
            t = respell(&t);
        }
        if rng.chance(cfg.abbreviate) {
            t = abbreviate(&t, rng);
        }
        if rng.chance(cfg.typo) {
            t = typo(&t, rng);
        }
        tokens.push(t);
    }
    if !extra_pool.is_empty() && rng.chance(cfg.extra_tokens) {
        let n_extra = 1 + rng.below(2);
        for _ in 0..n_extra {
            tokens.push((*rng.choose(extra_pool)).to_owned());
        }
    }
    if tokens.is_empty() {
        // never return a fully empty corruption of a non-empty value;
        // keep the first original token instead
        value
            .split_whitespace()
            .next()
            .unwrap_or_default()
            .to_owned()
    } else {
        tokens.join(" ")
    }
}

/// Corrupt a numeric value by relative jitter, preserving integer-ness.
pub fn corrupt_numeric(value: &str, cfg: &NoiseConfig, rng: &mut Rng) -> String {
    match value.parse::<f64>() {
        Ok(x) => {
            let jitter = 1.0 + cfg.numeric_jitter * (rng.f64() * 2.0 - 1.0);
            let y = x * jitter;
            if value.contains('.') {
                format!("{y:.2}")
            } else {
                format!("{}", y.round() as i64)
            }
        }
        Err(_) => value.to_owned(),
    }
}

/// Derive the matching counterpart of `entity`: every attribute value is
/// corrupted independently; whole values go missing with `cfg.missing`.
pub fn corrupt_entity(
    entity: &Entity,
    schema: &Schema,
    cfg: &NoiseConfig,
    extra_pool: &[&str],
    rng: &mut Rng,
) -> Entity {
    let mut out = Entity::empty(entity.width());
    for (i, attr) in schema.attributes().iter().enumerate() {
        let Some(v) = entity.value(i) else {
            continue;
        };
        if rng.chance(cfg.missing) {
            continue; // value lost in the other source
        }
        let corrupted = match attr.ty {
            AttrType::Numeric => corrupt_numeric(v, cfg, rng),
            AttrType::Text | AttrType::Categorical => corrupt_text(v, cfg, extra_pool, rng),
        };
        out.set(i, Some(corrupted));
    }
    out
}

/// Make an entity *dirty* in the Magellan sense: with probability
/// `move_prob` per attribute, its value is appended to another attribute's
/// value and the original is emptied.
pub fn dirtify(entity: &Entity, move_prob: f64, rng: &mut Rng) -> Entity {
    let width = entity.width();
    let mut out = entity.clone();
    if width < 2 {
        return out;
    }
    for i in 0..width {
        if out.value(i).is_some() && rng.chance(move_prob) {
            let mut j = rng.below(width - 1);
            if j >= i {
                j += 1;
            }
            let moved = out.value(i).unwrap().to_owned();
            let merged = match out.value(j) {
                Some(existing) => format!("{existing} {moved}"),
                None => moved,
            };
            out.set(j, Some(merged));
            out.set(i, None);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Attribute};
    use text::similarity::levenshtein_sim;

    #[test]
    fn typo_changes_string_slightly() {
        let mut rng = Rng::new(1);
        for _ in 0..50 {
            let t = typo("keyboard", &mut rng);
            assert!(levenshtein_sim("keyboard", &t) >= 0.7, "{t}");
        }
        assert_eq!(typo("a", &mut rng), "a");
    }

    #[test]
    fn abbreviate_shortens() {
        let mut rng = Rng::new(2);
        let a = abbreviate("international", &mut rng);
        assert!(a.len() <= 3 && "international".starts_with(&a));
        assert_eq!(abbreviate("abc", &mut rng), "abc");
    }

    #[test]
    fn respell_drops_vowels() {
        assert_eq!(respell("center"), "cntr");
        assert_eq!(respell("cat"), "cat");
        // first and last chars kept
        let r = respell("orange");
        assert!(r.starts_with('o') && r.ends_with('e'), "{r}");
    }

    #[test]
    fn corrupt_text_preserves_similarity_at_low_level() {
        let mut rng = Rng::new(3);
        let cfg = NoiseConfig::from_level(0.1);
        let original = "deep learning for entity matching a design space exploration";
        let mut sims = Vec::new();
        for _ in 0..30 {
            let c = corrupt_text(original, &cfg, &["acm", "press"], &mut rng);
            sims.push(text::similarity::jaccard(
                &original
                    .split_whitespace()
                    .map(str::to_owned)
                    .collect::<Vec<_>>(),
                &c.split_whitespace().map(str::to_owned).collect::<Vec<_>>(),
            ));
        }
        let avg: f64 = sims.iter().sum::<f64>() / sims.len() as f64;
        assert!(avg > 0.6, "avg jaccard {avg}");
    }

    #[test]
    fn corrupt_text_never_empty_for_nonempty_input() {
        let mut rng = Rng::new(4);
        let cfg = NoiseConfig {
            token_drop: 1.0, // drop everything
            ..NoiseConfig::from_level(1.0)
        };
        let c = corrupt_text("solo", &cfg, &[], &mut rng);
        assert_eq!(c, "solo");
    }

    #[test]
    fn corrupt_numeric_jitters_within_bounds() {
        let mut rng = Rng::new(5);
        let cfg = NoiseConfig::from_level(0.5);
        for _ in 0..50 {
            let v: f64 = corrupt_numeric("100", &cfg, &mut rng).parse().unwrap();
            assert!((v - 100.0).abs() <= 100.0 * cfg.numeric_jitter + 1.0, "{v}");
        }
        assert_eq!(corrupt_numeric("n/a", &cfg, &mut rng), "n/a");
    }

    #[test]
    fn corrupt_entity_respects_missing() {
        let schema = Schema::new(vec![
            Attribute::new("title", AttrType::Text),
            Attribute::new("year", AttrType::Numeric),
        ]);
        let e = Entity::new(vec![Some("some title here".into()), Some("1999".into())]);
        let mut rng = Rng::new(6);
        let cfg = NoiseConfig {
            missing: 1.0,
            ..NoiseConfig::from_level(0.0)
        };
        let c = corrupt_entity(&e, &schema, &cfg, &[], &mut rng);
        assert_eq!(c.missing_count(), 2);
    }

    #[test]
    fn dirtify_moves_but_preserves_tokens() {
        let e = Entity::new(vec![
            Some("alpha".into()),
            Some("beta".into()),
            Some("gamma".into()),
        ]);
        let mut rng = Rng::new(7);
        let d = dirtify(&e, 1.0, &mut rng);
        // all original tokens survive somewhere
        let all: String = d.flatten();
        for tok in ["alpha", "beta", "gamma"] {
            assert!(all.contains(tok), "missing {tok} in {all}");
        }
        // and at least one slot was emptied
        assert!(d.missing_count() >= 1);
    }

    #[test]
    fn dirtify_single_column_is_noop() {
        let e = Entity::new(vec![Some("only".into())]);
        let mut rng = Rng::new(8);
        assert_eq!(dirtify(&e, 1.0, &mut rng), e);
    }
}
