//! Entities and record pairs — the unit of data in every EM dataset.

use crate::schema::Schema;

/// One entity description: a value (possibly missing) per schema attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entity {
    values: Vec<Option<String>>,
}

impl Entity {
    /// Build from per-attribute values. Empty strings are normalized to
    /// missing (`None`): the two are indistinguishable in the CSV format
    /// and every consumer treats them identically.
    pub fn new(values: Vec<Option<String>>) -> Self {
        Self {
            values: values
                .into_iter()
                .map(|v| v.filter(|s| !s.is_empty()))
                .collect(),
        }
    }

    /// All-missing entity of the given width.
    pub fn empty(width: usize) -> Self {
        Self {
            values: vec![None; width],
        }
    }

    /// Value of attribute `i` (`None` when missing).
    pub fn value(&self, i: usize) -> Option<&str> {
        self.values.get(i).and_then(|v| v.as_deref())
    }

    /// Value of attribute `i`, or `""` when missing.
    pub fn value_or_empty(&self, i: usize) -> &str {
        self.value(i).unwrap_or("")
    }

    /// Replace the value of attribute `i`.
    pub fn set(&mut self, i: usize, value: Option<String>) {
        self.values[i] = value;
    }

    /// Number of attribute slots.
    pub fn width(&self) -> usize {
        self.values.len()
    }

    /// Iterate values in attribute order.
    pub fn values(&self) -> impl Iterator<Item = Option<&str>> {
        self.values.iter().map(|v| v.as_deref())
    }

    /// All attribute values concatenated with single spaces (missing values
    /// skipped) — the "unstructured" serialization of §4.
    pub fn flatten(&self) -> String {
        let mut out = String::new();
        for v in self.values.iter().flatten() {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(v);
        }
        out
    }

    /// Count of missing values.
    pub fn missing_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_none()).count()
    }
}

/// One labeled record of an EM dataset: a pair of entity descriptions and
/// whether they refer to the same real-world entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordPair {
    /// The left entity (from the first source table).
    pub left: Entity,
    /// The right entity (from the second source table).
    pub right: Entity,
    /// `true` when the two descriptions refer to the same entity.
    pub label: bool,
}

impl RecordPair {
    /// Build a pair; both sides must agree on width.
    pub fn new(left: Entity, right: Entity, label: bool) -> Self {
        assert_eq!(
            left.width(),
            right.width(),
            "record pair sides have different widths"
        );
        Self { left, right, label }
    }

    /// Width (number of attributes per side).
    pub fn width(&self) -> usize {
        self.left.width()
    }

    /// Serialize the pair into the flat
    /// `a₁₁ … a₁M a₂₁ … a₂M` attribute layout described in §4,
    /// with attribute names qualified by side.
    pub fn flat_columns(&self, schema: &Schema) -> Vec<(String, Option<String>)> {
        let mut out = Vec::with_capacity(self.width() * 2);
        for (side, entity) in [("left", &self.left), ("right", &self.right)] {
            for (i, attr) in schema.attributes().iter().enumerate() {
                out.push((
                    format!("{side}_{}", attr.name),
                    entity.value(i).map(str::to_owned),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Attribute, Schema};

    fn entity(vals: &[&str]) -> Entity {
        Entity::new(vals.iter().map(|v| Some((*v).to_owned())).collect())
    }

    #[test]
    fn entity_accessors() {
        let mut e = entity(&["iphone", "apple"]);
        assert_eq!(e.value(0), Some("iphone"));
        assert_eq!(e.width(), 2);
        e.set(1, None);
        assert_eq!(e.value(1), None);
        assert_eq!(e.value_or_empty(1), "");
        assert_eq!(e.missing_count(), 1);
    }

    #[test]
    fn flatten_skips_missing() {
        let e = Entity::new(vec![Some("a".into()), None, Some("b".into())]);
        assert_eq!(e.flatten(), "a b");
        assert_eq!(Entity::empty(3).flatten(), "");
    }

    #[test]
    fn pair_flat_columns_layout() {
        let schema = Schema::new(vec![
            Attribute::new("title", AttrType::Text),
            Attribute::new("year", AttrType::Numeric),
        ]);
        let p = RecordPair::new(entity(&["t1", "1999"]), entity(&["t2", "2001"]), true);
        let cols = p.flat_columns(&schema);
        assert_eq!(cols.len(), 4);
        assert_eq!(cols[0].0, "left_title");
        assert_eq!(cols[3].0, "right_year");
        assert_eq!(cols[3].1.as_deref(), Some("2001"));
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn mismatched_widths_rejected() {
        RecordPair::new(Entity::empty(2), Entity::empty(3), false);
    }
}
