//! Synthetic entity factories, one per Magellan domain family.
//!
//! A [`Domain`] produces clean entities under a fixed [`Schema`]; the
//! `magellan` module turns them into labeled record pairs. Every domain also
//! knows how to produce a **near-miss**: a distinct entity that shares
//! surface tokens with a given one (same brand different model, same group
//! different paper) — what blocking-based candidate sets are full of and
//! what makes EM hard.
//!
//! The `closeness ∈ [0, 1]` knob controls how similar a near-miss stays to
//! the source entity: easy datasets use low closeness (negatives are
//! clearly different records), hard ones high closeness (negatives differ
//! only in identity tokens like a model number or a year). Profiles set
//! `closeness = difficulty`, which is what produces the paper's achievable-
//! F1 ordering across the twelve datasets.

pub mod pools;

use crate::record::Entity;
use crate::schema::{AttrType, Attribute, Schema};
use linalg::Rng;

/// Pick from a pool with a Zipf-like skew (low ranks far more likely),
/// matching the frequency profile of real-world text sources.
pub fn zipf_pick<'a>(pool: &[&'a str], rng: &mut Rng) -> &'a str {
    debug_assert!(!pool.is_empty());
    let n = pool.len() as f64;
    let u = rng.f64();
    let idx = ((n + 1.0).powf(u) - 1.0).floor() as usize;
    pool[idx.min(pool.len() - 1)]
}

/// Pick `k` tokens (with replacement) joined by spaces.
pub fn zipf_phrase(pool: &[&str], k: usize, rng: &mut Rng) -> String {
    (0..k)
        .map(|_| zipf_pick(pool, rng).to_owned())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Replace each whitespace token with a fresh pool pick with probability
/// `p`; guarantees at least one replacement when `force` is set.
fn replace_tokens(value: &str, pool: &[&str], p: f64, force: bool, rng: &mut Rng) -> String {
    let mut toks: Vec<String> = value.split_whitespace().map(str::to_owned).collect();
    if toks.is_empty() {
        return value.to_owned();
    }
    let mut changed = false;
    for t in toks.iter_mut() {
        if rng.chance(p) {
            let cand = zipf_pick(pool, rng);
            if cand != t {
                *t = cand.to_owned();
                changed = true;
            }
        }
    }
    if force && !changed {
        let i = rng.below(toks.len());
        // a forced replacement must actually change the token
        loop {
            let cand = zipf_pick(pool, rng);
            if cand != toks[i] {
                toks[i] = cand.to_owned();
                break;
            }
        }
    }
    toks.join(" ")
}

fn model_number(rng: &mut Rng) -> String {
    format!(
        "{}{}{}",
        char::from(b'a' + rng.below(26) as u8),
        char::from(b'a' + rng.below(26) as u8),
        100 + rng.below(900)
    )
}

/// A synthetic entity source for one Magellan domain family.
pub trait Domain: Send + Sync {
    /// The schema shared by both sides of every pair.
    fn schema(&self) -> Schema;

    /// Generate one clean entity.
    fn generate(&self, rng: &mut Rng) -> Entity;

    /// Produce a *near-miss* of `entity`: a different real-world entity
    /// whose description shares tokens. `closeness ∈ [0, 1]`: 0 keeps
    /// little beyond the domain vocabulary, 1 changes only identity tokens.
    fn near_miss(&self, entity: &Entity, closeness: f64, rng: &mut Rng) -> Entity;

    /// Tokens a second data source tends to append (used by the noise
    /// operators when corrupting the matching counterpart).
    fn extra_pool(&self) -> &'static [&'static str] {
        pools::SOURCE_EXTRAS
    }
}

/// Bibliographic domain: DBLP-ACM / DBLP-GoogleScholar.
/// Schema: title, authors, venue, year.
pub struct Bibliographic;

fn author(rng: &mut Rng) -> String {
    format!(
        "{} {}",
        zipf_pick(pools::FIRST_NAMES, rng),
        zipf_pick(pools::LAST_NAMES, rng)
    )
}

impl Domain for Bibliographic {
    fn schema(&self) -> Schema {
        Schema::new(vec![
            Attribute::new("title", AttrType::Text),
            Attribute::new("authors", AttrType::Text),
            Attribute::new("venue", AttrType::Categorical),
            Attribute::new("year", AttrType::Numeric),
        ])
    }

    fn generate(&self, rng: &mut Rng) -> Entity {
        let title_len = 4 + rng.below(6);
        let title = zipf_phrase(pools::RESEARCH_WORDS, title_len, rng);
        let n_authors = 1 + rng.below(4);
        let authors = (0..n_authors)
            .map(|_| author(rng))
            .collect::<Vec<_>>()
            .join(" , ");
        let venue = zipf_pick(pools::VENUES, rng).to_owned();
        let year = 1985 + rng.below(36);
        Entity::new(vec![
            Some(title),
            Some(authors),
            Some(venue),
            Some(year.to_string()),
        ])
    }

    fn near_miss(&self, entity: &Entity, closeness: f64, rng: &mut Rng) -> Entity {
        let mut out = entity.clone();
        // a different paper: replace title words (almost all when the
        // dataset is easy, only a couple when it is hard)
        let replace_p = 0.9 - 0.75 * closeness;
        if let Some(title) = entity.value(0) {
            out.set(
                0,
                Some(replace_tokens(
                    title,
                    pools::RESEARCH_WORDS,
                    replace_p,
                    true,
                    rng,
                )),
            );
        }
        // authors: shared co-author only on hard datasets
        if let Some(authors) = entity.value(1) {
            if rng.chance(closeness) {
                // keep the first author, regenerate the rest
                let first = authors.split(" , ").next().unwrap_or_default().to_owned();
                let extra = (0..rng.below(3))
                    .map(|_| author(rng))
                    .collect::<Vec<_>>()
                    .join(" , ");
                out.set(
                    1,
                    Some(if extra.is_empty() {
                        first
                    } else {
                        format!("{first} , {extra}")
                    }),
                );
            } else {
                let n = 1 + rng.below(4);
                out.set(
                    1,
                    Some((0..n).map(|_| author(rng)).collect::<Vec<_>>().join(" , ")),
                );
            }
        }
        if rng.chance(0.7) {
            out.set(3, Some((1985 + rng.below(36)).to_string()));
        }
        if rng.chance(0.5) {
            out.set(2, Some(zipf_pick(pools::VENUES, rng).to_owned()));
        }
        out
    }
}

/// Electronics products with a manufacturer column:
/// Amazon-Google. Schema: title, manufacturer, price.
pub struct ProductElectronics;

fn product_title(rng: &mut Rng) -> (String, String) {
    let brand = zipf_pick(pools::BRANDS, rng).to_owned();
    let noun = zipf_pick(pools::PRODUCT_NOUNS, rng);
    let model = model_number(rng);
    let n_qual = 1 + rng.below(3);
    let quals = zipf_phrase(pools::PRODUCT_QUALIFIERS, n_qual, rng);
    (format!("{brand} {model} {quals} {noun}"), brand)
}

/// Shared near-miss for product titles: regenerate the model token, swap
/// qualifiers/noun depending on closeness. Returns the new title and model.
fn product_near_title(title: &str, closeness: f64, rng: &mut Rng) -> (String, String) {
    let mut toks: Vec<String> = title.split_whitespace().map(str::to_owned).collect();
    let new_model = model_number(rng);
    if toks.len() > 1 {
        toks[1] = new_model.clone();
    }
    let replace_p = 0.8 - 0.7 * closeness;
    for t in toks.iter_mut().skip(2) {
        if rng.chance(replace_p) {
            *t = zipf_pick(pools::PRODUCT_QUALIFIERS, rng).to_owned();
        }
    }
    // the product noun is the last token; easy datasets change it often
    if rng.chance((1.0 - closeness) * 0.7) {
        if let Some(last) = toks.last_mut() {
            *last = zipf_pick(pools::PRODUCT_NOUNS, rng).to_owned();
        }
    }
    (toks.join(" "), new_model)
}

impl Domain for ProductElectronics {
    fn schema(&self) -> Schema {
        Schema::new(vec![
            Attribute::new("title", AttrType::Text),
            Attribute::new("manufacturer", AttrType::Categorical),
            Attribute::new("price", AttrType::Numeric),
        ])
    }

    fn generate(&self, rng: &mut Rng) -> Entity {
        let (title, brand) = product_title(rng);
        let price = 5.0 + rng.f64() * 995.0;
        Entity::new(vec![Some(title), Some(brand), Some(format!("{price:.2}"))])
    }

    fn near_miss(&self, entity: &Entity, closeness: f64, rng: &mut Rng) -> Entity {
        let mut out = entity.clone();
        if let Some(title) = entity.value(0) {
            let (new_title, _) = product_near_title(title, closeness, rng);
            out.set(0, Some(new_title));
        }
        let price = 5.0 + rng.f64() * 995.0;
        out.set(2, Some(format!("{price:.2}")));
        out
    }
}

/// Retail products with more columns: Walmart-Amazon.
/// Schema: title, category, brand, modelno, price.
pub struct ProductRetail;

impl Domain for ProductRetail {
    fn schema(&self) -> Schema {
        Schema::new(vec![
            Attribute::new("title", AttrType::Text),
            Attribute::new("category", AttrType::Categorical),
            Attribute::new("brand", AttrType::Categorical),
            Attribute::new("modelno", AttrType::Text),
            Attribute::new("price", AttrType::Numeric),
        ])
    }

    fn generate(&self, rng: &mut Rng) -> Entity {
        let (title, brand) = product_title(rng);
        let model = title.split_whitespace().nth(1).unwrap_or("x000").to_owned();
        let category = zipf_pick(pools::PRODUCT_CATEGORIES, rng).to_owned();
        let price = 5.0 + rng.f64() * 1495.0;
        Entity::new(vec![
            Some(title),
            Some(category),
            Some(brand),
            Some(model),
            Some(format!("{price:.2}")),
        ])
    }

    fn near_miss(&self, entity: &Entity, closeness: f64, rng: &mut Rng) -> Entity {
        let mut out = entity.clone();
        let mut model = String::new();
        if let Some(title) = entity.value(0) {
            let (new_title, new_model) = product_near_title(title, closeness, rng);
            out.set(0, Some(new_title));
            model = new_model;
        }
        if !model.is_empty() {
            out.set(3, Some(model));
        }
        let price = 5.0 + rng.f64() * 1495.0;
        out.set(4, Some(format!("{price:.2}")));
        out
    }
}

/// Beers: BeerAdvo-RateBeer. Schema: beer_name, brewery, style, abv.
pub struct Beer;

impl Domain for Beer {
    fn schema(&self) -> Schema {
        Schema::new(vec![
            Attribute::new("beer_name", AttrType::Text),
            Attribute::new("brewery", AttrType::Text),
            Attribute::new("style", AttrType::Categorical),
            Attribute::new("abv", AttrType::Numeric),
        ])
    }

    fn generate(&self, rng: &mut Rng) -> Entity {
        let name = zipf_phrase(pools::BEER_WORDS, 2 + rng.below(2), rng);
        let brewery = format!(
            "{} {}",
            zipf_pick(pools::BEER_WORDS, rng),
            zipf_pick(pools::BREWERY_WORDS, rng)
        );
        let style = zipf_pick(pools::BEER_STYLES, rng).to_owned();
        let abv = 3.5 + rng.f64() * 9.0;
        Entity::new(vec![
            Some(name),
            Some(brewery),
            Some(style),
            Some(format!("{abv:.1}")),
        ])
    }

    fn near_miss(&self, entity: &Entity, closeness: f64, rng: &mut Rng) -> Entity {
        let mut out = entity.clone();
        // same brewery (hard) or different brewery (easy), different beer
        if let Some(name) = entity.value(0) {
            out.set(
                0,
                Some(replace_tokens(
                    name,
                    pools::BEER_WORDS,
                    0.9 - 0.6 * closeness,
                    true,
                    rng,
                )),
            );
        }
        if !rng.chance(closeness) {
            let brewery = format!(
                "{} {}",
                zipf_pick(pools::BEER_WORDS, rng),
                zipf_pick(pools::BREWERY_WORDS, rng)
            );
            out.set(1, Some(brewery));
        }
        if rng.chance(0.6) {
            out.set(2, Some(zipf_pick(pools::BEER_STYLES, rng).to_owned()));
        }
        let abv = 3.5 + rng.f64() * 9.0;
        out.set(3, Some(format!("{abv:.1}")));
        out
    }
}

/// Songs: iTunes-Amazon.
/// Schema: song_name, artist_name, album_name, genre, price, released.
pub struct Music;

impl Domain for Music {
    fn schema(&self) -> Schema {
        Schema::new(vec![
            Attribute::new("song_name", AttrType::Text),
            Attribute::new("artist_name", AttrType::Text),
            Attribute::new("album_name", AttrType::Text),
            Attribute::new("genre", AttrType::Categorical),
            Attribute::new("price", AttrType::Numeric),
            Attribute::new("released", AttrType::Numeric),
        ])
    }

    fn generate(&self, rng: &mut Rng) -> Entity {
        let song = zipf_phrase(pools::SONG_WORDS, 1 + rng.below(3), rng);
        let artist = zipf_phrase(pools::ARTIST_WORDS, 2, rng);
        let album = zipf_phrase(pools::SONG_WORDS, 1 + rng.below(2), rng);
        let genre = zipf_pick(pools::GENRES, rng).to_owned();
        let price = 0.69 + rng.f64() * 1.3;
        let released = 1990 + rng.below(31);
        Entity::new(vec![
            Some(song),
            Some(artist),
            Some(album),
            Some(genre),
            Some(format!("{price:.2}")),
            Some(released.to_string()),
        ])
    }

    fn near_miss(&self, entity: &Entity, closeness: f64, rng: &mut Rng) -> Entity {
        let mut out = entity.clone();
        // same artist (hard) different song, or different artist (easy)
        if let Some(song) = entity.value(0) {
            out.set(
                0,
                Some(replace_tokens(
                    song,
                    pools::SONG_WORDS,
                    0.95 - 0.55 * closeness,
                    true,
                    rng,
                )),
            );
        }
        if !rng.chance(closeness) {
            out.set(1, Some(zipf_phrase(pools::ARTIST_WORDS, 2, rng)));
        }
        if rng.chance(0.5) {
            out.set(
                2,
                Some(zipf_phrase(pools::SONG_WORDS, 1 + rng.below(2), rng)),
            );
        }
        if rng.chance(0.6) {
            out.set(5, Some((1990 + rng.below(31)).to_string()));
        }
        out
    }
}

/// Restaurants: Fodors-Zagats.
/// Schema: name, addr, city, phone, cuisine.
pub struct Restaurant;

fn phone(rng: &mut Rng) -> String {
    format!(
        "{:03} {:03} {:04}",
        200 + rng.below(800),
        rng.below(1000),
        rng.below(10000)
    )
}

impl Domain for Restaurant {
    fn schema(&self) -> Schema {
        Schema::new(vec![
            Attribute::new("name", AttrType::Text),
            Attribute::new("addr", AttrType::Text),
            Attribute::new("city", AttrType::Categorical),
            Attribute::new("phone", AttrType::Text),
            Attribute::new("cuisine", AttrType::Categorical),
        ])
    }

    fn generate(&self, rng: &mut Rng) -> Entity {
        let name = zipf_phrase(pools::RESTAURANT_WORDS, 2, rng);
        let addr = format!("{} {}", 1 + rng.below(999), zipf_pick(pools::STREETS, rng));
        let city = zipf_pick(pools::CITIES, rng).to_owned();
        let cuisine = zipf_pick(pools::CUISINES, rng).to_owned();
        Entity::new(vec![
            Some(name),
            Some(addr),
            Some(city),
            Some(phone(rng)),
            Some(cuisine),
        ])
    }

    fn near_miss(&self, entity: &Entity, closeness: f64, rng: &mut Rng) -> Entity {
        let mut out = entity.clone();
        if let Some(name) = entity.value(0) {
            out.set(
                0,
                Some(replace_tokens(
                    name,
                    pools::RESTAURANT_WORDS,
                    0.9 - 0.5 * closeness,
                    true,
                    rng,
                )),
            );
        }
        out.set(
            1,
            Some(format!(
                "{} {}",
                1 + rng.below(999),
                zipf_pick(pools::STREETS, rng)
            )),
        );
        out.set(3, Some(phone(rng)));
        if !rng.chance(closeness) {
            out.set(2, Some(zipf_pick(pools::CITIES, rng).to_owned()));
        }
        out
    }
}

/// Long-text products: Abt-Buy. Schema: name, description, price — the
/// description dominates and the price is often missing, which is what
/// makes the dataset "textual".
pub struct TextualProduct;

impl Domain for TextualProduct {
    fn schema(&self) -> Schema {
        Schema::new(vec![
            Attribute::new("name", AttrType::Text),
            Attribute::new("description", AttrType::Text),
            Attribute::new("price", AttrType::Numeric),
        ])
    }

    fn generate(&self, rng: &mut Rng) -> Entity {
        let (title, _) = product_title(rng);
        let desc_len = 15 + rng.below(25);
        let description = format!(
            "{} {}",
            title,
            zipf_phrase(pools::DESCRIPTION_WORDS, desc_len, rng)
        );
        let price = if rng.chance(0.35) {
            None // Abt-Buy price is frequently missing
        } else {
            Some(format!("{:.2}", 10.0 + rng.f64() * 990.0))
        };
        Entity::new(vec![Some(title), Some(description), price])
    }

    fn near_miss(&self, entity: &Entity, closeness: f64, rng: &mut Rng) -> Entity {
        let mut out = entity.clone();
        let mut new_model = String::new();
        if let Some(title) = entity.value(0) {
            let (t, m) = product_near_title(title, closeness, rng);
            out.set(0, Some(t));
            new_model = m;
        }
        if let Some(desc) = entity.value(1) {
            let mut toks: Vec<String> = desc.split_whitespace().map(str::to_owned).collect();
            if toks.len() > 1 && !new_model.is_empty() {
                toks[1] = new_model;
            }
            let replace_p = (1.0 - closeness) * 0.5;
            for t in toks.iter_mut().skip(2) {
                if rng.chance(replace_p) {
                    *t = zipf_pick(pools::DESCRIPTION_WORDS, rng).to_owned();
                }
            }
            out.set(1, Some(toks.join(" ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use text::similarity::jaccard;

    fn all_domains() -> Vec<Box<dyn Domain>> {
        vec![
            Box::new(Bibliographic),
            Box::new(ProductElectronics),
            Box::new(ProductRetail),
            Box::new(Beer),
            Box::new(Music),
            Box::new(Restaurant),
            Box::new(TextualProduct),
        ]
    }

    fn toks(e: &Entity) -> Vec<String> {
        e.flatten().split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn generated_entities_match_schema_width() {
        let mut rng = Rng::new(1);
        for d in all_domains() {
            let e = d.generate(&mut rng);
            assert_eq!(e.width(), d.schema().len());
        }
    }

    #[test]
    fn near_miss_differs_but_overlaps() {
        let mut rng = Rng::new(2);
        for d in all_domains() {
            let mut sims = Vec::new();
            for _ in 0..30 {
                let e = d.generate(&mut rng);
                let nm = d.near_miss(&e, 0.5, &mut rng);
                assert_ne!(e, nm, "near_miss produced an identical entity");
                sims.push(jaccard(&toks(&e), &toks(&nm)));
            }
            let avg = linalg::stats::mean(&sims);
            assert!(
                (0.05..0.95).contains(&avg),
                "mean near-miss similarity {avg} out of range ({:?})",
                d.schema()
            );
        }
    }

    #[test]
    fn closeness_controls_similarity() {
        let mut rng = Rng::new(3);
        for d in all_domains() {
            let mut close_sims = Vec::new();
            let mut far_sims = Vec::new();
            for _ in 0..60 {
                let e = d.generate(&mut rng);
                let near = d.near_miss(&e, 0.95, &mut rng);
                let far = d.near_miss(&e, 0.05, &mut rng);
                close_sims.push(jaccard(&toks(&e), &toks(&near)));
                far_sims.push(jaccard(&toks(&e), &toks(&far)));
            }
            let c = linalg::stats::mean(&close_sims);
            let f = linalg::stats::mean(&far_sims);
            assert!(c > f + 0.05, "closeness ineffective: close {c} vs far {f}");
        }
    }

    #[test]
    fn zipf_pick_is_skewed() {
        let mut rng = Rng::new(3);
        let mut low = 0;
        let n = 10_000;
        for _ in 0..n {
            let u = rng.f64();
            let idx = ((51.0f64).powf(u) - 1.0).floor() as usize;
            if idx < 5 {
                low += 1;
            }
        }
        assert!(low as f64 / n as f64 > 0.3, "{low}");
    }

    #[test]
    fn generation_is_deterministic() {
        let d = Bibliographic;
        let mut a = Rng::new(9);
        let mut b = Rng::new(9);
        for _ in 0..10 {
            assert_eq!(d.generate(&mut a), d.generate(&mut b));
        }
    }

    #[test]
    fn textual_product_sometimes_misses_price() {
        let d = TextualProduct;
        let mut rng = Rng::new(4);
        let missing = (0..200)
            .filter(|_| d.generate(&mut rng).value(2).is_none())
            .count();
        assert!(missing > 30 && missing < 120, "{missing}");
    }

    #[test]
    fn replace_tokens_forces_change() {
        let mut rng = Rng::new(5);
        let out = replace_tokens("alpha beta", pools::BEER_WORDS, 0.0, true, &mut rng);
        assert_ne!(out, "alpha beta");
    }
}
