//! Static token pools for the synthetic entity generators.
//!
//! Each pool plays the role of the source vocabularies of the original
//! Magellan tables (paper titles, product lines, beer styles, …). Pools are
//! intentionally skewed when sampled (see [`super::zipf_pick`]) so token
//! frequencies follow the Zipf-like shape of real text.

/// Research-paper title words (DBLP / ACM / Google Scholar universe).
pub const RESEARCH_WORDS: &[&str] = &[
    "learning", "database", "query", "optimization", "distributed", "systems", "efficient",
    "scalable", "parallel", "indexing", "mining", "streams", "graph", "semantic", "web",
    "knowledge", "integration", "schema", "matching", "entity", "resolution", "clustering",
    "classification", "neural", "networks", "deep", "probabilistic", "models", "inference",
    "approximate", "algorithms", "analysis", "processing", "transactions", "concurrency",
    "recovery", "storage", "memory", "cache", "adaptive", "dynamic", "incremental", "online",
    "framework", "architecture", "evaluation", "benchmark", "performance", "spatial",
    "temporal", "relational", "xml", "keyword", "search", "ranking", "similarity", "joins",
    "aggregation", "sampling", "estimation", "privacy", "security", "crowdsourcing",
    "provenance", "uncertain", "incomplete", "heterogeneous", "federated", "cloud",
    "mapreduce", "workflow", "visualization", "interactive", "exploration", "recommendation",
];

/// Author first names.
pub const FIRST_NAMES: &[&str] = &[
    "john", "wei", "maria", "david", "yuki", "anna", "carlos", "elena", "rajesh", "sofia",
    "michael", "li", "sarah", "ahmed", "laura", "peter", "chen", "julia", "marco", "nina",
    "thomas", "ying", "paul", "irina", "jorge", "kate", "hiro", "emma", "luigi", "divya",
];

/// Author last names.
pub const LAST_NAMES: &[&str] = &[
    "smith", "zhang", "garcia", "johnson", "tanaka", "mueller", "rossi", "kumar", "ivanov",
    "kim", "chen", "brown", "silva", "nguyen", "hansen", "lopez", "wang", "taylor", "sato",
    "weber", "ferrari", "patel", "petrov", "lee", "liu", "davis", "santos", "tran", "larsen",
    "moreno",
];

/// Publication venues (paired long/short forms live in `VENUE_ABBREV`).
pub const VENUES: &[&str] = &[
    "sigmod conference", "vldb", "icde", "edbt", "cikm", "kdd", "icml", "nips", "www",
    "sigir", "pods", "icdt", "acm transactions on database systems", "vldb journal",
    "ieee transactions on knowledge and data engineering", "information systems",
    "data mining and knowledge discovery", "journal of machine learning research",
];

/// Consumer-electronics brands (Amazon-Google / Walmart-Amazon universe).
pub const BRANDS: &[&str] = &[
    "sony", "samsung", "panasonic", "canon", "nikon", "apple", "microsoft", "logitech",
    "hp", "dell", "lenovo", "asus", "acer", "toshiba", "philips", "lg", "epson", "brother",
    "kodak", "sandisk", "kingston", "netgear", "linksys", "belkin", "garmin", "jvc",
    "olympus", "casio", "sharp", "vizio",
];

/// Product nouns.
pub const PRODUCT_NOUNS: &[&str] = &[
    "laptop", "camera", "printer", "monitor", "keyboard", "mouse", "speaker", "headphones",
    "router", "tablet", "smartphone", "charger", "adapter", "cable", "battery", "projector",
    "scanner", "webcam", "microphone", "drive", "memory", "card", "case", "stand", "dock",
    "television", "soundbar", "receiver", "lens", "tripod",
];

/// Product qualifier tokens.
pub const PRODUCT_QUALIFIERS: &[&str] = &[
    "wireless", "bluetooth", "portable", "digital", "compact", "professional", "gaming",
    "ultra", "slim", "premium", "hd", "4k", "stereo", "noise", "cancelling", "rechargeable",
    "waterproof", "ergonomic", "backlit", "mechanical", "optical", "usb", "hdmi", "black",
    "white", "silver", "rgb", "mini", "max", "pro",
];

/// Product categories (Walmart-Amazon has a category column).
pub const PRODUCT_CATEGORIES: &[&str] = &[
    "electronics", "computers", "accessories", "audio", "video", "photography", "networking",
    "storage", "printers", "televisions", "cameras", "office",
];

/// Beer name words (BeerAdvo-RateBeer universe).
pub const BEER_WORDS: &[&str] = &[
    "golden", "dark", "old", "river", "mountain", "hoppy", "amber", "winter", "summer",
    "harvest", "imperial", "double", "barrel", "aged", "wild", "sour", "smoked", "honey",
    "ghost", "iron", "copper", "raven", "eagle", "wolf", "bear", "fox", "oak", "maple",
    "stone", "creek",
];

/// Beer styles.
pub const BEER_STYLES: &[&str] = &[
    "american ipa", "imperial stout", "pale ale", "pilsner", "porter", "hefeweizen",
    "saison", "lager", "amber ale", "brown ale", "belgian tripel", "witbier", "barleywine",
    "kolsch", "dunkel",
];

/// Brewery name words.
pub const BREWERY_WORDS: &[&str] = &[
    "brewing", "company", "brewery", "brewers", "craft", "works", "house", "valley", "city",
    "north", "south", "coast", "point", "street", "union", "anchor", "summit", "granite",
];

/// Song title words (iTunes-Amazon universe).
pub const SONG_WORDS: &[&str] = &[
    "love", "night", "heart", "dance", "fire", "dream", "light", "rain", "summer", "home",
    "road", "time", "stars", "moon", "river", "sky", "gold", "blue", "wild", "young",
    "forever", "tonight", "baby", "crazy", "sweet", "broken", "midnight", "sunshine",
    "thunder", "echo",
];

/// Artist name words.
pub const ARTIST_WORDS: &[&str] = &[
    "the", "black", "red", "electric", "velvet", "royal", "silver", "neon", "lost", "city",
    "kings", "queens", "riders", "brothers", "sisters", "band", "crew", "project", "sound",
    "collective",
];

/// Music genres.
pub const GENRES: &[&str] = &[
    "pop", "rock", "hip hop", "country", "jazz", "electronic", "r&b", "folk", "classical",
    "reggae", "blues", "metal", "indie", "soul", "dance",
];

/// Restaurant name words (Fodors-Zagats universe).
pub const RESTAURANT_WORDS: &[&str] = &[
    "cafe", "grill", "bistro", "kitchen", "garden", "palace", "house", "corner", "golden",
    "royal", "little", "blue", "ocean", "harbor", "vine", "olive", "spice", "pepper",
    "bamboo", "lotus", "sunset", "terrace", "plaza", "fountain", "villa", "castle",
];

/// Cuisines.
pub const CUISINES: &[&str] = &[
    "italian", "french", "chinese", "japanese", "mexican", "indian", "thai", "american",
    "mediterranean", "greek", "spanish", "vietnamese", "korean", "seafood", "steakhouse",
];

/// US cities.
pub const CITIES: &[&str] = &[
    "new york", "los angeles", "chicago", "san francisco", "boston", "seattle", "austin",
    "denver", "miami", "portland", "atlanta", "dallas", "philadelphia", "phoenix", "houston",
];

/// Street names for addresses.
pub const STREETS: &[&str] = &[
    "main st", "oak ave", "maple dr", "park blvd", "market st", "broadway", "sunset blvd",
    "5th ave", "lake shore dr", "mission st", "elm st", "pine st", "washington ave",
    "lincoln rd", "river rd",
];

/// Long-description filler (Abt-Buy style descriptions).
pub const DESCRIPTION_WORDS: &[&str] = &[
    "features", "includes", "designed", "perfect", "quality", "durable", "lightweight",
    "easy", "install", "compatible", "warranty", "package", "contents", "dimensions",
    "resolution", "battery", "life", "hours", "connectivity", "performance", "advanced",
    "technology", "system", "control", "remote", "display", "screen", "inch", "power",
    "energy", "efficient", "sleek", "design", "color", "options", "available", "model",
    "series", "edition", "includes", "adapter", "manual", "support", "ideal", "everyday",
    "use", "high", "speed", "capacity", "storage",
];

/// Extra tokens a second source typically appends (condition notes, sellers,
/// shipping notes). Used as the `extra_pool` of the corruption operators.
pub const SOURCE_EXTRAS: &[&str] = &[
    "new", "oem", "retail", "pack", "edition", "bundle", "kit", "w", "incl", "free",
    "shipping", "genuine", "original", "refurbished", "sealed", "us", "version", "2nd",
    "gen", "latest",
];
