//! Dataset schemas: attribute names, types and dataset kinds.

use std::fmt;

/// The value domain of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrType {
    /// Free text (titles, descriptions, author lists, …).
    Text,
    /// Numeric values (year, price, ABV, …) stored as strings but parseable.
    Numeric,
    /// Low-cardinality strings (venue, genre, category, …).
    Categorical,
}

/// One attribute of an entity description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Column name, e.g. `"title"`.
    pub name: String,
    /// Value domain.
    pub ty: AttrType,
}

impl Attribute {
    /// Convenience constructor.
    pub fn new(name: &str, ty: AttrType) -> Self {
        Self {
            name: name.to_owned(),
            ty,
        }
    }
}

/// The Magellan benchmark groups datasets into three types (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Clean attribute-aligned records.
    Structured,
    /// Records dominated by one long free-text attribute.
    Textual,
    /// Structured records whose values were moved into wrong columns.
    Dirty,
}

impl fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DatasetKind::Structured => "Structured",
            DatasetKind::Textual => "Textual",
            DatasetKind::Dirty => "Dirty",
        };
        f.write_str(s)
    }
}

/// An ordered list of attributes shared by both entities of every pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Build from an attribute list; names must be unique.
    pub fn new(attributes: Vec<Attribute>) -> Self {
        for i in 0..attributes.len() {
            for j in i + 1..attributes.len() {
                assert_ne!(
                    attributes[i].name, attributes[j].name,
                    "duplicate attribute name '{}'",
                    attributes[i].name
                );
            }
        }
        Self { attributes }
    }

    /// The attributes, in column order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Index of the attribute called `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// Attribute at position `i`.
    pub fn attr(&self, i: usize) -> &Attribute {
        &self.attributes[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup() {
        let s = Schema::new(vec![
            Attribute::new("title", AttrType::Text),
            Attribute::new("year", AttrType::Numeric),
        ]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("year"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.attr(0).name, "title");
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_names_rejected() {
        Schema::new(vec![
            Attribute::new("a", AttrType::Text),
            Attribute::new("a", AttrType::Numeric),
        ]);
    }

    #[test]
    fn kind_display() {
        assert_eq!(DatasetKind::Structured.to_string(), "Structured");
        assert_eq!(DatasetKind::Dirty.to_string(), "Dirty");
    }
}
