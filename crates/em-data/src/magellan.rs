//! The 12 dataset profiles of the Magellan benchmark (Table 1 of the paper)
//! and the pair-construction procedure that realizes them synthetically.
//!
//! Construction per profile:
//!
//! * **matches** — one clean entity is generated, then each side is passed
//!   through the corruption operators ([`crate::noise`]) at the profile's
//!   difficulty level: the pair describes the *same* entity as two sources
//!   would.
//! * **non-matches** — mimics Magellan's blocking output: a mix of *hard*
//!   negatives (a [`Domain::near_miss`] of a generated entity, also
//!   corrupted — same brand different model, same group different paper)
//!   and easier random negatives (two independent entities). Harder
//!   profiles use a larger hard fraction.
//! * **dirty variants** — both sides are additionally passed through
//!   [`crate::noise::dirtify`], which moves attribute values into wrong
//!   columns exactly as the Magellan dirty datasets were built.

use crate::dataset::EmDataset;
use crate::generators::{
    Beer, Bibliographic, Domain, Music, ProductElectronics, ProductRetail, Restaurant,
    TextualProduct,
};
use crate::noise::{corrupt_entity, dirtify, NoiseConfig};
use crate::record::RecordPair;
use crate::schema::DatasetKind;
use linalg::Rng;

/// Identifier of one of the 12 benchmark datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(clippy::upper_case_acronyms)]
pub enum MagellanDataset {
    /// Structured DBLP-GoogleScholar.
    SDG,
    /// Structured DBLP-ACM.
    SDA,
    /// Structured Amazon-Google.
    SAG,
    /// Structured Walmart-Amazon.
    SWA,
    /// Structured BeerAdvo-RateBeer.
    SBR,
    /// Structured iTunes-Amazon.
    SIA,
    /// Structured Fodors-Zagats.
    SFZ,
    /// Textual Abt-Buy.
    TAB,
    /// Dirty iTunes-Amazon.
    DIA,
    /// Dirty DBLP-ACM.
    DDA,
    /// Dirty DBLP-GoogleScholar.
    DDG,
    /// Dirty Walmart-Amazon.
    DWA,
}

impl MagellanDataset {
    /// All 12 datasets in Table 1 order.
    pub const ALL: [MagellanDataset; 12] = [
        MagellanDataset::SDG,
        MagellanDataset::SDA,
        MagellanDataset::SAG,
        MagellanDataset::SWA,
        MagellanDataset::SBR,
        MagellanDataset::SIA,
        MagellanDataset::SFZ,
        MagellanDataset::TAB,
        MagellanDataset::DIA,
        MagellanDataset::DDA,
        MagellanDataset::DDG,
        MagellanDataset::DWA,
    ];

    /// The profile (Table 1 row + generation parameters) of this dataset.
    pub fn profile(self) -> DatasetProfile {
        use MagellanDataset::*;
        match self {
            SDG => DatasetProfile::new(
                self,
                "S-DG",
                "DBLP-GoogleScholar",
                DatasetKind::Structured,
                28_707,
                18.63,
                0.22,
            ),
            SDA => DatasetProfile::new(
                self,
                "S-DA",
                "DBLP-ACM",
                DatasetKind::Structured,
                12_363,
                17.96,
                0.06,
            ),
            SAG => DatasetProfile::new(
                self,
                "S-AG",
                "Amazon-Google",
                DatasetKind::Structured,
                11_460,
                10.18,
                0.40,
            ),
            SWA => DatasetProfile::new(
                self,
                "S-WA",
                "Walmart-Amazon",
                DatasetKind::Structured,
                10_242,
                9.39,
                0.78,
            ),
            SBR => DatasetProfile::new(
                self,
                "S-BR",
                "BeerAdvo-RateBeer",
                DatasetKind::Structured,
                450,
                15.11,
                0.34,
            ),
            SIA => DatasetProfile::new(
                self,
                "S-IA",
                "iTunes-Amazon",
                DatasetKind::Structured,
                539,
                24.49,
                0.17,
            ),
            SFZ => DatasetProfile::new(
                self,
                "S-FZ",
                "Fodors-Zagats",
                DatasetKind::Structured,
                946,
                11.63,
                0.02,
            ),
            TAB => DatasetProfile::new(
                self,
                "T-AB",
                "Abt-Buy",
                DatasetKind::Textual,
                9_575,
                10.74,
                0.58,
            ),
            DIA => DatasetProfile::new(
                self,
                "D-IA",
                "iTunes-Amazon",
                DatasetKind::Dirty,
                539,
                24.49,
                0.22,
            ),
            DDA => DatasetProfile::new(
                self,
                "D-DA",
                "DBLP-ACM",
                DatasetKind::Dirty,
                12_363,
                17.96,
                0.08,
            ),
            DDG => DatasetProfile::new(
                self,
                "D-DG",
                "DBLP-GoogleScholar",
                DatasetKind::Dirty,
                28_707,
                18.63,
                0.19,
            ),
            DWA => DatasetProfile::new(
                self,
                "D-WA",
                "Walmart-Amazon",
                DatasetKind::Dirty,
                10_242,
                9.39,
                0.70,
            ),
        }
    }

    /// Short code used throughout the paper's tables ("S-DG", …).
    pub fn code(self) -> &'static str {
        self.profile().code
    }

    /// Inverse of [`code`](Self::code), case-insensitive (`"s-br"` works):
    /// how serialized model recipes and CLI flags name a dataset.
    pub fn from_code(code: &str) -> Option<MagellanDataset> {
        Self::ALL
            .into_iter()
            .find(|d| d.code().eq_ignore_ascii_case(code))
    }
}

/// A Table 1 row plus the parameters our generator needs to realize it.
pub struct DatasetProfile {
    /// Which dataset this is.
    pub id: MagellanDataset,
    /// Short code ("S-DG").
    pub code: &'static str,
    /// Original source-pair name ("DBLP-GoogleScholar").
    pub source: &'static str,
    /// Structured / Textual / Dirty.
    pub kind: DatasetKind,
    /// Number of record pairs (Table 1 "Size").
    pub size: usize,
    /// Percentage of matching pairs (Table 1 "% Match").
    pub match_pct: f64,
    /// Generation difficulty in `[0, 1]`; calibrated so the achievable F1
    /// ordering matches the paper's (S-FZ easiest … D-WA hardest).
    pub difficulty: f64,
}

impl DatasetProfile {
    fn new(
        id: MagellanDataset,
        code: &'static str,
        source: &'static str,
        kind: DatasetKind,
        size: usize,
        match_pct: f64,
        difficulty: f64,
    ) -> Self {
        Self {
            id,
            code,
            source,
            kind,
            size,
            match_pct,
            difficulty,
        }
    }

    /// The entity domain backing this dataset.
    pub fn domain(&self) -> Box<dyn Domain> {
        use MagellanDataset::*;
        match self.id {
            SDG | SDA | DDA | DDG => Box::new(Bibliographic),
            SAG => Box::new(ProductElectronics),
            SWA | DWA => Box::new(ProductRetail),
            SBR => Box::new(Beer),
            SIA | DIA => Box::new(Music),
            SFZ => Box::new(Restaurant),
            TAB => Box::new(TextualProduct),
        }
    }

    /// Generate the dataset at full Table 1 size.
    pub fn generate(&self, seed: u64) -> EmDataset {
        self.generate_scaled(seed, 1.0)
    }

    /// Generate with `scale` applied to the pair count (≥ 8 pairs are always
    /// produced). Benches use small scales to keep grid experiments fast;
    /// `scale = 1.0` reproduces Table 1 exactly.
    pub fn generate_scaled(&self, seed: u64, scale: f64) -> EmDataset {
        assert!(scale > 0.0, "scale must be positive");
        let size = ((self.size as f64 * scale).round() as usize).max(8);
        let n_match = ((size as f64 * self.match_pct / 100.0).round() as usize).max(1);
        let n_nonmatch = size - n_match;
        let domain = self.domain();
        let schema = domain.schema();
        let mut rng = Rng::new(seed ^ linalg::SplitMix64::mix(self.code.len() as u64));

        // Match corruption grows sub-linearly with difficulty: hard real
        // datasets are hard mostly because blocking negatives are *close*
        // (near-identical products), not because matching descriptions are
        // destroyed. The near-miss closeness tracks difficulty directly.
        let match_noise = 0.08 + 0.55 * self.difficulty;
        let cfg_light = NoiseConfig::from_level(match_noise * 0.3);
        let cfg_full = NoiseConfig::from_level(match_noise);
        let extra = domain.extra_pool();
        // dirty datasets: probability a value jumps column
        let dirty_prob = 0.22;

        let mut pairs = Vec::with_capacity(size);
        for _ in 0..n_match {
            let base = domain.generate(&mut rng);
            let mut left = corrupt_entity(&base, &schema, &cfg_light, extra, &mut rng);
            let mut right = corrupt_entity(&base, &schema, &cfg_full, extra, &mut rng);
            if self.kind == DatasetKind::Dirty {
                left = dirtify(&left, dirty_prob, &mut rng);
                right = dirtify(&right, dirty_prob, &mut rng);
            }
            pairs.push(RecordPair::new(left, right, true));
        }

        // blocking-style negatives: mostly near-misses on hard datasets,
        // and the near-misses themselves stay closer on hard datasets
        let hard_frac = 0.3 + 0.55 * self.difficulty;
        for _ in 0..n_nonmatch {
            let base = domain.generate(&mut rng);
            let other = if rng.chance(hard_frac) {
                domain.near_miss(&base, self.difficulty, &mut rng)
            } else {
                domain.generate(&mut rng)
            };
            let mut left = corrupt_entity(&base, &schema, &cfg_light, extra, &mut rng);
            let mut right = corrupt_entity(&other, &schema, &cfg_full, extra, &mut rng);
            if self.kind == DatasetKind::Dirty {
                left = dirtify(&left, dirty_prob, &mut rng);
                right = dirtify(&right, dirty_prob, &mut rng);
            }
            pairs.push(RecordPair::new(left, right, false));
        }

        EmDataset::with_split(self.code, self.kind, schema, pairs, &mut rng)
    }
}

/// All 12 profiles in Table 1 order.
pub fn magellan_benchmark() -> Vec<DatasetProfile> {
    MagellanDataset::ALL.iter().map(|d| d.profile()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Split;

    #[test]
    fn code_round_trips() {
        for d in MagellanDataset::ALL {
            assert_eq!(MagellanDataset::from_code(d.code()), Some(d));
        }
        assert_eq!(
            MagellanDataset::from_code("s-br"),
            Some(MagellanDataset::SBR)
        );
        assert_eq!(MagellanDataset::from_code("nope"), None);
    }

    #[test]
    fn table1_inventory() {
        let all = magellan_benchmark();
        assert_eq!(all.len(), 12);
        let structured = all
            .iter()
            .filter(|p| p.kind == DatasetKind::Structured)
            .count();
        let textual = all
            .iter()
            .filter(|p| p.kind == DatasetKind::Textual)
            .count();
        let dirty = all.iter().filter(|p| p.kind == DatasetKind::Dirty).count();
        assert_eq!((structured, textual, dirty), (7, 1, 4));
        // exact Table 1 sizes
        assert_eq!(MagellanDataset::SDG.profile().size, 28_707);
        assert_eq!(MagellanDataset::SBR.profile().size, 450);
        assert!((MagellanDataset::SIA.profile().match_pct - 24.49).abs() < 1e-9);
    }

    #[test]
    fn generated_size_and_balance_match_profile() {
        for id in [
            MagellanDataset::SBR,
            MagellanDataset::SIA,
            MagellanDataset::SFZ,
        ] {
            let p = id.profile();
            let d = p.generate(42);
            assert_eq!(d.len(), p.size, "{}", p.code);
            let ratio = d.match_ratio() * 100.0;
            assert!(
                (ratio - p.match_pct).abs() < 1.0,
                "{}: {ratio} vs {}",
                p.code,
                p.match_pct
            );
        }
    }

    #[test]
    fn scaled_generation() {
        let p = MagellanDataset::SDA.profile();
        let d = p.generate_scaled(1, 0.05);
        let expect = (p.size as f64 * 0.05).round() as usize;
        assert_eq!(d.len(), expect);
        assert!((d.match_ratio() * 100.0 - p.match_pct).abs() < 2.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = MagellanDataset::SBR.profile();
        let a = p.generate(7);
        let b = p.generate(7);
        assert_eq!(a.pairs(), b.pairs());
        let c = p.generate(8);
        assert_ne!(a.pairs(), c.pairs());
    }

    #[test]
    fn dirty_datasets_have_misplaced_values() {
        let d = MagellanDataset::DIA.profile().generate(3);
        // dirty records must show missing values created by the column moves
        let missing: usize = d
            .pairs()
            .iter()
            .map(|p| p.left.missing_count() + p.right.missing_count())
            .sum();
        assert!(missing > d.len() / 2, "missing values: {missing}");
    }

    #[test]
    fn matches_are_more_similar_than_nonmatches() {
        use text::similarity::jaccard;
        let d = MagellanDataset::SDA.profile().generate_scaled(5, 0.05);
        let mut match_sim = Vec::new();
        let mut non_sim = Vec::new();
        for p in d.pairs() {
            let l: Vec<String> = p
                .left
                .flatten()
                .split_whitespace()
                .map(str::to_owned)
                .collect();
            let r: Vec<String> = p
                .right
                .flatten()
                .split_whitespace()
                .map(str::to_owned)
                .collect();
            let j = jaccard(&l, &r);
            if p.label {
                match_sim.push(j);
            } else {
                non_sim.push(j);
            }
        }
        let m = linalg::stats::mean(&match_sim);
        let n = linalg::stats::mean(&non_sim);
        assert!(m > n + 0.15, "match sim {m} vs non-match {n}");
    }

    #[test]
    fn splits_are_6_2_2() {
        let d = MagellanDataset::SFZ.profile().generate(11);
        let tr = d.split(Split::Train).len();
        let va = d.split(Split::Validation).len();
        let te = d.split(Split::Test).len();
        assert_eq!(tr + va + te, 946);
        assert!((tr as f64 / 946.0 - 0.6).abs() < 0.01);
        assert!((va as f64 / 946.0 - 0.2).abs() < 0.01);
    }

    #[test]
    fn difficulty_ordering_reflected_in_similarity_gap() {
        use text::similarity::jaccard;
        // easy dataset (S-FZ) must show a larger match/non-match similarity
        // gap than the hard one (S-WA)
        let gap = |id: MagellanDataset| {
            let d = id.profile().generate_scaled(
                13,
                if id == MagellanDataset::SFZ {
                    1.0
                } else {
                    0.05
                },
            );
            let (mut ms, mut ns) = (Vec::new(), Vec::new());
            for p in d.pairs() {
                let l: Vec<String> = p
                    .left
                    .flatten()
                    .split_whitespace()
                    .map(str::to_owned)
                    .collect();
                let r: Vec<String> = p
                    .right
                    .flatten()
                    .split_whitespace()
                    .map(str::to_owned)
                    .collect();
                let j = jaccard(&l, &r);
                if p.label {
                    ms.push(j)
                } else {
                    ns.push(j)
                }
            }
            linalg::stats::mean(&ms) - linalg::stats::mean(&ns)
        };
        assert!(gap(MagellanDataset::SFZ) > gap(MagellanDataset::SWA));
    }
}
