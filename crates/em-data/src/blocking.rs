//! Candidate generation by blocking.
//!
//! The Magellan benchmark's record pairs are the *output* of a blocking
//! stage: comparing every record of table A against every record of table B
//! is quadratic, so real EM systems first select candidate pairs that share
//! cheap surface evidence. This module implements the standard **token
//! (overlap) blocker** — a pair becomes a candidate when the chosen
//! attributes share at least `min_overlap` tokens — plus recall/reduction
//! metrics, so the library covers the full raw-tables → candidate-set →
//! matcher workflow (see `examples/custom_csv.rs` and the blocking
//! integration tests).

use crate::record::Entity;
use crate::schema::Schema;
use std::collections::HashMap;
use text::tokenize::words;

/// Configuration of the token blocker.
#[derive(Debug, Clone)]
pub struct BlockerConfig {
    /// Attribute indices whose tokens form blocking keys (empty = all).
    pub key_attributes: Vec<usize>,
    /// Minimum number of shared tokens for a pair to become a candidate.
    pub min_overlap: usize,
    /// Tokens appearing in more than this fraction of one table's records
    /// are ignored as stop words (they would block everything together).
    pub max_token_frequency: f64,
}

impl Default for BlockerConfig {
    fn default() -> Self {
        Self {
            key_attributes: Vec::new(),
            min_overlap: 1,
            max_token_frequency: 0.1,
        }
    }
}

/// A candidate pair: indices into the left and right tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CandidatePair {
    /// Row in the left table.
    pub left: usize,
    /// Row in the right table.
    pub right: usize,
}

/// Result of a blocking run.
#[derive(Debug, Clone)]
pub struct BlockingResult {
    /// Candidate pairs, sorted by `(left, right)`.
    pub candidates: Vec<CandidatePair>,
    /// `|A| × |B|`, the size of the full cross product.
    pub cross_product: usize,
}

impl BlockingResult {
    /// Fraction of the cross product removed (higher = cheaper matching).
    pub fn reduction_ratio(&self) -> f64 {
        if self.cross_product == 0 {
            return 0.0;
        }
        1.0 - self.candidates.len() as f64 / self.cross_product as f64
    }

    /// Fraction of `true_pairs` surviving in the candidate set
    /// (pair-completeness / blocking recall).
    pub fn recall(&self, true_pairs: &[CandidatePair]) -> f64 {
        if true_pairs.is_empty() {
            return 1.0;
        }
        let set: std::collections::HashSet<&CandidatePair> = self.candidates.iter().collect();
        let hit = true_pairs.iter().filter(|p| set.contains(p)).count();
        hit as f64 / true_pairs.len() as f64
    }
}

fn blocking_tokens(entity: &Entity, keys: &[usize], width: usize) -> Vec<String> {
    let mut out = Vec::new();
    let indices: Vec<usize> = if keys.is_empty() {
        (0..width).collect()
    } else {
        keys.to_vec()
    };
    for &i in &indices {
        if let Some(v) = entity.value(i) {
            out.extend(words(v));
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Run the overlap blocker over two entity tables sharing `schema`.
pub fn token_blocking(
    left: &[Entity],
    right: &[Entity],
    schema: &Schema,
    config: &BlockerConfig,
) -> BlockingResult {
    let width = schema.len();
    // inverted index over the right table, with stop-word removal
    let right_tokens: Vec<Vec<String>> = right
        .iter()
        .map(|e| blocking_tokens(e, &config.key_attributes, width))
        .collect();
    let mut doc_freq: HashMap<&str, usize> = HashMap::new();
    for toks in &right_tokens {
        for t in toks {
            *doc_freq.entry(t).or_insert(0) += 1;
        }
    }
    let cutoff = ((right.len() as f64) * config.max_token_frequency).ceil() as usize;
    let mut index: HashMap<&str, Vec<usize>> = HashMap::new();
    for (j, toks) in right_tokens.iter().enumerate() {
        for t in toks {
            if doc_freq[t.as_str()] <= cutoff.max(1) {
                index.entry(t).or_default().push(j);
            }
        }
    }

    let mut candidates = Vec::new();
    let mut overlap: HashMap<usize, usize> = HashMap::new();
    for (i, l) in left.iter().enumerate() {
        overlap.clear();
        for t in blocking_tokens(l, &config.key_attributes, width) {
            if let Some(matches) = index.get(t.as_str()) {
                for &j in matches {
                    *overlap.entry(j).or_insert(0) += 1;
                }
            }
        }
        for (&j, &count) in &overlap {
            if count >= config.min_overlap {
                candidates.push(CandidatePair { left: i, right: j });
            }
        }
    }
    candidates.sort_by_key(|p| (p.left, p.right));
    BlockingResult {
        candidates,
        cross_product: left.len() * right.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{Domain, Restaurant};
    use crate::noise::{corrupt_entity, NoiseConfig};
    use linalg::Rng;

    fn entity(vals: &[&str]) -> Entity {
        Entity::new(vals.iter().map(|v| Some((*v).to_owned())).collect())
    }

    fn toy_schema() -> Schema {
        use crate::schema::{AttrType, Attribute};
        Schema::new(vec![
            Attribute::new("name", AttrType::Text),
            Attribute::new("city", AttrType::Text),
        ])
    }

    #[test]
    fn shared_tokens_create_candidates() {
        let schema = toy_schema();
        let left = vec![
            entity(&["golden dragon", "boston"]),
            entity(&["blue ocean", "miami"]),
        ];
        let right = vec![
            entity(&["golden dragon cafe", "boston"]),
            entity(&["red lantern", "chicago"]),
        ];
        let r = token_blocking(
            &left,
            &right,
            &schema,
            &BlockerConfig {
                max_token_frequency: 1.0,
                ..BlockerConfig::default()
            },
        );
        assert!(r.candidates.contains(&CandidatePair { left: 0, right: 0 }));
        assert!(!r.candidates.contains(&CandidatePair { left: 1, right: 1 }));
        assert_eq!(r.cross_product, 4);
    }

    #[test]
    fn min_overlap_tightens_the_set() {
        let schema = toy_schema();
        let left = vec![entity(&["alpha beta", "x"])];
        let right = vec![entity(&["alpha gamma", "y"]), entity(&["alpha beta", "z"])];
        let loose = token_blocking(
            &left,
            &right,
            &schema,
            &BlockerConfig {
                min_overlap: 1,
                max_token_frequency: 1.0,
                ..BlockerConfig::default()
            },
        );
        let tight = token_blocking(
            &left,
            &right,
            &schema,
            &BlockerConfig {
                min_overlap: 2,
                max_token_frequency: 1.0,
                ..BlockerConfig::default()
            },
        );
        assert_eq!(loose.candidates.len(), 2);
        assert_eq!(tight.candidates.len(), 1);
        assert!(tight.reduction_ratio() > loose.reduction_ratio());
    }

    #[test]
    fn stop_words_are_ignored() {
        let schema = toy_schema();
        // "cafe" appears in every right record → removed as a stop word
        let left = vec![entity(&["cafe unique", "a"])];
        let right: Vec<Entity> = (0..20)
            .map(|i| entity(&[&format!("cafe place{i}"), "b"]))
            .collect();
        let r = token_blocking(
            &left,
            &right,
            &schema,
            &BlockerConfig {
                max_token_frequency: 0.2,
                ..BlockerConfig::default()
            },
        );
        assert!(r.candidates.is_empty(), "{:?}", r.candidates);
    }

    #[test]
    fn key_attributes_restrict_evidence() {
        let schema = toy_schema();
        let left = vec![entity(&["unique name", "shared city"])];
        let right = vec![entity(&["other words", "shared city"])];
        // block on name only: no candidate
        let name_only = token_blocking(
            &left,
            &right,
            &schema,
            &BlockerConfig {
                key_attributes: vec![0],
                max_token_frequency: 1.0,
                ..BlockerConfig::default()
            },
        );
        assert!(name_only.candidates.is_empty());
        // block on all attributes: city overlap creates the candidate
        let all = token_blocking(
            &left,
            &right,
            &schema,
            &BlockerConfig {
                max_token_frequency: 1.0,
                ..BlockerConfig::default()
            },
        );
        assert_eq!(all.candidates.len(), 1);
    }

    #[test]
    fn blocking_keeps_true_duplicates_on_synthetic_tables() {
        // generate restaurant entities, corrupt copies into a second table,
        // and verify blocking recall is high while reduction is substantial
        let domain = Restaurant;
        let schema = domain.schema();
        let mut rng = Rng::new(7);
        let cfg = NoiseConfig::from_level(0.2);
        let mut left = Vec::new();
        let mut right = Vec::new();
        let mut truth = Vec::new();
        for i in 0..120 {
            let base = domain.generate(&mut rng);
            let dup = corrupt_entity(&base, &schema, &cfg, &[], &mut rng);
            left.push(base);
            right.push(dup);
            truth.push(CandidatePair { left: i, right: i });
        }
        let r = token_blocking(&left, &right, &schema, &BlockerConfig::default());
        assert!(r.recall(&truth) > 0.9, "recall {}", r.recall(&truth));
        assert!(
            r.reduction_ratio() > 0.5,
            "reduction {}",
            r.reduction_ratio()
        );
    }

    #[test]
    fn empty_tables_degenerate_cleanly() {
        let schema = toy_schema();
        let r = token_blocking(&[], &[], &schema, &BlockerConfig::default());
        assert!(r.candidates.is_empty());
        assert_eq!(r.reduction_ratio(), 0.0);
        assert_eq!(r.recall(&[]), 1.0);
    }
}
